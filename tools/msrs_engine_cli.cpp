// msrs_engine_cli — batch front-end for the engine layer.
//
// Reads instance files (core/instance_io format) and/or generates workload
// batches, solves everything through BatchEngine (portfolio racing +
// canonical-form cache) and prints per-instance provenance plus throughput
// stats.
//
//   $ ./msrs_engine_cli --file=a.txt --file=b.txt
//   $ ./msrs_engine_cli --family=all --jobs=60 --machines=8 --seeds=20 \
//         --repeat=3 --threads=4
//   $ ./msrs_engine_cli --family=photolith --jobs=40 --machines=6 --seeds=5 \
//         --solvers=three_halves,five_thirds --attempts
//   $ ./msrs_engine_cli --list-solvers
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/instance_io.hpp"
#include "engine/engine.hpp"
#include "sim/workloads.hpp"
#include "util/table.hpp"

namespace {

using namespace msrs;

struct Options {
  std::vector<std::string> files;
  std::string family;
  int jobs = 60;
  int machines = 8;
  int seeds = 10;
  int repeat = 1;
  int budget_ms = 100;
  unsigned threads = 0;
  bool cache = true;
  bool attempts = false;
  bool list_solvers = false;
  std::vector<std::string> solvers;  // portfolio `only` filter
};

std::optional<std::string> arg_value(const char* arg, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0)
    return std::string(arg + prefix.size());
  return std::nullopt;
}

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t comma = value.find(',', begin);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > begin) out.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: msrs_engine_cli [--file=INSTANCE.txt ...]\n"
      "                       [--family=NAME|all --jobs=N --machines=M"
      " --seeds=K --repeat=R]\n"
      "                       [--threads=T] [--budget=MS] [--no-cache]\n"
      "                       [--solvers=a,b,c] [--attempts]"
      " [--list-solvers]\nfamilies:");
  for (const Family family : kAllFamilies)
    std::fprintf(stderr, " %s", family_name(family));
  std::fprintf(stderr, "\n");
  return 2;
}

int list_solvers() {
  Table table({"solver", "guarantee", "cost", "budget_ms"});
  for (const auto& solver : engine::SolverRegistry::default_registry()
                                .solvers()) {
    const char* cost = solver->cost() == engine::CostTier::kLinear ? "linear"
                       : solver->cost() == engine::CostTier::kPolynomial
                           ? "poly"
                           : "search";
    table.add_row({std::string(solver->name()),
                   solver->guarantee() > 0.0
                       ? Table::num(solver->guarantee(), 4)
                       : "heuristic",
                   cost,
                   Table::num(static_cast<std::int64_t>(
                       solver->min_budget_ms()))});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
  for (int i = 1; i < argc; ++i) {
    if (auto v = arg_value(argv[i], "file")) options.files.push_back(*v);
    else if (auto v2 = arg_value(argv[i], "family")) options.family = *v2;
    else if (auto v3 = arg_value(argv[i], "jobs")) options.jobs = std::stoi(*v3);
    else if (auto v4 = arg_value(argv[i], "machines"))
      options.machines = std::stoi(*v4);
    else if (auto v5 = arg_value(argv[i], "seeds"))
      options.seeds = std::stoi(*v5);
    else if (auto v6 = arg_value(argv[i], "repeat"))
      options.repeat = std::stoi(*v6);
    else if (auto v7 = arg_value(argv[i], "budget"))
      options.budget_ms = std::stoi(*v7);
    else if (auto v8 = arg_value(argv[i], "threads"))
      options.threads = static_cast<unsigned>(std::stoul(*v8));
    else if (auto v9 = arg_value(argv[i], "solvers"))
      options.solvers = split_csv(*v9);
    else if (std::strcmp(argv[i], "--no-cache") == 0) options.cache = false;
    else if (std::strcmp(argv[i], "--attempts") == 0) options.attempts = true;
    else if (std::strcmp(argv[i], "--list-solvers") == 0)
      options.list_solvers = true;
    else return usage();
  }
  } catch (const std::exception&) {  // non-numeric value for a numeric flag
    return usage();
  }
  if (options.list_solvers) return list_solvers();
  for (const std::string& name : options.solvers)
    if (engine::SolverRegistry::default_registry().find(name) == nullptr) {
      std::fprintf(stderr,
                   "unknown solver '%s' (see --list-solvers)\n", name.c_str());
      return 2;
    }

  std::vector<Instance> batch;
  std::vector<std::string> labels;
  for (const std::string& file : options.files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::string error;
    auto parsed = read_text(in, &error);
    if (!parsed) {
      std::fprintf(stderr, "%s: parse error: %s\n", file.c_str(),
                   error.c_str());
      return 1;
    }
    batch.push_back(std::move(*parsed));
    labels.push_back(file);
  }
  if (!options.family.empty()) {
    std::vector<Family> families;
    if (options.family == "all")
      families.assign(std::begin(kAllFamilies), std::end(kAllFamilies));
    else {
      for (const Family family : kAllFamilies)
        if (options.family == family_name(family)) families.push_back(family);
      if (families.empty()) return usage();
    }
    for (int r = 0; r < options.repeat; ++r)
      for (int seed = 1; seed <= options.seeds; ++seed)
        for (const Family family : families) {
          batch.push_back(generate(family, options.jobs, options.machines,
                                   static_cast<std::uint64_t>(seed)));
          labels.push_back(std::string(family_name(family)) + "/s" +
                           std::to_string(seed));
        }
  }
  if (batch.empty()) return usage();

  engine::BatchOptions batch_options;
  batch_options.threads = options.threads;
  batch_options.cache = options.cache;
  batch_options.portfolio.budget_ms = options.budget_ms;
  batch_options.portfolio.only = options.solvers;
  engine::BatchEngine batch_engine(engine::SolverRegistry::default_registry(),
                                   batch_options);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<engine::PortfolioResult> results =
      batch_engine.solve(batch);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  Table table({"instance", "n", "m", "|C|", "solver", "makespan", "t_bound",
               "ratio", "valid", "source"});
  bool all_valid = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const engine::PortfolioResult& result = results[i];
    table.add_row(
        {labels[i], Table::num(static_cast<std::int64_t>(batch[i].num_jobs())),
         Table::num(static_cast<std::int64_t>(batch[i].machines())),
         Table::num(static_cast<std::int64_t>(batch[i].num_classes())),
         result.solver, Table::num(result.makespan, 2),
         Table::num(static_cast<std::int64_t>(result.t_bound)),
         Table::num(result.ratio_vs_bound, 4), result.valid ? "yes" : "NO",
         result.from_cache ? "cache" : "solved"});
    all_valid = all_valid && result.valid;
    if (options.attempts) {
      for (const engine::Attempt& attempt : result.attempts)
        std::fprintf(stderr, "    %-16s ok=%d valid=%d makespan=%.2f %s\n",
                     attempt.solver.c_str(), attempt.ok, attempt.valid,
                     attempt.makespan, attempt.error.c_str());
    }
  }
  std::printf("%s\n", table.str().c_str());

  const engine::BatchStats& stats = batch_engine.stats();
  std::printf(
      "batch: %zu instances, %zu solved, %zu cache hits, %zu cache entries\n"
      "time:  %.1f ms (%.0f instances/sec)\n",
      stats.instances, stats.solved, stats.cache_hits, stats.entries,
      elapsed_ms, elapsed_ms > 0 ? 1000.0 * static_cast<double>(batch.size()) /
                                       elapsed_ms
                                 : 0.0);
  if (!all_valid) {
    std::fprintf(stderr, "some instances have no valid schedule\n");
    return 1;
  }
  return 0;
}
