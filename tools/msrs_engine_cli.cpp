// msrs_engine_cli — front-end for the engine + generator + serving
// subsystems.
//
// Subcommands:
//   solve         solve instance files and/or generated batches (default)
//   generate      emit a corpus of generated instances (instance_io text)
//   sweep         expand a sweep grid, solve it, print a per-cell report
//   bench         run perf-harness cases / bench a generated corpus
//   serve         long-running scheduling service (stdio, UNIX socket or
//                 TCP event loop)
//   drive         load driver: replay generated corpora against a service
//   stats         one-shot `stats` op against a running service
//   version       schema versions (instance / bench / wire formats)
//   list-solvers  describe the registered solver ladder
//   help          full usage with examples
//
//   $ ./msrs_engine_cli generate "huge_heavy:n=200,m=16,seed=3"
//   $ ./msrs_engine_cli generate uniform --count=8 | ./msrs_engine_cli solve --file=-
//   $ ./msrs_engine_cli sweep "families=all;n=40,80,160;m=8;seeds=5" --threads=4
//   $ ./msrs_engine_cli serve --socket=/tmp/msrs.sock --shards=4 &
//   $ ./msrs_engine_cli drive --socket=/tmp/msrs.sock uniform:n=32,m=4
//         --count=64 --requests=100000 --conns=4
//
// Legacy flag-only invocations (no subcommand) behave exactly like `solve`.
#include <fcntl.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/instance_io.hpp"
#include "engine/engine.hpp"
#include "obs/flight_recorder.hpp"
#include "perf/cli.hpp"
#include "perf/reporter.hpp"
#include "serve/serve.hpp"
#include "sim/workloads.hpp"
#include "util/table.hpp"

namespace {

using namespace msrs;

struct Options {
  std::vector<std::string> files;
  std::vector<std::string> specs;  // positional spec strings
  std::string family;
  std::string out;   // generate: output path ("" or "-" = stdout)
  int count = 0;     // generate: seeds per spec (0 = the spec's own seed)
  int jobs = 60;
  int machines = 8;
  int seeds = 10;
  int repeat = 1;
  int budget_ms = 100;
  unsigned threads = 0;
  bool cache = true;
  std::size_t cache_capacity = 1 << 16;  // batch/corpus cache bound
  bool attempts = false;
  bool list_solvers = false;
  bool help = false;
  std::vector<std::string> solvers;  // portfolio `only` filter
  // serve / drive
  std::string socket;              // UNIX socket path ("" = stdio serve)
  std::string tcp;                 // TCP HOST:PORT target ("" = off)
  std::size_t idle_timeout_ms = 60'000;  // serve --tcp: idle reap bound
  std::string port_file;  // serve --tcp: write bound HOST:PORT here
  unsigned shards = 4;             // serve: worker shards
  std::size_t queue_depth = 1024;  // serve: per-shard admission bound
  std::size_t serve_cache = 1 << 14;  // serve: per-shard LRU entries
  bool reject = false;   // serve: shed load instead of blocking
  std::size_t requests = 0;  // drive: total request bound
  double duration = 0.0;     // drive: wall-clock bound, seconds
  double qps = 0.0;          // drive: open-loop rate (0 = closed loop)
  unsigned conns = 1;        // drive: concurrent connections
  bool payload_spec = false; // drive: send spec strings, not instance text
  std::string emit;          // drive: write request JSONL instead
  std::string churn;         // drive: churn spec (session-trace mode)
  std::string churn_out;     // drive: conn-0 response capture file
  bool json_report = false;  // drive: machine-readable report
  // serve telemetry
  std::string trace;              // serve: JSONL span sink ("-" = stderr)
  std::size_t trace_sample = 64;  // serve: emit every Nth span
  double slow_ms = 1000.0;        // serve: slow-request log threshold
  std::string metrics_dump;       // serve: Prometheus page at exit
                                  // ("" = off, "-" = stderr)
  std::size_t max_conns = 256;    // serve: socket connection budget
  double stats_interval = 0.0;    // drive: mid-run stats poll period, s
  // serve observability (docs/observability.md)
  std::string http;            // serve: HTTP exposition HOST:PORT ("" = off)
  std::string http_port_file;  // serve: write bound HTTP HOST:PORT here
  std::size_t recorder_events = 1 << 14;  // flight-recorder ring (0 = off)
  std::string recorder_dump;   // serve: fatal-signal recorder dump file
  double watchdog_p99_ms = 0.0;      // watchdog p99 threshold, ms (0 = off)
  double watchdog_error_rate = 0.0;  // watchdog error-rate threshold (0=off)
  std::size_t watchdog_queue = 0;    // watchdog queue-depth threshold (0=off)
  double watchdog_interval = 1.0;    // watchdog tick period, seconds
  std::string watchdog_dump;   // serve: watchdog auto-dump file
  bool recorder = false;       // stats: fetch the flight recorder instead
};

std::optional<std::string> arg_value(const char* arg, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0)
    return std::string(arg + prefix.size());
  return std::nullopt;
}

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t comma = value.find(',', begin);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > begin) out.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: msrs_engine_cli <command> [options]\n"
               "\n"
               "commands:\n"
               "  solve [--file=F ...] [--family=NAME|all --jobs=N"
               " --machines=M --seeds=K --repeat=R]\n"
               "        [SPEC ...] [--threads=T] [--budget=MS] [--no-cache]"
               " [--solvers=a,b] [--attempts]\n"
               "      Solve instance files and/or generated batches through"
               " the portfolio + cache.\n"
               "      --file=- reads a whole corpus from stdin. Default"
               " command when omitted.\n"
               "  generate SPEC [SPEC ...] [--count=K] [--out=FILE]\n"
               "      Emit instances as instance_io text (a corpus when"
               " several). --count=K draws\n"
               "      seeds 1..K per spec; --out=FILE writes to a file"
               " instead of stdout.\n"
               "  sweep SWEEPSPEC [--threads=T] [--budget=MS] [--no-cache]"
               " [--solvers=a,b]\n"
               "      Expand the grid, solve every cell, print a"
               " deterministic per-cell report\n"
               "      table (stdout) and wall-clock stats (stderr).\n"
               "  bench [CASE ...] [--list] [--json=DIR] [--timing]"
               " [--spec=SPEC] [--sweep=SWEEPSPEC]\n"
               "        [--solvers=a,b] [--baseline=DIR] ...\n"
               "      Run registered perf-harness cases (E1-E12), or bench"
               " solvers over a\n"
               "      generated corpus; writes BENCH_<case>.json with"
               " --json. `bench --help`\n"
               "      shows the full grammar (see docs/benchmarking.md).\n"
               "  serve [--socket=PATH | --tcp=HOST:PORT] [--shards=N]"
               " [--queue-depth=D]\n"
               "        [--serve-cache=K] [--budget=MS] [--reject]"
               " [--solvers=a,b] [--max-conns=C]\n"
               "        [--idle-timeout=MS] [--port-file=FILE]"
               " [--trace=FILE] [--trace-sample=N]\n"
               "        [--slow-ms=MS] [--metrics-dump[=FILE]]"
               " [--http=HOST:PORT]\n"
               "        [--http-port-file=FILE] [--recorder-events=N]"
               " [--recorder-dump=FILE]\n"
               "        [--watchdog-p99-ms=MS] [--watchdog-error-rate=R]"
               " [--watchdog-queue=N]\n"
               "        [--watchdog-interval=S] [--watchdog-dump=FILE]\n"
               "      Long-running scheduling service: JSONL requests on"
               " stdin (default), a\n"
               "      UNIX socket, or TCP (epoll event loop; --tcp port 0"
               " picks an ephemeral\n"
               "      port, --port-file records it; --idle-timeout reaps"
               " silent connections);\n"
               "      one response line per request, in request order."
               " --reject\n"
               "      sheds load with 'overloaded' errors instead of"
               " blocking; SIGINT/SIGTERM\n"
               "      and the wire 'shutdown' op drain gracefully (see"
               " docs/architecture.md).\n"
               "      --trace samples every Nth request as a JSONL"
               " lifecycle span; requests\n"
               "      slower than --slow-ms always log to stderr."
               " --metrics-dump prints a\n"
               "      Prometheus-style metrics page at exit (see"
               " docs/observability.md).\n"
               "      --http serves GET /metrics, /healthz, /recorder and"
               " /watchdog on a\n"
               "      second listener (any transport; port 0 +"
               " --http-port-file supported).\n"
               "      The flight recorder keeps the last N lifecycle events"
               " per thread\n"
               "      (--recorder-events=0 disables); --recorder-dump"
               " writes them on a\n"
               "      fatal signal; --watchdog-* thresholds auto-dump to"
               " --watchdog-dump.\n"
               "  drive SPEC [SPEC ...] (--socket=PATH | --tcp=HOST:PORT)"
               " [--count=K]\n"
               "        [--requests=N] [--duration=S]\n"
               "        [--qps=Q] [--conns=C] [--payload=instance|spec]"
               " [--emit=FILE] [--json]\n"
               "        [--stats-interval=S] [--churn=CHURNSPEC]"
               " [--churn-out=FILE]\n"
               "      Replay the generated corpus against a running"
               " service; reports p50/p95/p99\n"
               "      latency, throughput and cache hit rate. --qps paces"
               " an open loop (default\n"
               "      closed loop); --emit writes the request JSONL for a"
               " stdio pipeline;\n"
               "      --stats-interval polls `stats` mid-run and prints a"
               " live latency\n"
               "      decomposition table to stderr.\n"
               "      --churn replays an online-session trace instead (one"
               " session per\n"
               "      connection, submit/cancel/snapshot in order);"
               " --churn-out captures\n"
               "      connection 0's response bytes. CHURNSPEC ="
               " (poisson|onoff)[:key=v,...],\n"
               "      keys: events, classes, m, max, cancel, snap, rate,"
               " burst, blen, seed —\n"
               "      e.g. poisson:events=200,cancel=0.3,snap=10,seed=1\n"
               "  stats (--socket=PATH | --tcp=HOST:PORT) [--json]"
               " [--recorder]\n"
               "      One-shot `stats` op against a running service:"
               " counters, queue depths,\n"
               "      error/solver breakdowns and the per-stage latency"
               " decomposition.\n"
               "      --recorder fetches the flight recorder's canonical"
               " event dump instead.\n"
               "  version\n"
               "      Schema versions of the instance, bench and wire"
               " formats.\n"
               "  list-solvers\n"
               "      Describe the registered solver ladder.\n"
               "  help\n"
               "      This text.\n"
               "\n"
               "spec strings (see docs/scenarios.md):\n"
               "  SPEC      family[:k=v,...]     keys: n, m, max, seed,"
               " classes, sizes\n"
               "            e.g. huge_heavy:n=5000,m=32,classes=zipf(1.2),"
               "seed=7\n"
               "  SWEEPSPEC key=list[;...]       keys: families, n, m, max,"
               " seeds, classes, sizes\n"
               "            e.g. families=all;n=40,80,160;m=8,16;seeds=5\n"
               "\n"
               "examples:\n"
               "  msrs_engine_cli generate \"satellite:n=120,m=6,seed=2\"\n"
               "  msrs_engine_cli generate uniform --count=8 |"
               " msrs_engine_cli solve --file=-\n"
               "  msrs_engine_cli sweep"
               " \"families=uniform,huge_heavy,lemma9_tight;n=50,100;m=8;"
               "seeds=3\"\n"
               "  msrs_engine_cli solve --family=photolith --jobs=40"
               " --machines=6 --seeds=5 --attempts\n"
               "\nfamilies:");
  for (const Family family : kAllFamilies)
    std::fprintf(to, " %s", family_name(family));
  std::fprintf(to, "\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

int list_solvers() {
  Table table({"solver", "guarantee", "cost", "budget_ms"});
  for (const auto& solver : engine::SolverRegistry::default_registry()
                                .solvers()) {
    const char* cost = solver->cost() == engine::CostTier::kLinear ? "linear"
                       : solver->cost() == engine::CostTier::kPolynomial
                           ? "poly"
                           : "search";
    table.add_row({std::string(solver->name()),
                   solver->guarantee() > 0.0
                       ? Table::num(solver->guarantee(), 4)
                       : "heuristic",
                   cost,
                   Table::num(static_cast<std::int64_t>(
                       solver->min_budget_ms()))});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

// Parses flags into `options`; positional (non --) arguments land in
// options.specs. Returns false on an unknown flag or a bad numeric value.
bool parse_flags(int argc, char** argv, int begin, Options* options) {
  try {
    for (int i = begin; i < argc; ++i) {
      if (argv[i][0] != '-' || std::strcmp(argv[i], "-") == 0) {
        options->specs.push_back(argv[i]);
        continue;
      }
      if (auto v = arg_value(argv[i], "file")) options->files.push_back(*v);
      else if (auto v2 = arg_value(argv[i], "family")) options->family = *v2;
      else if (auto v3 = arg_value(argv[i], "jobs"))
        options->jobs = std::stoi(*v3);
      else if (auto v4 = arg_value(argv[i], "machines"))
        options->machines = std::stoi(*v4);
      else if (auto v5 = arg_value(argv[i], "seeds"))
        options->seeds = std::stoi(*v5);
      else if (auto v6 = arg_value(argv[i], "repeat"))
        options->repeat = std::stoi(*v6);
      else if (auto v7 = arg_value(argv[i], "budget"))
        options->budget_ms = std::stoi(*v7);
      else if (auto v8 = arg_value(argv[i], "threads"))
        options->threads = static_cast<unsigned>(std::stoul(*v8));
      else if (auto v9 = arg_value(argv[i], "solvers"))
        options->solvers = split_csv(*v9);
      else if (auto v10 = arg_value(argv[i], "count"))
        options->count = std::stoi(*v10);
      else if (auto v11 = arg_value(argv[i], "out")) options->out = *v11;
      else if (auto v12 = arg_value(argv[i], "cache-capacity"))
        options->cache_capacity = std::stoul(*v12);
      else if (auto v13 = arg_value(argv[i], "socket"))
        options->socket = *v13;
      else if (auto v14 = arg_value(argv[i], "shards"))
        options->shards = static_cast<unsigned>(std::stoul(*v14));
      else if (auto v15 = arg_value(argv[i], "queue-depth"))
        options->queue_depth = std::stoul(*v15);
      else if (auto v16 = arg_value(argv[i], "serve-cache"))
        options->serve_cache = std::stoul(*v16);
      else if (auto v17 = arg_value(argv[i], "requests"))
        options->requests = std::stoul(*v17);
      else if (auto v18 = arg_value(argv[i], "duration"))
        options->duration = std::stod(*v18);
      else if (auto v19 = arg_value(argv[i], "qps"))
        options->qps = std::stod(*v19);
      else if (auto v20 = arg_value(argv[i], "conns"))
        options->conns = static_cast<unsigned>(std::stoul(*v20));
      else if (auto v21 = arg_value(argv[i], "emit")) options->emit = *v21;
      else if (auto c1 = arg_value(argv[i], "churn")) options->churn = *c1;
      else if (auto c2 = arg_value(argv[i], "churn-out"))
        options->churn_out = *c2;
      else if (auto v22 = arg_value(argv[i], "payload")) {
        if (*v22 == "spec") options->payload_spec = true;
        else if (*v22 == "instance") options->payload_spec = false;
        else return false;
      }
      else if (auto v23 = arg_value(argv[i], "trace"))
        options->trace = *v23;
      else if (auto v24 = arg_value(argv[i], "trace-sample"))
        options->trace_sample = std::stoul(*v24);
      else if (auto v25 = arg_value(argv[i], "slow-ms"))
        options->slow_ms = std::stod(*v25);
      else if (auto v26 = arg_value(argv[i], "metrics-dump"))
        options->metrics_dump = *v26;
      else if (std::strcmp(argv[i], "--metrics-dump") == 0)
        options->metrics_dump = "-";
      else if (auto v27 = arg_value(argv[i], "max-conns"))
        options->max_conns = std::stoul(*v27);
      else if (auto v28 = arg_value(argv[i], "stats-interval"))
        options->stats_interval = std::stod(*v28);
      else if (auto v29 = arg_value(argv[i], "tcp")) options->tcp = *v29;
      else if (auto v30 = arg_value(argv[i], "idle-timeout"))
        options->idle_timeout_ms = std::stoul(*v30);
      else if (auto v31 = arg_value(argv[i], "port-file"))
        options->port_file = *v31;
      else if (auto v32 = arg_value(argv[i], "http")) options->http = *v32;
      else if (auto v33 = arg_value(argv[i], "http-port-file"))
        options->http_port_file = *v33;
      else if (auto v34 = arg_value(argv[i], "recorder-events"))
        options->recorder_events = std::stoul(*v34);
      else if (auto v35 = arg_value(argv[i], "recorder-dump"))
        options->recorder_dump = *v35;
      else if (auto v36 = arg_value(argv[i], "watchdog-p99-ms"))
        options->watchdog_p99_ms = std::stod(*v36);
      else if (auto v37 = arg_value(argv[i], "watchdog-error-rate"))
        options->watchdog_error_rate = std::stod(*v37);
      else if (auto v38 = arg_value(argv[i], "watchdog-queue"))
        options->watchdog_queue = std::stoul(*v38);
      else if (auto v39 = arg_value(argv[i], "watchdog-interval"))
        options->watchdog_interval = std::stod(*v39);
      else if (auto v40 = arg_value(argv[i], "watchdog-dump"))
        options->watchdog_dump = *v40;
      else if (std::strcmp(argv[i], "--recorder") == 0)
        options->recorder = true;
      else if (std::strcmp(argv[i], "--reject") == 0)
        options->reject = true;
      else if (std::strcmp(argv[i], "--json") == 0)
        options->json_report = true;
      else if (std::strcmp(argv[i], "--no-cache") == 0)
        options->cache = false;
      else if (std::strcmp(argv[i], "--attempts") == 0)
        options->attempts = true;
      else if (std::strcmp(argv[i], "--list-solvers") == 0)
        options->list_solvers = true;
      else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0)
        options->help = true;
      else return false;
    }
  } catch (const std::exception&) {  // non-numeric value for a numeric flag
    return false;
  }
  return true;
}

engine::BatchOptions batch_options(const Options& options) {
  engine::BatchOptions batch;
  batch.threads = options.threads;
  batch.cache = options.cache;
  batch.cache_capacity = options.cache_capacity;
  batch.portfolio.budget_ms = options.budget_ms;
  batch.portfolio.only = options.solvers;
  return batch;
}

// Validates --solvers names against the registry; returns false (after
// printing the offender) when one is unknown.
bool check_solvers(const Options& options) {
  for (const std::string& name : options.solvers)
    if (engine::SolverRegistry::default_registry().find(name) == nullptr) {
      std::fprintf(stderr, "unknown solver '%s' (see list-solvers)\n",
                   name.c_str());
      return false;
    }
  return true;
}

int run_generate(const Options& options) {
  if (options.specs.empty()) {
    std::fprintf(stderr, "generate: needs at least one spec string\n");
    return usage();
  }
  std::vector<CorpusEntry> corpus;
  for (const std::string& text : options.specs) {
    std::string error;
    const auto spec = parse_spec(text, &error);
    if (!spec) {
      std::fprintf(stderr, "bad spec '%s': %s\n", text.c_str(),
                   error.c_str());
      return 2;
    }
    if (options.count > 0) {
      auto seeded = seed_corpus(*spec, options.count);
      corpus.insert(corpus.end(), std::make_move_iterator(seeded.begin()),
                    std::make_move_iterator(seeded.end()));
    } else {
      corpus.push_back({*spec, generate(*spec)});
    }
  }
  if (options.out.empty() || options.out == "-") {
    write_corpus(std::cout, corpus);
    std::cout.flush();
    return std::cout ? 0 : 1;
  }
  std::ofstream out(options.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", options.out.c_str());
    return 1;
  }
  write_corpus(out, corpus);
  // close() before checking: buffered writes may only fail on flush
  // (e.g. a full disk), and the destructor would swallow that.
  out.close();
  if (!out) {
    std::fprintf(stderr, "write error on %s\n", options.out.c_str());
    return 1;
  }
  return 0;
}

// A sweep report row groups one grid cell (spec minus seed).
std::string cell_label(const GeneratorSpec& spec) {
  std::string label = std::string(family_name(spec.family)) +
                      ":n=" + std::to_string(spec.jobs) +
                      ",m=" + std::to_string(spec.machines);
  if (spec.max_size != 1000)
    label += ",max=" + std::to_string(spec.max_size);
  if (spec.class_size.set()) label += ",classes=" + spec.class_size.str();
  if (spec.job_size.set()) label += ",sizes=" + spec.job_size.str();
  return label;
}

int run_sweep(const Options& options) {
  if (options.specs.size() != 1) {
    std::fprintf(stderr, "sweep: needs exactly one sweep spec string\n");
    return usage();
  }
  if (!check_solvers(options)) return 2;
  std::string error;
  const auto sweep = parse_sweep(options.specs[0], &error);
  if (!sweep) {
    std::fprintf(stderr, "bad sweep '%s': %s\n", options.specs[0].c_str(),
                 error.c_str());
    return 2;
  }
  std::vector<std::string> groups;
  std::vector<Instance> instances;
  groups.reserve(sweep->size());
  instances.reserve(sweep->size());
  std::vector<CorpusEntry> corpus = make_corpus(*sweep);
  for (CorpusEntry& entry : corpus) {
    groups.push_back(cell_label(entry.spec));
    instances.push_back(std::move(entry.instance));
  }
  const engine::CorpusReport report = engine::evaluate_corpus(
      groups, instances, engine::SolverRegistry::default_registry(),
      batch_options(options));
  std::printf("%s", report.table().c_str());
  std::fprintf(stderr, "%s\n", report.timing().c_str());
  if (!report.all_valid) {
    std::fprintf(stderr, "some instances have no valid schedule\n");
    return 1;
  }
  return 0;
}

int run_solve(const Options& options) {
  if (!check_solvers(options)) return 2;

  std::vector<Instance> batch;
  std::vector<std::string> labels;
  // Every file input is a corpus: one or more concatenated instances.
  for (const std::string& file : options.files) {
    std::string error;
    std::optional<std::vector<Instance>> corpus;
    std::ifstream stream;
    if (file == "-") {
      corpus = read_corpus(std::cin, &error);
    } else {
      stream.open(file);
      if (!stream) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 1;
      }
      corpus = read_corpus(stream, &error);
    }
    const std::string label = file == "-" ? "stdin" : file;
    if (!corpus) {
      std::fprintf(stderr, "%s: parse error: %s\n", label.c_str(),
                   error.c_str());
      return 1;
    }
    if (corpus->empty()) {
      std::fprintf(stderr, "%s: parse error: empty input: missing 'msrs 1'"
                   " header\n", label.c_str());
      return 1;
    }
    for (std::size_t i = 0; i < corpus->size(); ++i) {
      batch.push_back(std::move((*corpus)[i]));
      labels.push_back(corpus->size() == 1 ? label
                                           : label + "[" + std::to_string(i) +
                                                 "]");
    }
  }
  // Positional spec strings: one instance each.
  for (const std::string& text : options.specs) {
    std::string error;
    const auto spec = parse_spec(text, &error);
    if (!spec) {
      std::fprintf(stderr, "bad spec '%s': %s\n", text.c_str(),
                   error.c_str());
      return 2;
    }
    batch.push_back(generate(*spec));
    labels.push_back(spec->str());
  }
  if (!options.family.empty()) {
    std::vector<Family> families;
    if (options.family == "all")
      families.assign(std::begin(kAllFamilies), std::end(kAllFamilies));
    else {
      const auto family = parse_family(options.family);
      if (!family) return usage();
      families.push_back(*family);
    }
    for (int r = 0; r < options.repeat; ++r)
      for (int seed = 1; seed <= options.seeds; ++seed)
        for (const Family family : families) {
          batch.push_back(generate(family, options.jobs, options.machines,
                                   static_cast<std::uint64_t>(seed)));
          labels.push_back(std::string(family_name(family)) + "/s" +
                           std::to_string(seed));
        }
  }
  if (batch.empty()) return usage();

  engine::BatchEngine batch_engine(engine::SolverRegistry::default_registry(),
                                   batch_options(options));

  const auto start = std::chrono::steady_clock::now();
  const std::vector<engine::PortfolioResult> results =
      batch_engine.solve(batch);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  Table table({"instance", "n", "m", "|C|", "solver", "makespan", "t_bound",
               "ratio", "valid", "source"});
  bool all_valid = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const engine::PortfolioResult& result = results[i];
    table.add_row(
        {labels[i], Table::num(static_cast<std::int64_t>(batch[i].num_jobs())),
         Table::num(static_cast<std::int64_t>(batch[i].machines())),
         Table::num(static_cast<std::int64_t>(batch[i].num_classes())),
         result.solver, Table::num(result.makespan, 2),
         Table::num(static_cast<std::int64_t>(result.t_bound)),
         Table::num(result.ratio_vs_bound, 4), result.valid ? "yes" : "NO",
         result.from_cache ? "cache" : "solved"});
    all_valid = all_valid && result.valid;
    if (options.attempts) {
      for (const engine::Attempt& attempt : result.attempts)
        std::fprintf(stderr, "    %-16s ok=%d valid=%d makespan=%.2f %s\n",
                     attempt.solver.c_str(), attempt.ok, attempt.valid,
                     attempt.makespan, attempt.error.c_str());
    }
  }
  std::printf("%s\n", table.str().c_str());

  const engine::BatchStats& stats = batch_engine.stats();
  std::printf(
      "batch: %zu instances, %zu solved, %zu cache hits, %zu cache entries\n"
      "time:  %.1f ms (%.0f instances/sec)\n",
      stats.instances, stats.solved, stats.cache_hits, stats.entries,
      elapsed_ms, elapsed_ms > 0 ? 1000.0 * static_cast<double>(batch.size()) /
                                       elapsed_ms
                                 : 0.0);
  if (!all_valid) {
    std::fprintf(stderr, "some instances have no valid schedule\n");
    return 1;
  }
  return 0;
}

int run_version() {
  Table table({"format", "version", "where"});
  table.add_row({"instance", Table::num(static_cast<std::int64_t>(
                                 kInstanceFormatVersion)),
                 "instance_io text ('msrs 1' header)"});
  table.add_row({"bench", Table::num(static_cast<std::int64_t>(
                              perf::kBenchSchemaVersion)),
                 "BENCH_*.json schema_version"});
  table.add_row({"wire", Table::num(static_cast<std::int64_t>(
                             serve::kWireVersion)),
                 "serve/drive JSONL protocol"});
  std::printf("%s", table.str().c_str());
  return 0;
}

// Writes the end-of-run Prometheus-style metrics page of --metrics-dump
// ("-" = stderr, otherwise a file path).
void dump_metrics(serve::Service& service, const std::string& target) {
  const std::string page = service.metrics_snapshot().prometheus();
  if (target == "-") {
    std::fprintf(stderr, "%s", page.c_str());
    return;
  }
  std::ofstream file(target);
  if (!file) {
    std::fprintf(stderr, "serve: cannot write metrics dump %s\n",
                 target.c_str());
    return;
  }
  file << page;
}

// Writes the bound HTTP HOST:PORT of --http-port-file (port 0 serving).
std::function<void(std::uint16_t)> http_port_writer(const Options& options) {
  if (options.http_port_file.empty()) return {};
  return [&options](std::uint16_t port) {
    std::string host = options.http;
    const std::size_t colon = host.rfind(':');
    if (colon != std::string::npos) host.resize(colon);
    std::ofstream file(options.http_port_file);
    file << host << ':' << port << '\n';
  };
}

int run_serve(const Options& options) {
  if (!check_solvers(options)) return 2;
  serve::ServiceOptions service_options;
  service_options.shards = options.shards;
  service_options.queue_depth = options.queue_depth;
  service_options.cache_capacity = options.serve_cache;
  service_options.reject_when_full = options.reject;
  service_options.budget_ms = options.budget_ms;
  service_options.solvers = options.solvers;
  service_options.trace.path = options.trace;
  service_options.trace.sample_every = options.trace_sample;
  service_options.trace.slow_ms = options.slow_ms;
  service_options.recorder_events = options.recorder_events;
  service_options.watchdog.p99_threshold_us = options.watchdog_p99_ms * 1000.0;
  service_options.watchdog.error_rate_threshold = options.watchdog_error_rate;
  service_options.watchdog.queue_threshold =
      static_cast<std::int64_t>(options.watchdog_queue);
  service_options.watchdog_dump = options.watchdog_dump;
  serve::Service service(service_options);
  serve::install_stop_signals();
  // --recorder-dump: pre-open the file so the fatal-signal handler only has
  // to write(2) — no allocation, no open() in the handler.
  int fatal_fd = -1;
  if (!options.recorder_dump.empty() && service.recorder() != nullptr) {
    fatal_fd = ::open(options.recorder_dump.c_str(),
                      O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fatal_fd < 0) {
      std::fprintf(stderr, "serve: cannot open recorder dump %s\n",
                   options.recorder_dump.c_str());
      return 1;
    }
    obs::install_fatal_dump(service.recorder(), fatal_fd);
  }
  const int monitor_interval_ms =
      options.watchdog_interval > 0.0
          ? static_cast<int>(options.watchdog_interval * 1000.0)
          : 0;
  if (options.socket.empty() && options.tcp.empty()) {
    // stdio serve with --http: the exposition listener runs its own
    // event loop on a helper thread while the main thread owns stdio.
    std::thread http_thread;
    if (!options.http.empty()) {
      http_thread = std::thread([&] {
        serve::TcpOptions http_options;
        http_options.http = options.http;
        http_options.on_http_listen = http_port_writer(options);
        http_options.monitor_interval_ms = monitor_interval_ms;
        std::string http_error;
        if (serve::serve_tcp(service, "", &http_error, http_options) != 0)
          std::fprintf(stderr, "serve: http: %s\n", http_error.c_str());
      });
    }
    const int code = serve::serve_stdio(service, std::cin, std::cout);
    if (http_thread.joinable()) {
      serve::request_stop();
      http_thread.join();
    }
    if (!options.metrics_dump.empty())
      dump_metrics(service, options.metrics_dump);
    return code;
  }
  std::string error;
  int code = 0;
  if (!options.tcp.empty()) {
    serve::TcpOptions tcp_options;
    tcp_options.max_connections = options.max_conns;
    tcp_options.idle_timeout_ms = options.idle_timeout_ms;
    tcp_options.http = options.http;
    tcp_options.on_http_listen = http_port_writer(options);
    tcp_options.monitor_interval_ms = monitor_interval_ms;
    tcp_options.on_listen = [&options](std::uint16_t port) {
      std::string host = options.tcp;
      const std::size_t colon = host.rfind(':');
      if (colon != std::string::npos) host.resize(colon);
      std::fprintf(stderr, "serving on tcp %s:%u (%u shards)\n", host.c_str(),
                   static_cast<unsigned>(port), options.shards);
      if (options.port_file.empty()) return;
      // The bound HOST:PORT, for scripts that serve on an ephemeral port.
      std::ofstream file(options.port_file);
      file << host << ':' << port << '\n';
    };
    code = serve::serve_tcp(service, options.tcp, &error, tcp_options);
  } else {
    std::fprintf(stderr, "serving on %s (%u shards, depth %zu, cache %zu)\n",
                 options.socket.c_str(), service.shards(),
                 options.queue_depth, options.serve_cache);
    std::thread http_thread;
    if (!options.http.empty()) {
      http_thread = std::thread([&] {
        serve::TcpOptions http_options;
        http_options.http = options.http;
        http_options.on_http_listen = http_port_writer(options);
        http_options.monitor_interval_ms = monitor_interval_ms;
        std::string http_error;
        if (serve::serve_tcp(service, "", &http_error, http_options) != 0)
          std::fprintf(stderr, "serve: http: %s\n", http_error.c_str());
      });
    }
    serve::SocketOptions socket_options;
    socket_options.max_connections = options.max_conns;
    code = serve::serve_socket(service, options.socket, &error,
                               socket_options);
    if (http_thread.joinable()) {
      serve::request_stop();
      http_thread.join();
    }
  }
  if (code != 0) std::fprintf(stderr, "serve: %s\n", error.c_str());
  if (!options.metrics_dump.empty())
    dump_metrics(service, options.metrics_dump);
  return code;
}

// One-shot `stats` op against a running socket service; prints the
// pretty-printed stats document (queue depths, error/solver breakdowns,
// latency decomposition).
int run_stats(const Options& options) {
  if (options.socket.empty() && options.tcp.empty()) {
    std::fprintf(stderr, "stats: needs --socket=PATH or --tcp=HOST:PORT\n");
    return 2;
  }
  std::string error;
  const std::unique_ptr<serve::LineClient> client =
      serve::connect_line_client(options.socket, options.tcp, &error);
  if (!client) {
    std::fprintf(stderr, "stats: %s\n", error.c_str());
    return 1;
  }
  std::string line;
  const char* request = options.recorder
                            ? "{\"op\":\"dump_recorder\",\"canonical\":true}"
                            : "{\"op\":\"stats\"}";
  if (!client->send_line(request) || !client->recv_line(&line)) {
    std::fprintf(stderr, "stats: service closed the connection\n");
    return 1;
  }
  if (const std::optional<Json> document = json_parse(line))
    std::printf("%s\n", document->str(options.json_report ? 0 : 2).c_str());
  else
    std::printf("%s\n", line.c_str());
  return 0;
}

int run_drive(const Options& options) {
  serve::DriveOptions drive_options;
  drive_options.socket = options.socket;
  drive_options.tcp = options.tcp;
  drive_options.specs = options.specs;
  drive_options.seeds_per_spec = options.count;
  drive_options.requests = options.requests;
  drive_options.duration_s = options.duration;
  drive_options.qps = options.qps;
  drive_options.conns = options.conns;
  drive_options.payload_spec = options.payload_spec;
  drive_options.stats_interval_s = options.stats_interval;
  drive_options.emit = options.emit;
  drive_options.churn = options.churn;
  drive_options.churn_out = options.churn_out;
  std::string error;
  const auto report = serve::drive(drive_options, &error);
  if (!report) {
    std::fprintf(stderr, "drive: %s\n", error.c_str());
    return error.find("bad_spec") != std::string::npos ||
                   error.find("bad_churn") != std::string::npos ||
                   error.find("needs") != std::string::npos
               ? 2
               : 1;
  }
  if (!drive_options.emit.empty()) {
    std::fprintf(stderr, "emitted %zu request lines to %s\n", report->sent,
                 drive_options.emit.c_str());
    return 0;
  }
  if (options.json_report)
    std::printf("%s\n", report->json().str(2).c_str());
  else
    std::printf("%s", report->str().c_str());
  return report->errors == 0 && report->transport_errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Subcommand dispatch; a leading flag (or nothing) means legacy `solve`.
  std::string command = "solve";
  int flags_begin = 1;
  if (argc > 1 && argv[1][0] != '-') {
    command = argv[1];
    flags_begin = 2;
  }

  // `bench` owns its whole flag grammar (perf/cli.hpp): forward verbatim.
  if (command == "bench")
    return msrs::perf::bench_main(argc - 1, argv + 1, /*default_filter=*/"");

  Options options;
  if (!parse_flags(argc, argv, flags_begin, &options)) return usage();
  if (options.help || command == "help") {
    print_usage(stdout);
    return 0;
  }
  if (options.list_solvers || command == "list-solvers")
    return list_solvers();
  if (command == "generate") return run_generate(options);
  if (command == "sweep") return run_sweep(options);
  if (command == "serve") return run_serve(options);
  if (command == "drive") return run_drive(options);
  if (command == "stats") return run_stats(options);
  if (command == "version") return run_version();
  if (command == "solve") return run_solve(options);
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  return usage();
}
