// Fixture: stdout in library code must trip `stdout-library`.
#include <cstdio>
#include <iostream>

void report(int value) {
  std::cout << value << '\n';
  printf("%d\n", value);
}
