// Fixture: the justified/clean versions of every rule's pattern — the
// linter must stay silent on all of them.
#include <atomic>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

std::atomic<int> counter{0};

void bump() {
  // relaxed: a standalone tally; nothing is published through it.
  counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t tally() {
  std::unordered_map<int, std::string> table;
  std::size_t total = 0;
  // order-insensitive: a commutative sum; iteration order cannot show.
  for (const auto& [key, value] : table) total += value.size();
  return total;
}

void diagnostics(int value) {
  // stderr is fine in library code; only stdout is reserved.
  std::fprintf(stderr, "value=%d\n", value);
}

std::size_t lookup(const std::unordered_map<int, std::string>& table) {
  // find()/at() on unordered containers is always fine — only
  // iteration order is the hazard.
  const auto it = table.find(1);
  return it == table.end() ? 0 : it->second.size();
}

int sum(const std::vector<int>& values) {
  int total = 0;
  for (const int v : values) total += v;  // ordered container: fine
  return total;
}
