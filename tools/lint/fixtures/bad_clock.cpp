// Fixture: a direct clock call outside the allowlist must trip
// `naked-clock`.
#include <chrono>

long long stamp() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}
