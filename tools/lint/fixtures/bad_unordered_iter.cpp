// Fixture: range-for over an unordered container with no justification
// must trip `unordered-iteration`.
#include <string>
#include <unordered_map>

std::string render() {
  std::unordered_map<int, std::string> table;
  std::string out;
  for (const auto& [key, value] : table) out += value;
  return out;
}
