// Fixture: memory_order_relaxed without a justification comment must
// trip `relaxed-comment`.
#include <atomic>

std::atomic<int> counter{0};

void bump() { counter.fetch_add(1, std::memory_order_relaxed); }
