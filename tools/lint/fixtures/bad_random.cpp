// Fixture: unseeded randomness must trip `raw-random`.
#include <cstdlib>
#include <random>

int noise() {
  std::random_device device;
  return static_cast<int>(device()) + rand();
}
