#!/usr/bin/env python3
"""msrs_lint: the project-invariant linter (regex/AST-lite, no compiler).

Enforces the source-level rules the repo's contracts imply but no compiler
checks (docs/static_analysis.md has the full rationale):

  unordered-iteration  Range-for over a std::unordered_map/unordered_set
                       declared in the same file needs an
                       `// order-insensitive:` justification — hash-order
                       iteration feeding a response or dump would break
                       the byte-determinism contract.
  naked-clock          steady_clock::now()/system_clock outside the
                       allowlisted timing seams (trace, timeseries, perf
                       runner, transports, util/sync.hpp). Response bytes
                       must be a pure function of request bytes; clocks
                       belong in telemetry and transport timing only.
  raw-random           rand()/std::random_device outside util/rng.hpp.
                       All randomness flows through seeded util::Rng so
                       every run is reproducible.
  relaxed-comment      Every `memory_order_relaxed` carries a
                       `// relaxed:` justification on the same line or
                       within the preceding comment block.
  stdout-library       std::cout/printf in library code. Wire bytes go
                       through OrderedWriter; stderr (fprintf) is fine
                       for diagnostics; only the CLI surfaces
                       (serve/driver.cpp, perf/cli.cpp) own stdout.

Usage:
  msrs_lint.py [PATH...]          lint files/directories (default: src/)
  msrs_lint.py --self-test [PATH...]
                                  run the fixture self-test first, then
                                  lint PATHs when given

Exit status: 0 clean, 1 findings or fixture failure, 2 usage error.
"""

import os
import re
import sys

# Path suffixes (POSIX-style) allowed to call clocks directly: telemetry
# stamps, the perf runner's measurements, transport deadlines/idle timers,
# and the one sanctioned deadline-arithmetic seam. engine/corpus.cpp
# prints a generation-timing report (stderr, not response bytes).
CLOCK_ALLOWLIST = (
    "util/sync.hpp",
    "obs/trace.hpp",
    "obs/trace.cpp",
    "obs/timeseries.hpp",
    "obs/timeseries.cpp",
    "obs/flight_recorder.hpp",
    "obs/flight_recorder.cpp",
    "perf/runner.hpp",
    "perf/runner.cpp",
    "serve/tcp.cpp",
    "serve/socket.cpp",
    "serve/driver.cpp",
    "serve/transport.cpp",
    "serve/event_loop.hpp",
    "serve/event_loop.cpp",
    "engine/corpus.cpp",
)

RANDOM_ALLOWLIST = (
    "util/rng.hpp",
)

STDOUT_ALLOWLIST = (
    "serve/driver.cpp",
    "perf/cli.cpp",
)

# How far above the flagged line a justification comment may sit.
JUSTIFY_WINDOW = 4

RE_LINE_COMMENT = re.compile(r"//.*$")
RE_CLOCK = re.compile(r"steady_clock\s*::\s*now\s*\(|system_clock")
RE_RANDOM = re.compile(r"\brand\s*\(\s*\)|\brandom_device\b")
RE_RELAXED = re.compile(r"\bmemory_order_relaxed\b")
RE_STDOUT = re.compile(r"std\s*::\s*cout|(?<![\w:])printf\s*\(")
RE_UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>\s*(\w+)\s*"
    r"(?:MSRS_GUARDED_BY\s*\([^)]*\)\s*)?(?:[;={]|$)")
RE_RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*([^)]+)\)")


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line_no, self.rule,
                                   self.message)


def strip_comment(line):
    """The code part of a line (line comments removed, naively)."""
    return RE_LINE_COMMENT.sub("", line)


def has_justification(lines, index, marker):
    """True when `marker` appears in a comment on lines[index] or within
    the JUSTIFY_WINDOW comment lines above it."""
    if marker in lines[index]:
        return True
    for back in range(1, JUSTIFY_WINDOW + 1):
        j = index - back
        if j < 0:
            break
        if marker in lines[j]:
            return True
    return False


def allowlisted(path, suffixes):
    posix = path.replace(os.sep, "/")
    return any(posix.endswith(suffix) for suffix in suffixes)


def block_comment_mask(lines):
    """Per-line flag: line is entirely inside a /* */ block comment."""
    mask = [False] * len(lines)
    inside = False
    for i, line in enumerate(lines):
        if inside:
            mask[i] = True
            if "*/" in line:
                inside = False
        else:
            stripped = strip_comment(line)
            if "/*" in stripped and "*/" not in stripped:
                inside = True
    return mask


def lint_file(path):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        return [Finding(path, 0, "io", str(err))]

    findings = []
    in_block = block_comment_mask(lines)

    # Pass 1: names of unordered containers declared in this file.
    unordered_names = set()
    for i, line in enumerate(lines):
        if in_block[i]:
            continue
        code = strip_comment(line)
        for match in RE_UNORDERED_DECL.finditer(code):
            unordered_names.add(match.group(1))

    check_clock = not allowlisted(path, CLOCK_ALLOWLIST)
    check_random = not allowlisted(path, RANDOM_ALLOWLIST)
    check_stdout = not allowlisted(path, STDOUT_ALLOWLIST)

    for i, line in enumerate(lines):
        if in_block[i]:
            continue
        code = strip_comment(line)
        n = i + 1

        if check_clock and RE_CLOCK.search(code):
            findings.append(Finding(
                path, n, "naked-clock",
                "direct clock use outside the timing allowlist; route "
                "through obs::TraceClock stamps or util::deadline_after()"))

        if check_random and RE_RANDOM.search(code):
            findings.append(Finding(
                path, n, "raw-random",
                "unseeded randomness; use the seeded util::Rng"))

        if RE_RELAXED.search(code) and not has_justification(
                lines, i, "relaxed:"):
            findings.append(Finding(
                path, n, "relaxed-comment",
                "memory_order_relaxed without a `// relaxed:` "
                "justification comment"))

        if check_stdout and RE_STDOUT.search(code):
            findings.append(Finding(
                path, n, "stdout-library",
                "stdout in library code; wire bytes go through "
                "OrderedWriter, diagnostics through stderr"))

        if unordered_names:
            match = RE_RANGE_FOR.search(code)
            if match:
                container = match.group(1).strip()
                # The container expression's leading identifier
                # (handles `name`, `name.foo()`, `*name`). A subscript
                # (`map[key]`) iterates the mapped value, not the map —
                # that's ordinary ordered iteration, skip it.
                head = re.match(r"[*&\s]*(\w+)", container)
                if head and head.group(1) in unordered_names and \
                        "[" not in container and \
                        not has_justification(lines, i,
                                              "order-insensitive:"):
                    findings.append(Finding(
                        path, n, "unordered-iteration",
                        "range-for over unordered container '%s' without "
                        "an `// order-insensitive:` justification (hash "
                        "order must not reach rendered bytes)"
                        % head.group(1)))
    return findings


def collect_sources(paths):
    sources = []
    for path in paths:
        if os.path.isfile(path):
            sources.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs.sort()
            for name in sorted(files):
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    sources.append(os.path.join(root, name))
    return sources


def lint(paths):
    findings = []
    for path in collect_sources(paths):
        findings.extend(lint_file(path))
    return findings


# --- fixture self-test -------------------------------------------------------

# Every rule must trip on its positive fixture and stay silent on the
# negative one; see tools/lint/fixtures/.
EXPECTED_FIXTURES = {
    "bad_unordered_iter.cpp": {"unordered-iteration"},
    "bad_clock.cpp": {"naked-clock"},
    "bad_random.cpp": {"raw-random"},
    "bad_relaxed.cpp": {"relaxed-comment"},
    "bad_stdout.cpp": {"stdout-library"},
    "good_clean.cpp": set(),
}


def self_test():
    fixtures_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "fixtures")
    failures = []
    for name, expected_rules in sorted(EXPECTED_FIXTURES.items()):
        path = os.path.join(fixtures_dir, name)
        if not os.path.isfile(path):
            failures.append("missing fixture: %s" % path)
            continue
        rules = {finding.rule for finding in lint_file(path)}
        if rules != expected_rules:
            failures.append(
                "%s: expected rules %s, got %s" %
                (name, sorted(expected_rules) or "none",
                 sorted(rules) or "none"))
    for failure in failures:
        print("self-test FAIL: %s" % failure, file=sys.stderr)
    if not failures:
        print("self-test: %d fixtures OK" % len(EXPECTED_FIXTURES))
    return not failures


def main(argv):
    args = argv[1:]
    run_self_test = False
    if "--self-test" in args:
        run_self_test = True
        args = [a for a in args if a != "--self-test"]
    for arg in args:
        if arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2

    ok = True
    if run_self_test:
        ok = self_test()

    paths = args
    if not paths and not run_self_test:
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))), "src")
        paths = [repo_src]
    if paths:
        findings = lint(paths)
        for finding in findings:
            print(finding)
        if findings:
            print("%d finding(s)" % len(findings), file=sys.stderr)
            ok = False
        else:
            print("lint: clean (%d files)" % len(collect_sources(paths)))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
