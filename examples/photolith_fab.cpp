// Photolithography bay scheduling — the semiconductor application behind
// the total-completion-time variant (Janssen et al. [23, 24], discussed in
// the paper's related-work section).
//
// Wafer lots (jobs) are exposed on steppers (machines) and need their
// product's reticle (one shared resource per reticle); a reticle can be
// mounted in one stepper at a time. Fabs care both about the makespan of a
// shift and the average lot completion time.
//
//   $ ./examples/photolith_fab [steppers] [lots] [seed]
#include <cstdio>
#include <cstdlib>

#include "algo/three_halves.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "ext/completion_time.hpp"
#include "sim/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace msrs;
  const int steppers = argc > 1 ? std::atoi(argv[1]) : 8;
  const int lots = argc > 2 ? std::atoi(argv[2]) : 150;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  const Instance bay = generate(Family::kPhotolith, lots, steppers, seed);
  std::printf("photolithography bay: %s (reticles=%d)\n\n",
              bay.summary().c_str(), bay.num_classes());

  // Makespan objective: Algorithm_3/2.
  const AlgoResult makespan_plan = three_halves(bay);
  std::printf("makespan objective   : Cmax = %.1f (>= %lld, ratio %.4f, %s)\n",
              makespan_plan.schedule.makespan(bay),
              static_cast<long long>(makespan_plan.lower_bound),
              makespan_plan.ratio_vs_bound(bay),
              is_valid(bay, makespan_plan.schedule) ? "valid" : "INVALID");

  // Sum-of-completion-times objective: SPT variant.
  const AlgoResult spt_plan = spt_completion(bay);
  const double sum_completion = total_completion_time(bay, spt_plan.schedule);
  const Time bound = completion_time_lower_bound(bay);
  std::printf("completion objective : sum C_j = %.0f (>= %lld, ratio %.4f, %s)\n",
              sum_completion, static_cast<long long>(bound),
              sum_completion / static_cast<double>(bound),
              is_valid(bay, spt_plan.schedule) ? "valid" : "INVALID");

  // Trade-off: what does each plan cost under the other objective?
  Table table({"plan", "Cmax", "sum C_j"});
  table.add_row({"Algorithm_3/2 (Cmax)",
                 Table::num(makespan_plan.schedule.makespan(bay), 1),
                 Table::num(total_completion_time(bay, makespan_plan.schedule), 0)});
  table.add_row({"SPT (sum C_j)",
                 Table::num(spt_plan.schedule.makespan(bay), 1),
                 Table::num(sum_completion, 0)});
  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\nThe two objectives pull in opposite directions: SPT finishes the\n"
      "many short lots first (low average completion), the makespan plan\n"
      "balances reticle serialization against the shift deadline.\n");
  return 0;
}
