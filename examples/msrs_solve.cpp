// msrs_solve — command-line solver for MSRS instances.
//
// Reads an instance in the text format of core/instance_io.hpp (or generates
// one of the built-in workload families), runs the requested algorithm,
// validates the schedule and prints the result.
//
//   $ ./examples/msrs_solve --algo=three_halves --file=instance.txt
//   $ ./examples/msrs_solve --algo=all --family=satellite --jobs=120 \
//         --machines=6 --seed=7 [--gantt]
//   $ ./examples/msrs_solve --algo=exact --family=uniform --jobs=9 --machines=3
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "algo/baselines.hpp"
#include "algo/exact.hpp"
#include "algo/five_thirds.hpp"
#include "algo/greedy.hpp"
#include "algo/three_halves.hpp"
#include "core/instance_io.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "ptas/eptas.hpp"
#include "sim/workloads.hpp"
#include "util/table.hpp"

namespace {

using namespace msrs;

struct Options {
  std::string algo = "three_halves";
  std::string file;
  std::string family = "uniform";
  int jobs = 100;
  int machines = 8;
  std::uint64_t seed = 1;
  bool gantt = false;
};

std::optional<std::string> arg_value(const char* arg, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0)
    return std::string(arg + prefix.size());
  return std::nullopt;
}

std::optional<Family> family_by_name(const std::string& name) {
  for (const Family family : kAllFamilies)
    if (name == family_name(family)) return family;
  return std::nullopt;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: msrs_solve [--algo=five_thirds|three_halves|merge_lpt|hebrard|"
      "list|eptas|exact|all]\n"
      "                  [--file=INSTANCE.txt | --family=NAME --jobs=N "
      "--machines=M --seed=S]\n"
      "                  [--gantt]\n"
      "families:");
  for (const Family family : kAllFamilies)
    std::fprintf(stderr, " %s", family_name(family));
  std::fprintf(stderr, "\n");
  return 2;
}

void run_one(const Instance& instance, const std::string& name,
             const AlgoResult& result, Table& table) {
  const auto report = validate(instance, result.schedule);
  const Time T = lower_bounds(instance).combined;
  table.add_row({name, Table::num(result.schedule.makespan(instance), 3),
                 Table::num(static_cast<std::int64_t>(T)),
                 Table::num(result.schedule.makespan(instance) /
                                static_cast<double>(T),
                            4),
                 report.ok() ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (auto v = arg_value(argv[i], "algo")) options.algo = *v;
    else if (auto v2 = arg_value(argv[i], "file")) options.file = *v2;
    else if (auto v3 = arg_value(argv[i], "family")) options.family = *v3;
    else if (auto v4 = arg_value(argv[i], "jobs")) options.jobs = std::stoi(*v4);
    else if (auto v5 = arg_value(argv[i], "machines"))
      options.machines = std::stoi(*v5);
    else if (auto v6 = arg_value(argv[i], "seed"))
      options.seed = std::stoull(*v6);
    else if (std::strcmp(argv[i], "--gantt") == 0) options.gantt = true;
    else return usage();
  }

  Instance instance;
  if (!options.file.empty()) {
    std::ifstream in(options.file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", options.file.c_str());
      return 1;
    }
    std::string error;
    auto parsed = read_text(in, &error);
    if (!parsed) {
      std::fprintf(stderr, "parse error: %s\n", error.c_str());
      return 1;
    }
    instance = std::move(*parsed);
  } else {
    const auto family = family_by_name(options.family);
    if (!family) return usage();
    instance = generate(*family, options.jobs, options.machines, options.seed);
  }
  std::printf("instance: %s\n\n", instance.summary().c_str());

  Table table({"algorithm", "makespan", "lower bound", "ratio", "valid"});
  Schedule to_render;
  if (options.algo == "exact") {
    const ExactResult exact = exact_makespan(instance);
    std::printf("exact makespan: %lld (%s, %llu nodes)\n",
                static_cast<long long>(exact.makespan),
                exact.optimal ? "proven optimal" : "node limit hit",
                static_cast<unsigned long long>(exact.nodes));
    to_render = exact.schedule;
  } else if (options.algo == "eptas") {
    const EptasResult result = eptas(instance, {.e = 3, .m_constant = true});
    AlgoResult wrapped;
    wrapped.schedule = result.schedule;
    wrapped.lower_bound = result.guess;
    run_one(instance, result.used_fallback ? "eptas(->3/2)" : "eptas", wrapped,
            table);
    to_render = result.schedule;
    std::printf("%s", table.str().c_str());
  } else {
    const struct {
      const char* name;
      AlgoResult (*fn)(const Instance&);
    } algos[] = {
        {"five_thirds", five_thirds},
        {"three_halves", three_halves},
        {"merge_lpt", merge_lpt},
        {"hebrard", hebrard_insertion},
    };
    bool matched = false;
    for (const auto& algo : algos) {
      if (options.algo == "all" || options.algo == algo.name) {
        const AlgoResult result = algo.fn(instance);
        run_one(instance, algo.name, result, table);
        to_render = result.schedule;
        matched = true;
      }
    }
    if (options.algo == "all" || options.algo == "list") {
      const AlgoResult result =
          list_schedule(instance, ListPriority::kLptJob);
      run_one(instance, "list(LPT)", result, table);
      if (!matched) to_render = result.schedule;
      matched = true;
    }
    if (!matched) return usage();
    std::printf("%s", table.str().c_str());
  }

  if (options.gantt && to_render.num_jobs() > 0)
    std::printf("\n%s", to_render.render(instance).c_str());
  return 0;
}
