// msrs_solve — command-line solver for MSRS instances, driven by the engine
// layer: every algorithm is dispatched through the SolverRegistry, and
// --algo=portfolio races the regime-selected candidates and reports the
// winner with provenance.
//
//   $ ./examples/msrs_solve --algo=three_halves --file=instance.txt
//   $ ./examples/msrs_solve --algo=all --family=satellite --jobs=120 --machines=6
//   $ ./examples/msrs_solve --algo=portfolio --family=uniform --jobs=9 --gantt
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "core/instance_io.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "engine/engine.hpp"
#include "sim/workloads.hpp"
#include "util/table.hpp"

namespace {

using namespace msrs;

struct Options {
  std::string algo = "portfolio";
  std::string file;
  std::string family = "uniform";
  int jobs = 100;
  int machines = 8;
  std::uint64_t seed = 1;
  bool gantt = false;
};

std::optional<std::string> arg_value(const char* arg, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0)
    return std::string(arg + prefix.size());
  return std::nullopt;
}

std::optional<Family> family_by_name(const std::string& name) {
  for (const Family family : kAllFamilies)
    if (name == family_name(family)) return family;
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: msrs_solve [--algo=NAME|all|portfolio]\n"
               "                  [--file=INSTANCE.txt | --family=NAME"
               " --jobs=N --machines=M --seed=S]\n"
               "                  [--gantt]\nsolvers:");
  for (const std::string& name :
       engine::SolverRegistry::default_registry().names())
    std::fprintf(stderr, " %s", name.c_str());
  std::fprintf(stderr, "\nfamilies:");
  for (const Family family : kAllFamilies)
    std::fprintf(stderr, " %s", family_name(family));
  std::fprintf(stderr, "\n");
  return 2;
}

void add_row(const Instance& instance, const std::string& name,
             const engine::SolverResult& result, Table& table) {
  if (!result.ok) {
    table.add_row({name, "-", "-", "-", "failed: " + result.error});
    return;
  }
  const auto report = validate(instance, result.schedule);
  const Time T = lower_bounds(instance).combined;
  table.add_row({name, Table::num(result.schedule.makespan(instance), 3),
                 Table::num(static_cast<std::int64_t>(T)),
                 Table::num(result.schedule.makespan(instance) /
                                static_cast<double>(T),
                            4),
                 report.ok() ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    for (int i = 1; i < argc; ++i) {
      if (auto v = arg_value(argv[i], "algo")) options.algo = *v;
      else if (auto v2 = arg_value(argv[i], "file")) options.file = *v2;
      else if (auto v3 = arg_value(argv[i], "family")) options.family = *v3;
      else if (auto v4 = arg_value(argv[i], "jobs"))
        options.jobs = std::stoi(*v4);
      else if (auto v5 = arg_value(argv[i], "machines"))
        options.machines = std::stoi(*v5);
      else if (auto v6 = arg_value(argv[i], "seed"))
        options.seed = std::stoull(*v6);
      else if (std::strcmp(argv[i], "--gantt") == 0) options.gantt = true;
      else return usage();
    }
  } catch (const std::exception&) {  // non-numeric value for a numeric flag
    return usage();
  }

  Instance instance;
  if (!options.file.empty()) {
    std::ifstream in(options.file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", options.file.c_str());
      return 1;
    }
    std::string error;
    auto parsed = read_text(in, &error);
    if (!parsed) {
      std::fprintf(stderr, "parse error: %s\n", error.c_str());
      return 1;
    }
    instance = std::move(*parsed);
  } else {
    const auto family = family_by_name(options.family);
    if (!family) return usage();
    instance = generate(*family, options.jobs, options.machines, options.seed);
  }
  std::printf("instance: %s\n\n", instance.summary().c_str());

  const engine::SolverRegistry& registry =
      engine::SolverRegistry::default_registry();
  Schedule to_render;

  if (options.algo == "portfolio") {
    engine::PortfolioSolver portfolio(registry);
    const engine::PortfolioResult result = portfolio.solve(instance);
    Table table({"candidate", "makespan", "valid", "note"});
    for (const engine::Attempt& attempt : result.attempts)
      table.add_row({attempt.solver,
                     attempt.ok ? Table::num(attempt.makespan, 3) : "-",
                     attempt.valid ? "yes" : "NO", attempt.error});
    std::printf("%s\n", table.str().c_str());
    if (!result.valid) {
      std::fprintf(stderr, "portfolio found no valid schedule\n");
      return 1;
    }
    std::printf("winner: %s  makespan=%.3f  t_bound=%lld  ratio=%.4f\n",
                result.solver.c_str(), result.makespan,
                static_cast<long long>(result.t_bound),
                result.ratio_vs_bound);
    to_render = result.schedule;
  } else {
    Table table({"algorithm", "makespan", "lower bound", "ratio", "valid"});
    bool matched = false;
    bool failed = false;
    for (const auto& solver : registry.solvers()) {
      if (options.algo != "all" && options.algo != solver->name()) continue;
      matched = true;
      if (!solver->applicable(instance)) {
        // "all" only races the applicable rungs; an explicitly named solver
        // runs regardless (the applicability gate is portfolio policy, not a
        // hard precondition for most solvers).
        if (options.algo == "all") continue;
        std::fprintf(stderr,
                     "note: %s is outside its applicability regime; running"
                     " anyway\n",
                     std::string(solver->name()).c_str());
      }
      const engine::SolverResult result = solver->solve(instance);
      add_row(instance, std::string(solver->name()), result, table);
      if (result.ok) to_render = result.schedule;
      else failed = true;
    }
    if (!matched) return usage();
    std::printf("%s", table.str().c_str());
    if (failed) return 1;
  }

  if (options.gantt && to_render.num_jobs() > 0)
    std::printf("\n%s", to_render.render(instance).c_str());
  return 0;
}
