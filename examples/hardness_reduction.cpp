// The Theorem-23 inapproximability gadget, end to end:
// Monotone 3-SAT-(2,2) formula -> multi-resource MSRS instance ->
// makespan-4 schedule (iff satisfiable) -> decoded assignment.
//
//   $ ./examples/hardness_reduction [vars (multiple of 3)] [seed]
#include <cstdio>
#include <cstdlib>

#include "multires/mgreedy.hpp"
#include "multires/mschedule.hpp"
#include "multires/reduction.hpp"
#include "multires/sat.hpp"

int main(int argc, char** argv) {
  using namespace msrs;
  const int vars = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const Cnf formula = generate_monotone22(vars, seed);
  std::printf("formula (|X|=%d, |C|=%zu): %s\n", formula.num_vars,
              formula.clauses.size(), formula.str().c_str());

  const Reduction red = build_reduction(formula);
  std::printf(
      "gadget: %d jobs, %d resources, %d machines, max %d resources/job, "
      "total load %lld = 4 x machines (perfectly packed at makespan 4)\n",
      red.instance.num_jobs(), red.instance.num_resources(),
      red.instance.machines(), red.instance.max_resources_per_job(),
      static_cast<long long>(red.instance.total_load()));

  const auto model = dpll(formula);
  if (model.has_value()) {
    std::printf("\nDPLL: satisfiable -> constructing the makespan-4 schedule\n");
    const MSchedule schedule = schedule_from_assignment(red, *model);
    const auto report = validate_multi(red.instance, schedule, 4);
    std::printf("schedule valid: %s, makespan = %lld\n",
                report.ok() ? "yes" : report.first_problem.c_str(),
                static_cast<long long>(schedule.makespan(red.instance)));
    const auto decoded = assignment_from_schedule(red, schedule);
    std::printf("decoded assignment satisfies formula: %s\n",
                decoded && formula.satisfied_by(*decoded) ? "yes" : "no");
    std::printf("assignment:");
    for (int v = 1; v <= formula.num_vars; ++v)
      std::printf(" x%d=%d", v, static_cast<int>((*model)[static_cast<std::size_t>(v)]));
    std::printf("\n");
  } else {
    std::printf("\nDPLL: unsatisfiable -> optimum is 5 (Lemma 24)\n");
  }

  const MSchedule fallback = trivial_schedule(red);
  std::printf("\ntrivial schedule: makespan = %lld (always feasible)\n",
              static_cast<long long>(fallback.makespan(red.instance)));
  const MSchedule greedy_schedule = mgreedy(red.instance);
  std::printf("greedy list schedule: makespan = %lld (upper bound only)\n",
              static_cast<long long>(greedy_schedule.makespan(red.instance)));
  std::printf(
      "\nGap: deciding 4 vs 5 is NP-hard, so no (5/4 - eps)-approximation\n"
      "exists for multi-resource MSRS unless P = NP (Theorem 23).\n");
  return 0;
}
