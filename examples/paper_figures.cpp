// Regenerates the paper's figures as ASCII Gantt charts.
//
//  * Figure 1 (a-c): the three steps of Algorithm_5/3 on a five-big-job
//    instance.
//  * Figure 2/3/4 flavor: Algorithm_no_huge / Algorithm_3/2 on instances
//    exercising the respective steps.
//  * Figure 6a: the dummy structure of the Theorem-23 reduction schedule.
//
//   $ ./examples/paper_figures
#include <cstdio>

#include "algo/five_thirds.hpp"
#include "algo/no_huge.hpp"
#include "algo/three_halves.hpp"
#include "core/validate.hpp"
#include "multires/reduction.hpp"
#include "multires/sat.hpp"
#include "util/gantt.hpp"

namespace {

void show(const char* title, const msrs::Instance& instance,
          const msrs::AlgoResult& result) {
  std::printf("=== %s ===\n", title);
  std::printf("T = %lld, makespan = %.3f, ratio vs T = %.3f (%s)\n",
              static_cast<long long>(result.lower_bound),
              result.schedule.makespan(instance),
              result.ratio_vs_bound(instance),
              msrs::is_valid(instance, result.schedule) ? "valid" : "INVALID");
  std::printf("%s\n", result.schedule.render(instance).c_str());
}

}  // namespace

int main() {
  using namespace msrs;

  // --- Figure 1: Algorithm_5/3. Five classes with a job > T/2 (J1..J5),
  // two large classes, small filler (the paper's running shapes). ---
  {
    Instance instance(5, {
                             {60, 30},  // class with big job J1
                             {70},      // J2
                             {55, 20},  // J3
                             {90},      // J4
                             {80, 10},  // J5
                             {40, 35},  // large class (> 2/3 T)
                             {30, 30, 15},
                             {12, 10}, {9, 8}, {7, 6},
                         });
    show("Figure 1: Algorithm_5/3 (steps 1-3 combined)", instance,
         five_thirds(instance));
  }

  // --- Figure 2 flavor: Algorithm_no_huge step 2/3 shapes: mid-size class
  // pairs and heavy quadruples. ---
  {
    Instance instance(4, {
                             {40, 25},  // p(c) in (T/2, 3/4 T)
                             {38, 24},
                             {45, 45},  // heavy classes (>= 3/4 T)
                             {44, 43},
                             {42, 42},
                             {41, 41},
                             {20, 12}, {10, 8},
                         });
    show("Figures 2-3: Algorithm_no_huge (pairing and quadruples)", instance,
         no_huge(instance));
  }

  // --- Figure 4 flavor: Algorithm_3/2 with huge-job machines topped up. ---
  {
    Instance instance(4, {
                             {85},       // huge job -> own machine
                             {88},       // huge job -> own machine
                             {30, 28},   // mid class, split across the two
                             {29, 27},
                             {15, 14, 10},  // small filler classes
                             {12, 9, 6},
                         });
    show("Figure 4: Algorithm_3/2 (steps 2-4)", instance,
         three_halves(instance));
  }

  // --- Figure 6a: the reduction's dummy structure at makespan 4. ---
  {
    const Cnf formula = generate_monotone22(3, 5);
    std::printf("=== Figure 6a: Theorem-23 gadget, formula %s===\n",
                formula.str().c_str());
    const auto model = dpll(formula);
    const Reduction red = build_reduction(formula);
    const MSchedule schedule = model.has_value()
                                   ? schedule_from_assignment(red, *model)
                                   : trivial_schedule(red);
    std::printf("satisfiable=%s -> makespan %lld schedule\n",
                model.has_value() ? "yes" : "no",
                static_cast<long long>(schedule.makespan(red.instance)));
    std::vector<GanttBlock> blocks;
    for (JobId j = 0; j < red.instance.num_jobs(); ++j) {
      GanttBlock block;
      block.machine = schedule.machine[static_cast<std::size_t>(j)];
      block.start = static_cast<double>(schedule.start[static_cast<std::size_t>(j)]);
      block.end = static_cast<double>(schedule.end(red.instance, j));
      block.label = "j" + std::to_string(j);
      blocks.push_back(block);
    }
    GanttOptions options;
    options.width = 48;
    std::printf("%s\n", render_gantt(blocks, options).c_str());
  }
  return 0;
}
