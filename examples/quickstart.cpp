// Quickstart: build an MSRS instance, run the paper's algorithms, validate
// and render the schedules.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "algo/baselines.hpp"
#include "algo/exact.hpp"
#include "algo/five_thirds.hpp"
#include "algo/three_halves.hpp"
#include "core/instance.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"

int main() {
  using namespace msrs;

  // Three machines; five resources (classes). Jobs belonging to the same
  // class can never run in parallel — the resource is exclusive.
  Instance instance(/*machines=*/3, {
                        {7, 4},     // class 0: a download channel with 2 jobs
                        {9},        // class 1: one long exclusive job
                        {5, 5},     // class 2
                        {3, 2, 2},  // class 3
                        {6, 1},     // class 4
                    });
  std::printf("instance: %s\n", instance.summary().c_str());

  const LowerBounds bounds = lower_bounds(instance);
  std::printf("lower bounds: area=%lld class=%lld pair=%lld -> T=%lld\n\n",
              static_cast<long long>(bounds.area),
              static_cast<long long>(bounds.class_bound),
              static_cast<long long>(bounds.pair),
              static_cast<long long>(bounds.combined));

  for (const auto& result :
       {five_thirds(instance), three_halves(instance), merge_lpt(instance)}) {
    const auto report = validate(instance, result.schedule);
    std::printf("%-14s makespan=%.3f  ratio vs T=%.3f  (%s)\n",
                result.name.c_str(), result.schedule.makespan(instance),
                result.ratio_vs_bound(instance), report.summary().c_str());
  }

  const ExactResult exact = exact_makespan(instance);
  std::printf("%-14s makespan=%lld  (optimal=%s, %llu nodes)\n\n", "exact",
              static_cast<long long>(exact.makespan),
              exact.optimal ? "yes" : "no",
              static_cast<unsigned long long>(exact.nodes));

  const AlgoResult best = three_halves(instance);
  std::printf("Algorithm_3/2 schedule (time axis left to right):\n%s\n",
              best.schedule.render(instance).c_str());
  return 0;
}
