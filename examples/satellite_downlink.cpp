// Earth-observation satellite downlink planning — the application that
// motivated MSRS in Hebrard et al. [17].
//
// Ground stations expose a handful of reception antennas (machines); every
// image acquisition must be downlinked through the channel of the satellite
// that captured it (one shared resource per satellite channel), and a
// channel transmits to one antenna at a time. Makespan = time until the
// daily downlink plan completes.
//
//   $ ./examples/satellite_downlink [antennas] [transfers] [seed]
#include <cstdio>
#include <cstdlib>

#include "algo/baselines.hpp"
#include "algo/five_thirds.hpp"
#include "algo/three_halves.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "sim/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace msrs;
  const int antennas = argc > 1 ? std::atoi(argv[1]) : 6;
  const int transfers = argc > 2 ? std::atoi(argv[2]) : 120;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  const Instance plan = generate(Family::kSatellite, transfers, antennas, seed);
  std::printf("downlink plan: %s (channels=%d)\n\n", plan.summary().c_str(),
              plan.num_classes());
  const Time T = lower_bounds(plan).combined;

  Table table({"scheduler", "makespan", "vs lower bound", "valid"});
  for (const auto& result : {merge_lpt(plan), hebrard_insertion(plan),
                             five_thirds(plan), three_halves(plan)}) {
    table.add_row({result.name,
                   Table::num(result.schedule.makespan(plan), 1),
                   Table::num(result.schedule.makespan(plan) /
                                  static_cast<double>(T),
                              4),
                   is_valid(plan, result.schedule) ? "yes" : "NO"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("lower bound on any plan: %lld\n", static_cast<long long>(T));
  std::printf(
      "\nInterpretation: Algorithm_3/2 guarantees completion within 1.5x of\n"
      "the optimal plan, independent of the number of antennas; the classic\n"
      "2m/(m+1) baselines degrade as antennas are added (paper, Section 1).\n");
  return 0;
}
