// List scheduling for the multi-resource variant (upper bounds / baseline).
#pragma once

#include "multires/minstance.hpp"

namespace msrs {

// Jobs in LPT order, each at the earliest start where a machine and all of
// its resources are simultaneously free.
MSchedule mgreedy(const MultiInstance& instance);

}  // namespace msrs
