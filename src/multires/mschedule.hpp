// Validation for multi-resource schedules.
#pragma once

#include <string>

#include "multires/minstance.hpp"

namespace msrs {

struct MValidationReport {
  int machine_overlaps = 0;
  int resource_overlaps = 0;
  int unassigned = 0;
  int out_of_range = 0;
  std::string first_problem;

  bool ok() const {
    return machine_overlaps == 0 && resource_overlaps == 0 &&
           unassigned == 0 && out_of_range == 0;
  }
};

// Checks machine exclusivity and per-resource exclusivity; if
// `makespan_limit >= 0`, also that all jobs finish by then.
MValidationReport validate_multi(const MultiInstance& instance,
                                 const MSchedule& schedule,
                                 Time makespan_limit = -1);

}  // namespace msrs
