// MSRS with multiple resources per job (paper Section 5): each job needs a
// *set* of resources, all exclusively, for its whole processing time.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace msrs {

class MultiInstance {
 public:
  void set_machines(int machines) { machines_ = machines; }
  int machines() const noexcept { return machines_; }

  // Creates a fresh resource id.
  int add_resource() { return num_resources_++; }
  int num_resources() const noexcept { return num_resources_; }

  JobId add_job(Time size, std::vector<int> resources);
  int num_jobs() const noexcept { return static_cast<int>(size_.size()); }
  Time size(JobId j) const { return size_[static_cast<std::size_t>(j)]; }
  std::span<const int> resources(JobId j) const {
    return resources_[static_cast<std::size_t>(j)];
  }
  Time total_load() const noexcept { return total_; }

  // Max resources needed by any job (Theorem 23 keeps this <= 3).
  int max_resources_per_job() const;

  std::string check() const;  // empty if well-formed

 private:
  int machines_ = 1;
  int num_resources_ = 0;
  std::vector<Time> size_;
  std::vector<std::vector<int>> resources_;
  Time total_ = 0;
};

// Machine/start assignment for a MultiInstance (scale always 1: the
// reduction instances are unit-grid).
struct MSchedule {
  std::vector<int> machine;
  std::vector<Time> start;

  explicit MSchedule(int jobs = 0)
      : machine(static_cast<std::size_t>(jobs), kUnassigned),
        start(static_cast<std::size_t>(jobs), 0) {}
  bool assigned(JobId j) const {
    return machine[static_cast<std::size_t>(j)] != kUnassigned;
  }
  Time end(const MultiInstance& instance, JobId j) const {
    return start[static_cast<std::size_t>(j)] + instance.size(j);
  }
  Time makespan(const MultiInstance& instance) const;
};

}  // namespace msrs
