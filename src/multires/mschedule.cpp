#include "multires/mschedule.hpp"

#include <algorithm>
#include <vector>

namespace msrs {
namespace {

void check_group(const MultiInstance& instance, const MSchedule& schedule,
                 std::vector<JobId>& group, int* counter,
                 std::string* first_problem, const char* what) {
  std::sort(group.begin(), group.end(), [&](JobId a, JobId b) {
    return schedule.start[static_cast<std::size_t>(a)] <
           schedule.start[static_cast<std::size_t>(b)];
  });
  for (std::size_t i = 1; i < group.size(); ++i) {
    const JobId prev = group[i - 1];
    const JobId cur = group[i];
    if (schedule.end(instance, prev) >
        schedule.start[static_cast<std::size_t>(cur)]) {
      ++*counter;
      if (first_problem->empty())
        *first_problem = std::string(what) + " overlap: jobs " +
                         std::to_string(prev) + " and " + std::to_string(cur);
    }
  }
}

}  // namespace

MValidationReport validate_multi(const MultiInstance& instance,
                                 const MSchedule& schedule,
                                 Time makespan_limit) {
  MValidationReport report;
  std::vector<std::vector<JobId>> per_machine(
      static_cast<std::size_t>(instance.machines()));
  std::vector<std::vector<JobId>> per_resource(
      static_cast<std::size_t>(instance.num_resources()));

  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    if (!schedule.assigned(j)) {
      ++report.unassigned;
      continue;
    }
    const int machine = schedule.machine[static_cast<std::size_t>(j)];
    if (machine < 0 || machine >= instance.machines() ||
        schedule.start[static_cast<std::size_t>(j)] < 0 ||
        (makespan_limit >= 0 &&
         schedule.end(instance, j) > makespan_limit)) {
      ++report.out_of_range;
      if (report.first_problem.empty())
        report.first_problem = "job " + std::to_string(j) + " out of range";
      continue;
    }
    per_machine[static_cast<std::size_t>(machine)].push_back(j);
    for (int r : instance.resources(j))
      per_resource[static_cast<std::size_t>(r)].push_back(j);
  }

  for (auto& group : per_machine)
    check_group(instance, schedule, group, &report.machine_overlaps,
                &report.first_problem, "machine");
  for (auto& group : per_resource)
    check_group(instance, schedule, group, &report.resource_overlaps,
                &report.first_problem, "resource");
  return report;
}

}  // namespace msrs
