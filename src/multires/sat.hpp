// CNF satisfiability substrate for the Theorem-23 reduction.
//
// Monotone 3-SAT-(2,2) [Darmann & Döcker]: every clause has exactly three
// literals and is either all-positive or all-negative; every literal occurs
// in exactly two clauses (so every variable occurs in exactly four). The
// paper's inapproximability reduction starts from this NP-hard restriction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace msrs {

// Literals are +v / -v for variable ids v in [1, num_vars].
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;

  bool satisfied_by(const std::vector<bool>& assignment) const;
  std::string str() const;
};

// Complete DPLL solver (unit propagation + pure literals + branching).
// Returns an assignment if satisfiable, std::nullopt otherwise.
std::optional<std::vector<bool>> dpll(const Cnf& formula);

// Checks the Monotone-(2,2) syntactic restrictions; empty string if valid.
std::string check_monotone22(const Cnf& formula);

// Generates a random Monotone 3-SAT-(2,2) instance with `vars` variables
// (must be divisible by 3: |C| = 4|X|/3 with 2|X|/3 positive and 2|X|/3
// negative clauses). Satisfiability is not controlled; label with dpll().
Cnf generate_monotone22(int vars, std::uint64_t seed);

}  // namespace msrs
