#include "multires/mgreedy.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace msrs {

MSchedule mgreedy(const MultiInstance& instance) {
  MSchedule schedule(instance.num_jobs());
  std::vector<Time> machine_free(static_cast<std::size_t>(instance.machines()),
                                 0);
  std::vector<Time> resource_free(
      static_cast<std::size_t>(instance.num_resources()), 0);

  std::vector<JobId> order(static_cast<std::size_t>(instance.num_jobs()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return instance.size(a) > instance.size(b);
  });

  for (JobId j : order) {
    Time resource_ready = 0;
    for (int r : instance.resources(j))
      resource_ready =
          std::max(resource_ready, resource_free[static_cast<std::size_t>(r)]);
    std::size_t best = 0;
    for (std::size_t k = 1; k < machine_free.size(); ++k)
      if (machine_free[k] < machine_free[best]) best = k;
    const Time start = std::max(machine_free[best], resource_ready);
    schedule.machine[static_cast<std::size_t>(j)] = static_cast<int>(best);
    schedule.start[static_cast<std::size_t>(j)] = start;
    machine_free[best] = start + instance.size(j);
    for (int r : instance.resources(j))
      resource_free[static_cast<std::size_t>(r)] = start + instance.size(j);
  }
  return schedule;
}

}  // namespace msrs
