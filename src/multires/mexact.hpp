// Exact decision solver for small multi-resource instances (chronological
// branch-and-bound, same scheme as algo/exact.hpp but with resource sets).
#pragma once

#include <cstdint>
#include <optional>

#include "multires/minstance.hpp"

namespace msrs {

struct MExactOptions {
  std::uint64_t node_limit = 20'000'000;
};

// Is there a schedule with makespan <= deadline? 1 = yes (and *out filled if
// non-null), 0 = no, -1 = node limit hit.
int mexact_decide(const MultiInstance& instance, Time deadline,
                  MSchedule* out = nullptr, const MExactOptions& options = {});

// Minimum makespan by searching increasing deadlines from the area bound.
std::optional<Time> mexact_makespan(const MultiInstance& instance,
                                    const MExactOptions& options = {});

}  // namespace msrs
