#include "multires/mexact.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "multires/mgreedy.hpp"
#include "multires/mschedule.hpp"

namespace msrs {
namespace {

constexpr Time kInf = std::numeric_limits<Time>::max() / 4;

class Search {
 public:
  Search(const MultiInstance& instance, Time deadline,
         const MExactOptions& options)
      : inst_(instance),
        opts_(options),
        deadline_(deadline),
        machine_free_(static_cast<std::size_t>(instance.machines()), 0),
        retired_(static_cast<std::size_t>(instance.machines()), false),
        resource_free_(static_cast<std::size_t>(instance.num_resources()), 0),
        scheduled_(static_cast<std::size_t>(instance.num_jobs()), false),
        current_(instance.num_jobs()),
        best_(instance.num_jobs()) {
    remaining_ = instance.total_load();
    order_.resize(static_cast<std::size_t>(instance.num_jobs()));
    for (JobId j = 0; j < instance.num_jobs(); ++j)
      order_[static_cast<std::size_t>(j)] = j;
    std::stable_sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
      return instance.size(a) > instance.size(b);
    });
  }

  int run(MSchedule* out) {
    found_ = false;
    dfs(0);
    if (found_) {
      if (out) *out = best_;
      return 1;
    }
    return hit_limit_ ? -1 : 0;
  }

 private:
  Time job_ready(JobId j) const {
    Time ready = 0;
    for (int r : inst_.resources(j))
      ready = std::max(ready, resource_free_[static_cast<std::size_t>(r)]);
    return ready;
  }

  void dfs(int count) {
    if (found_ || hit_limit_) return;
    if (++nodes_ > opts_.node_limit) {
      hit_limit_ = true;
      return;
    }
    if (count == inst_.num_jobs()) {
      found_ = true;
      best_ = current_;
      return;
    }
    // Area bound over active machines.
    Time sum_free = 0;
    int active = 0;
    for (std::size_t k = 0; k < machine_free_.size(); ++k)
      if (!retired_[k]) {
        sum_free += machine_free_[k];
        ++active;
      }
    if (active == 0) return;
    const Time capacity = static_cast<Time>(active) * deadline_ - sum_free;
    if (remaining_ > capacity) return;
    // Zero-slack dominance: when the remaining load exactly fills the
    // remaining capacity (e.g. the perfectly packed Theorem-23 gadgets),
    // idling or retiring a machine can never lead to a solution.
    const bool zero_slack = remaining_ == capacity;

    int machine = -1;
    Time t = kInf;
    for (std::size_t k = 0; k < machine_free_.size(); ++k)
      if (!retired_[k] && machine_free_[k] < t) {
        t = machine_free_[k];
        machine = static_cast<int>(k);
      }
    const auto midx = static_cast<std::size_t>(machine);

    // Branch 1: start an available job here.
    for (JobId j : order_) {
      if (scheduled_[static_cast<std::size_t>(j)]) continue;
      if (job_ready(j) > t) continue;
      if (t + inst_.size(j) > deadline_) continue;
      scheduled_[static_cast<std::size_t>(j)] = true;
      const Time saved_machine = machine_free_[midx];
      std::vector<Time> saved_resources;
      saved_resources.reserve(inst_.resources(j).size());
      for (int r : inst_.resources(j))
        saved_resources.push_back(resource_free_[static_cast<std::size_t>(r)]);
      machine_free_[midx] = t + inst_.size(j);
      for (int r : inst_.resources(j))
        resource_free_[static_cast<std::size_t>(r)] = t + inst_.size(j);
      current_.machine[static_cast<std::size_t>(j)] = machine;
      current_.start[static_cast<std::size_t>(j)] = t;
      remaining_ -= inst_.size(j);
      dfs(count + 1);
      remaining_ += inst_.size(j);
      current_.machine[static_cast<std::size_t>(j)] = kUnassigned;
      std::size_t ri = 0;
      for (int r : inst_.resources(j))
        resource_free_[static_cast<std::size_t>(r)] = saved_resources[ri++];
      machine_free_[midx] = saved_machine;
      scheduled_[static_cast<std::size_t>(j)] = false;
      if (found_ || hit_limit_) return;
    }

    // Branch 2: idle until the next resource release.
    if (zero_slack) return;
    Time next_event = kInf;
    for (JobId j : order_) {
      if (scheduled_[static_cast<std::size_t>(j)]) continue;
      const Time ready = job_ready(j);
      if (ready > t) next_event = std::min(next_event, ready);
    }
    if (next_event < kInf && next_event <= deadline_) {
      const Time saved = machine_free_[midx];
      machine_free_[midx] = next_event;
      dfs(count);
      machine_free_[midx] = saved;
      if (found_ || hit_limit_) return;
    }

    // Branch 3: retire this machine.
    if (active > 1) {
      retired_[midx] = true;
      dfs(count);
      retired_[midx] = false;
    }
  }

  const MultiInstance& inst_;
  const MExactOptions& opts_;
  Time deadline_;
  std::vector<Time> machine_free_;
  std::vector<bool> retired_;
  std::vector<Time> resource_free_;
  std::vector<bool> scheduled_;
  std::vector<JobId> order_;
  MSchedule current_, best_;
  Time remaining_ = 0;
  std::uint64_t nodes_ = 0;
  bool found_ = false;
  bool hit_limit_ = false;
};

}  // namespace

int mexact_decide(const MultiInstance& instance, Time deadline, MSchedule* out,
                  const MExactOptions& options) {
  if (instance.num_jobs() == 0) {
    if (out) *out = MSchedule(0);
    return 1;
  }
  Search search(instance, deadline, options);
  return search.run(out);
}

std::optional<Time> mexact_makespan(const MultiInstance& instance,
                                    const MExactOptions& options) {
  if (instance.num_jobs() == 0) return 0;
  const Time lo = ceil_div(instance.total_load(), instance.machines());
  const MSchedule greedy_schedule = mgreedy(instance);
  const Time hi = greedy_schedule.makespan(instance);
  for (Time deadline = lo; deadline <= hi; ++deadline) {
    const int verdict = mexact_decide(instance, deadline, nullptr, options);
    if (verdict == 1) return deadline;
    if (verdict == -1) return std::nullopt;
  }
  return hi;
}

}  // namespace msrs
