#include "multires/reduction.hpp"

#include <cassert>

#include "multires/mschedule.hpp"

namespace msrs {
namespace {

// Positions of the canonical makespan-4 schedule (Figure 6a orientation
// normalized so that ja_i runs first).
constexpr Time kJaStart = 0;   // ja_i [0,1]
constexpr Time kJAStart = 1;   // jA_i [1,4]
constexpr Time kJBStart = 0;   // jB_i [0,2]
constexpr Time kJbStart = 2;   // jb_i [2,4]
constexpr Time kJdxStart = 2;  // j_dx [2,4]
constexpr Time kJcdStart = 0;  // j^c_d [0,1]

}  // namespace

Reduction build_reduction(const Cnf& formula) {
  assert(check_monotone22(formula).empty());
  Reduction red;
  red.formula = formula;
  MultiInstance& inst = red.instance;
  const int C = static_cast<int>(formula.clauses.size());
  const int X = formula.num_vars;
  inst.set_machines(2 * C + 2 * X);

  // Resource ids are created on demand; jobs collect their resource sets
  // first and are added once complete (each needs all its resources known).
  std::vector<std::vector<int>> job_resources;
  std::vector<Time> job_sizes;
  auto new_job = [&](Time size) {
    job_sizes.push_back(size);
    job_resources.emplace_back();
    return static_cast<int>(job_sizes.size()) - 1;
  };
  auto share = [&](int job_a, int job_b) {
    const int resource = inst.add_resource();
    job_resources[static_cast<std::size_t>(job_a)].push_back(resource);
    job_resources[static_cast<std::size_t>(job_b)].push_back(resource);
  };
  auto share3 = [&](int job_a, int job_b, int job_c) {
    const int resource = inst.add_resource();
    for (int job : {job_a, job_b, job_c})
      job_resources[static_cast<std::size_t>(job)].push_back(resource);
  };

  // Clause dummies jA_i {3}, ja_i {1}.
  std::vector<int> tA(static_cast<std::size_t>(C)), ta(static_cast<std::size_t>(C));
  for (int i = 0; i < C; ++i) {
    tA[static_cast<std::size_t>(i)] = new_job(3);
    ta[static_cast<std::size_t>(i)] = new_job(1);
    share(tA[static_cast<std::size_t>(i)], ta[static_cast<std::size_t>(i)]);
    if (i > 0)
      share(ta[static_cast<std::size_t>(i - 1)], tA[static_cast<std::size_t>(i)]);
  }
  // Variable dummies jB_i {2}, jb_i {2}.
  std::vector<int> tB(static_cast<std::size_t>(X)), tb(static_cast<std::size_t>(X));
  for (int i = 0; i < X; ++i) {
    tB[static_cast<std::size_t>(i)] = new_job(2);
    tb[static_cast<std::size_t>(i)] = new_job(2);
    share(tB[static_cast<std::size_t>(i)], tb[static_cast<std::size_t>(i)]);
    if (i > 0)
      share(tB[static_cast<std::size_t>(i)], tb[static_cast<std::size_t>(i - 1)]);
  }
  if (C > 0 && X > 0) share(ta[static_cast<std::size_t>(C - 1)], tb[0]);

  // Variable jobs j_x {1}, j_xbar {1}, j_dx {2}.
  std::vector<int> tx(static_cast<std::size_t>(X)),
      txbar(static_cast<std::size_t>(X)), tdx(static_cast<std::size_t>(X));
  for (int i = 0; i < X; ++i) {
    tx[static_cast<std::size_t>(i)] = new_job(1);
    txbar[static_cast<std::size_t>(i)] = new_job(1);
    tdx[static_cast<std::size_t>(i)] = new_job(2);
    share3(tx[static_cast<std::size_t>(i)], txbar[static_cast<std::size_t>(i)],
           tdx[static_cast<std::size_t>(i)]);
    share(tdx[static_cast<std::size_t>(i)], tB[static_cast<std::size_t>(i)]);
  }

  // Clause jobs: three literal jobs {1} + j^c_d {1}.
  std::vector<std::array<int, 3>> tlits(static_cast<std::size_t>(C));
  std::vector<int> td(static_cast<std::size_t>(C));
  for (int i = 0; i < C; ++i) {
    const auto& clause = formula.clauses[static_cast<std::size_t>(i)];
    std::array<int, 3> lits{};
    for (int k = 0; k < 3; ++k) lits[static_cast<std::size_t>(k)] = new_job(1);
    td[static_cast<std::size_t>(i)] = new_job(1);
    // all four share C_ci
    const int resource = inst.add_resource();
    for (int k = 0; k < 3; ++k)
      job_resources[static_cast<std::size_t>(lits[static_cast<std::size_t>(k)])]
          .push_back(resource);
    job_resources[static_cast<std::size_t>(td[static_cast<std::size_t>(i)])]
        .push_back(resource);
    // j^c_d anchored to jA_i
    share(td[static_cast<std::size_t>(i)], tA[static_cast<std::size_t>(i)]);
    // literal job <-> that literal's variable job
    for (int k = 0; k < 3; ++k) {
      const int lit = clause[static_cast<std::size_t>(k)];
      const auto var = static_cast<std::size_t>(std::abs(lit) - 1);
      const int var_job = lit > 0 ? tx[var] : txbar[var];
      share(lits[static_cast<std::size_t>(k)], var_job);
    }
    tlits[static_cast<std::size_t>(i)] = lits;
  }

  // Materialize jobs in creation order (temp ids == final JobIds).
  for (std::size_t j = 0; j < job_sizes.size(); ++j) {
    const JobId id = inst.add_job(job_sizes[j], job_resources[j]);
    assert(id == static_cast<JobId>(j));
    (void)id;
  }
  auto to_jobs = [](const std::vector<int>& v) {
    return std::vector<JobId>(v.begin(), v.end());
  };
  red.jA = to_jobs(tA);
  red.ja = to_jobs(ta);
  red.jB = to_jobs(tB);
  red.jb = to_jobs(tb);
  red.jx = to_jobs(tx);
  red.jxbar = to_jobs(txbar);
  red.jdx = to_jobs(tdx);
  red.clause_d = to_jobs(td);
  for (const auto& lits : tlits)
    red.clause_jobs.push_back(
        {static_cast<JobId>(lits[0]), static_cast<JobId>(lits[1]),
         static_cast<JobId>(lits[2])});
  assert(inst.check().empty());
  assert(inst.max_resources_per_job() <= 3);
  return red;
}

MSchedule schedule_from_assignment(const Reduction& red,
                                   const std::vector<bool>& assignment) {
  const int C = red.num_clauses();
  const int X = red.num_vars();
  MSchedule sched(red.instance.num_jobs());
  auto put = [&](JobId j, int machine, Time start) {
    sched.machine[static_cast<std::size_t>(j)] = machine;
    sched.start[static_cast<std::size_t>(j)] = start;
  };

  // Dummy machines.
  for (int i = 0; i < C; ++i) {
    put(red.ja[static_cast<std::size_t>(i)], i, kJaStart);
    put(red.jA[static_cast<std::size_t>(i)], i, kJAStart);
  }
  for (int i = 0; i < X; ++i) {
    put(red.jB[static_cast<std::size_t>(i)], C + i, kJBStart);
    put(red.jb[static_cast<std::size_t>(i)], C + i, kJbStart);
  }
  // Variable machines: true literal's job in [0,1], the other in [1,2],
  // j_dx in [2,4].
  for (int i = 0; i < X; ++i) {
    const int machine = C + X + i;
    const bool value = assignment[static_cast<std::size_t>(i + 1)];
    const JobId first = value ? red.jx[static_cast<std::size_t>(i)]
                              : red.jxbar[static_cast<std::size_t>(i)];
    const JobId second = value ? red.jxbar[static_cast<std::size_t>(i)]
                               : red.jx[static_cast<std::size_t>(i)];
    put(first, machine, 0);
    put(second, machine, 1);
    put(red.jdx[static_cast<std::size_t>(i)], machine, kJdxStart);
  }
  // Clause machines: j^c_d [0,1]; a true literal's job in [1,2]; the other
  // two in [2,3] and [3,4].
  for (int i = 0; i < C; ++i) {
    const int machine = C + 2 * X + i;
    put(red.clause_d[static_cast<std::size_t>(i)], machine, kJcdStart);
    const auto& clause = red.formula.clauses[static_cast<std::size_t>(i)];
    int true_slot = -1;
    for (int k = 0; k < 3 && true_slot < 0; ++k) {
      const int lit = clause[static_cast<std::size_t>(k)];
      const bool value = assignment[static_cast<std::size_t>(std::abs(lit))];
      if ((lit > 0) == value) true_slot = k;
    }
    // A satisfying assignment always has a true literal. For non-satisfying
    // assignments we still emit the canonical layout (first literal in the
    // [1,2] slot); the resulting V-resource conflict is exactly what makes
    // the schedule invalid — used by tests to sweep the canonical space.
    if (true_slot < 0) true_slot = 0;
    Time next_free = 2;
    for (int k = 0; k < 3; ++k) {
      const JobId job =
          red.clause_jobs[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
      if (k == true_slot) {
        put(job, machine, 1);
      } else {
        put(job, machine, next_free++);
      }
    }
  }
  return sched;
}

MSchedule trivial_schedule(const Reduction& red) {
  const int C = red.num_clauses();
  const int X = red.num_vars();
  MSchedule sched(red.instance.num_jobs());
  auto put = [&](JobId j, int machine, Time start) {
    sched.machine[static_cast<std::size_t>(j)] = machine;
    sched.start[static_cast<std::size_t>(j)] = start;
  };
  for (int i = 0; i < C; ++i) {
    put(red.ja[static_cast<std::size_t>(i)], i, kJaStart);
    put(red.jA[static_cast<std::size_t>(i)], i, kJAStart);
  }
  for (int i = 0; i < X; ++i) {
    put(red.jB[static_cast<std::size_t>(i)], C + i, kJBStart);
    put(red.jb[static_cast<std::size_t>(i)], C + i, kJbStart);
  }
  // Variable machines: j_x [0,1], j_xbar [1,2], j_dx [2,4].
  for (int i = 0; i < X; ++i) {
    const int machine = C + X + i;
    put(red.jx[static_cast<std::size_t>(i)], machine, 0);
    put(red.jxbar[static_cast<std::size_t>(i)], machine, 1);
    put(red.jdx[static_cast<std::size_t>(i)], machine, kJdxStart);
  }
  // Clause machines: j^c_d [0,1], leave [1,2] empty, literal jobs in
  // [2,3], [3,4], [4,5]. Variable jobs run in [0,2], so no V-conflicts.
  for (int i = 0; i < C; ++i) {
    const int machine = C + 2 * X + i;
    put(red.clause_d[static_cast<std::size_t>(i)], machine, 0);
    for (int k = 0; k < 3; ++k)
      put(red.clause_jobs[static_cast<std::size_t>(i)]
                         [static_cast<std::size_t>(k)],
          machine, 2 + k);
  }
  return sched;
}

std::optional<std::vector<bool>> assignment_from_schedule(
    const Reduction& red, const MSchedule& schedule) {
  const auto report = validate_multi(red.instance, schedule, /*limit=*/4);
  if (!report.ok()) return std::nullopt;
  const int X = red.num_vars();

  // Orientation: in the canonical schedule ja_1 runs in [0,1]; the flipped
  // schedule (t -> 4 - t - p) is equally valid. Normalize via ja_1.
  MSchedule normalized = schedule;
  if (!red.ja.empty() &&
      schedule.start[static_cast<std::size_t>(red.ja[0])] != 0) {
    for (JobId j = 0; j < red.instance.num_jobs(); ++j)
      normalized.start[static_cast<std::size_t>(j)] =
          4 - schedule.start[static_cast<std::size_t>(j)] -
          red.instance.size(j);
  }

  std::vector<bool> assignment(static_cast<std::size_t>(X) + 1, false);
  for (int i = 0; i < X; ++i) {
    const Time x_start =
        normalized.start[static_cast<std::size_t>(red.jx[static_cast<std::size_t>(i)])];
    const Time xbar_start = normalized.start[static_cast<std::size_t>(
        red.jxbar[static_cast<std::size_t>(i)])];
    // Lemma 24: one of the two runs in [0,1], the other in [1,2].
    if (x_start == 0) {
      assignment[static_cast<std::size_t>(i + 1)] = true;
    } else if (xbar_start == 0) {
      assignment[static_cast<std::size_t>(i + 1)] = false;
    } else {
      return std::nullopt;  // not a canonical makespan-4 schedule
    }
    (void)xbar_start;
  }
  if (!red.formula.satisfied_by(assignment)) return std::nullopt;
  return assignment;
}

}  // namespace msrs
