#include "multires/minstance.hpp"

#include <algorithm>

namespace msrs {

JobId MultiInstance::add_job(Time size, std::vector<int> resources) {
  const auto job = static_cast<JobId>(size_.size());
  size_.push_back(size);
  resources_.push_back(std::move(resources));
  total_ += size;
  return job;
}

int MultiInstance::max_resources_per_job() const {
  std::size_t best = 0;
  for (const auto& r : resources_) best = std::max(best, r.size());
  return static_cast<int>(best);
}

std::string MultiInstance::check() const {
  if (machines_ < 1) return "machines must be >= 1";
  for (std::size_t j = 0; j < size_.size(); ++j) {
    if (size_[j] < 1) return "job " + std::to_string(j) + " has size < 1";
    for (int r : resources_[j])
      if (r < 0 || r >= num_resources_)
        return "job " + std::to_string(j) + " uses unknown resource";
  }
  return {};
}

Time MSchedule::makespan(const MultiInstance& instance) const {
  Time best = 0;
  for (JobId j = 0; j < instance.num_jobs(); ++j)
    if (assigned(j)) best = std::max(best, end(instance, j));
  return best;
}

}  // namespace msrs
