#include "multires/sat.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace msrs {
namespace {

// Assignment state: 0 unknown, 1 true, -1 false.
using State = std::vector<int>;

bool clause_satisfied(const std::vector<int>& clause, const State& state) {
  for (int lit : clause) {
    const int var = std::abs(lit);
    const int want = lit > 0 ? 1 : -1;
    if (state[static_cast<std::size_t>(var)] == want) return true;
  }
  return false;
}

// Returns false on conflict; applies unit propagation until fixpoint.
bool propagate(const Cnf& formula, State& state) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& clause : formula.clauses) {
      if (clause_satisfied(clause, state)) continue;
      int unassigned_lit = 0;
      int unassigned_count = 0;
      for (int lit : clause) {
        if (state[static_cast<std::size_t>(std::abs(lit))] == 0) {
          ++unassigned_count;
          unassigned_lit = lit;
        }
      }
      if (unassigned_count == 0) return false;  // conflict
      if (unassigned_count == 1) {
        state[static_cast<std::size_t>(std::abs(unassigned_lit))] =
            unassigned_lit > 0 ? 1 : -1;
        changed = true;
      }
    }
  }
  return true;
}

bool solve(const Cnf& formula, State& state) {
  if (!propagate(formula, state)) return false;
  // Pure literal elimination.
  std::vector<int> polarity(static_cast<std::size_t>(formula.num_vars) + 1, 0);
  for (const auto& clause : formula.clauses) {
    if (clause_satisfied(clause, state)) continue;
    for (int lit : clause) {
      const auto var = static_cast<std::size_t>(std::abs(lit));
      if (state[var] != 0) continue;
      const int sign = lit > 0 ? 1 : -1;
      if (polarity[var] == 0)
        polarity[var] = sign;
      else if (polarity[var] != sign)
        polarity[var] = 2;  // mixed
    }
  }
  int branch_var = 0;
  for (int v = 1; v <= formula.num_vars; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (state[vi] != 0) continue;
    if (polarity[vi] == 1 || polarity[vi] == -1) {
      state[vi] = polarity[vi];
      return solve(formula, state);
    }
    if (branch_var == 0) branch_var = v;
  }
  if (branch_var == 0) {
    // fully assigned (or every remaining var unused): check all clauses
    for (const auto& clause : formula.clauses)
      if (!clause_satisfied(clause, state)) return false;
    return true;
  }
  for (const int value : {1, -1}) {
    State copy = state;
    copy[static_cast<std::size_t>(branch_var)] = value;
    if (solve(formula, copy)) {
      state = std::move(copy);
      return true;
    }
  }
  return false;
}

}  // namespace

bool Cnf::satisfied_by(const std::vector<bool>& assignment) const {
  for (const auto& clause : clauses) {
    bool ok = false;
    for (int lit : clause) {
      const auto var = static_cast<std::size_t>(std::abs(lit));
      if ((lit > 0) == assignment[var]) ok = true;
    }
    if (!ok) return false;
  }
  return true;
}

std::string Cnf::str() const {
  std::ostringstream out;
  for (const auto& clause : clauses) {
    out << '(';
    for (std::size_t i = 0; i < clause.size(); ++i) {
      if (i) out << " v ";
      if (clause[i] < 0) out << "~";
      out << 'x' << std::abs(clause[i]);
    }
    out << ") ";
  }
  return out.str();
}

std::optional<std::vector<bool>> dpll(const Cnf& formula) {
  State state(static_cast<std::size_t>(formula.num_vars) + 1, 0);
  if (!solve(formula, state)) return std::nullopt;
  std::vector<bool> assignment(static_cast<std::size_t>(formula.num_vars) + 1,
                               false);
  for (int v = 1; v <= formula.num_vars; ++v)
    assignment[static_cast<std::size_t>(v)] =
        state[static_cast<std::size_t>(v)] == 1;
  assert(formula.satisfied_by(assignment));
  return assignment;
}

std::string check_monotone22(const Cnf& formula) {
  std::vector<int> pos(static_cast<std::size_t>(formula.num_vars) + 1, 0);
  std::vector<int> neg(static_cast<std::size_t>(formula.num_vars) + 1, 0);
  for (const auto& clause : formula.clauses) {
    if (clause.size() != 3) return "clause without exactly 3 literals";
    const bool positive = clause.front() > 0;
    std::vector<int> vars;
    for (int lit : clause) {
      if ((lit > 0) != positive) return "non-monotone clause";
      vars.push_back(std::abs(lit));
      if (lit > 0)
        ++pos[static_cast<std::size_t>(lit)];
      else
        ++neg[static_cast<std::size_t>(-lit)];
    }
    std::sort(vars.begin(), vars.end());
    if (std::adjacent_find(vars.begin(), vars.end()) != vars.end())
      return "repeated variable in a clause";
  }
  for (int v = 1; v <= formula.num_vars; ++v) {
    if (pos[static_cast<std::size_t>(v)] != 2)
      return "variable x" + std::to_string(v) + " has " +
             std::to_string(pos[static_cast<std::size_t>(v)]) +
             " positive occurrences (want 2)";
    if (neg[static_cast<std::size_t>(v)] != 2)
      return "variable x" + std::to_string(v) + " has " +
             std::to_string(neg[static_cast<std::size_t>(v)]) +
             " negative occurrences (want 2)";
  }
  return {};
}

Cnf generate_monotone22(int vars, std::uint64_t seed) {
  assert(vars % 3 == 0 && vars >= 3);
  Cnf formula;
  formula.num_vars = vars;
  Rng rng(seed);

  // Build the positive clauses from a multiset with each variable twice,
  // re-shuffling until no clause repeats a variable (fast for vars >= 3).
  auto build_half = [&](bool positive) {
    std::vector<int> slots;
    slots.reserve(static_cast<std::size_t>(2 * vars));
    for (int v = 1; v <= vars; ++v) {
      slots.push_back(v);
      slots.push_back(v);
    }
    for (int attempt = 0; attempt < 10000; ++attempt) {
      rng.shuffle(slots);
      bool ok = true;
      for (std::size_t i = 0; i + 2 < slots.size() && ok; i += 3)
        ok = slots[i] != slots[i + 1] && slots[i] != slots[i + 2] &&
             slots[i + 1] != slots[i + 2];
      if (!ok) continue;
      for (std::size_t i = 0; i + 2 < slots.size(); i += 3) {
        std::vector<int> clause{slots[i], slots[i + 1], slots[i + 2]};
        if (!positive)
          for (int& lit : clause) lit = -lit;
        formula.clauses.push_back(std::move(clause));
      }
      return true;
    }
    return false;
  };
  const bool ok = build_half(true) && build_half(false);
  assert(ok);
  (void)ok;
  assert(check_monotone22(formula).empty());
  return formula;
}

}  // namespace msrs
