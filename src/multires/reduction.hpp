// The Theorem-23 reduction: Monotone 3-SAT-(2,2) -> multi-resource MSRS.
//
// Gadget (job sizes in braces; every job needs <= 3 resources):
//  * per clause i: dummies jA_i {3} and ja_i {1} sharing resource A_i, with
//    ja_i and jA_{i+1} chained by A_{i->i+1};
//  * per variable i: dummies jB_i {2} and jb_i {2} sharing B_i, chained by
//    B_{i->i+1}; ja_{|C|} and jb_1 chained by A->B;
//  * per variable x: jobs j_x {1}, j_xbar {1}, j_dx {2}, all sharing X_x,
//    and j_dx sharing B_x with jB_i;
//  * per clause c: one job per literal {1} plus j^c_d {1}, all sharing C_c;
//    j^c_d shares A_c with jA_i; the job of literal l shares a fresh
//    resource V^c_l with that literal's variable job.
//  * machines: 2|C| + 2|X|.
//
// Lemma 24: OPT = 4 iff the formula is satisfiable, else OPT = 5. In the
// canonical makespan-4 schedule the dummies are pinned (ja_i [0,1],
// jA_i [1,4], jB_i [0,2], jb_i [2,4], j_dx [2,4], j^c_d [0,1]) and the
// variable jobs encode the assignment: x is true iff j_x runs in [0,1].
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "multires/minstance.hpp"
#include "multires/sat.hpp"

namespace msrs {

struct Reduction {
  Cnf formula;
  MultiInstance instance;

  // job handles (indices into `instance`)
  std::vector<JobId> jA, ja;                       // per clause
  std::vector<JobId> jB, jb;                       // per variable (1-based -1)
  std::vector<JobId> jx, jxbar, jdx;               // per variable
  std::vector<std::array<JobId, 3>> clause_jobs;   // per clause, per literal
  std::vector<JobId> clause_d;                     // per clause

  int num_clauses() const { return static_cast<int>(formula.clauses.size()); }
  int num_vars() const { return formula.num_vars; }
};

// Builds the gadget; `formula` must pass check_monotone22.
Reduction build_reduction(const Cnf& formula);

// Forward direction of Lemma 24: a satisfying assignment (1-based, as
// returned by dpll) yields a valid makespan-4 schedule. For non-satisfying
// assignments the emitted canonical layout contains a resource conflict
// (detected by validate_multi) — by Lemma 24 every makespan-4 schedule is
// canonical up to a time flip, so sweeping all assignments through this
// function decides "OPT = 4?" exactly.
MSchedule schedule_from_assignment(const Reduction& reduction,
                                   const std::vector<bool>& assignment);

// The always-valid makespan-5 schedule (unsatisfiable case).
MSchedule trivial_schedule(const Reduction& reduction);

// Backward direction: decodes a satisfying assignment from any valid
// makespan-4 schedule (handles the time-flipped orientation). Returns
// std::nullopt if the schedule is invalid or exceeds makespan 4.
std::optional<std::vector<bool>> assignment_from_schedule(
    const Reduction& reduction, const MSchedule& schedule);

}  // namespace msrs
