// Minimal fixed-size thread pool + parallel_for for the experiment harness.
//
// The benches sweep (family x n x m x seed) grids of independent scheduling
// runs; this pool gives near-linear speedup for those embarrassingly parallel
// sweeps while keeping results deterministic (work items carry their own
// seeds, so the partitioning order cannot change any reported number).
//
// Lock discipline is machine-checked: queue/flag state is MSRS_GUARDED_BY
// the pool mutex and clang's -Wthread-safety verifies every access (the
// clang-thread-safety CI job builds with -Werror).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/sync.hpp"

namespace msrs {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task. Tasks must not throw; exceptions terminate (by design —
  // harness work items report failures through their results, not exceptions).
  // Returns false (and drops the task) after shutdown() has begun.
  bool submit(std::function<void()> task) MSRS_EXCLUDES(mutex_);

  // Enqueues a task and returns a future for its result. Unlike submit(),
  // exceptions escaping the task are captured in the future (std::packaged_task
  // stores them), so throwing solvers are safe to race through this interface.
  // If the pool has begun shutdown() the task is refused and the future
  // carries a std::runtime_error naming that — not a bare broken_promise.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit_task(F&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    if (!submit([packaged] { (*packaged)(); })) {
      std::promise<R> refused;
      future = refused.get_future();
      refused.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool refused the task: shutdown() has "
                             "begun")));
    }
    return future;
  }

  // Blocks until all submitted tasks have finished.
  void wait_idle() MSRS_EXCLUDES(mutex_);

  // Graceful drain-then-join: stops accepting new tasks, waits up to
  // `deadline` for the queued + running work to finish, then joins the
  // workers. If the deadline passes first, tasks still *queued* are
  // discarded (running tasks always complete — worker threads are never
  // killed mid-task). Returns true when everything drained in time.
  // Idempotent; after it returns, submit() refuses new work. Called by the
  // destructor with an infinite deadline, so plain destruction still runs
  // every submitted task (the historical contract).
  bool shutdown(std::chrono::milliseconds deadline =
                    std::chrono::milliseconds::max()) MSRS_EXCLUDES(mutex_);

 private:
  void worker_loop() MSRS_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  std::queue<std::function<void()>> queue_ MSRS_GUARDED_BY(mutex_);
  util::CondVar work_available_;
  util::CondVar idle_;
  std::size_t in_flight_ MSRS_GUARDED_BY(mutex_) = 0;
  // submit() refuses; workers drain the queue.
  bool draining_ MSRS_GUARDED_BY(mutex_) = false;
  // Workers exit once the queue is empty.
  bool stopping_ MSRS_GUARDED_BY(mutex_) = false;
};

// Runs body(i) for i in [begin, end) across `threads` workers (0 = hardware
// concurrency). Blocks until done. Chunks are contiguous static partitions so
// false sharing on adjacent result slots is rare.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace msrs
