// Minimal fixed-size thread pool + parallel_for for the experiment harness.
//
// The benches sweep (family x n x m x seed) grids of independent scheduling
// runs; this pool gives near-linear speedup for those embarrassingly parallel
// sweeps while keeping results deterministic (work items carry their own
// seeds, so the partitioning order cannot change any reported number).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace msrs {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task. Tasks must not throw; exceptions terminate (by design —
  // harness work items report failures through their results, not exceptions).
  void submit(std::function<void()> task);

  // Blocks until all submitted tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

// Runs body(i) for i in [begin, end) across `threads` workers (0 = hardware
// concurrency). Blocks until done. Chunks are contiguous static partitions so
// false sharing on adjacent result slots is rare.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace msrs
