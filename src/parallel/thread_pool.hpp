// Minimal fixed-size thread pool + parallel_for for the experiment harness.
//
// The benches sweep (family x n x m x seed) grids of independent scheduling
// runs; this pool gives near-linear speedup for those embarrassingly parallel
// sweeps while keeping results deterministic (work items carry their own
// seeds, so the partitioning order cannot change any reported number).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace msrs {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task. Tasks must not throw; exceptions terminate (by design —
  // harness work items report failures through their results, not exceptions).
  void submit(std::function<void()> task);

  // Enqueues a task and returns a future for its result. Unlike submit(),
  // exceptions escaping the task are captured in the future (std::packaged_task
  // stores them), so throwing solvers are safe to race through this interface.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit_task(F&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    submit([packaged] { (*packaged)(); });
    return future;
  }

  // Blocks until all submitted tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

// Runs body(i) for i in [begin, end) across `threads` workers (0 = hardware
// concurrency). Blocks until done. Chunks are contiguous static partitions so
// false sharing on adjacent result slots is rare.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace msrs
