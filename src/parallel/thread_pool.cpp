#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace msrs {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    util::MutexLock lock(mutex_);
    if (draining_) return false;
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
  return true;
}

bool ThreadPool::shutdown(std::chrono::milliseconds deadline) {
  bool drained = true;
  // Manual lock()/unlock() rather than MutexLock: the lock must be dropped
  // before notify_all() + join below, mid-function.
  mutex_.lock();
  draining_ = true;
  if (deadline == std::chrono::milliseconds::max()) {
    // An effectively infinite deadline must not feed wait_until (time_point
    // overflow); wait without one.
    while (in_flight_ != 0) idle_.wait(mutex_);
  } else {
    const auto until = util::deadline_after(deadline);
    while (in_flight_ != 0) {
      if (idle_.wait_until(mutex_, until) == std::cv_status::timeout) {
        drained = in_flight_ == 0;
        break;
      }
    }
  }
  if (!drained) {
    // Deadline passed: drop queued-but-unstarted tasks. Running tasks are
    // never interrupted; the joins below wait for them.
    while (!queue_.empty()) {
      queue_.pop();
      --in_flight_;
    }
    if (in_flight_ == 0) idle_.notify_all();  // concurrent wait_idle()
  }
  stopping_ = true;
  mutex_.unlock();
  work_available_.notify_all();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  return drained;
}

void ThreadPool::wait_idle() {
  util::MutexLock lock(mutex_);
  while (in_flight_ != 0) idle_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      util::MutexLock lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (begin >= end) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t count = end - begin;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, count));
  if (threads <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  constexpr std::size_t kChunk = 8;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t chunk_begin = next.fetch_add(kChunk);
        if (chunk_begin >= end) return;
        const std::size_t chunk_end = std::min(end, chunk_begin + kChunk);
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace msrs
