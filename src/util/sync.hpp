/// \file
/// Annotated synchronization primitives: the mutex, scoped lock and
/// condition variable every concurrent subsystem uses.
///
/// libstdc++'s `std::mutex`/`std::lock_guard` carry no thread-safety
/// capability attributes, so Clang's `-Wthread-safety` analysis cannot see
/// through them. These thin wrappers forward to the std types (zero-cost:
/// every member is a one-line inline forward) while exposing the
/// acquire/release semantics to the analysis via util/annotations.hpp.
///
/// CondVar deliberately waits on the Mutex itself (it is BasicLockable)
/// instead of a `std::unique_lock`, so waits keep the scoped-capability
/// model simple: the caller holds the Mutex for the whole visible scope
/// and the wait's internal unlock/relock stays an implementation detail.
/// Predicate waits are written as explicit `while (!pred) cv.wait(mu);`
/// loops at the call site — a predicate lambda would be analyzed as a
/// separate function that cannot prove the lock is held.
///
/// This file is on the project linter's clock allowlist: deadline_after()
/// is the one sanctioned place that turns a relative shutdown deadline
/// into a steady-clock time point (tools/lint/msrs_lint.py, rule
/// `naked-clock`).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace msrs::util {

/// Annotated exclusive mutex (a thin wrapper over std::mutex).
class MSRS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;             ///< not copyable
  Mutex& operator=(const Mutex&) = delete;  ///< not copyable

  /// Blocks until the mutex is held.
  void lock() MSRS_ACQUIRE() { mutex_.lock(); }
  /// Releases the mutex.
  void unlock() MSRS_RELEASE() { mutex_.unlock(); }
  /// Acquires the mutex iff it is free right now.
  bool try_lock() MSRS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock of a Mutex (the annotated std::lock_guard).
class MSRS_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `mutex` for this scope.
  explicit MutexLock(Mutex& mutex) MSRS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  /// Releases the mutex.
  ~MutexLock() MSRS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;             ///< not copyable
  MutexLock& operator=(const MutexLock&) = delete;  ///< not copyable

 private:
  Mutex& mutex_;
};

/// Condition variable waiting on a Mutex. Notifications never require the
/// lock; waits require it (and release/reacquire it internally).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;             ///< not copyable
  CondVar& operator=(const CondVar&) = delete;  ///< not copyable

  /// Atomically releases `mutex`, sleeps until notified, reacquires.
  /// Spurious wakeups happen: always call from a `while (!pred)` loop.
  void wait(Mutex& mutex) MSRS_REQUIRES(mutex) { cv_.wait(mutex); }

  /// wait() with a deadline; std::cv_status::timeout once `deadline`
  /// passes. Same spurious-wakeup contract as wait().
  std::cv_status wait_until(
      Mutex& mutex, std::chrono::steady_clock::time_point deadline)
      MSRS_REQUIRES(mutex) {
    return cv_.wait_until(mutex, deadline);
  }

  /// Wakes one waiter.
  void notify_one() noexcept { cv_.notify_one(); }
  /// Wakes every waiter.
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// The steady-clock deadline `wait` from now, saturating instead of
/// overflowing for effectively-infinite waits (milliseconds::max()).
inline std::chrono::steady_clock::time_point deadline_after(
    std::chrono::milliseconds wait) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point now = Clock::now();
  // Compare in milliseconds: converting an effectively-infinite wait to
  // the clock's (finer) duration first would overflow before the check.
  const auto headroom = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::time_point::max() - now);
  if (wait >= headroom) return Clock::time_point::max();
  return now + wait;
}

}  // namespace msrs::util
