// Worst-case linear-time selection (median of medians, Blum et al. 1973).
//
// Lemma 9 of the paper relies on "the famous median algorithm of Blum et al."
// to find the (m+1)-st largest processing time in O(n); we implement it
// faithfully rather than calling std::nth_element (whose libstdc++
// implementation is introselect — expected linear only).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace msrs {

// Returns the k-th smallest element (0-based) of `values`; k < values.size().
// Worst-case O(n). Does not modify the input.
std::int64_t kth_smallest(std::span<const std::int64_t> values, std::size_t k);

// Returns the k-th largest element (0-based: k=0 is the maximum).
std::int64_t kth_largest(std::span<const std::int64_t> values, std::size_t k);

// In-place variant used by the above; partitions `v` so v[k] is the k-th
// smallest. Exposed for testing.
void nth_element_mom(std::vector<std::int64_t>& v, std::size_t k);

}  // namespace msrs
