#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace msrs {
namespace {

// Locale-free double parsing (std::from_chars; never honors LC_NUMERIC).
// Requires the whole token to be consumed.
bool parse_double(const char* first, const char* last, double* out) {
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

// Canonical number format: shortest precision of 15..17 significant digits
// that round-trips, so equal doubles always serialize to equal bytes and
// integers stay free of exponent noise up to 2^53. std::to_chars is
// locale-independent, keeping the byte-stability contract even when a host
// program calls setlocale().
std::string format_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[32];
  char* end = buf;
  for (int precision = 15; precision <= 17; ++precision) {
    const auto result = std::to_chars(buf, buf + sizeof(buf), v,
                                      std::chars_format::general, precision);
    end = result.ptr;
    double back = 0.0;
    if (parse_double(buf, end, &back) && back == v) break;
  }
  return std::string(buf, end);
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

void Json::push_back(Json value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_)
    if (k == key) {
      v = std::move(value);
      return;
    }
  members_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(number_); break;
    case Type::kString: write_escaped(out, string_); break;
    case Type::kArray:
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        out += nl;
        out += pad;
        items_[i].write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += ']';
      break;
    case Type::kObject:
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += nl;
        out += pad;
        write_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += '}';
      break;
  }
}

std::string Json::str(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kNumber: return a.number_ == b.number_;
    case Json::Type::kString: return a.string_ == b.string_;
    case Json::Type::kArray: return a.items_ == b.items_;
    case Json::Type::kObject: {
      if (a.members_.size() != b.members_.size()) return false;
      for (const auto& [k, v] : a.members_) {
        const Json* other = b.find(k);
        if (other == nullptr || !(v == *other)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

// Strict RFC-8259 recursive-descent parser.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing bytes after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const std::string& what) {
    if (error_ != nullptr && error_->empty())
      *error_ = what + " at byte " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    // Depth cap: the parser recurses once per container level, and inputs
    // arrive from untrusted sources (the serving layer's wire protocol) —
    // without a bound, a line of 100k '['s overflows the stack and kills
    // the process. 128 levels is far beyond any document this repo emits.
    if (depth_ >= 128) {
      fail("nesting deeper than 128 levels");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return nested([this] { return parse_object(); });
    if (c == '[') return nested([this] { return parse_array(); });
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("null")) return Json();
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    return parse_number();
  }

  std::optional<Json> parse_number() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == digits) {
      fail("expected a value");
      return std::nullopt;
    }
    double v = 0.0;
    if (!parse_double(text_.data() + begin, text_.data() + pos_, &v)) {
      fail("malformed number '" + text_.substr(begin, pos_ - begin) + "'");
      return std::nullopt;
    }
    return Json(v);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            // Exactly four hex digits, checked by hand: sscanf-style
            // parsing would skip whitespace and accept short tokens,
            // silently corrupting the string.
            unsigned code = 0;
            bool hex_ok = true;
            for (std::size_t k = 0; k < 4; ++k) {
              const char h = text_[pos_ + k];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else hex_ok = false;
            }
            if (!hex_ok) {
              fail("malformed \\u escape");
              return std::nullopt;
            }
            pos_ += 4;
            // The writer only emits \u00xx for control bytes; decode the
            // BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail(std::string("unknown escape '\\") + esc + "'");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_array() {
    consume('[');
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.push_back(std::move(*value));
      if (consume(',')) continue;
      if (consume(']')) return out;
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    consume('{');
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.set(std::move(*key), std::move(*value));
      if (consume(',')) continue;
      if (consume('}')) return out;
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  // Runs a container parse one level deeper (RAII would be overkill: the
  // parsers return through this frame on every path).
  template <typename F>
  std::optional<Json> nested(F&& parse) {
    ++depth_;
    std::optional<Json> value = parse();
    --depth_;
    return value;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> json_parse(const std::string& text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

}  // namespace msrs
