// Summary statistics for experiment reporting.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace msrs {

// One-pass + sorted-copy summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  std::string str() const;
};

// Computes a Summary; an empty sample yields an all-zero Summary.
Summary summarize(std::span<const double> sample);

// Linear-interpolated quantile of a sorted sample, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q);

// Geometric mean; sample values must be > 0. Empty sample yields 0.
double geometric_mean(std::span<const double> sample);

}  // namespace msrs
