// FifoView: a FIFO queue as a view over a reused vector (pop = advance a
// head index). Replaces std::deque work queues on the solver hot paths: a
// default-constructed libstdc++ deque already costs two allocations, while
// a FifoView over a per-thread scratch vector costs zero in steady state
// (see docs/benchmarking.md, "hot-path allocations").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace msrs {

template <typename T>
struct FifoView {
  std::vector<T>* items = nullptr;
  std::size_t head = 0;

  // Binds to `store`, clearing it (capacity retained).
  void reset(std::vector<T>* store) {
    items = store;
    items->clear();
    head = 0;
  }
  bool empty() const { return head >= items->size(); }
  std::size_t size() const { return items->size() - head; }
  T front() const { return (*items)[head]; }
  void pop_front() { ++head; }
  void push_back(T value) { items->push_back(value); }
  // The not-yet-popped elements, oldest first.
  std::span<const T> remaining() const {
    return std::span<const T>(*items).subspan(head);
  }
  // Pops everything (used after bulk-consuming remaining()).
  void drain() { head = items->size(); }
};

}  // namespace msrs
