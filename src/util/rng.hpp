// Deterministic pseudo-random number generation for workloads and tests.
//
// We deliberately avoid std::mt19937 so that streams are identical across
// standard libraries and platforms: every experiment in EXPERIMENTS.md is
// reproducible from (family, n, m, seed) alone.
#pragma once

#include <cstdint>
#include <cassert>
#include <vector>

namespace msrs {

// SplitMix64 (Steele et al.); used to seed xoshiro and for cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8c5fb1a6d0e1f2c3ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] (inclusive); unbiased via rejection.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
      draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
  }

  // Uniform real in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Independent child stream; distinct for each (this stream, salt).
  Rng split(std::uint64_t salt) noexcept {
    std::uint64_t s = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace msrs
