// Aligned console tables for the benchmark harness and examples.
#pragma once

#include <string>
#include <vector>

namespace msrs {

// Builds a monospaced table with a header row and a separator line, e.g.
//
//   family     n    m   ratio_mean  ratio_max
//   ---------  ---  --  ----------  ---------
//   uniform    200   8      1.0312     1.1875
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string str() const;

  // Formatting helpers.
  static std::string num(double v, int precision = 4);
  static std::string num(std::int64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace msrs
