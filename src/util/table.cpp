#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace msrs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << "  ";
      out << cells[i];
      for (std::size_t pad = cells[i].size(); pad < width[i]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  std::vector<std::string> rule(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    rule[i] = std::string(width[i], '-');
  emit_row(rule);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace msrs
