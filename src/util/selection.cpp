#include "util/selection.hpp"

#include <algorithm>
#include <cassert>

namespace msrs {
namespace {

using It = std::vector<std::int64_t>::iterator;

std::int64_t median5(It first, It last) {
  std::sort(first, last);  // at most 5 elements
  return *(first + (last - first - 1) / 2);
}

// Selects the k-th smallest (0-based) element in [first, last).
std::int64_t select_mom(It first, It last, std::size_t k) {
  for (;;) {
    const auto n = static_cast<std::size_t>(last - first);
    assert(k < n);
    if (n <= 5) {
      std::sort(first, last);
      return *(first + k);
    }

    // Gather medians of groups of five at the front of the range.
    It write = first;
    for (It group = first; group < last; group += 5) {
      It group_end = group + 5 < last ? group + 5 : last;
      const std::int64_t med = median5(group, group_end);
      // median5 sorted the group; locate the median and move it forward.
      It med_it = std::find(group, group_end, med);
      std::iter_swap(write, med_it);
      ++write;
    }
    const auto num_medians = static_cast<std::size_t>(write - first);
    const std::int64_t pivot =
        select_mom(first, write, (num_medians - 1) / 2);

    // Three-way partition around the pivot.
    It lt = std::partition(first, last,
                           [pivot](std::int64_t x) { return x < pivot; });
    It eq = std::partition(lt, last,
                           [pivot](std::int64_t x) { return x == pivot; });
    const auto num_lt = static_cast<std::size_t>(lt - first);
    const auto num_le = static_cast<std::size_t>(eq - first);
    if (k < num_lt) {
      last = lt;
    } else if (k < num_le) {
      return pivot;
    } else {
      first = eq;
      k -= num_le;
    }
  }
}

}  // namespace

void nth_element_mom(std::vector<std::int64_t>& v, std::size_t k) {
  assert(k < v.size());
  // select_mom returns the value; re-partition to place it at index k for the
  // documented in-place contract.
  const std::int64_t value = select_mom(v.begin(), v.end(), k);
  auto lt = std::partition(v.begin(), v.end(),
                           [value](std::int64_t x) { return x < value; });
  std::partition(lt, v.end(),
                 [value](std::int64_t x) { return x == value; });
  v[k] = value;
}

std::int64_t kth_smallest(std::span<const std::int64_t> values,
                          std::size_t k) {
  assert(k < values.size());
  std::vector<std::int64_t> copy(values.begin(), values.end());
  return select_mom(copy.begin(), copy.end(), k);
}

std::int64_t kth_largest(std::span<const std::int64_t> values,
                         std::size_t k) {
  assert(k < values.size());
  return kth_smallest(values, values.size() - 1 - k);
}

}  // namespace msrs
