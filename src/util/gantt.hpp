// ASCII Gantt rendering, used to regenerate the paper's figures (1-4, 6)
// and for schedule debugging. Kept independent of the core problem model so
// util has no upward dependencies; core provides an adapter.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace msrs {

struct GanttBlock {
  int machine = 0;
  double start = 0.0;
  double end = 0.0;
  std::string label;  // rendered inside the block, truncated to fit
};

struct GanttOptions {
  int width = 72;          // characters devoted to the time axis
  double horizon = -1.0;   // <0: use max block end
  bool show_axis = true;   // print a scale line underneath
};

// Renders one row per machine; blocks are drawn as [label###]. Overlapping
// blocks on the same machine are drawn on extra continuation rows so that
// invalid schedules remain visible rather than silently overdrawn.
std::string render_gantt(std::span<const GanttBlock> blocks,
                         const GanttOptions& options = {});

}  // namespace msrs
