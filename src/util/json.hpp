/// \file
/// Minimal JSON value model with a deterministic writer and a strict
/// recursive-descent parser.
///
/// Built for the perf harness (src/perf): `BENCH_*.json` trajectory files
/// must be byte-stable across runs, so the writer preserves object key
/// insertion order, renders numbers through one canonical format
/// (shortest round-trip via `%.17g` trimmed), and never emits locale- or
/// pointer-dependent bytes. The parser is the harness's own round-trip
/// check — it accepts exactly the JSON the writer emits plus ordinary
/// RFC-8259 documents (no comments, no trailing commas).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace msrs {

/// A JSON document node: null, bool, number, string, array or object.
/// Objects keep their keys in insertion order (deterministic writer output).
class Json {
 public:
  /// Node kind; queried via the is_*() predicates.
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructs null.
  Json() = default;
  /// Constructs a boolean.
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  /// Constructs a number.
  Json(double v) : type_(Type::kNumber), number_(v) {}
  /// Constructs a number from an integer (stored exactly up to 2^53).
  Json(std::int64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  /// Constructs a string.
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  /// Constructs a string from a literal.
  Json(const char* s) : type_(Type::kString), string_(s) {}

  /// An empty array node.
  static Json array();
  /// An empty object node.
  static Json object();

  /// \name Type predicates
  /// @{
  Type type() const { return type_; }          ///< node kind
  bool is_null() const { return type_ == Type::kNull; }      ///< null?
  bool is_bool() const { return type_ == Type::kBool; }      ///< boolean?
  bool is_number() const { return type_ == Type::kNumber; }  ///< number?
  bool is_string() const { return type_ == Type::kString; }  ///< string?
  bool is_array() const { return type_ == Type::kArray; }    ///< array?
  bool is_object() const { return type_ == Type::kObject; }  ///< object?
  /// @}

  /// Boolean payload (valid iff is_bool()).
  bool as_bool() const { return bool_; }
  /// Numeric payload (valid iff is_number()).
  double as_number() const { return number_; }
  /// String payload (valid iff is_string()).
  const std::string& as_string() const { return string_; }
  /// Array elements (valid iff is_array()).
  const std::vector<Json>& items() const { return items_; }
  /// Object members in insertion order (valid iff is_object()).
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Appends an element (array nodes only).
  void push_back(Json value);
  /// Appends or overwrites a member, preserving first-insertion order.
  void set(std::string key, Json value);
  /// Pointer to the member value, or nullptr when absent / not an object.
  const Json* find(const std::string& key) const;

  /// Serializes deterministically; `indent` > 0 pretty-prints.
  std::string str(int indent = 0) const;

  /// Structural equality (object key order ignored; numbers compared
  /// exactly).
  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Parses a JSON document. Returns std::nullopt on malformed input and, when
/// `error` is non-null, stores a one-line description with byte offset.
std::optional<Json> json_parse(const std::string& text,
                               std::string* error = nullptr);

}  // namespace msrs
