/// \file
/// Clang thread-safety-analysis annotation macros (no-ops off Clang).
///
/// The concurrent subsystems — the thread pool, the serving layer's
/// admission queues and per-connection outboxes, the telemetry registry,
/// the flight recorder — document their lock discipline with these macros
/// so `clang -Wthread-safety -Werror` (the `clang-thread-safety` CI job)
/// machine-checks it at compile time: a guarded member touched without its
/// mutex, a `_locked` helper called lock-free, or a lock released on one
/// path but not another is a build error, not a latent race.
///
/// Conventions (docs/static_analysis.md has the full guide):
///  - Mutex-guarded members are declared `MSRS_GUARDED_BY(mutex_)` and the
///    mutex is a `util::Mutex` (util/sync.hpp) — the std type carries no
///    capability attributes in libstdc++, so the analysis would be blind
///    to it.
///  - Private helpers that expect the caller to hold a lock are named
///    `*_locked()` and annotated `MSRS_REQUIRES(mutex_)`.
///  - Condition waits are `while (!pred) cv.wait(mutex_);` loops, not
///    predicate lambdas: the analysis treats a lambda as a separate
///    function and cannot see the lock held at its call site.
///  - `MSRS_NO_THREAD_SAFETY_ANALYSIS` is a last resort and must carry a
///    comment explaining why the discipline cannot be expressed.
#pragma once

#if defined(__clang__)
#define MSRS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MSRS_THREAD_ANNOTATION_(x)  // no-op: GCC/MSVC have no TSA
#endif

/// Declares a type to be a capability (lockable) the analysis can track.
#define MSRS_CAPABILITY(x) MSRS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define MSRS_SCOPED_CAPABILITY MSRS_THREAD_ANNOTATION_(scoped_lockable)

/// Marks a data member as protected by the given capability.
#define MSRS_GUARDED_BY(x) MSRS_THREAD_ANNOTATION_(guarded_by(x))

/// Marks a pointer member whose *pointee* is protected by the capability.
#define MSRS_PT_GUARDED_BY(x) MSRS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that callers must hold the capability (exclusively).
#define MSRS_REQUIRES(...) \
  MSRS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that callers must hold the capability at least shared.
#define MSRS_REQUIRES_SHARED(...) \
  MSRS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the capability and does not release
/// it before returning.
#define MSRS_ACQUIRE(...) \
  MSRS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that the function releases the capability.
#define MSRS_RELEASE(...) \
  MSRS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares a try-lock: acquires the capability iff the return value
/// equals `success`.
#define MSRS_TRY_ACQUIRE(success, ...) \
  MSRS_THREAD_ANNOTATION_(try_acquire_capability(success, __VA_ARGS__))

/// Declares that callers must NOT hold the capability (deadlock guard for
/// functions that acquire it themselves).
#define MSRS_EXCLUDES(...) MSRS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the capability that
/// guards its result.
#define MSRS_RETURN_CAPABILITY(x) MSRS_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts at runtime semantics level that the capability is held (the
/// analysis trusts the assertion).
#define MSRS_ASSERT_CAPABILITY(x) \
  MSRS_THREAD_ANNOTATION_(assert_capability(x))

/// Opts one function out of the analysis entirely. Always pair with a
/// comment explaining why the discipline cannot be expressed.
#define MSRS_NO_THREAD_SAFETY_ANALYSIS \
  MSRS_THREAD_ANNOTATION_(no_thread_safety_analysis)
