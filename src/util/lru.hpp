// LruCache: a bounded least-recently-used map with lifetime counters.
//
// Generalizes the BatchEngine canonical-form cache (engine/batch.hpp) so a
// long-lived process (the serving layer, long corpus sweeps) cannot grow
// without bound: the cache holds at most `capacity` entries and evicts the
// least recently *found or inserted* entry first. find() refreshes recency,
// so steady-state repeated traffic keeps its working set resident.
//
// All operations are O(1) expected (hash map + intrusive recency list).
// Not thread-safe: one cache per shard/thread, or external locking.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace msrs {

// Lifetime counters of one LruCache (monotone except `entries`).
struct LruStats {
  std::size_t hits = 0;        // find() calls that returned an entry
  std::size_t misses = 0;      // find() calls that returned nullptr
  std::size_t insertions = 0;  // insert() calls that added a new entry
  std::size_t evictions = 0;   // entries dropped to respect the capacity
  std::size_t entries = 0;     // resident entries right now
  std::size_t capacity = 0;    // configured bound (0 = unbounded)
};

// Bounded LRU map. `Hash`/`Eq` follow the std::unordered_map contract and
// may implement a coarser equivalence than operator== (the BatchEngine keys
// compare canonical *shapes*, ignoring the per-instance job bijection the
// key also carries — see engine/batch.cpp).
template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class LruCache {
 public:
  using Entry = std::pair<Key, Value>;

  // A cache bounded to `capacity` entries; 0 means unbounded (the caller
  // explicitly opts back into the historical grow-forever behavior).
  explicit LruCache(std::size_t capacity = 0) { stats_.capacity = capacity; }

  // Looks `key` up; a hit refreshes its recency and returns the resident
  // entry (key + value — the stored key can carry payload the probe key
  // lacks, e.g. the representative's job order). nullptr on miss. The
  // returned pointer is valid until the entry is evicted or overwritten.
  const Entry* find(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return &*it->second;
  }

  // Inserts `key -> value` (overwriting any equivalent resident entry) as
  // the most recent entry, then evicts from the cold end until the
  // capacity bound holds again.
  void insert(Key key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(std::move(key), std::move(value));
    index_.emplace(std::cref(order_.front().first), order_.begin());
    ++stats_.insertions;
    ++stats_.entries;
    while (stats_.capacity != 0 && order_.size() > stats_.capacity) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++stats_.evictions;
      --stats_.entries;
    }
  }

  // Drops every entry; counters other than `entries` are preserved.
  void clear() {
    index_.clear();
    order_.clear();
    stats_.entries = 0;
  }

  std::size_t size() const { return order_.size(); }          // resident
  std::size_t capacity() const { return stats_.capacity; }    // bound
  const LruStats& stats() const { return stats_; }            // counters

 private:
  // The index references the keys stored in `order_` (std::list iterators
  // and element addresses are stable under splice/erase of other nodes).
  using KeyRef = std::reference_wrapper<const Key>;
  struct RefHash {
    Hash hash;
    std::size_t operator()(const KeyRef& k) const { return hash(k.get()); }
  };
  struct RefEq {
    Eq eq;
    bool operator()(const KeyRef& a, const KeyRef& b) const {
      return eq(a.get(), b.get());
    }
  };

  std::list<Entry> order_;  // front = most recent
  std::unordered_map<KeyRef, typename std::list<Entry>::iterator, RefHash,
                     RefEq>
      index_;
  LruStats stats_;
};

}  // namespace msrs
