#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace msrs {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.n = sample.size();
  if (sample.empty()) return s;

  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.n);

  double sq = 0.0;
  for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(sq / static_cast<double>(s.n - 1)) : 0.0;

  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = quantile_sorted(sorted, 0.50);
  s.p90 = quantile_sorted(sorted, 0.90);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

double geometric_mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : sample) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

std::string Summary::str() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.4f sd=%.4f min=%.4f p50=%.4f p90=%.4f max=%.4f",
                n, mean, stddev, min, p50, p90, max);
  return buf;
}

}  // namespace msrs
