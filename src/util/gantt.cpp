#include "util/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace msrs {
namespace {

struct Row {
  std::string cells;
  double last_end = -1.0;  // in column units, for overlap detection
};

}  // namespace

std::string render_gantt(std::span<const GanttBlock> blocks,
                         const GanttOptions& options) {
  double horizon = options.horizon;
  int max_machine = -1;
  for (const auto& b : blocks) {
    horizon = std::max(horizon, b.end);
    max_machine = std::max(max_machine, b.machine);
  }
  if (horizon <= 0.0 || max_machine < 0) return "(empty schedule)\n";

  const int width = std::max(16, options.width);
  const double cols_per_unit = static_cast<double>(width) / horizon;

  // machine -> list of rows (first row + continuation rows for overlaps)
  std::map<int, std::vector<Row>> rows;
  for (int machine = 0; machine <= max_machine; ++machine)
    rows[machine].push_back(Row{std::string(static_cast<std::size_t>(width), ' '), -1.0});

  std::vector<GanttBlock> sorted(blocks.begin(), blocks.end());
  std::stable_sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.machine != b.machine ? a.machine < b.machine : a.start < b.start;
  });

  for (const auto& b : sorted) {
    int col_start = static_cast<int>(std::round(b.start * cols_per_unit));
    int col_end = static_cast<int>(std::round(b.end * cols_per_unit));
    col_start = std::clamp(col_start, 0, width - 1);
    col_end = std::clamp(col_end, col_start + 1, width);

    auto& machine_rows = rows[b.machine];
    std::size_t row_idx = 0;
    while (row_idx < machine_rows.size() &&
           machine_rows[row_idx].last_end > static_cast<double>(col_start) + 1e-9)
      ++row_idx;
    if (row_idx == machine_rows.size())
      machine_rows.push_back(Row{std::string(static_cast<std::size_t>(width), ' '), -1.0});
    Row& row = machine_rows[row_idx];

    std::string body = b.label;
    const int inner = col_end - col_start - 2;  // room between the brackets
    if (inner <= 0) {
      body.clear();
    } else if (static_cast<int>(body.size()) > inner) {
      body.resize(static_cast<std::size_t>(inner));
    } else {
      body.append(static_cast<std::size_t>(inner) - body.size(), '#');
    }
    std::string text = "[" + body + "]";
    for (int c = col_start; c < col_end; ++c)
      row.cells[static_cast<std::size_t>(c)] =
          text[static_cast<std::size_t>(c - col_start)];
    row.last_end = col_end;
  }

  std::ostringstream out;
  for (auto& [machine, machine_rows] : rows) {
    bool first = true;
    for (auto& row : machine_rows) {
      if (first) {
        char head[16];
        std::snprintf(head, sizeof head, "m%-3d|", machine);
        out << head;
        first = false;
      } else {
        out << "    |";
      }
      out << row.cells << "|\n";
    }
  }
  if (options.show_axis) {
    out << "    ";
    char axis[64];
    std::snprintf(axis, sizeof axis, "0%*s%.3g", width - 1, "t=", horizon);
    out << axis << '\n';
  }
  return out.str();
}

}  // namespace msrs
