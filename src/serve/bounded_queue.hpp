/// \file
/// BoundedQueue: a small bounded MPMC queue, the admission point of the
/// serving layer.
///
/// Producers choose their backpressure mode per call: push() blocks while
/// the queue is full (stdin pipelines, in-process benches), try_push()
/// returns immediately so the caller can shed load with a named
/// `overloaded` error (socket serving). close() wakes everyone; consumers
/// drain the remaining items and then see end-of-stream.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace msrs::serve {

/// Bounded MPMC FIFO. All operations are thread-safe.
///
/// Storage is a ring buffer preallocated at construction: pushing never
/// allocates, so a producer's allocation count is independent of how far
/// the consumers have fallen behind (a deque's block churn would vary
/// with that race — visible in the e13 `allocs_per_op` determinism
/// contract) and the hot path stays allocation-free.
template <typename T>
class BoundedQueue {
 public:
  /// A queue admitting at most `capacity` (>= 1) queued items.
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  /// Blocks until space is available (backpressure), then enqueues by
  /// moving from `item`. Returns false — leaving `item` untouched — once
  /// the queue is closed, so the caller can still answer the request.
  bool push(T& item) {
    std::unique_lock lock(mutex_);
    space_.wait(lock, [this] { return closed_ || count_ < ring_.size(); });
    if (closed_) return false;
    enqueue(item);
    lock.unlock();
    ready_.notify_one();
    return true;
  }

  /// Enqueues (moving from `item`) only if space is available right now;
  /// false — leaving `item` untouched — when full or closed (the caller
  /// turns this into a named rejection).
  bool try_push(T& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || count_ >= ring_.size()) return false;
      enqueue(item);
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next item; std::nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;
    std::optional<T> item(std::move(ring_[head_]));
    head_ = (head_ + 1) % ring_.size();
    --count_;
    lock.unlock();
    space_.notify_one();
    return item;
  }

  /// Closes the queue: pending and future push() calls fail, consumers
  /// drain what is left. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Queued (not yet popped) items right now.
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return count_;
  }

 private:
  void enqueue(T& item) {  // callers hold mutex_ and checked for space
    ring_[(head_ + count_) % ring_.size()] = std::move(item);
    ++count_;
  }

  mutable std::mutex mutex_;
  std::condition_variable ready_;  // consumers wait: item or closed
  std::condition_variable space_;  // producers wait: space or closed
  std::vector<T> ring_;            // fixed slots; [head_, head_+count_)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace msrs::serve
