/// \file
/// BoundedQueue: a small bounded MPMC queue, the admission point of the
/// serving layer.
///
/// Producers choose their backpressure mode per call: push() blocks while
/// the queue is full (stdin pipelines, in-process benches), try_push()
/// returns immediately so the caller can shed load with a named
/// `overloaded` error (socket serving). close() wakes everyone; consumers
/// drain the remaining items and then see end-of-stream.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace msrs::serve {

/// Bounded MPMC FIFO. All operations are thread-safe; the lock discipline
/// is annotated for Clang's thread-safety analysis.
///
/// Storage is a ring buffer preallocated at construction: pushing never
/// allocates, so a producer's allocation count is independent of how far
/// the consumers have fallen behind (a deque's block churn would vary
/// with that race — visible in the e13 `allocs_per_op` determinism
/// contract) and the hot path stays allocation-free.
template <typename T>
class BoundedQueue {
 public:
  /// A queue admitting at most `capacity` (>= 1) queued items.
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  /// Blocks until space is available (backpressure), then enqueues by
  /// moving from `item`. Returns false — leaving `item` untouched — once
  /// the queue is closed, so the caller can still answer the request.
  bool push(T& item) MSRS_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      while (!closed_ && count_ >= ring_.size()) space_.wait(mutex_);
      if (closed_) return false;
      enqueue_locked(item);
    }
    ready_.notify_one();
    return true;
  }

  /// Enqueues (moving from `item`) only if space is available right now;
  /// false — leaving `item` untouched — when full or closed (the caller
  /// turns this into a named rejection).
  bool try_push(T& item) MSRS_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      if (closed_ || count_ >= ring_.size()) return false;
      enqueue_locked(item);
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next item; std::nullopt once closed and drained.
  std::optional<T> pop() MSRS_EXCLUDES(mutex_) {
    std::optional<T> item;
    {
      util::MutexLock lock(mutex_);
      while (!closed_ && count_ == 0) ready_.wait(mutex_);
      if (count_ == 0) return std::nullopt;
      item.emplace(std::move(ring_[head_]));
      head_ = (head_ + 1) % ring_.size();
      --count_;
    }
    space_.notify_one();
    return item;
  }

  /// Closes the queue: pending and future push() calls fail, consumers
  /// drain what is left. Idempotent.
  void close() MSRS_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Queued (not yet popped) items right now.
  std::size_t size() const MSRS_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return count_;
  }

 private:
  // Callers hold mutex_ and have checked for space.
  void enqueue_locked(T& item) MSRS_REQUIRES(mutex_) {
    ring_[(head_ + count_) % ring_.size()] = std::move(item);
    ++count_;
  }

  mutable util::Mutex mutex_;
  util::CondVar ready_;  // consumers wait: item or closed
  util::CondVar space_;  // producers wait: space or closed
  // Fixed slots; live items occupy [head_, head_+count_) mod size.
  std::vector<T> ring_ MSRS_GUARDED_BY(mutex_);
  std::size_t head_ MSRS_GUARDED_BY(mutex_) = 0;
  std::size_t count_ MSRS_GUARDED_BY(mutex_) = 0;
  bool closed_ MSRS_GUARDED_BY(mutex_) = false;
};

}  // namespace msrs::serve
