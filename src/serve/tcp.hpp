/// \file
/// TCP transport: a single-threaded, level-triggered epoll event loop
/// (serve/event_loop.hpp) behind `msrs_engine_cli serve --tcp=HOST:PORT`,
/// plus the blocking line client the load driver and tests connect with.
///
/// One JSONL stream per connection, responses in that connection's request
/// order (one OrderedWriter per connection). The loop owns non-blocking
/// accept, per-connection bounded read/write buffers with framing across
/// arbitrary packetization, idle-timeout reaping via a timer wheel, and a
/// connection budget (serve/conn_budget.hpp) that sheds over-budget
/// accepts with one named `overloaded` line before close. Shard workers
/// deliver responses into a connection's outbox under its lock and nudge
/// the loop through an eventfd; only the loop thread touches sockets.
///
/// Response bytes are identical to the stdio transport for the same
/// request stream — including a final unterminated line, which is flushed
/// as a request on orderly EOF exactly as std::getline would read it
/// (tests/test_tcp.cpp pins this byte-identity under adversarial
/// chunking). Only built where an event-loop poller exists (Linux);
/// elsewhere the entry points fail with a descriptive error.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace msrs::serve {

/// True when this build carries the TCP event-loop transport.
bool tcp_transport_available();

/// Options of the TCP server loop.
struct TcpOptions {
  /// Live-connection budget: over-budget accepts are answered with one
  /// `overloaded` error line and closed (counted as `serve.tcp.shed`).
  std::size_t max_connections = 1024;
  /// Connections idle (no bytes read) longer than this are reaped — closed
  /// and counted as `serve.tcp.idle_reaped`. 0 disables reaping.
  std::uint64_t idle_timeout_ms = 60'000;
  /// Read-buffer bound: a single request line longer than this is answered
  /// with a named `parse_error` and the connection is closed.
  std::size_t max_line_bytes = 1 << 20;
  /// Soft write-buffer bound: while a connection's outbox holds more than
  /// this, the loop stops reading from it (backpressure on a slow
  /// consumer) until the outbox drains below half the bound.
  std::size_t write_gate_bytes = 256 << 10;
  /// Poll tick in milliseconds: the upper bound on how long the loop
  /// sleeps before noticing stop flags and timer-wheel deadlines.
  int tick_ms = 100;
  /// Invoked once from the serve loop with the bound port (useful with
  /// port 0 — tests and `serve --port-file`).
  std::function<void(std::uint16_t)> on_listen;
  /// Optional HTTP exposition listener ("HOST:PORT", "" = disabled): the
  /// same loop thread serves `GET /metrics`, `/healthz`, `/recorder` and
  /// `/watchdog` (serve/http.hpp), one request per connection. While the
  /// service drains, `/healthz` keeps answering — with 503.
  std::string http;
  /// Invoked once with the bound HTTP port (port 0 — `--http-port-file`).
  std::function<void(std::uint16_t)> on_http_listen;
  /// Monitoring cadence: the loop calls Service::monitor_tick() (watchdog
  /// evaluation + auto-dump) at this interval. 0 disables ticking.
  int monitor_interval_ms = 1000;
};

/// Splits "HOST:PORT" (the last ':' wins, so bracketless IPv6 hosts are
/// not supported). False + `*error` on a malformed target.
bool parse_host_port(const std::string& target, std::string* host,
                     std::uint16_t* port, std::string* error);

/// Binds `host_port` ("HOST:PORT"; port 0 picks an ephemeral port,
/// reported via TcpOptions::on_listen), accepts connections, and serves
/// until a stop signal or a client `shutdown` op; then drains in-flight
/// requests, flushes every connection's pending responses, and closes.
/// While draining, the HTTP listener (TcpOptions::http) keeps serving so
/// `/healthz` can report 503. An empty `host_port` is accepted when an
/// HTTP target is configured (exposition-only loop). Connection metrics
/// land in the service's registry (`serve.tcp.*`). Returns the process
/// exit code (0 = clean; 1 with `*error` filled on setup failure).
int serve_tcp(Service& service, const std::string& host_port,
              std::string* error, TcpOptions options = {});

/// Blocking line-oriented TCP client of one serving connection — the
/// driver's fan-in client and the scripted raw-socket client of the
/// transport test harness (adversarial chunking, half-close, RST).
class TcpClient : public LineClient {
 public:
  /// An unconnected client.
  TcpClient() = default;
  /// Closes the connection if still open.
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;             ///< not copyable
  TcpClient& operator=(const TcpClient&) = delete;  ///< not copyable

  /// Connects to "HOST:PORT"; false + `*error` on failure.
  bool connect(const std::string& host_port, std::string* error);

  /// Sends one request line (newline appended). False on a broken pipe.
  bool send_line(const std::string& line) override;

  /// Sends raw bytes exactly as given — the adversarial-chunking hook (no
  /// framing, no newline). False on a broken pipe.
  bool send_bytes(const char* data, std::size_t size);

  /// Half-closes the write side (the server sees orderly EOF and flushes
  /// any unterminated final line) while responses remain readable.
  void shutdown_write();

  /// Receives the next response line (newline stripped); false on EOF or
  /// a read error.
  bool recv_line(std::string* line) override;

  /// Closes the connection abruptly: SO_LINGER 0 makes close() emit RST
  /// instead of FIN — the "client killed mid-request" fault.
  void abort_connection();

  /// Closes the connection (idempotent).
  void close() override;

 private:
  int fd_ = -1;
  std::string buffer_;       // bytes read but not yet returned
  std::size_t scanned_ = 0;  // prefix of buffer_ known to hold no newline
};

/// Connects to whichever target is non-empty — `tcp_target` ("HOST:PORT")
/// wins over `unix_path` — and returns the connected client, or null with
/// `*error` filled (also when both targets are empty). The driver and the
/// `stats` subcommand speak to either transport through this one seam.
std::unique_ptr<LineClient> connect_line_client(const std::string& unix_path,
                                                const std::string& tcp_target,
                                                std::string* error);

}  // namespace msrs::serve
