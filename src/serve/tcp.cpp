#include "serve/tcp.hpp"

#include <cerrno>
#include <cstring>
#include <string>

#include "serve/event_loop.hpp"
#include "serve/transport.hpp"

namespace msrs::serve {

bool tcp_transport_available() { return poller_available(); }

bool parse_host_port(const std::string& target, std::string* host,
                     std::uint16_t* port, std::string* error) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == target.size()) {
    if (error) *error = "expected HOST:PORT, got: " + target;
    return false;
  }
  unsigned long value = 0;
  for (std::size_t i = colon + 1; i < target.size(); ++i) {
    const char c = target[i];
    if (c < '0' || c > '9' || value > 65535) {
      if (error) *error = "bad port in target: " + target;
      return false;
    }
    value = value * 10 + static_cast<unsigned long>(c - '0');
  }
  if (value > 65535) {
    if (error) *error = "bad port in target: " + target;
    return false;
  }
  if (host) *host = target.substr(0, colon);
  if (port) *port = static_cast<std::uint16_t>(value);
  return true;
}

std::unique_ptr<LineClient> connect_line_client(const std::string& unix_path,
                                                const std::string& tcp_target,
                                                std::string* error) {
  if (!tcp_target.empty()) {
    auto client = std::make_unique<TcpClient>();
    if (!client->connect(tcp_target, error)) return nullptr;
    return client;
  }
  if (!unix_path.empty()) {
    auto client = std::make_unique<SocketClient>();
    if (!client->connect(unix_path, error)) return nullptr;
    return client;
  }
  if (error) *error = "no target: need a UNIX socket path or HOST:PORT";
  return nullptr;
}

}  // namespace msrs::serve

#if !defined(_WIN32)

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace msrs::serve {
namespace {

// Writes the whole buffer over a blocking socket, retrying on
// EINTR/partial writes. MSG_NOSIGNAL turns a dead peer into an error
// return instead of SIGPIPE.
bool send_all_blocking(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace

// ---------------- TcpClient ----------------

TcpClient::~TcpClient() { close(); }

bool TcpClient::connect(const std::string& host_port, std::string* error) {
  close();
  std::string host;
  std::uint16_t port = 0;
  if (!parse_host_port(host_port, &host, &port, error)) return false;
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    if (error) *error = "resolve " + host + ": " + ::gai_strerror(rc);
    return false;
  }
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(results);
  if (fd_ < 0) {
    if (error) *error = "connect " + host_port + ": " + std::strerror(errno);
    return false;
  }
  const int one = 1;  // latency over batching: requests are single lines
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool TcpClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  return send_all_blocking(fd_, framed.data(), framed.size());
}

bool TcpClient::send_bytes(const char* data, std::size_t size) {
  if (fd_ < 0) return false;
  return send_all_blocking(fd_, data, size);
}

void TcpClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool TcpClient::recv_line(std::string* line) {
  if (fd_ < 0) return false;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return true;
    }
    scanned_ = buffer_.size();
    const ssize_t got = ::read(fd_, chunk, sizeof chunk);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

void TcpClient::abort_connection() {
  if (fd_ < 0) return;
  // SO_LINGER with a zero timeout makes close() send RST and discard any
  // unsent/unread data — the wire signature of a client killed mid-flight.
  linger lg = {};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  close();
}

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  scanned_ = 0;
}

}  // namespace msrs::serve

#else  // _WIN32: no TCP client; every operation fails descriptively.

namespace msrs::serve {

TcpClient::~TcpClient() = default;
bool TcpClient::connect(const std::string&, std::string* error) {
  if (error) *error = "TCP transport is unavailable on this platform";
  return false;
}
bool TcpClient::send_line(const std::string&) { return false; }
bool TcpClient::send_bytes(const char*, std::size_t) { return false; }
void TcpClient::shutdown_write() {}
bool TcpClient::recv_line(std::string*) { return false; }
void TcpClient::abort_connection() {}
void TcpClient::close() {}

}  // namespace msrs::serve

#endif

// ---------------- server (needs the epoll event loop) ----------------

#if defined(__linux__)

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/conn_budget.hpp"
#include "serve/http.hpp"
#include "util/sync.hpp"

namespace msrs::serve {
namespace {

// One live TCP connection owned by the event loop. Socket I/O and the
// reading/draining flags are touched only on the loop thread; shard
// workers reach just the outbox (under `mutex`) through the OrderedWriter
// sink.
struct TcpConn {
  explicit TcpConn(std::size_t max_line_bytes) : framer(max_line_bytes) {}

  // fd is deliberately NOT mutex-guarded: only the loop thread writes it
  // (close_conn, under the lock), the loop thread reads it lock-free
  // (single-writer, same thread), and the one cross-thread reader — the
  // OrderedWriter sink — reads it under the lock, pairing with the locked
  // write. The analysis cannot express "guarded for cross-thread access
  // only", so the discipline is documented here instead.
  int fd = -1;
  LineFramer framer;
  std::unique_ptr<OrderedWriter> writer;
  bool http = false;      // HTTP-listener connection (serve/http.hpp)
  std::string http_buf;   // buffered request head of an HTTP connection
  bool reading = true;     // read interest armed (false while gated)
  bool want_write = false;  // write interest armed (partial flush pending)
  bool draining = false;   // no more reads; close once responses flush

  util::Mutex mutex;
  /// Rendered response bytes pending write.
  std::string outbox MSRS_GUARDED_BY(mutex);
  /// Written prefix of outbox.
  std::size_t offset MSRS_GUARDED_BY(mutex) = 0;
  std::size_t outbox_highwater MSRS_GUARDED_BY(mutex) = 0;
  /// Sink drops late deliveries once set.
  bool closed MSRS_GUARDED_BY(mutex) = false;
};

// The event loop: one thread owning the listen socket, every connection
// fd, the framers and the timer wheel. Responses completed on shard
// worker threads land in per-connection outboxes and nudge the loop via
// an eventfd; the loop is the only thread that reads, writes or closes a
// socket, so connection state needs no further locking.
class TcpServer {
 public:
  TcpServer(Service& service, const TcpOptions& options)
      : service_(service),
        options_(options),
        wheel_(options.tick_ms <= 0 ? 100 : options.tick_ms, 512),
        budget_(options.max_connections,
                service.metrics().counter("serve.tcp.accepted"),
                service.metrics().counter("serve.tcp.shed"),
                service.metrics().gauge("serve.tcp.active")),
        idle_reaped_(service.metrics().counter("serve.tcp.idle_reaped")),
        read_hw_gauge_(
            service.metrics().gauge("serve.tcp.read_buf_highwater")),
        write_hw_gauge_(
            service.metrics().gauge("serve.tcp.write_buf_highwater")) {}

  int run(const std::string& host_port, std::string* error) {
    if (!host_port.empty()) {
      std::string host;
      std::uint16_t port = 0;
      if (!parse_host_port(host_port, &host, &port, error)) return 1;
      listen_fd_ = listen_on(host, port, error, options_.on_listen);
      if (listen_fd_ < 0) return 1;
    } else if (options_.http.empty()) {
      if (error) *error = "no TCP target: need a JSONL or HTTP address";
      return 1;
    }
    if (!options_.http.empty()) {
      std::string host;
      std::uint16_t port = 0;
      if (!parse_host_port(options_.http, &host, &port, error) ||
          (http_listen_fd_ =
               listen_on(host, port, error, options_.on_http_listen)) < 0) {
        if (listen_fd_ >= 0) ::close(listen_fd_);
        return 1;
      }
    }
    poller_ = make_poller(error);
    if (!poller_) {
      if (listen_fd_ >= 0) ::close(listen_fd_);
      if (http_listen_fd_ >= 0) ::close(http_listen_fd_);
      return 1;
    }
    if (listen_fd_ >= 0)
      poller_->add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
    if (http_listen_fd_ >= 0)
      poller_->add(http_listen_fd_, /*want_read=*/true, /*want_write=*/false);
    if (wakeup_.fd() >= 0)
      poller_->add(wakeup_.fd(), /*want_read=*/true, /*want_write=*/false);
    install_stop_signals();

    const int tick = options_.tick_ms <= 0 ? 100 : options_.tick_ms;
    std::vector<Poller::Event> events;
    std::vector<int> expired;
    while (service_.accepting() && !stop_requested()) {
      events.clear();
      poller_->wait(&events, tick);  // EINTR/timeout: housekeeping only
      now_ms_ = elapsed_ms();
      process_events(events);
      flush_dirty();
      reap_idle(expired);
      monitor_maybe();
    }
    drain_and_close();
    return 0;
  }

 private:
  // One poll batch: accepts on both listeners, wakeup drain, per-conn I/O.
  void process_events(const std::vector<Poller::Event>& events) {
    for (const Poller::Event& event : events) {
      if (listen_fd_ >= 0 && event.fd == listen_fd_) {
        accept_new(listen_fd_, /*http=*/false);
        continue;
      }
      if (http_listen_fd_ >= 0 && event.fd == http_listen_fd_) {
        accept_new(http_listen_fd_, /*http=*/true);
        continue;
      }
      if (event.fd == wakeup_.fd()) {
        wakeup_.drain();
        continue;
      }
      const auto it = conns_.find(event.fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      std::shared_ptr<TcpConn> conn = it->second;
      if (event.readable && conn->reading) {
        if (conn->http)
          handle_http_read(conn);
        else
          handle_read(conn);
      }
      if (conns_.count(event.fd) == 0) continue;  // closed by the read
      if (event.writable && !flush_conn(conn)) {
        close_conn(conn);
        continue;
      }
      if (event.error && conns_.count(event.fd) != 0) close_conn(conn);
    }
  }

  // Calls Service::monitor_tick() once per monitor interval of loop time.
  void monitor_maybe() {
    if (options_.monitor_interval_ms <= 0) return;
    const std::uint64_t interval =
        static_cast<std::uint64_t>(options_.monitor_interval_ms);
    if (now_ms_ - last_monitor_ms_ < interval) return;
    last_monitor_ms_ = now_ms_;
    service_.monitor_tick();
  }

  std::uint64_t elapsed_ms() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  // Binds and listens on host:port; returns the fd (-1 + *error on
  // failure) and reports the bound port through `notify` (ephemeral-port
  // support for both the JSONL and the HTTP listener).
  int listen_on(const std::string& host, std::uint16_t port,
                std::string* error,
                const std::function<void(std::uint16_t)>& notify) {
    int listen_fd = -1;
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
    addrinfo* results = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                 &hints, &results);
    if (rc != 0) {
      if (error) *error = "resolve " + host + ": " + ::gai_strerror(rc);
      return -1;
    }
    for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family,
                              ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                              ai->ai_protocol);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
          ::listen(fd, 512) == 0) {
        listen_fd = fd;
        break;
      }
      ::close(fd);
    }
    ::freeaddrinfo(results);
    if (listen_fd < 0) {
      if (error)
        *error = "listen " + host + ":" + std::to_string(port) + ": " +
                 std::strerror(errno);
      return -1;
    }
    if (notify) {
      sockaddr_storage bound = {};
      socklen_t len = sizeof bound;
      std::uint16_t actual = port;
      if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                        &len) == 0) {
        if (bound.ss_family == AF_INET)
          actual = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
        else if (bound.ss_family == AF_INET6)
          actual = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
      notify(actual);
    }
    return listen_fd;
  }

  void accept_new(int listen_fd, bool http) {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN: accepted everything pending
      }
      if (!budget_.try_acquire()) {
        if (obs::FlightRecorder* recorder = service_.recorder())
          recorder->record(
              obs::EventKind::kShed, 0,
              obs::recorder_ts_ns(std::chrono::steady_clock::now()), 0xff, 0,
              0);
        // Shed with one named line (HTTP peers get a framed 503), then
        // close. A fresh socket's send buffer is empty, so the single
        // nonblocking send goes through.
        const std::string line =
            http ? http_response(503, "text/plain", "overloaded\n")
                 : error_response(Json(), WireError::kOverloaded,
                                  "connection limit reached") +
                       "\n";
        [[maybe_unused]] const ssize_t sent =
            ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_shared<TcpConn>(options_.max_line_bytes);
      conn->fd = fd;
      conn->http = http;
      TcpConn* raw = conn.get();
      // The sink holds a raw pointer, not the shared_ptr (that would be a
      // conn -> writer -> sink -> conn cycle). Safe: every deliver() path
      // runs through a callback owning the shared_ptr, so the connection
      // outlives any sink invocation.
      conn->writer =
          std::make_unique<OrderedWriter>([this, raw](const std::string& line) {
            int conn_fd = -1;
            {
              util::MutexLock lock(raw->mutex);
              if (raw->closed) return;  // response after abrupt close
              raw->outbox.append(line);
              raw->outbox.push_back('\n');
              raw->outbox_highwater = std::max(
                  raw->outbox_highwater, raw->outbox.size() - raw->offset);
              conn_fd = raw->fd;  // fd is invalidated under this lock
            }
            mark_dirty(conn_fd);
          });
      if (options_.idle_timeout_ms > 0)
        wheel_.arm(fd, now_ms_ + options_.idle_timeout_ms);
      poller_->add(fd, /*want_read=*/true, /*want_write=*/false);
      conns_.emplace(fd, std::move(conn));
    }
  }

  void mark_dirty(int fd) MSRS_EXCLUDES(dirty_mutex_) {
    {
      util::MutexLock lock(dirty_mutex_);
      dirty_.push_back(fd);
    }
    wakeup_.signal();
  }

  void submit_line(const std::shared_ptr<TcpConn>& conn, std::string&& line) {
    const std::uint64_t seq = conn->writer->reserve();
    OrderedWriter* writer = conn->writer.get();
    service_.submit(line, [conn, writer, seq](std::string&& response) {
      writer->deliver(seq, std::move(response));
    });
  }

  void handle_read(const std::shared_ptr<TcpConn>& conn) {
    char chunk[16384];
    bool eof = false;
    for (;;) {
      const ssize_t got = ::read(conn->fd, chunk, sizeof chunk);
      if (got > 0) {
        conn->framer.append(chunk, static_cast<std::size_t>(got));
        if (options_.idle_timeout_ms > 0)
          wheel_.arm(conn->fd, now_ms_ + options_.idle_timeout_ms);
        continue;
      }
      if (got == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);  // ECONNRESET and friends: abrupt teardown
      return;
    }
    note_read_highwater(conn->framer.highwater());
    std::string line;
    while (conn->framer.next_line(&line)) {
      if (line.empty()) continue;  // the stdio transport skips them too
      if (line.size() > options_.max_line_bytes) {
        reject_oversized(conn);
        return;
      }
      // After a shutdown op keeps submitting: each line already on the
      // wire still gets its (shutting_down) response, per the
      // one-response-per-request contract (same as the socket transport).
      submit_line(conn, std::move(line));
    }
    if (conn->framer.overflowed()) {
      reject_oversized(conn);
      return;
    }
    if (eof) {
      // Orderly EOF: flush the unterminated final line as a request —
      // std::getline does on the stdio transport, and byte-identity
      // between the transports is a tested contract.
      std::string tail = conn->framer.take_remainder();
      if (!tail.empty()) submit_line(conn, std::move(tail));
      begin_drain(conn);
      return;
    }
    if (!service_.accepting()) begin_drain(conn);
  }

  // Reads an HTTP connection until its request head is complete, routes
  // it, queues the single response and drains the connection (the
  // responses carry `Connection: close` — one request per connection).
  void handle_http_read(const std::shared_ptr<TcpConn>& conn) {
    constexpr std::size_t kHeadBound = 8192;  // heads are a handful of lines
    char chunk[4096];
    bool eof = false;
    for (;;) {
      const ssize_t got = ::read(conn->fd, chunk, sizeof chunk);
      if (got > 0) {
        conn->http_buf.append(chunk, static_cast<std::size_t>(got));
        if (options_.idle_timeout_ms > 0)
          wheel_.arm(conn->fd, now_ms_ + options_.idle_timeout_ms);
        continue;
      }
      if (got == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);
      return;
    }
    if (conn->http_buf.size() > kHeadBound) {
      queue_http(conn,
                 http_response(400, "text/plain", "request head too large\n"));
      return;
    }
    HttpRequest request;
    const HttpParse parsed =
        parse_http_request(conn->http_buf, &request, nullptr);
    if (parsed == HttpParse::kIncomplete) {
      if (eof) close_conn(conn);  // peer gave up mid-head
      return;
    }
    queue_http(conn, parsed == HttpParse::kBad
                         ? http_response(400, "text/plain", "bad request\n")
                         : http_route(service_, request));
  }

  // Appends a complete HTTP response to the outbox and starts the drain.
  void queue_http(const std::shared_ptr<TcpConn>& conn,
                  std::string&& response) {
    {
      util::MutexLock lock(conn->mutex);
      conn->outbox.append(response);
      conn->outbox_highwater = std::max(conn->outbox_highwater,
                                        conn->outbox.size() - conn->offset);
    }
    begin_drain(conn);
  }

  void reject_oversized(const std::shared_ptr<TcpConn>& conn) {
    const std::uint64_t seq = conn->writer->reserve();
    conn->writer->deliver(
        seq, error_response(Json(), WireError::kParseError,
                            "request line exceeds the transport limit"));
    begin_drain(conn);
  }

  void begin_drain(const std::shared_ptr<TcpConn>& conn) {
    conn->draining = true;
    conn->reading = false;
    wheel_.cancel(conn->fd);
    if (!flush_conn(conn)) close_conn(conn);
  }

  // Writes as much of the outbox as the socket accepts, re-arms interest
  // and applies read gating. False on a fatal write error (peer gone).
  bool flush_conn(const std::shared_ptr<TcpConn>& conn) {
    std::size_t pending = 0;
    std::size_t highwater = 0;
    {
      util::MutexLock lock(conn->mutex);
      while (conn->offset < conn->outbox.size()) {
        const ssize_t sent =
            ::send(conn->fd, conn->outbox.data() + conn->offset,
                   conn->outbox.size() - conn->offset, MSG_NOSIGNAL);
        if (sent > 0) {
          conn->offset += static_cast<std::size_t>(sent);
          continue;
        }
        if (sent < 0 && errno == EINTR) continue;
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        return false;
      }
      if (conn->offset >= conn->outbox.size()) {
        conn->outbox.clear();
        conn->offset = 0;
      }
      pending = conn->outbox.size() - conn->offset;
      highwater = conn->outbox_highwater;
    }
    note_write_highwater(highwater);
    conn->want_write = pending > 0;
    if (!conn->draining) {
      // Backpressure on a slow consumer: stop reading while its outbox is
      // over the gate, resume once it drains below half.
      if (pending > options_.write_gate_bytes)
        conn->reading = false;
      else if (!conn->reading && pending <= options_.write_gate_bytes / 2)
        conn->reading = true;
    }
    poller_->modify(conn->fd, conn->reading, conn->want_write);
    try_finish(conn);
    return true;
  }

  // Closes a draining connection once every reserved response has been
  // delivered and written to the socket.
  void try_finish(const std::shared_ptr<TcpConn>& conn) {
    if (!conn->draining) return;
    // drained() first, outbox second, both without holding the other's
    // lock (sink takes conn->mutex inside the writer's lock — acquiring
    // them here in the opposite order would be an inversion). No deliver
    // can slip between the checks: drained() true means every reserved
    // slot has been written, and a draining connection reserves no more.
    if (!conn->writer->drained()) return;
    bool empty = false;
    {
      util::MutexLock lock(conn->mutex);
      empty = conn->offset >= conn->outbox.size();
    }
    if (empty) close_conn(conn);
  }

  void flush_dirty() MSRS_EXCLUDES(dirty_mutex_) {
    std::vector<int> dirty;
    {
      util::MutexLock lock(dirty_mutex_);
      dirty.swap(dirty_);
    }
    for (const int fd : dirty) {
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // already closed (or fd reused)
      const std::shared_ptr<TcpConn> conn = it->second;
      if (!flush_conn(conn)) close_conn(conn);
    }
  }

  void reap_idle(std::vector<int>& expired) {
    if (options_.idle_timeout_ms == 0) return;
    expired.clear();
    wheel_.advance(now_ms_, &expired);
    for (const int fd : expired) {
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      const std::shared_ptr<TcpConn> conn = it->second;
      if (conn->draining) continue;  // already on its way out
      idle_reaped_.inc();
      close_conn(conn);
    }
  }

  void close_conn(const std::shared_ptr<TcpConn>& conn) {
    if (conn->fd < 0) return;
    const int fd = conn->fd;
    std::size_t write_highwater = 0;
    {
      util::MutexLock lock(conn->mutex);
      if (conn->closed) return;
      conn->closed = true;
      conn->fd = -1;  // the sink reads fd under this lock
      write_highwater = conn->outbox_highwater;
    }
    note_read_highwater(conn->framer.highwater());
    note_write_highwater(write_highwater);
    poller_->remove(fd);
    wheel_.cancel(fd);
    ::close(fd);
    conns_.erase(fd);
    budget_.release();
  }

  void note_read_highwater(std::size_t value) {
    if (value > read_hw_max_) {
      read_hw_max_ = value;
      read_hw_gauge_.set(static_cast<std::int64_t>(value));
    }
  }

  void note_write_highwater(std::size_t value) {
    if (value > write_hw_max_) {
      write_hw_max_ = value;
      write_hw_gauge_.set(static_cast<std::int64_t>(value));
    }
  }

  void drain_and_close() {
    // The JSONL listener closes now; the HTTP listener stays up through
    // the drain so `/healthz` keeps answering (with 503 — the service no
    // longer accepts).
    if (listen_fd_ >= 0) {
      poller_->remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Every admitted request is answered (shutting_down past the
    // deadline) before shutdown returns. That can take up to 30s, so it
    // waits on a helper thread while this loop keeps serving HTTP scrapes
    // and flushing response bytes to still-connected peers.
    std::atomic<bool> drained{false};
    std::thread waiter([this, &drained] {
      service_.shutdown(std::chrono::seconds(30));
      drained.store(true);
      wakeup_.signal();
    });
    const int tick = options_.tick_ms <= 0 ? 100 : options_.tick_ms;
    std::vector<Poller::Event> drain_events;
    std::vector<int> drain_expired;
    while (!drained.load()) {
      drain_events.clear();
      poller_->wait(&drain_events, tick);
      now_ms_ = elapsed_ms();
      process_events(drain_events);
      flush_dirty();
      reap_idle(drain_expired);
    }
    waiter.join();
    // wait_drained guarantees the last sink invocation has happened —
    // after this, outboxes are final.
    // order-insensitive: waits on every writer; visiting order is moot.
    for (const auto& [fd, conn] : conns_) conn->writer->wait_drained();
    // Bounded flush phase: push the final outboxes to every peer still
    // reading; give up on the rest after the deadline.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::vector<Poller::Event> events;
    while (!conns_.empty() && std::chrono::steady_clock::now() < deadline) {
      std::vector<std::shared_ptr<TcpConn>> open;
      open.reserve(conns_.size());
      // order-insensitive: collects handles to flush; each conn's bytes
      // are ordered by its own OrderedWriter, never by this iteration.
      for (const auto& [fd, conn] : conns_) open.push_back(conn);
      for (const std::shared_ptr<TcpConn>& conn : open) {
        conn->draining = true;
        conn->reading = false;
        if (!flush_conn(conn)) close_conn(conn);
      }
      if (conns_.empty()) break;
      events.clear();
      poller_->wait(&events, 50);
    }
    std::vector<std::shared_ptr<TcpConn>> rest;
    rest.reserve(conns_.size());
    // order-insensitive: every remaining conn gets closed; order is moot.
    for (const auto& [fd, conn] : conns_) rest.push_back(conn);
    for (const std::shared_ptr<TcpConn>& conn : rest) close_conn(conn);
    if (http_listen_fd_ >= 0) {
      poller_->remove(http_listen_fd_);
      ::close(http_listen_fd_);
      http_listen_fd_ = -1;
    }
  }

  Service& service_;
  TcpOptions options_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::uint64_t now_ms_ = 0;  // loop-iteration timestamp (ms since start_)
  std::unique_ptr<Poller> poller_;
  WakeupFd wakeup_;
  TimerWheel wheel_;
  ConnectionBudget budget_;
  obs::Counter& idle_reaped_;
  obs::Gauge& read_hw_gauge_;
  obs::Gauge& write_hw_gauge_;
  std::size_t read_hw_max_ = 0;
  std::size_t write_hw_max_ = 0;
  int listen_fd_ = -1;
  int http_listen_fd_ = -1;
  std::uint64_t last_monitor_ms_ = 0;  // last monitor_tick() loop time
  std::unordered_map<int, std::shared_ptr<TcpConn>> conns_;
  util::Mutex dirty_mutex_;
  /// Fds with freshly appended outbox bytes.
  std::vector<int> dirty_ MSRS_GUARDED_BY(dirty_mutex_);
};

}  // namespace

int serve_tcp(Service& service, const std::string& host_port,
              std::string* error, TcpOptions options) {
  TcpServer server(service, options);
  return server.run(host_port, error);
}

}  // namespace msrs::serve

#else  // no epoll event loop on this platform

namespace msrs::serve {

int serve_tcp(Service&, const std::string&, std::string* error, TcpOptions) {
  if (error) *error = "TCP transport is unavailable on this platform";
  return 1;
}

}  // namespace msrs::serve

#endif
