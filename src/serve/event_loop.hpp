/// \file
/// Event-loop building blocks of the TCP transport (serve/tcp.hpp): the
/// readiness-API seam, a lazy timer wheel for idle-timeout reaping, a
/// bounded JSONL reassembly buffer, and a cross-thread wakeup fd.
///
/// The pieces are deliberately independent of any socket code so the
/// protocol state machine is testable byte-by-byte without a kernel in the
/// loop (tests/test_tcp.cpp, the chunking fuzzer in tests/test_fuzz.cpp):
///
///   Poller     — virtual readiness interface; make_poller() returns the
///                level-triggered epoll implementation on Linux. The
///                abstraction seam exists so an io_uring (or kqueue)
///                backend can slot in without touching the transport.
///   TimerWheel — O(1) arm/cancel hashed wheel with lazy re-parking;
///                drives per-connection idle deadlines.
///   LineFramer — bounded per-connection read buffer that reassembles
///                newline-delimited frames across arbitrary packetization
///                (1-byte writes, mid-JSON splits, coalesced requests).
///   WakeupFd   — edge-coalescing eventfd so shard workers finishing a
///                response can nudge a sleeping event loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace msrs::serve {

/// Readiness-notification seam of the event loop. One implementation per
/// OS facility; the transport only speaks this interface, so swapping
/// epoll for io_uring is a new make_*_poller factory, not a rewrite.
/// Level-triggered semantics: an fd with unread input (or writable space,
/// when write interest is armed) reports ready on every wait().
class Poller {
 public:
  /// One readiness report of wait().
  struct Event {
    int fd = -1;           ///< the ready descriptor
    bool readable = false; ///< input available (or EOF pending)
    bool writable = false; ///< output space available
    bool error = false;    ///< error/hangup condition (close the fd)
  };

  virtual ~Poller() = default;

  /// Registers `fd` with the given interest set. False on failure.
  virtual bool add(int fd, bool want_read, bool want_write) = 0;
  /// Replaces the interest set of a registered fd. False on failure.
  virtual bool modify(int fd, bool want_read, bool want_write) = 0;
  /// Deregisters a fd (idempotent). False on failure.
  virtual bool remove(int fd) = 0;
  /// Blocks up to `timeout_ms` (-1 = forever) and appends ready events to
  /// `*events` (not cleared). Returns the number appended, 0 on timeout,
  /// -1 on error (EINTR included — callers treat it as an empty wait).
  virtual int wait(std::vector<Event>* events, int timeout_ms) = 0;
};

/// True when this build has a Poller implementation (Linux epoll today).
bool poller_available();

/// The platform poller (epoll, level-triggered). Null + `*error` filled
/// when the platform has none or creation failed.
std::unique_ptr<Poller> make_poller(std::string* error);

/// Hashed timer wheel with lazy re-parking: arm() and cancel() are O(1);
/// advance() touches only the slots the cursor crosses. Keys are small
/// non-negative ints (file descriptors). Re-arming an armed key just
/// overwrites its deadline — the stale slot entry is validated against the
/// live deadline when its slot comes due and re-parked forward, so a busy
/// connection costs one map update per activity burst, not one slot
/// insertion per read.
class TimerWheel {
 public:
  /// A wheel of `slots` buckets, each `tick_ms` wide. `slots * tick_ms`
  /// should exceed the longest timeout armed on it (shorter wheels still
  /// work — entries just re-park an extra lap).
  TimerWheel(std::uint64_t tick_ms, std::size_t slots);

  /// Arms (or re-arms) `key` to expire once `advance()` passes
  /// `deadline_ms`.
  void arm(int key, std::uint64_t deadline_ms);

  /// Disarms `key` (no-op when not armed).
  void cancel(int key);

  /// Moves the cursor to `now_ms` and appends every expired key to
  /// `*expired` (not cleared). Keys re-armed into the future are re-parked,
  /// not reported.
  void advance(std::uint64_t now_ms, std::vector<int>* expired);

  /// Number of armed keys.
  std::size_t armed() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t deadline_ms = 0;
    bool parked = false;  // has a live slot reference
  };
  std::size_t slot_of(std::uint64_t deadline_ms) const {
    return static_cast<std::size_t>(deadline_ms / tick_ms_) % slots_.size();
  }

  std::uint64_t tick_ms_;
  std::uint64_t cursor_ms_ = 0;
  std::vector<std::vector<int>> slots_;
  std::unordered_map<int, Entry> entries_;
};

/// Bounded JSONL reassembly buffer: append() bytes as they arrive off the
/// wire in arbitrary chunks, next_line() yields complete newline-delimited
/// frames in order. A frame longer than `max_line_bytes` flips
/// overflowed() — the transport answers with a named error and closes,
/// so a client streaming an unbounded line cannot grow server memory
/// (the buffer never exceeds max_line_bytes + one read chunk).
class LineFramer {
 public:
  /// A framer refusing lines longer than `max_line_bytes`.
  explicit LineFramer(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends `size` raw bytes.
  void append(const char* data, std::size_t size);

  /// Extracts the next complete line into `*line` (newline stripped;
  /// empty lines included — callers skip them to match the stdio
  /// transport). False when no complete line is buffered.
  bool next_line(std::string* line);

  /// True once any frame — the unterminated tail or a completed line —
  /// has exceeded the line bound. Latches until the framer is destroyed;
  /// the connection is past saving.
  bool overflowed() const { return overflowed_; }

  /// Steals the unterminated tail (the final line of a stream that ended
  /// without a newline — the stdio transport processes it, so the TCP
  /// transport flushes it on orderly EOF for byte-identity).
  std::string take_remainder();

  /// Bytes currently buffered.
  std::size_t buffered() const { return buffer_.size() - begin_; }

  /// Largest buffered() ever observed (feeds the read-buffer highwater
  /// gauge).
  std::size_t highwater() const { return highwater_; }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t begin_ = 0;     // consumed prefix of buffer_
  std::size_t scanned_ = 0;   // prefix known to hold no newline
  std::size_t tail_len_ = 0;  // bytes after the last newline ever appended
  std::size_t highwater_ = 0;
  bool overflowed_ = false;
};

/// Cross-thread wakeup for a sleeping Poller: workers completing responses
/// signal(), the loop has fd() registered for read and drain()s on
/// readiness. Signals coalesce (eventfd counter), so a burst of responses
/// costs one wakeup.
class WakeupFd {
 public:
  /// Creates the eventfd (fd() is -1 on failure or off-Linux builds).
  WakeupFd();
  /// Closes the fd.
  ~WakeupFd();

  WakeupFd(const WakeupFd&) = delete;             ///< not copyable
  WakeupFd& operator=(const WakeupFd&) = delete;  ///< not copyable

  /// The readable descriptor to register with the Poller (-1 when
  /// unavailable).
  int fd() const { return fd_; }

  /// Nudges the loop (async-signal-safe, callable from any thread).
  void signal();

  /// Consumes pending signals so the fd stops reporting readable.
  void drain();

 private:
  int fd_ = -1;
};

}  // namespace msrs::serve
