/// \file
/// Service: the long-running sharded scheduling service.
///
/// Request lifecycle (see docs/architecture.md, "serving layer"):
///
///   transport line ──> submit(): parse (wire.hpp) ──> non-solve ops are
///   answered inline; solve ops materialize the Instance (spec/instance
///   payload), compute its canonical form (engine/batch.hpp) and are
///   admitted into the target shard's bounded queue — blocking
///   (backpressure) or failing with the named `overloaded` error,
///   per ServiceOptions. Shard = canonical hash % shards, so isomorphic
///   instances always colocate: each shard owns a PortfolioSolver and a
///   bounded LRU result cache (util/lru.hpp) that serves repeats by
///   canonical remapping, without cross-shard locks. Shard workers run on
///   a parallel/thread_pool and answer through the per-request callback.
///
/// Session ops (open_session/submit_job/cancel_job/snapshot/close_session)
/// route by the hash of the session *name* instead: every mutation of one
/// session lands on the same shard FIFO, so session state (a per-shard map
/// of engine/session.hpp SessionEngines) is mutated shared-nothing by that
/// shard's worker — no locks, and snapshot responses are a pure function of
/// the session's mutation history. A per-shard session-op budget
/// (ServiceOptions::session_queue_budget) bounds how much of a queue a
/// churn burst may occupy, so one chatty session cannot starve solve ops.
///
/// Determinism: a response body is a pure function of the request (solver
/// determinism; cache provenance is kept out of the body), and same-shape
/// requests hit the same shard FIFO in arrival order — so the response
/// *bytes* per request are identical at any shard count, which the serving
/// smoke test asserts. Only completion order varies; transports restore
/// input order with an OrderedWriter (serve/transport.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "engine/session.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/wire.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"

namespace msrs::serve {

/// Configuration of one Service.
struct ServiceOptions {
  unsigned shards = 4;  ///< worker shards; 0 = hardware concurrency
  std::size_t queue_depth = 1024;  ///< per-shard admission queue bound
  /// Per-shard result-cache bound, in canonical shapes (0 = unbounded).
  std::size_t cache_capacity = 1 << 14;
  /// Admission when the target shard queue is full: false blocks the
  /// submitting thread (backpressure — deterministic pipelines), true
  /// fails fast with the named `overloaded` error (load shedding).
  bool reject_when_full = false;
  int budget_ms = 20;  ///< default portfolio effort gate per request
  std::vector<std::string> solvers;  ///< portfolio `only` filter ([] = all)
  /// Open-session cap across all shards; open_session beyond it fails with
  /// the named `session_limit` error.
  std::size_t session_limit = 1024;
  /// Per-shard cap on *queued* session ops — the admission fairness bound:
  /// a chatty session (cheap mutations arrive much faster than solves
  /// drain) can occupy at most this many of a shard's queue slots, so solve
  /// traffic behind a churn burst waits for at most `session_queue_budget`
  /// cheap ops instead of a full queue of them. Blocking admission applies
  /// backpressure at the budget; reject admission sheds with `overloaded`.
  /// 0 disables the gate (sessions compete for the whole queue).
  std::size_t session_queue_budget = 64;
  /// Per-session repair-memo bound, in canonical shapes
  /// (engine/session.hpp; session-local by design — determinism).
  std::size_t session_cache = 256;
  /// Request-lifecycle tracing: the sampled `--trace` JSONL span sink and
  /// the always-on slow-request log (obs/trace.hpp). An empty path only
  /// disables span emission; the slow log stays armed.
  obs::TraceOptions trace;
  /// Flight-recorder per-thread ring capacity, in events (0 disables the
  /// recorder; the solve path then skips every record() call).
  std::size_t recorder_events = 1 << 14;
  /// Anomaly-watchdog thresholds evaluated by monitor_tick() (all 0 =
  /// the timeseries window is still kept, but nothing ever trips).
  obs::WatchdogOptions watchdog;
  /// File the watchdog overwrites with a full (wall-clock) recorder JSONL
  /// dump when it trips ("" = count the trip, skip the file).
  std::string watchdog_dump;
};

/// Snapshot of the service counters (the `stats` op payload).
struct ServiceStats {
  std::size_t received = 0;   ///< submit() calls
  std::size_t responded = 0;  ///< response callbacks fired
  std::size_t rejected = 0;   ///< admissions refused (`overloaded`)
  std::size_t errors = 0;     ///< error responses (rejections included)
  std::size_t solved = 0;     ///< portfolio races actually run
  std::size_t cache_hits = 0;       ///< repeats served by remapping
  std::size_t cache_misses = 0;     ///< solve requests that missed
  std::size_t cache_evictions = 0;  ///< LRU entries dropped (capacity)
  std::size_t cache_entries = 0;    ///< resident entries, all shards
  unsigned shards = 0;              ///< configured shard count
  std::vector<std::size_t> queue_depths;    ///< per-shard queued requests
  std::vector<std::size_t> shard_requests;  ///< per-shard served solves
};

/// Renders the `stats` response line for a counter snapshot (the legacy
/// counter-only body; the live `stats` op uses the telemetry overload).
std::string stats_response(const Json& id, const ServiceStats& stats);

/// Renders the full `stats` response: the counter body plus queue depths,
/// per-shard throughput, the per-code error breakdown, solver-win and
/// connection counters, and the p50/p95/p99 latency decomposition by
/// lifecycle stage — all read from the metrics snapshot.
std::string stats_response(const Json& id, const ServiceStats& stats,
                           const obs::MetricsSnapshot& snapshot);

/// The sharded async scheduling service. Thread-safe: any number of
/// transport threads may submit() concurrently.
class Service {
 public:
  /// Response sink of one request; invoked exactly once with the response
  /// line (no trailing newline), either inline from submit() (errors,
  /// non-solve ops, rejections) or from a shard worker thread.
  using Done = std::function<void(std::string&&)>;

  /// Starts the shard workers. The registry must outlive the service.
  explicit Service(
      ServiceOptions options = {},
      const engine::SolverRegistry& registry =
          engine::SolverRegistry::default_registry());

  /// Drains and stops (equivalent to shutdown() with a 30s deadline).
  ~Service();

  Service(const Service&) = delete;             ///< not copyable
  Service& operator=(const Service&) = delete;  ///< not copyable

  /// Admits one raw request line. `done` is called exactly once.
  void submit(const std::string& line, Done done);

  /// Synchronous convenience (tests, tools): submits and waits for the
  /// response line.
  std::string handle(const std::string& line);

  /// True until a shutdown op or shutdown() call; afterwards submit()
  /// answers `shutting_down`. Transports poll this to stop reading.
  bool accepting() const { return accepting_.load(); }

  /// Counter snapshot (cheap; safe from any thread).
  ServiceStats stats() const;

  /// The service's metrics registry; transports attach their connection
  /// counters here so one `stats` snapshot covers the whole stack.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Deterministically ordered snapshot of every metric, with the live
  /// queue-depth gauges and the uptime gauge refreshed first and the
  /// `build_info` info series attached (feeds the `stats` op, the
  /// --metrics-dump page, and the HTTP `/metrics` endpoint).
  obs::MetricsSnapshot metrics_snapshot();

  /// The always-on flight recorder, or nullptr when disabled
  /// (ServiceOptions::recorder_events == 0). Transports record their own
  /// events (sheds) here; the fatal-signal dump installs against it.
  obs::FlightRecorder* recorder() { return recorder_.get(); }

  /// One monitoring interval: snapshots the metrics, feeds the anomaly
  /// watchdog, and — when a threshold trips outside the cooldown — dumps
  /// the recorder to ServiceOptions::watchdog_dump. Serialized internally;
  /// the TCP event loop calls this once per monitor interval, tests call
  /// it directly. Returns true when a dump fired.
  bool monitor_tick() MSRS_EXCLUDES(monitor_mutex_);

  /// The watchdog's retained timeseries window and trip state (diagnostic
  /// JSON; tests and the `/recorder` HTTP surface read it).
  const obs::Watchdog& watchdog() const { return *watchdog_; }

  /// Effective shard count.
  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

  /// Graceful drain-then-stop: stops admitting, waits up to `deadline` for
  /// queued requests to be answered; requests still queued past the
  /// deadline are answered with the named `shutting_down` error (callbacks
  /// always fire). Returns true when everything drained in time.
  /// Idempotent.
  bool shutdown(std::chrono::milliseconds deadline)
      MSRS_EXCLUDES(pending_mutex_);

 private:
  struct Item {
    Op op = Op::kSolve;
    Json id;
    Instance instance;
    engine::CanonicalForm form;
    int budget_ms = 0;  // 0 = service default (cacheable)
    Done done;
    obs::TraceContext trace;  // lifecycle stamps (admission -> write)
    // Session ops (routed by session-name hash, not canonical form):
    std::string session;
    std::string job_class;  // kSubmitJob
    Time size = 0;          // kSubmitJob
    std::int64_t job = -1;  // kCancelJob
    int machines = 0;       // kOpenSession
  };

  // A cached solve: the rendered response tail plus the winning solver's
  // name, so cache-hit spans keep their provenance.
  struct CachedResult {
    std::string tail;
    std::string solver;
  };

  /// Per-shard result cache: canonical shape -> the rendered response
  /// tail (every solve-response field is isomorphism-invariant, so a
  /// repeat — even with renamed jobs/classes — is answered by one string
  /// concatenation, no remapping or re-rendering; BatchEngine keeps the
  /// full-schedule variant via remap_result for batch consumers).
  using TailCache =
      LruCache<engine::CanonicalForm, CachedResult, engine::CanonicalFormHash,
               engine::CanonicalFormShapeEq>;

  /// One shard: admission queue, solver, bounded result cache, counters,
  /// and the sessions it owns (shared-nothing: a session's name hash picks
  /// its shard, so all its mutations serialize on one worker, no locks).
  struct Shard {
    explicit Shard(std::size_t queue_depth, std::size_t cache_capacity)
        : queue(queue_depth), cache(cache_capacity) {}
    int index = 0;
    BoundedQueue<Item> queue;
    TailCache cache;  // touched only by the shard worker
    std::unique_ptr<engine::PortfolioSolver> portfolio;
    obs::Counter* requests = nullptr;  // registry: serve.shard_requests.<i>
    // Snapshots mirrored after every request so stats() never races the
    // worker's non-atomic LRU counters.
    std::atomic<std::size_t> solved{0}, hits{0}, misses{0}, evictions{0},
        entries{0};
    /// Sessions owned by this shard, touched only by its worker.
    std::unordered_map<std::string, std::unique_ptr<engine::SessionEngine>>
        sessions;
    /// Admission fairness gate (ServiceOptions::session_queue_budget):
    /// session ops queued on this shard right now. Producers block (or
    /// shed) at the budget; the worker decrements and signals after each
    /// session op it finishes.
    util::Mutex session_gate_mutex;
    util::CondVar session_gate_cv;
    std::size_t queued_session_ops MSRS_GUARDED_BY(session_gate_mutex) = 0;
  };

  void shard_loop(Shard& shard);
  void process(Shard& shard, Item& item);
  void process_session(Shard& shard, Item& item);
  void release_session_slot(Shard& shard);
  void respond(Done& done, std::string&& line);
  void respond_error(Done& done, const Json& id, WireError code,
                     std::string_view detail,
                     const obs::TraceContext* trace = nullptr);
  // pending_ bookkeeping of queued items.
  void finish_item() MSRS_EXCLUDES(pending_mutex_);

  ServiceOptions options_;
  const engine::SolverRegistry* registry_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  util::Mutex monitor_mutex_;  // serializes monitor_tick()
  std::chrono::steady_clock::time_point start_;
  obs::Gauge* uptime_g_ = nullptr;
  // Pre-interned recorder label ids (solver names by registry order plus
  // the per-code error names), so the hot path never takes the intern lock.
  std::vector<std::uint16_t> error_label_;  // by WireError enum value
  std::unordered_map<std::string, std::uint16_t> solver_label_;
  // Hot-path metric handles, resolved once at construction (registry
  // addresses are stable for its lifetime).
  obs::Counter* received_c_ = nullptr;
  obs::Counter* responded_c_ = nullptr;
  obs::Counter* rejected_c_ = nullptr;
  obs::Counter* errors_c_ = nullptr;
  std::vector<obs::Counter*> error_code_c_;  // by WireError enum value
  obs::Histogram* lat_admission_ = nullptr;
  obs::Histogram* lat_queue_ = nullptr;
  obs::Histogram* lat_solve_ = nullptr;
  obs::Histogram* lat_write_ = nullptr;
  obs::Histogram* lat_total_ = nullptr;
  // serve.session.* handles (pre-registered for a stable stats key set).
  obs::Counter* session_opened_c_ = nullptr;
  obs::Counter* session_closed_c_ = nullptr;
  obs::Counter* session_submits_c_ = nullptr;
  obs::Counter* session_cancels_c_ = nullptr;
  obs::Counter* session_snapshots_c_ = nullptr;
  obs::Counter* session_repairs_c_ = nullptr;
  obs::Counter* session_fallbacks_c_ = nullptr;
  obs::Gauge* session_active_g_ = nullptr;
  std::atomic<std::size_t> active_sessions_{0};
  std::atomic<std::uint64_t> seq_{0};  // request sequence (trace sampling)
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool pool_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> abort_{false};  // deadline passed: fail queued items
  util::Mutex pending_mutex_;
  util::CondVar drained_;
  /// Queued items whose callback has not fired.
  std::size_t pending_ MSRS_GUARDED_BY(pending_mutex_) = 0;
  std::once_flag shutdown_once_;
  bool shutdown_result_ = true;
};

}  // namespace msrs::serve
