/// \file
/// Load driver: replays generator corpora against a running service and
/// reports latency percentiles and throughput
/// (`msrs_engine_cli drive --socket=... SPEC...`).
///
/// The driver expands its spec strings into a corpus (sim/generator), turns
/// every instance into a prebuilt solve-request payload, and replays the
/// payload list round-robin from `conns` concurrent connections — so a
/// corpus smaller than the request count produces *repeated-corpus*
/// traffic, the serving cache's steady state. Closed loop (qps = 0) keeps
/// one request in flight per connection; open loop paces requests at a
/// target rate and measures latency from each request's *scheduled* send
/// time, so queueing delay is charged to the service, not hidden
/// (coordinated omission). Before driving, the driver handshakes wire
/// versions via the `version` op and fails fast with a named error on
/// mismatch.
///
/// Churn mode (`--churn=SPEC`) swaps the solve corpus for an online-session
/// trace: each connection opens its own session and replays the spec's
/// submit/cancel/snapshot stream in order, optionally capturing the
/// response bytes (`--churn-out`) for byte-identity comparison.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace msrs::serve {

/// Configuration of one drive run.
struct DriveOptions {
  std::string socket;  ///< UNIX socket path of the target service
  /// TCP target of the service ("HOST:PORT"); takes precedence over
  /// `socket` — the fan-in path of bench case E13 and the CI TCP smoke.
  std::string tcp;
  std::vector<std::string> specs;  ///< generator specs -> replay corpus
  int seeds_per_spec = 0;   ///< like `generate --count`: seeds 1..K per
                            ///< spec (0 = each spec's own seed)
  std::size_t requests = 0;   ///< stop after this many requests (0 = only
                              ///< the duration bound applies)
  double duration_s = 0.0;    ///< stop after this much wall clock (0 = only
                              ///< the request bound applies)
  double qps = 0.0;      ///< open-loop target rate; 0 = closed loop
  unsigned conns = 1;    ///< concurrent connections
  bool payload_spec = false;  ///< send `spec` payloads instead of inline
                              ///< `instance` text
  /// When > 0: poll the service's `stats` op every this many seconds
  /// during the run and print a live latency-decomposition table
  /// (lifecycle stage x count/p50/p95/p99/mean) to stderr.
  double stats_interval_s = 0.0;
  /// When non-empty: write the request lines to this file (or "-" for
  /// stdout) instead of driving a service — the corpus-to-JSONL tool the
  /// serving smoke test pipes into `serve`.
  std::string emit;
  /// When non-empty: churn mode. The value is a churn spec string
  /// (sim/arrivals.hpp, e.g. `poisson:events=200,cancel=0.3,seed=1`); the
  /// driver replays the generated submit/cancel/snapshot trace as one
  /// session per connection (`churn-0`, `churn-1`, ...) instead of a solve
  /// corpus — `specs`/`qps`/`requests`/`duration_s` are ignored. Session
  /// job ids are predicted (the engine assigns a monotone counter), so the
  /// trace also works through `emit` without a live service.
  std::string churn;
  /// Churn mode: when non-empty, append every response line of connection
  /// 0 to this file ("-" for stdout) — the byte stream CI diffs across
  /// shard counts and transports.
  std::string churn_out;
};

/// Aggregated outcome of a drive run.
struct DriveReport {
  std::size_t sent = 0;      ///< requests sent
  std::size_t ok = 0;        ///< `"ok":true` responses
  std::size_t errors = 0;    ///< error responses (rejections included)
  std::size_t rejected = 0;  ///< `overloaded` rejections among the errors
  /// Connections that died mid-run (send/recv failure); a nonzero count
  /// means the service dropped clients and the run must not pass green.
  std::size_t transport_errors = 0;
  double elapsed_s = 0.0;    ///< wall clock of the measured window
  double throughput = 0.0;   ///< responses per second
  double p50_ms = 0.0;       ///< median response latency
  double p95_ms = 0.0;       ///< 95th percentile latency
  double p99_ms = 0.0;       ///< 99th percentile latency
  double max_ms = 0.0;       ///< worst observed latency
  /// Service cache hit rate over the drive window ([0,1]; from `stats`
  /// deltas), -1 when the service did not report stats.
  double cache_hit_rate = -1.0;

  /// Human-readable multi-line summary.
  std::string str() const;
  /// Machine-readable document (deterministic key order; values are
  /// measurements and thus not byte-stable).
  Json json() const;
};

/// Runs the driver. Returns std::nullopt and fills `*error` (named, e.g.
/// "wire_version_mismatch: ...") when the run could not execute.
std::optional<DriveReport> drive(const DriveOptions& options,
                                 std::string* error);

}  // namespace msrs::serve
