/// \file
/// Transport-side plumbing of the serving layer: response reordering, the
/// stdin/stdout serve loop, and cooperative stop signals.
///
/// The service answers in completion order (whichever shard finishes
/// first); a transport restores *request* order with an OrderedWriter so
/// the byte stream a client sees is a pure function of the byte stream it
/// sent — at any shard count. SIGINT/SIGTERM flip a cooperative stop flag
/// (handlers installed without SA_RESTART, so blocking reads return early)
/// and every transport then drains in-flight requests before exiting.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>

#include "serve/service.hpp"
#include "util/sync.hpp"

namespace msrs::serve {

/// Buffers out-of-order response lines and releases them to the sink in
/// reservation order. Thread-safe; deliver() may come from any thread.
class OrderedWriter {
 public:
  /// `sink` receives complete response lines (no trailing newline), in
  /// reservation order, serialized under the writer's lock.
  explicit OrderedWriter(std::function<void(const std::string&)> sink)
      : sink_(std::move(sink)) {}

  /// Claims the next slot in the output order; pass the returned sequence
  /// number to deliver() exactly once.
  std::uint64_t reserve() MSRS_EXCLUDES(mutex_);

  /// Hands in the response of slot `seq`; writes every contiguous
  /// now-ready line through the sink.
  void deliver(std::uint64_t seq, std::string&& line) MSRS_EXCLUDES(mutex_);

  /// Blocks until every reserved slot has been delivered and written.
  void wait_drained() MSRS_EXCLUDES(mutex_);

  /// True when every reserved slot has been delivered and written — the
  /// non-blocking probe an event loop polls to decide whether a draining
  /// connection may close yet.
  bool drained() MSRS_EXCLUDES(mutex_);

 private:
  // The sink is only ever invoked under mutex_ (deliver's release loop),
  // which is what serializes it; annotated accordingly.
  std::function<void(const std::string&)> sink_ MSRS_GUARDED_BY(mutex_);
  util::Mutex mutex_;
  util::CondVar drained_;
  /// Delivered but not yet written (waiting for their turn).
  std::map<std::uint64_t, std::string> pending_ MSRS_GUARDED_BY(mutex_);
  std::uint64_t next_reserve_ MSRS_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_write_ MSRS_GUARDED_BY(mutex_) = 0;
};

/// Serves JSONL requests from `in` to `out` (one response line per request
/// line, in request order) until EOF, a `shutdown` op, or a stop signal;
/// then drains in-flight requests and returns the process exit code
/// (0 = clean, 1 = output stream failure). Empty lines are skipped.
int serve_stdio(Service& service, std::istream& in, std::ostream& out);

/// Installs SIGINT/SIGTERM handlers that make stop_requested() true and
/// interrupt blocking reads (no SA_RESTART). Idempotent.
void install_stop_signals();

/// True once a stop signal has been received (or request_stop() called).
bool stop_requested();

/// Flips the stop flag programmatically (tests; the socket server after a
/// client `shutdown` op).
void request_stop();

/// Clears the stop flag (tests only; signals may race a clear).
void reset_stop();

}  // namespace msrs::serve
