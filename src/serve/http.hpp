/// \file
/// Minimal HTTP/1.1 GET surface of the observability endpoints.
///
/// The TCP event loop (serve/tcp.cpp) owns a second listener
/// (`serve --http=HOST:PORT`) whose connections speak plain HTTP instead
/// of JSONL: one GET per connection, answered with `Connection: close`.
/// This header is the protocol piece — head framing/parsing, response
/// rendering, and the route table over the service's exposition surfaces
/// (`/metrics`, `/healthz`, `/recorder`, `/watchdog`) — kept free of
/// socket I/O so tests can drive it with plain strings. Everything a
/// route renders comes from snapshot reads; the solve path is untouched.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace msrs::serve {

/// A parsed HTTP request head (request line only; headers are framed and
/// skipped — no route of this surface needs them).
struct HttpRequest {
  std::string method;  ///< request method, e.g. "GET"
  std::string target;  ///< origin-form target, e.g. "/recorder?canonical=1"
};

/// Outcome of parse_http_request().
enum class HttpParse {
  kIncomplete,  ///< the head's terminating blank line is not buffered yet
  kOk,          ///< head parsed; `*head_len` bytes consumed
  kBad,         ///< malformed head — answer 400 and close
};

/// Parses an HTTP/1.1 request head from `buffer` (everything up to and
/// including the first blank line; CRLF and bare-LF line endings both
/// accepted). On kOk fills `request` and, when non-null, `*head_len`.
HttpParse parse_http_request(std::string_view buffer, HttpRequest* request,
                             std::size_t* head_len);

/// Renders a complete HTTP/1.1 response: status line (200/400/404/405/503
/// carry their standard reason phrases), Content-Type, Content-Length and
/// `Connection: close`, then the body.
std::string http_response(int status, std::string_view content_type,
                          std::string_view body);

/// Routes one parsed request against the service's observability
/// surfaces:
///  - `GET /metrics`  — the Prometheus page of Service::metrics_snapshot()
///  - `GET /healthz`  — 200 `ok` while accepting, 503 `draining` after
///  - `GET /recorder` — flight-recorder JSONL (`?canonical=1` for the
///    run-independent rendering); 404 when the recorder is disabled
///  - `GET /watchdog` — the watchdog's timeseries window and trip state
/// Unknown targets answer 404; non-GET methods answer 405.
std::string http_route(Service& service, const HttpRequest& request);

}  // namespace msrs::serve
