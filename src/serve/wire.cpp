#include "serve/wire.hpp"

#include <cmath>

#include "core/instance_io.hpp"
#include "perf/reporter.hpp"

namespace msrs::serve {
namespace {

// Reads an integer member; returns false (with a detail message) when the
// member exists but is not an int-range non-negative integral number (the
// range check matters: casting an untrusted 3e9 to int is UB).
bool read_int(const Json& object, const std::string& key, int* out,
              std::string* detail) {
  const Json* member = object.find(key);
  if (member == nullptr) return true;
  const double v = member->is_number() ? member->as_number() : -1.0;
  if (v != std::floor(v) || v < 0 || v > 2147483647.0) {
    if (detail)
      *detail = "'" + key + "' must be a non-negative 32-bit integer";
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

std::string_view wire_error_name(WireError code) {
  switch (code) {
    case WireError::kParseError: return "parse_error";
    case WireError::kBadRequest: return "bad_request";
    case WireError::kUnknownOp: return "unknown_op";
    case WireError::kBadSpec: return "bad_spec";
    case WireError::kBadInstance: return "bad_instance";
    case WireError::kOverloaded: return "overloaded";
    case WireError::kVersionMismatch: return "wire_version_mismatch";
    case WireError::kShuttingDown: return "shutting_down";
    case WireError::kUnknownSession: return "unknown_session";
    case WireError::kUnknownJob: return "unknown_job";
    case WireError::kSessionLimit: return "session_limit";
  }
  return "unknown_error";
}

std::optional<Request> parse_request(const std::string& line, WireError* code,
                                     std::string* detail, Json* id_out) {
  const auto fail = [&](WireError c, std::string d) -> std::optional<Request> {
    if (code) *code = c;
    if (detail) *detail = std::move(d);
    return std::nullopt;
  };

  std::string parse_error;
  const std::optional<Json> document = json_parse(line, &parse_error);
  if (!document) return fail(WireError::kParseError, parse_error);
  if (!document->is_object())
    return fail(WireError::kBadRequest, "request is not a JSON object");
  if (const Json* id = document->find("id"); id != nullptr && id_out)
    *id_out = *id;

  Request request;
  if (const Json* id = document->find("id")) request.id = *id;

  const Json* op = document->find("op");
  if (op == nullptr || !op->is_string())
    return fail(WireError::kBadRequest, "missing string member 'op'");
  const std::string& name = op->as_string();
  if (name == "solve") request.op = Op::kSolve;
  else if (name == "ping") request.op = Op::kPing;
  else if (name == "stats") request.op = Op::kStats;
  else if (name == "version") request.op = Op::kVersion;
  else if (name == "shutdown") request.op = Op::kShutdown;
  else if (name == "open_session") request.op = Op::kOpenSession;
  else if (name == "submit_job") request.op = Op::kSubmitJob;
  else if (name == "cancel_job") request.op = Op::kCancelJob;
  else if (name == "snapshot") request.op = Op::kSnapshot;
  else if (name == "close_session") request.op = Op::kCloseSession;
  else if (name == "dump_recorder") request.op = Op::kDumpRecorder;
  else return fail(WireError::kUnknownOp, "unknown op '" + name + "'");

  if (request.op == Op::kDumpRecorder) {
    if (const Json* canonical = document->find("canonical")) {
      if (!canonical->is_bool())
        return fail(WireError::kBadRequest, "'canonical' must be a boolean");
      request.canonical = canonical->as_bool();
    }
  }

  std::string int_error;
  if (!read_int(*document, "wire", &request.wire, &int_error))
    return fail(WireError::kBadRequest, int_error);
  if (!read_int(*document, "budget_ms", &request.budget_ms, &int_error))
    return fail(WireError::kBadRequest, int_error);

  if (const Json* spec = document->find("spec")) {
    if (!spec->is_string())
      return fail(WireError::kBadRequest, "'spec' must be a string");
    request.spec = spec->as_string();
  }
  if (const Json* instance = document->find("instance")) {
    if (!instance->is_string())
      return fail(WireError::kBadRequest, "'instance' must be a string");
    request.instance = instance->as_string();
  }
  if (request.op == Op::kSolve &&
      (request.spec.empty() == request.instance.empty()))
    return fail(WireError::kBadRequest,
                "solve needs exactly one of 'spec' or 'instance'");

  const bool session_op =
      request.op == Op::kOpenSession || request.op == Op::kSubmitJob ||
      request.op == Op::kCancelJob || request.op == Op::kSnapshot ||
      request.op == Op::kCloseSession;
  if (session_op) {
    const Json* session = document->find("session");
    if (session == nullptr || !session->is_string() ||
        session->as_string().empty())
      return fail(WireError::kBadRequest,
                  "'" + name + "' needs a non-empty string 'session'");
    request.session = session->as_string();
  }
  if (request.op == Op::kOpenSession) {
    if (!read_int(*document, "machines", &request.machines, &int_error))
      return fail(WireError::kBadRequest, int_error);
    if (request.machines < 1)
      return fail(WireError::kBadRequest, "'machines' must be >= 1");
  }
  if (request.op == Op::kSubmitJob) {
    const Json* cls = document->find("class");
    if (cls == nullptr || !cls->is_string() || cls->as_string().empty())
      return fail(WireError::kBadRequest,
                  "'submit_job' needs a non-empty string 'class'");
    request.job_class = cls->as_string();
    if (!read_int(*document, "size", &request.size, &int_error))
      return fail(WireError::kBadRequest, int_error);
    if (request.size < 1)
      return fail(WireError::kBadRequest, "'size' must be >= 1");
  }
  if (request.op == Op::kCancelJob) {
    if (!read_int(*document, "job", &request.job, &int_error))
      return fail(WireError::kBadRequest, int_error);
    if (request.job < 0)
      return fail(WireError::kBadRequest,
                  "'cancel_job' needs a non-negative integer 'job'");
  }
  return request;
}

std::string error_response(const Json& id, WireError code,
                           std::string_view detail) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", false);
  response.set("error", std::string(wire_error_name(code)));
  response.set("detail", std::string(detail));
  return response.str();
}

std::string solve_response(const Json& id,
                           const engine::PortfolioResult& result) {
  return compose_response(id, solve_response_tail(result));
}

std::string solve_response_tail(const engine::PortfolioResult& result) {
  Json body = Json::object();
  body.set("ok", true);
  body.set("solver", result.solver);
  body.set("makespan", result.makespan);
  body.set("t_bound", static_cast<std::int64_t>(result.t_bound));
  body.set("ratio", result.ratio_vs_bound);
  body.set("valid", result.valid);
  std::string tail = body.str();
  tail.front() = ',';  // the '{' comes from the id prefix
  return tail;
}

std::string compose_response(const Json& id, const std::string& tail) {
  std::string line = "{\"id\":";
  line += id.str();
  line += tail;
  return line;
}

std::string ok_response(const Json& id, std::string_view op) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("op", std::string(op));
  return response.str();
}

std::string session_response(const Json& id, std::string_view op,
                             std::string_view session) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("op", std::string(op));
  response.set("session", std::string(session));
  return response.str();
}

std::string submit_response(const Json& id, std::string_view session,
                            std::uint64_t job) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("session", std::string(session));
  response.set("job", static_cast<std::int64_t>(job));
  return response.str();
}

std::string cancel_response(const Json& id, std::string_view session,
                            std::uint64_t job) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("session", std::string(session));
  response.set("job", static_cast<std::int64_t>(job));
  response.set("cancelled", true);
  return response.str();
}

std::string snapshot_response(const Json& id, const SnapshotBody& body) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("session", body.session);
  response.set("jobs", static_cast<std::int64_t>(body.jobs));
  response.set("classes", static_cast<std::int64_t>(body.classes));
  response.set("machines", static_cast<std::int64_t>(body.machines));
  response.set("solver", body.solver);
  response.set("makespan", body.makespan);
  response.set("t_bound", body.t_bound);
  response.set("ratio", body.ratio);
  response.set("valid", body.valid);
  response.set("source", body.source);
  return response.str();
}

std::string version_response(const Json& id) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("instance_format", static_cast<std::int64_t>(
                                      kInstanceFormatVersion));
  response.set("bench_schema",
               static_cast<std::int64_t>(perf::kBenchSchemaVersion));
  response.set("wire", static_cast<std::int64_t>(kWireVersion));
  return response.str();
}

std::vector<std::pair<std::string, std::string>> build_info_labels() {
  std::vector<std::pair<std::string, std::string>> labels;
  labels.emplace_back("wire", std::to_string(kWireVersion));
  labels.emplace_back("instance_format",
                      std::to_string(kInstanceFormatVersion));
  labels.emplace_back("bench_schema",
                      std::to_string(perf::kBenchSchemaVersion));
#if defined(__VERSION__)
  labels.emplace_back("compiler", __VERSION__);
#else
  labels.emplace_back("compiler", "unknown");
#endif
#if defined(NDEBUG)
  labels.emplace_back("build", "release");
#else
  labels.emplace_back("build", "debug");
#endif
#if defined(__SANITIZE_ADDRESS__)
  labels.emplace_back("sanitize", "address");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  labels.emplace_back("sanitize", "address");
#else
  labels.emplace_back("sanitize", "none");
#endif
#else
  labels.emplace_back("sanitize", "none");
#endif
  return labels;
}

}  // namespace msrs::serve
