#include "serve/socket.hpp"

#if !defined(_WIN32)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/conn_budget.hpp"
#include "serve/transport.hpp"

namespace msrs::serve {
namespace {

// Writes the whole buffer, retrying on EINTR/partial writes. MSG_NOSIGNAL
// turns a dead peer into an error return instead of SIGPIPE.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

// One connection: read JSONL requests, submit, answer in request order.
void serve_connection(Service& service, int fd) {
  // OrderedWriter invokes the sink under its own lock (single-threaded),
  // so the framing buffer is reused without further synchronization.
  OrderedWriter writer(
      [fd, framed = std::string()](const std::string& line) mutable {
        framed.assign(line);
        framed.push_back('\n');
        send_all(fd, framed.data(), framed.size());  // peer gone: drop it
      });

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && service.accepting() && !stop_requested()) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t begin = 0;
    for (std::size_t nl = buffer.find('\n', begin); nl != std::string::npos;
         nl = buffer.find('\n', begin)) {
      std::string line = buffer.substr(begin, nl - begin);
      begin = nl + 1;
      if (line.empty()) continue;
      const std::uint64_t seq = writer.reserve();
      service.submit(line, [seq, &writer](std::string&& response) {
        writer.deliver(seq, std::move(response));
      });
      // Shutdown op: stop *reading*, but keep submitting the lines already
      // buffered — each still gets its (shutting_down) response line, per
      // the one-response-per-request wire contract.
      if (!service.accepting()) open = false;
    }
    buffer.erase(0, begin);
  }
  // Every submitted request must answer before the socket closes.
  writer.wait_drained();
}

}  // namespace

bool socket_transport_available() { return true; }

int serve_socket(Service& service, const std::string& path,
                 std::string* error, SocketOptions options) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    return 1;
  };
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof address.sun_path) {
    if (error) *error = "socket path too long: " + path;
    return 1;
  }
  std::strncpy(address.sun_path, path.c_str(), sizeof address.sun_path - 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return fail("socket");
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    ::close(listen_fd);
    return fail("bind " + path);
  }
  if (::listen(listen_fd, 128) != 0) {
    ::close(listen_fd);
    return fail("listen " + path);
  }

  // One entry per live connection; finished ones are reaped (joined +
  // fd closed) on every accept-loop tick, so a long-running service does
  // not accumulate dead threads or leak fds across client churn.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };
  std::vector<std::unique_ptr<Connection>> connections;
  const auto reap = [&connections](bool all) {
    for (auto it = connections.begin(); it != connections.end();) {
      Connection& connection = **it;
      if (!all && !connection.finished.load()) {
        ++it;
        continue;
      }
      if (all) ::shutdown(connection.fd, SHUT_RDWR);  // unblock its read
      connection.thread.join();
      ::close(connection.fd);
      it = connections.erase(it);
    }
  };

  // Connection accounting lives in the service's registry so one `stats`
  // snapshot covers transport and service alike. The shared budget — not
  // the zombie list — gates admission: a slot frees the instant its
  // connection finishes, never a reap-tick later, and the accept check can
  // no longer race the teardown path on abrupt client disconnect (the
  // zombie list used to be the counter, and it only shrank on reap).
  ConnectionBudget budget(options.max_connections,
                          service.metrics().counter("serve.conns.accepted"),
                          service.metrics().counter("serve.conns.rejected"),
                          service.metrics().gauge("serve.conns.active"));

  while (service.accepting() && !stop_requested()) {
    pollfd poll_fd = {listen_fd, POLLIN, 0};
    const int ready = ::poll(&poll_fd, 1, 200 /*ms*/);
    reap(/*all=*/false);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    if (!budget.try_acquire()) {
      // At the budget: shed the connection with one named error line
      // instead of growing the thread pool.
      const std::string line =
          error_response(Json(), WireError::kOverloaded,
                         "connection limit reached") +
          "\n";
      send_all(conn_fd, line.data(), line.size());
      ::close(conn_fd);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = conn_fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([&service, raw, &budget] {
      serve_connection(service, raw->fd);
      // Slot back before the zombie flag: a replacement client is
      // admitted the moment this connection is done, not a reap-tick
      // later (tests/test_tcp.cpp pins this with an abrupt-disconnect
      // regression test).
      budget.release();
      raw->finished.store(true);
    });
    connections.push_back(std::move(connection));
  }

  // Drain in-flight work, then unblock any reader still waiting on its
  // peer so the connection threads can exit, and close everything.
  service.shutdown(std::chrono::seconds(30));
  reap(/*all=*/true);
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

SocketClient::~SocketClient() { close(); }

bool SocketClient::connect(const std::string& path, std::string* error) {
  close();
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof address.sun_path) {
    if (error) *error = "socket path too long: " + path;
    return false;
  }
  std::strncpy(address.sun_path, path.c_str(), sizeof address.sun_path - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    if (error)
      *error = "connect " + path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool SocketClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  return send_all(fd_, framed.data(), framed.size());
}

bool SocketClient::recv_line(std::string* line) {
  if (fd_ < 0) return false;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return true;
    }
    scanned_ = buffer_.size();
    const ssize_t got = ::read(fd_, chunk, sizeof chunk);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

void SocketClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  scanned_ = 0;
}

}  // namespace msrs::serve

#else  // _WIN32: no UNIX-domain transport; entry points fail descriptively.

namespace msrs::serve {

bool socket_transport_available() { return false; }

int serve_socket(Service&, const std::string&, std::string* error,
                 SocketOptions) {
  if (error) *error = "UNIX socket transport is unavailable on this platform";
  return 1;
}

SocketClient::~SocketClient() = default;
bool SocketClient::connect(const std::string&, std::string* error) {
  if (error) *error = "UNIX socket transport is unavailable on this platform";
  return false;
}
bool SocketClient::send_line(const std::string&) { return false; }
bool SocketClient::recv_line(std::string*) { return false; }
void SocketClient::close() {}

}  // namespace msrs::serve

#endif
