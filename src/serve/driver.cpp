#include "serve/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/instance_io.hpp"
#include "obs/metrics.hpp"
#include "serve/socket.hpp"
#include "serve/tcp.hpp"
#include "serve/wire.hpp"
#include "sim/arrivals.hpp"
#include "sim/workloads.hpp"
#include "util/table.hpp"

namespace msrs::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Builds the replay payloads: each is the tail of a solve-request line
// (everything after the opening '{'), so a request becomes
// `{"id":N,` + payload without re-serializing JSON per send.
std::optional<std::vector<std::string>> build_payloads(
    const DriveOptions& options, std::string* error) {
  std::vector<CorpusEntry> corpus;
  for (const std::string& text : options.specs) {
    std::string spec_error;
    const auto spec = parse_spec(text, &spec_error);
    if (!spec) {
      if (error) *error = "bad_spec '" + text + "': " + spec_error;
      return std::nullopt;
    }
    if (options.seeds_per_spec > 0) {
      auto seeded = seed_corpus(*spec, options.seeds_per_spec);
      corpus.insert(corpus.end(), std::make_move_iterator(seeded.begin()),
                    std::make_move_iterator(seeded.end()));
    } else {
      corpus.push_back({*spec, generate(*spec)});
    }
  }
  if (corpus.empty()) {
    if (error) *error = "drive needs at least one generator spec";
    return std::nullopt;
  }
  std::vector<std::string> payloads;
  payloads.reserve(corpus.size());
  for (const CorpusEntry& entry : corpus) {
    Json request = Json::object();
    request.set("op", "solve");
    request.set("wire", static_cast<std::int64_t>(kWireVersion));
    if (options.payload_spec)
      request.set("spec", entry.spec.str());
    else
      request.set("instance", to_text(entry.instance));
    std::string payload = request.str();
    payload.front() = ',';  // the '{' comes from the id prefix instead
    payloads.push_back(std::move(payload));
  }
  return payloads;
}

std::string make_line(std::size_t id, const std::string& payload) {
  return "{\"id\":" + std::to_string(id) + payload;
}

// Builds the request lines of one churn-session replay: open_session, the
// trace's submit/cancel/snapshot events in order, close_session. Cancel
// targets use *predicted* job ids, never parsed responses: the session
// engine assigns ids from a monotone counter, so a job's id equals its
// submission index — which is what makes one-pass `--emit` possible.
std::vector<std::string> churn_lines(const ChurnSpec& spec,
                                     const std::vector<ChurnEvent>& events,
                                     const std::string& session) {
  std::vector<std::string> lines;
  lines.reserve(events.size() + 2);
  std::size_t id = 0;
  const auto add = [&](const Json& body) {
    std::string payload = body.str();
    payload.front() = ',';  // the '{' comes from the id prefix instead
    lines.push_back(make_line(id++, payload));
  };
  Json open = Json::object();
  open.set("op", "open_session");
  open.set("wire", static_cast<std::int64_t>(kWireVersion));
  open.set("session", session);
  open.set("machines", static_cast<std::int64_t>(spec.machines));
  add(open);
  for (const ChurnEvent& event : events) {
    Json body = Json::object();
    switch (event.kind) {
      case ChurnEvent::Kind::kSubmit:
        body.set("op", "submit_job");
        body.set("session", session);
        body.set("class", "c" + std::to_string(event.cls));
        body.set("size", static_cast<std::int64_t>(event.size));
        break;
      case ChurnEvent::Kind::kCancel:
        body.set("op", "cancel_job");
        body.set("session", session);
        body.set("job", event.target);
        break;
      case ChurnEvent::Kind::kSnapshot:
        body.set("op", "snapshot");
        body.set("session", session);
        break;
    }
    add(body);
  }
  Json close = Json::object();
  close.set("op", "close_session");
  close.set("session", session);
  add(close);
  return lines;
}

// Version handshake on an open connection: sends `version`, verifies the
// service speaks kWireVersion, surfaces named errors. Returns false (with
// `*error` filled) on any mismatch or transport failure.
bool handshake(LineClient& control, std::string* error) {
  Json hello = Json::object();
  hello.set("op", "version");
  hello.set("wire", static_cast<std::int64_t>(kWireVersion));
  std::string response_line;
  if (!control.send_line(hello.str()) || !control.recv_line(&response_line)) {
    if (error) *error = "service closed the connection during handshake";
    return false;
  }
  const std::optional<Json> response = json_parse(response_line);
  if (!response) {
    if (error) *error = "handshake response is not JSON: " + response_line;
    return false;
  }
  if (const Json* ok = response->find("ok");
      ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    const Json* code = response->find("error");
    const Json* detail = response->find("detail");
    if (error)
      *error = (code && code->is_string() ? code->as_string()
                                          : std::string("handshake_failed")) +
               ": " +
               (detail && detail->is_string() ? detail->as_string()
                                              : response_line);
    return false;
  }
  const Json* wire = response->find("wire");
  if (wire == nullptr || !wire->is_number() ||
      static_cast<int>(wire->as_number()) != kWireVersion) {
    if (error)
      *error = std::string(wire_error_name(WireError::kVersionMismatch)) +
               ": driver speaks wire version " + std::to_string(kWireVersion) +
               ", service reports " +
               (wire && wire->is_number()
                    ? std::to_string(static_cast<int>(wire->as_number()))
                    : std::string("none"));
    return false;
  }
  return true;
}

// Sends one `stats` op and parses the response document.
std::optional<Json> fetch_stats(LineClient& client) {
  if (!client.send_line("{\"op\":\"stats\"}")) return std::nullopt;
  std::string line;
  if (!client.recv_line(&line)) return std::nullopt;
  return json_parse(line);
}

// Reads `cache_hits`/`cache_misses` out of a `stats` response.
bool cache_counters(LineClient& client, double* hits, double* misses) {
  const std::optional<Json> document = fetch_stats(client);
  if (!document) return false;
  const Json* h = document->find("cache_hits");
  const Json* m = document->find("cache_misses");
  if (h == nullptr || !h->is_number() || m == nullptr || !m->is_number())
    return false;
  *hits = h->as_number();
  *misses = m->as_number();
  return true;
}

// Renders one mid-run stats poll: a one-line counter summary plus the
// latency decomposition table (lifecycle stage x percentiles).
std::string render_stats_poll(const Json& document, double at_s) {
  const auto count = [&document](const char* key) -> std::int64_t {
    const Json* v = document.find(key);
    return v != nullptr && v->is_number()
               ? static_cast<std::int64_t>(v->as_number())
               : 0;
  };
  std::ostringstream out;
  out << "drive stats @ " << Table::num(at_s, 1)
      << " s: received=" << count("received")
      << " responded=" << count("responded") << " errors=" << count("errors")
      << " cache_hits=" << count("cache_hits")
      << " cache_misses=" << count("cache_misses");
  if (const Json* depths = document.find("queue_depths");
      depths != nullptr && depths->is_array()) {
    out << " queue_depths=[";
    for (std::size_t i = 0; i < depths->items().size(); ++i) {
      if (i > 0) out << ',';
      out << static_cast<std::int64_t>(depths->items()[i].as_number());
    }
    out << ']';
  }
  out << '\n';

  const Json* latency = document.find("latency");
  if (latency != nullptr && latency->is_object() &&
      !latency->members().empty()) {
    Table table({"stage", "count", "p50_us", "p95_us", "p99_us", "mean_us"});
    for (const auto& [stage, entry] : latency->members()) {
      const auto cell = [&entry](const char* key) {
        const Json* v = entry.find(key);
        return v != nullptr && v->is_number() ? Table::num(v->as_number(), 1)
                                              : std::string("-");
      };
      const Json* n = entry.find("count");
      table.add_row({stage,
                     Table::num(n != nullptr && n->is_number()
                                    ? static_cast<std::int64_t>(n->as_number())
                                    : 0),
                     cell("p50_us"), cell("p95_us"), cell("p99_us"),
                     cell("mean_us")});
    }
    out << table.str();
  }
  return out.str();
}

// Churn mode: replay a generated session trace (one session per
// connection, strictly in order — mutations are causally dependent, so
// there is no open-loop pacing or shared work queue here).
std::optional<DriveReport> drive_churn(const DriveOptions& options,
                                       std::string* error) {
  std::string churn_error;
  const auto spec = parse_churn(options.churn, &churn_error);
  if (!spec) {
    if (error) *error = "bad_churn '" + options.churn + "': " + churn_error;
    return std::nullopt;
  }
  const std::vector<ChurnEvent> events = generate_churn(*spec);

  if (!options.emit.empty()) {
    // Emit mode: the single-session request stream for a stdio pipeline.
    std::ofstream file;
    const bool to_stdout = options.emit == "-";
    if (!to_stdout) {
      file.open(options.emit);
      if (!file) {
        if (error) *error = "cannot write " + options.emit;
        return std::nullopt;
      }
    }
    std::ostream& out = to_stdout ? std::cout : file;
    const std::vector<std::string> lines = churn_lines(*spec, events, "churn-0");
    for (const std::string& line : lines) out << line << '\n';
    out.flush();
    if (!out) {
      if (error) *error = "write error on " + options.emit;
      return std::nullopt;
    }
    DriveReport report;
    report.sent = lines.size();
    return report;
  }

  if (options.socket.empty() && options.tcp.empty()) {
    if (error)
      *error = "drive needs --socket=PATH or --tcp=HOST:PORT (or --emit=FILE)";
    return std::nullopt;
  }

  std::unique_ptr<LineClient> control_client =
      connect_line_client(options.socket, options.tcp, error);
  if (!control_client) return std::nullopt;
  if (!handshake(*control_client, error)) return std::nullopt;

  const unsigned conns = options.conns == 0 ? 1 : options.conns;
  std::vector<std::unique_ptr<LineClient>> clients;
  for (unsigned c = 0; c < conns; ++c) {
    auto client = connect_line_client(options.socket, options.tcp, error);
    if (!client) return std::nullopt;
    clients.push_back(std::move(client));
  }

  std::ofstream capture_file;
  std::ostream* capture = nullptr;
  if (!options.churn_out.empty()) {
    if (options.churn_out == "-") {
      capture = &std::cout;
    } else {
      capture_file.open(options.churn_out);
      if (!capture_file) {
        if (error) *error = "cannot write " + options.churn_out;
        return std::nullopt;
      }
      capture = &capture_file;
    }
  }

  std::atomic<std::size_t> ok_count{0}, error_count{0}, rejected_count{0};
  std::atomic<std::size_t> transport_failures{0};
  obs::Histogram latency_hist{obs::latency_buckets_us()};
  std::atomic<std::uint64_t> max_latency_us{0};
  const Clock::time_point start = Clock::now();

  std::vector<std::thread> workers;
  for (unsigned c = 0; c < conns; ++c) {
    workers.emplace_back([&, c] {
      LineClient& client = *clients[c];
      const std::vector<std::string> lines =
          churn_lines(*spec, events, "churn-" + std::to_string(c));
      std::string response;
      for (const std::string& line : lines) {
        const Clock::time_point sent_at = Clock::now();
        if (!client.send_line(line) || !client.recv_line(&response)) {
          transport_failures.fetch_add(1);
          return;
        }
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - sent_at)
                              .count();
        latency_hist.record(us);
        const std::uint64_t us_int =
            static_cast<std::uint64_t>(us < 0.0 ? 0.0 : us);
        std::uint64_t prev = max_latency_us.load();
        while (us_int > prev &&
               !max_latency_us.compare_exchange_weak(prev, us_int)) {
        }
        if (response.find("\"ok\":true") != std::string::npos) {
          ok_count.fetch_add(1);
        } else {
          error_count.fetch_add(1);
          if (response.find("\"error\":\"overloaded\"") != std::string::npos)
            rejected_count.fetch_add(1);
        }
        // Only connection 0 captures: its session replay is a deterministic
        // byte stream, the cross-shard/transport identity artifact.
        if (c == 0 && capture != nullptr) *capture << response << '\n';
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (capture != nullptr) {
    capture->flush();
    if (!*capture) {
      if (error) *error = "write error on " + options.churn_out;
      return std::nullopt;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  DriveReport report;
  report.ok = ok_count.load();
  report.errors = error_count.load();
  report.rejected = rejected_count.load();
  report.transport_errors = transport_failures.load();
  report.sent = report.ok + report.errors;
  report.elapsed_s = elapsed_s;
  report.throughput =
      elapsed_s > 0.0 ? static_cast<double>(report.sent) / elapsed_s : 0.0;
  const obs::Histogram::Snapshot latency = latency_hist.snapshot();
  if (latency.count > 0) {
    report.p50_ms = latency.quantile(0.5) / 1000.0;
    report.p95_ms = latency.quantile(0.95) / 1000.0;
    report.p99_ms = latency.quantile(0.99) / 1000.0;
    report.max_ms = static_cast<double>(max_latency_us.load()) / 1000.0;
  }
  return report;
}

}  // namespace

std::string DriveReport::str() const {
  std::ostringstream out;
  out << "drive: " << sent << " requests, " << ok << " ok, " << errors
      << " errors (" << rejected << " rejected)\n";
  if (transport_errors > 0)
    out << "TRANSPORT FAILURE: " << transport_errors
        << " connection(s) died mid-run\n";
  out
      << "time:  " << elapsed_s << " s (" << throughput << " req/s)\n"
      << "latency: p50 " << p50_ms << " ms, p95 " << p95_ms << " ms, p99 "
      << p99_ms << " ms, max " << max_ms << " ms\n";
  if (cache_hit_rate >= 0.0)
    out << "cache: " << 100.0 * cache_hit_rate << "% hit rate\n";
  return out.str();
}

Json DriveReport::json() const {
  Json document = Json::object();
  document.set("sent", static_cast<std::int64_t>(sent));
  document.set("ok", static_cast<std::int64_t>(ok));
  document.set("errors", static_cast<std::int64_t>(errors));
  document.set("rejected", static_cast<std::int64_t>(rejected));
  document.set("transport_errors",
               static_cast<std::int64_t>(transport_errors));
  document.set("elapsed_s", elapsed_s);
  document.set("throughput", throughput);
  document.set("p50_ms", p50_ms);
  document.set("p95_ms", p95_ms);
  document.set("p99_ms", p99_ms);
  document.set("max_ms", max_ms);
  document.set("cache_hit_rate", cache_hit_rate);
  return document;
}

std::optional<DriveReport> drive(const DriveOptions& options,
                                 std::string* error) {
  if (!options.churn.empty()) return drive_churn(options, error);
  const auto payloads = build_payloads(options, error);
  if (!payloads) return std::nullopt;
  std::size_t requests = options.requests;
  if (requests == 0 && options.duration_s <= 0.0)
    requests = payloads->size();  // default: one pass over the corpus

  if (!options.emit.empty()) {
    // Emit mode: write the request stream for a stdio `serve` pipeline.
    const std::size_t count = requests == 0 ? payloads->size() : requests;
    std::ofstream file;
    const bool to_stdout = options.emit == "-";
    if (!to_stdout) {
      file.open(options.emit);
      if (!file) {
        if (error) *error = "cannot write " + options.emit;
        return std::nullopt;
      }
    }
    std::ostream& out = to_stdout ? std::cout : file;
    for (std::size_t i = 0; i < count; ++i)
      out << make_line(i, (*payloads)[i % payloads->size()]) << '\n';
    out.flush();
    if (!out) {
      if (error) *error = "write error on " + options.emit;
      return std::nullopt;
    }
    DriveReport report;
    report.sent = count;
    return report;
  }

  if (options.socket.empty() && options.tcp.empty()) {
    if (error)
      *error = "drive needs --socket=PATH or --tcp=HOST:PORT (or --emit=FILE)";
    return std::nullopt;
  }

  // Version handshake on a dedicated connection (also used for the
  // before/after cache counters).
  std::unique_ptr<LineClient> control_client =
      connect_line_client(options.socket, options.tcp, error);
  if (!control_client) return std::nullopt;
  LineClient& control = *control_client;
  if (!handshake(control, error)) return std::nullopt;
  double hits_before = 0.0, misses_before = 0.0;
  const bool have_before =
      cache_counters(control, &hits_before, &misses_before);

  const unsigned conns = options.conns == 0 ? 1 : options.conns;
  std::vector<std::unique_ptr<LineClient>> clients;
  for (unsigned c = 0; c < conns; ++c) {
    auto client = connect_line_client(options.socket, options.tcp, error);
    if (!client) return std::nullopt;
    clients.push_back(std::move(client));
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok_count{0}, error_count{0}, rejected_count{0};
  std::atomic<std::size_t> transport_failures{0};
  // One shared latency histogram (obs/metrics.hpp): recording is two
  // relaxed striped fetch_adds, so the measurement loop never allocates —
  // unlike the per-connection vectors it replaced.
  obs::Histogram latency_hist{obs::latency_buckets_us()};
  std::atomic<std::uint64_t> max_latency_us{0};
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      options.duration_s > 0.0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(options.duration_s))
          : Clock::time_point::max();
  const double interval_s = options.qps > 0.0 ? 1.0 / options.qps : 0.0;

  // Mid-run stats poller: shares the control connection (the workers never
  // touch it during the measured window), prints to stderr so a piped
  // --json report stays clean.
  std::atomic<bool> polling{true};
  std::thread poller;
  if (options.stats_interval_s > 0.0) {
    poller = std::thread([&] {
      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(options.stats_interval_s));
      Clock::time_point due = start + interval;
      while (polling.load()) {
        if (Clock::now() < due) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        due += interval;
        const std::optional<Json> document = fetch_stats(control);
        if (!document) return;  // control connection died; stop quietly
        const double at_s =
            std::chrono::duration<double>(Clock::now() - start).count();
        std::cerr << render_stats_poll(*document, at_s);
      }
    });
  }

  std::vector<std::thread> workers;
  for (unsigned c = 0; c < conns; ++c) {
    workers.emplace_back([&, c] {
      LineClient& client = *clients[c];
      std::string response;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (requests != 0 && i >= requests) break;
        Clock::time_point reference = Clock::now();
        if (interval_s > 0.0) {
          // Open loop: request i is due at start + i/qps; latency is
          // charged from the *scheduled* time (no coordinated omission).
          const Clock::time_point scheduled =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) * interval_s));
          std::this_thread::sleep_until(scheduled);
          reference = scheduled;
        }
        if (Clock::now() >= deadline) break;
        const std::string line =
            make_line(i, (*payloads)[i % payloads->size()]);
        if (!client.send_line(line) || !client.recv_line(&response)) {
          // The peer vanished mid-run: surface it — a run that silently
          // stops early must not report success.
          transport_failures.fetch_add(1);
          break;
        }
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - reference)
                              .count();
        latency_hist.record(us);
        const std::uint64_t us_int =
            static_cast<std::uint64_t>(us < 0.0 ? 0.0 : us);
        std::uint64_t prev = max_latency_us.load();
        while (us_int > prev &&
               !max_latency_us.compare_exchange_weak(prev, us_int)) {
        }
        if (response.find("\"ok\":true") != std::string::npos) {
          ok_count.fetch_add(1);
        } else {
          error_count.fetch_add(1);
          if (response.find("\"error\":\"overloaded\"") != std::string::npos)
            rejected_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  polling.store(false);
  if (poller.joinable()) poller.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (options.stats_interval_s > 0.0) {
    // Flush the final partial window: a run shorter than the interval
    // would otherwise end with no decomposition rows at all.
    if (const std::optional<Json> document = fetch_stats(control))
      std::cerr << render_stats_poll(*document, elapsed_s);
  }

  DriveReport report;
  report.ok = ok_count.load();
  report.errors = error_count.load();
  report.rejected = rejected_count.load();
  report.transport_errors = transport_failures.load();
  report.sent = report.ok + report.errors;
  report.elapsed_s = elapsed_s;
  report.throughput =
      elapsed_s > 0.0 ? static_cast<double>(report.sent) / elapsed_s : 0.0;

  const obs::Histogram::Snapshot latency = latency_hist.snapshot();
  if (latency.count > 0) {
    report.p50_ms = latency.quantile(0.5) / 1000.0;
    report.p95_ms = latency.quantile(0.95) / 1000.0;
    report.p99_ms = latency.quantile(0.99) / 1000.0;
    report.max_ms = static_cast<double>(max_latency_us.load()) / 1000.0;
  }

  double hits_after = 0.0, misses_after = 0.0;
  if (have_before && cache_counters(control, &hits_after, &misses_after)) {
    const double lookups =
        (hits_after + misses_after) - (hits_before + misses_before);
    if (lookups > 0.0)
      report.cache_hit_rate = (hits_after - hits_before) / lookups;
  }
  return report;
}

}  // namespace msrs::serve
