/// \file
/// ConnectionBudget: the one live-connection accounting object shared by
/// every transport (UNIX-socket thread-per-connection, TCP event loop).
///
/// A transport calls try_acquire() at accept time and release() the moment
/// a connection ends — both against a single atomic, so the accept path
/// and the teardown path can never disagree about how many slots are in
/// use (the thread-per-connection transport used to race its reaper's
/// zombie list against the accept check on abrupt client disconnect;
/// tests/test_tcp.cpp pins the fix). Acquire/release also keep the
/// transport's accepted/rejected counters and active gauge in the metrics
/// registry consistent with the decision actually taken.
#pragma once

#include <atomic>
#include <cstddef>

#include "obs/metrics.hpp"

namespace msrs::serve {

/// Thread-safe live-connection budget with metric side effects.
class ConnectionBudget {
 public:
  /// A budget of `limit` live connections (0 is clamped to 1), wired to
  /// the transport's counters: `accepted` and `rejected` count
  /// try_acquire() outcomes, `active` mirrors the live count. The metric
  /// objects must outlive the budget.
  ConnectionBudget(std::size_t limit, obs::Counter& accepted,
                   obs::Counter& rejected, obs::Gauge& active)
      : limit_(limit == 0 ? 1 : limit),
        accepted_(&accepted),
        rejected_(&rejected),
        active_gauge_(&active) {}

  ConnectionBudget(const ConnectionBudget&) = delete;  ///< not copyable
  ConnectionBudget& operator=(const ConnectionBudget&) =
      delete;  ///< not copyable

  /// Claims one slot. True (and `accepted`/`active` updated) when under
  /// budget; false (and `rejected` counted) at the budget — the caller
  /// sheds the connection with a named `overloaded` line.
  bool try_acquire() {
    // relaxed: just the CAS loop's starting guess; the CAS itself
    // (acq_rel) is what makes the slot claim authoritative.
    std::size_t current = active_.load(std::memory_order_relaxed);
    do {
      if (current >= limit_) {
        rejected_->inc();
        return false;
      }
      // relaxed: failure order only reloads the guess for the next try.
    } while (!active_.compare_exchange_weak(current, current + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
    accepted_->inc();
    active_gauge_->add(1);
    return true;
  }

  /// Returns one slot. Call exactly once per successful try_acquire(),
  /// as soon as the connection is finished — the slot (budget first, then
  /// gauge) is free for the accept path before any teardown bookkeeping,
  /// so `active() == 0` observed through the gauge implies a new client
  /// will be admitted.
  void release() {
    active_.fetch_sub(1, std::memory_order_acq_rel);
    active_gauge_->add(-1);
  }

  /// Live connections.
  std::size_t active() const {
    // relaxed: a monitoring read; the count may move the next instant
    // anyway, ordering buys nothing.
    return active_.load(std::memory_order_relaxed);
  }

  /// The configured limit.
  std::size_t limit() const { return limit_; }

 private:
  std::size_t limit_;
  std::atomic<std::size_t> active_{0};
  obs::Counter* accepted_;
  obs::Counter* rejected_;
  obs::Gauge* active_gauge_;
};

}  // namespace msrs::serve
