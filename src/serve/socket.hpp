/// \file
/// UNIX-domain socket transport: the server loop behind
/// `msrs_engine_cli serve --socket=PATH` and the line-oriented client the
/// load driver (serve/driver.hpp) connects with.
///
/// One JSONL stream per connection; responses return in that connection's
/// request order (OrderedWriter). The accept loop polls a stop flag
/// (transport.hpp), so SIGINT/SIGTERM and the wire `shutdown` op both end
/// in the same graceful drain. Only built on POSIX platforms; elsewhere
/// the entry points fail with a descriptive error.
#pragma once

#include <string>

#include "serve/service.hpp"

namespace msrs::serve {

/// True when this build carries the socket transport (POSIX only).
bool socket_transport_available();

/// Options of the socket server loop.
struct SocketOptions {
  /// Live-connection budget. At the budget, further accepts are answered
  /// with one `overloaded` error line and closed immediately (counted as
  /// `serve.conns.rejected`), so a connection flood cannot grow the
  /// thread-per-connection pool without bound.
  std::size_t max_connections = 256;
};

/// Binds `path` (unlinking any stale socket file first), accepts
/// connections, and serves until a stop signal or a client `shutdown` op;
/// then drains and removes the socket file. Accepted, rejected and active
/// connections are counted in the service's metrics registry
/// (`serve.conns.*`). Returns the process exit code (0 = clean; 1 with
/// `*error` filled on setup failure).
int serve_socket(Service& service, const std::string& path,
                 std::string* error, SocketOptions options = {});

/// Transport-agnostic face of a blocking line client: one JSONL stream,
/// one response line per request line. The load driver and the `stats`
/// subcommand program against this interface so they work unchanged over
/// the UNIX-socket and TCP transports (connect_line_client in
/// serve/tcp.hpp picks the implementation from the target given).
class LineClient {
 public:
  virtual ~LineClient() = default;

  /// Sends one request line (newline appended). False on a broken pipe.
  virtual bool send_line(const std::string& line) = 0;

  /// Receives the next response line (newline stripped); false on EOF or
  /// a read error.
  virtual bool recv_line(std::string* line) = 0;

  /// Closes the connection (idempotent).
  virtual void close() = 0;
};

/// Blocking line-oriented client of one serving connection.
class SocketClient : public LineClient {
 public:
  /// An unconnected client.
  SocketClient() = default;
  /// Closes the connection if still open.
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;             ///< not copyable
  SocketClient& operator=(const SocketClient&) = delete;  ///< not copyable

  /// Connects to the UNIX socket at `path`; false + `*error` on failure.
  bool connect(const std::string& path, std::string* error);

  /// Sends one request line (newline appended). False on a broken pipe.
  bool send_line(const std::string& line) override;

  /// Receives the next response line (newline stripped); false on EOF or
  /// a read error.
  bool recv_line(std::string* line) override;

  /// Closes the connection (idempotent).
  void close() override;

 private:
  int fd_ = -1;
  std::string buffer_;     // bytes read but not yet returned
  std::size_t scanned_ = 0;  // prefix of buffer_ known to hold no newline
};

}  // namespace msrs::serve
