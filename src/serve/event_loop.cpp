#include "serve/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string_view>

namespace msrs::serve {

// ---------------- TimerWheel ----------------

TimerWheel::TimerWheel(std::uint64_t tick_ms, std::size_t slots)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      slots_(std::max<std::size_t>(slots, 2)) {}

void TimerWheel::arm(int key, std::uint64_t deadline_ms) {
  Entry& entry = entries_[key];
  entry.deadline_ms = deadline_ms;
  if (!entry.parked) {
    slots_[slot_of(deadline_ms)].push_back(key);
    entry.parked = true;
  }
}

void TimerWheel::cancel(int key) { entries_.erase(key); }

void TimerWheel::advance(std::uint64_t now_ms, std::vector<int>* expired) {
  if (now_ms < cursor_ms_) return;
  std::uint64_t from_tick = cursor_ms_ / tick_ms_;
  const std::uint64_t to_tick = now_ms / tick_ms_;
  // A long sleep laps the wheel at most once: every slot is visited.
  if (to_tick - from_tick >= slots_.size())
    from_tick = to_tick - slots_.size() + 1;
  std::vector<int> bucket;
  for (std::uint64_t tick = from_tick; tick <= to_tick; ++tick) {
    bucket.clear();
    bucket.swap(slots_[static_cast<std::size_t>(tick % slots_.size())]);
    for (const int key : bucket) {
      const auto it = entries_.find(key);
      if (it == entries_.end()) continue;  // cancelled: stale reference
      if (it->second.deadline_ms <= now_ms) {
        entries_.erase(it);
        expired->push_back(key);
      } else {
        // Re-armed past this slot: park it where it now belongs. A
        // deadline inside the tick currently being processed re-parks
        // into the same (now empty) bucket and is caught next advance.
        slots_[slot_of(it->second.deadline_ms)].push_back(key);
      }
    }
  }
  cursor_ms_ = now_ms;
}

// ---------------- LineFramer ----------------

void LineFramer::append(const char* data, std::size_t size) {
  // Compact once the consumed prefix dominates, so the buffer does not
  // creep toward max_line_bytes through O(n^2) erases or dead space.
  if (begin_ > 4096 && begin_ > buffer_.size() / 2) {
    buffer_.erase(0, begin_);
    scanned_ -= begin_;
    begin_ = 0;
  }
  buffer_.append(data, size);
  highwater_ = std::max(highwater_, buffer_.size() - begin_);
  // Track the unterminated tail incrementally (only the appended chunk is
  // scanned): once it exceeds the bound the connection is past saving,
  // even if a newline completes the frame later.
  const std::size_t last_nl = std::string_view(data, size).rfind('\n');
  if (last_nl == std::string_view::npos)
    tail_len_ += size;
  else
    tail_len_ = size - last_nl - 1;
  if (tail_len_ > max_line_bytes_) overflowed_ = true;
}

bool LineFramer::next_line(std::string* line) {
  const std::size_t nl = buffer_.find('\n', scanned_);
  if (nl == std::string::npos) {
    scanned_ = buffer_.size();
    return false;
  }
  line->assign(buffer_, begin_, nl - begin_);
  // A complete frame over the bound latches too — frames that arrive
  // whole in one read would otherwise slip past the tail accounting.
  if (line->size() > max_line_bytes_) overflowed_ = true;
  begin_ = nl + 1;
  scanned_ = begin_;
  return true;
}

std::string LineFramer::take_remainder() {
  std::string tail = buffer_.substr(begin_);
  buffer_.clear();
  begin_ = 0;
  scanned_ = 0;
  tail_len_ = 0;
  return tail;
}

}  // namespace msrs::serve

// ---------------- platform pieces (Linux epoll + eventfd) ----------------

#if defined(__linux__)

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace msrs::serve {
namespace {

class EpollPoller final : public Poller {
 public:
  explicit EpollPoller(int fd) : epoll_fd_(fd) {}
  ~EpollPoller() override { ::close(epoll_fd_); }

  bool add(int fd, bool want_read, bool want_write) override {
    epoll_event event = make_event(fd, want_read, want_write);
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) == 0;
  }

  bool modify(int fd, bool want_read, bool want_write) override {
    epoll_event event = make_event(fd, want_read, want_write);
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0;
  }

  bool remove(int fd) override {
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) == 0 ||
           errno == ENOENT || errno == EBADF;
  }

  int wait(std::vector<Event>* events, int timeout_ms) override {
    epoll_event ready[64];
    const int n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    if (n <= 0) return n;  // 0 = timeout; -1 with EINTR = interrupted sleep
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return n;
  }

 private:
  static epoll_event make_event(int fd, bool want_read, bool want_write) {
    epoll_event event = {};
    event.data.fd = fd;
    if (want_read) event.events |= EPOLLIN;
    if (want_write) event.events |= EPOLLOUT;
    return event;  // level-triggered: no EPOLLET
  }

  int epoll_fd_;
};

}  // namespace

bool poller_available() { return true; }

std::unique_ptr<Poller> make_poller(std::string* error) {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) {
    if (error) *error = std::string("epoll_create1: ") + std::strerror(errno);
    return nullptr;
  }
  return std::make_unique<EpollPoller>(fd);
}

WakeupFd::WakeupFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}

WakeupFd::~WakeupFd() {
  if (fd_ >= 0) ::close(fd_);
}

void WakeupFd::signal() {
  if (fd_ < 0) return;
  const std::uint64_t one = 1;
  // A full eventfd counter already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(fd_, &one, sizeof one);
}

void WakeupFd::drain() {
  if (fd_ < 0) return;
  std::uint64_t count = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd_, &count, sizeof count);
}

}  // namespace msrs::serve

#else  // no epoll: the TCP transport reports itself unavailable.

namespace msrs::serve {

bool poller_available() { return false; }

std::unique_ptr<Poller> make_poller(std::string* error) {
  if (error) *error = "no event-loop poller on this platform";
  return nullptr;
}

WakeupFd::WakeupFd() = default;
WakeupFd::~WakeupFd() = default;
void WakeupFd::signal() {}
void WakeupFd::drain() {}

}  // namespace msrs::serve

#endif
