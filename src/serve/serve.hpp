/// \file
/// Umbrella header for the serving layer: engine -> serve.
///
///   wire.hpp       — JSONL protocol: requests, named errors, kWireVersion
///   service.hpp    — sharded async Service with per-shard LRU result caches
///   transport.hpp  — OrderedWriter, stdio serve loop, stop signals
///   socket.hpp     — UNIX-domain server + line client
///   event_loop.hpp — Poller seam, timer wheel, line framer, wakeup fd
///   tcp.hpp        — epoll event-loop TCP server + TCP line client
///   driver.hpp     — closed/open-loop load driver with latency percentiles
#pragma once

#include "serve/driver.hpp"      // IWYU pragma: export
#include "serve/event_loop.hpp"  // IWYU pragma: export
#include "serve/http.hpp"        // IWYU pragma: export
#include "serve/service.hpp"     // IWYU pragma: export
#include "serve/socket.hpp"      // IWYU pragma: export
#include "serve/tcp.hpp"         // IWYU pragma: export
#include "serve/transport.hpp"   // IWYU pragma: export
#include "serve/wire.hpp"        // IWYU pragma: export
