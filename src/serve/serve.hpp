/// \file
/// Umbrella header for the serving layer: engine -> serve.
///
///   wire.hpp      — JSONL protocol: requests, named errors, kWireVersion
///   service.hpp   — sharded async Service with per-shard LRU result caches
///   transport.hpp — OrderedWriter, stdio serve loop, stop signals
///   socket.hpp    — UNIX-domain server + line client
///   driver.hpp    — closed/open-loop load driver with latency percentiles
#pragma once

#include "serve/driver.hpp"     // IWYU pragma: export
#include "serve/service.hpp"    // IWYU pragma: export
#include "serve/socket.hpp"     // IWYU pragma: export
#include "serve/transport.hpp"  // IWYU pragma: export
#include "serve/wire.hpp"       // IWYU pragma: export
