/// \file
/// Wire protocol of the serving layer: JSONL requests and responses.
///
/// One request per line, one response line per request, over either
/// transport (stdin/stdout or a UNIX-domain socket — serve/transport.hpp).
/// Requests:
/// \verbatim
///   {"id":7,"op":"solve","spec":"uniform:n=40,m=4,seed=9"}
///   {"id":8,"op":"solve","instance":"msrs 1\nmachines 4\n..."}
///   {"op":"ping"} {"op":"stats"} {"op":"version"} {"op":"shutdown"}
///   {"id":9,"op":"open_session","session":"s1","machines":8}
///   {"id":10,"op":"submit_job","session":"s1","class":"r0","size":40}
///   {"id":11,"op":"cancel_job","session":"s1","job":0}
///   {"id":12,"op":"snapshot","session":"s1"}
///   {"id":13,"op":"close_session","session":"s1"}
/// \endverbatim
/// `id` is echoed verbatim (null when absent); an optional `"wire":N`
/// member asserts the client's protocol version and fails the request with
/// the named error `wire_version_mismatch` when it differs from
/// kWireVersion. Responses are deterministic bytes: a fixed key order
/// rendered by the canonical util/json writer, so a response body is a pure
/// function of the request (+ solver determinism) — the property the
/// serving smoke test asserts across shard counts.
///
/// Malformed input never kills the service: every defect maps to a named
/// error response `{"id":...,"ok":false,"error":"<code>","detail":"..."}`
/// and the stream continues with the next line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/portfolio.hpp"
#include "util/json.hpp"

namespace msrs::serve {

/// Version of this JSONL protocol; bumped on any incompatible change.
/// Clients (the load driver) handshake via the `version` op and fail fast
/// with a named error on mismatch.
inline constexpr int kWireVersion = 1;

/// Named wire error codes (the stable `error` strings of the protocol).
enum class WireError {
  kParseError,       ///< line is not a JSON document
  kBadRequest,       ///< JSON is well-formed but violates the schema
  kUnknownOp,        ///< `op` names no operation of this protocol
  kBadSpec,          ///< `spec` is not a valid generator spec string
  kBadInstance,      ///< `instance` is not valid instance_io text
  kOverloaded,       ///< admission queue full (reject admission mode)
  kVersionMismatch,  ///< client `wire` version differs from kWireVersion
  kShuttingDown,     ///< service no longer accepts requests
  kUnknownSession,   ///< session op names no open session
  kUnknownJob,       ///< cancel_job names no alive job of the session
  kSessionLimit,     ///< open_session would exceed the open-session cap
};

/// Every wire error code, in enum order — the telemetry layer pre-registers
/// one counter per code so the `stats` error breakdown has a stable key set
/// (new codes are appended, never reordered: the enum value indexes the
/// service's per-code counter table).
inline constexpr WireError kAllWireErrors[] = {
    WireError::kParseError,   WireError::kBadRequest,
    WireError::kUnknownOp,    WireError::kBadSpec,
    WireError::kBadInstance,  WireError::kOverloaded,
    WireError::kVersionMismatch, WireError::kShuttingDown,
    WireError::kUnknownSession,  WireError::kUnknownJob,
    WireError::kSessionLimit,
};

/// The stable wire string of an error code (e.g. "overloaded").
std::string_view wire_error_name(WireError code);

/// Request operations.
enum class Op {
  kSolve,     ///< solve one instance (from `spec` or `instance` text)
  kPing,      ///< liveness probe; answers {"ok":true,"op":"ping"}
  kStats,     ///< service counters snapshot
  kVersion,   ///< schema versions (instance/bench/wire) of the service
  kShutdown,  ///< stop accepting, drain, exit the serve loop
  kOpenSession,   ///< create a named mutable session (engine/session.hpp)
  kSubmitJob,     ///< session mutation: add a job to a class
  kCancelJob,     ///< session mutation: cancel a submitted job
  kSnapshot,      ///< current session schedule (incremental repair path)
  kCloseSession,  ///< drop a session and its state
  kDumpRecorder,  ///< merged flight-recorder dump (obs/flight_recorder.hpp)
};

/// One parsed request line.
struct Request {
  Op op = Op::kPing;     ///< requested operation
  Json id;               ///< client correlation id, echoed verbatim
  int wire = 0;          ///< asserted protocol version (0 = unchecked)
  std::string spec;      ///< kSolve: generator spec string (exclusive
                         ///< with `instance`)
  std::string instance;  ///< kSolve: instance_io text
  int budget_ms = 0;     ///< kSolve: portfolio effort gate (0 = default)
  std::string session;   ///< session ops: the client-chosen session name
  std::string job_class; ///< kSubmitJob: resource-class name (`"class"`)
  int size = 0;          ///< kSubmitJob: job processing time (>= 1)
  int job = -1;          ///< kCancelJob: session job id (-1 = absent)
  int machines = 8;      ///< kOpenSession: machine pool size (>= 1)
  /// kDumpRecorder: canonical (run-independent, sorted by request) vs full
  /// (wall-clock order with timestamps + shard placement) rendering.
  bool canonical = false;
};

/// Parses one JSONL request line. On failure returns std::nullopt and
/// fills `code`/`detail` (both optional) with the named error; `id_out`,
/// when non-null, receives whatever id could be salvaged from the line so
/// the error response still correlates.
std::optional<Request> parse_request(const std::string& line,
                                     WireError* code = nullptr,
                                     std::string* detail = nullptr,
                                     Json* id_out = nullptr);

/// Renders the named error response line (no trailing newline).
std::string error_response(const Json& id, WireError code,
                           std::string_view detail);

/// Renders a solve response line: id, ok, solver provenance, makespan,
/// Lemma-9 bound, ratio, validity. Deterministic bytes for a deterministic
/// result; `from_cache` is deliberately *not* part of the body (it depends
/// on arrival order, not the request) — cache behavior is observable via
/// the `stats` op instead.
std::string solve_response(const Json& id,
                           const engine::PortfolioResult& result);

/// The solve response minus its `{"id":<id>` prefix (starts with the comma
/// before `"ok"`). Every field is isomorphism-invariant, so the tail is
/// shared by all requests of one canonical shape — the serving layer
/// caches it rendered and answers repeats with one concatenation.
std::string solve_response_tail(const engine::PortfolioResult& result);

/// Prepends the id prefix onto a cached tail: the full response line.
std::string compose_response(const Json& id, const std::string& tail);

/// Renders the acknowledgement line of ping/shutdown ops.
std::string ok_response(const Json& id, std::string_view op);

/// Renders the open_session/close_session acknowledgement (op + session
/// name echoed): `{"id":..,"ok":true,"op":"open_session","session":"s1"}`.
std::string session_response(const Json& id, std::string_view op,
                             std::string_view session);

/// Renders the submit_job response carrying the assigned session job id.
std::string submit_response(const Json& id, std::string_view session,
                            std::uint64_t job);

/// Renders the cancel_job acknowledgement.
std::string cancel_response(const Json& id, std::string_view session,
                            std::uint64_t job);

/// The body of a `snapshot` response: the session's current schedule
/// summary plus repair provenance. Every field is a pure function of the
/// session's mutation history (the session memo is session-local), so
/// snapshot responses are byte-identical across shard counts and
/// transports — the serving-layer invariant tests/test_session.cpp pins.
struct SnapshotBody {
  std::string session;   ///< session name (echoed)
  std::size_t jobs = 0;      ///< alive jobs
  std::size_t classes = 0;   ///< classes with at least one alive job
  int machines = 0;          ///< machine pool size
  std::string solver;        ///< winning solver ("empty" when no jobs)
  double makespan = 0.0;     ///< schedule makespan, instance units
  std::int64_t t_bound = 0;  ///< Lemma-9 bound of the current instance
  double ratio = 0.0;        ///< makespan / t_bound
  bool valid = false;        ///< schedule passed core/validate
  std::string source;        ///< "repair" | "resolve" | "empty"
};

/// Renders a snapshot response line.
std::string snapshot_response(const Json& id, const SnapshotBody& body);

/// Renders the `version` response: instance-format, bench-schema and wire
/// versions of this build (the driver's handshake target).
std::string version_response(const Json& id);

/// The `build_info` label set of this build: schema versions (wire,
/// instance format, bench schema) plus compile-time provenance (compiler,
/// build type, sanitizers). Rendered as a constant-1 info series on the
/// Prometheus page and as an object in the `stats` op.
std::vector<std::pair<std::string, std::string>> build_info_labels();

}  // namespace msrs::serve
