#include "serve/transport.hpp"

#include <atomic>
#include <csignal>
#include <istream>
#include <ostream>

namespace msrs::serve {

std::uint64_t OrderedWriter::reserve() {
  util::MutexLock lock(mutex_);
  return next_reserve_++;
}

void OrderedWriter::deliver(std::uint64_t seq, std::string&& line) {
  util::MutexLock lock(mutex_);
  pending_.emplace(seq, std::move(line));
  // Release the contiguous ready prefix. Writing under the lock keeps the
  // sink single-threaded and the order exact.
  for (auto it = pending_.find(next_write_); it != pending_.end();
       it = pending_.find(next_write_)) {
    sink_(it->second);
    pending_.erase(it);
    ++next_write_;
  }
  if (next_write_ == next_reserve_) drained_.notify_all();
}

void OrderedWriter::wait_drained() {
  util::MutexLock lock(mutex_);
  while (next_write_ != next_reserve_) drained_.wait(mutex_);
}

bool OrderedWriter::drained() {
  util::MutexLock lock(mutex_);
  return next_write_ == next_reserve_;
}

int serve_stdio(Service& service, std::istream& in, std::ostream& out) {
  OrderedWriter writer([&out](const std::string& line) {
    out << line << '\n';
    out.flush();  // pipelines see each response as soon as it is ready
  });
  std::string line;
  while (service.accepting() && !stop_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    const std::uint64_t seq = writer.reserve();
    service.submit(line, [seq, &writer](std::string&& response) {
      writer.deliver(seq, std::move(response));
    });
  }
  service.shutdown(std::chrono::seconds(30));
  writer.wait_drained();
  out.flush();
  return out ? 0 : 1;
}

namespace {

// std::atomic<int>, not volatile sig_atomic_t: request_stop() is called
// from other threads (e.g. the socket server's shutdown op), and a plain
// volatile written cross-thread is a C++ data race. std::atomic<int> is
// lock-free on every supported target (checked below), which also keeps
// it async-signal-safe for the handler write.
std::atomic<int> g_stop{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free stop flag");

void on_stop_signal(int) {
  // relaxed: a standalone flag with no dependent data; readers only poll
  // whether to stop, nothing is published through it.
  g_stop.store(1, std::memory_order_relaxed);
}

}  // namespace

void install_stop_signals() {
#if defined(_WIN32)
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
#else
  // No SA_RESTART: a blocking read()/accept() returns EINTR so the serve
  // loops notice the flag promptly and drain instead of dying mid-request.
  struct sigaction action = {};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#endif
}

// relaxed: see on_stop_signal — the flag carries no dependent data.
bool stop_requested() { return g_stop.load(std::memory_order_relaxed) != 0; }

// relaxed: see on_stop_signal — the flag carries no dependent data.
void request_stop() { g_stop.store(1, std::memory_order_relaxed); }

// relaxed: see on_stop_signal — the flag carries no dependent data.
void reset_stop() { g_stop.store(0, std::memory_order_relaxed); }

}  // namespace msrs::serve
