#include "serve/service.hpp"

#include <fstream>
#include <future>
#include <utility>

#include "core/instance_io.hpp"
#include "sim/workloads.hpp"

namespace msrs::serve {
namespace {

// Lifecycle-stage histogram names, in decomposition order.
constexpr const char* kStageNames[] = {"admission", "queue", "solve", "write",
                                       "total"};

std::string stage_metric(std::string_view stage) {
  return "serve.latency." + std::string(stage) + "_us";
}

Json count_json(std::size_t v) { return Json(static_cast<std::int64_t>(v)); }

// FNV-1a over the session name: the shard placement of a session. Any
// stable hash works (placement is invisible in response bytes); it only has
// to keep one session's ops on one shard.
std::uint64_t session_hash(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// The dump_recorder response: dump meta plus every merged event, rendered
// as ONE JSON document (the JSONL transport frames responses by line).
std::string dump_recorder_response(const Json& id,
                                   const obs::FlightRecorder& recorder,
                                   bool canonical) {
  const obs::FlightRecorder::Dump dump = recorder.collect(canonical);
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("op", std::string("dump_recorder"));
  response.set("canonical", canonical);
  response.set("events", count_json(dump.events.size()));
  response.set("dropped", count_json(static_cast<std::size_t>(dump.dropped)));
  Json entries = Json::array();
  for (const obs::RecorderEvent& event : dump.events)
    entries.push_back(recorder.event_json(event, canonical));
  response.set("entries", std::move(entries));
  return response.str();
}

// The legacy counter-only body shared by both stats_response overloads.
Json stats_body(const Json& id, const ServiceStats& stats) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("shards", count_json(stats.shards));
  response.set("received", count_json(stats.received));
  response.set("responded", count_json(stats.responded));
  response.set("rejected", count_json(stats.rejected));
  response.set("errors", count_json(stats.errors));
  response.set("solved", count_json(stats.solved));
  response.set("cache_hits", count_json(stats.cache_hits));
  response.set("cache_misses", count_json(stats.cache_misses));
  response.set("cache_evictions", count_json(stats.cache_evictions));
  response.set("cache_entries", count_json(stats.cache_entries));
  return response;
}

}  // namespace

std::string stats_response(const Json& id, const ServiceStats& stats) {
  return stats_body(id, stats).str();
}

std::string stats_response(const Json& id, const ServiceStats& stats,
                           const obs::MetricsSnapshot& snapshot) {
  Json response = stats_body(id, stats);

  Json depths = Json::array();
  for (const std::size_t d : stats.queue_depths) depths.push_back(count_json(d));
  response.set("queue_depths", std::move(depths));

  Json per_shard = Json::array();
  for (const std::size_t r : stats.shard_requests)
    per_shard.push_back(count_json(r));
  response.set("shard_requests", std::move(per_shard));

  Json errors_by_code = Json::object();
  for (const WireError code : kAllWireErrors) {
    const std::string name(wire_error_name(code));
    errors_by_code.set(name, count_json(snapshot.counter_or(
                                 "serve.errors." + name)));
  }
  response.set("errors_by_code", std::move(errors_by_code));

  Json solver_wins = Json::object();
  constexpr std::string_view kWinPrefix = "engine.race_win.";
  for (const auto& [name, value] : snapshot.counters)
    if (name.size() > kWinPrefix.size() &&
        std::string_view(name).substr(0, kWinPrefix.size()) == kWinPrefix)
      solver_wins.set(name.substr(kWinPrefix.size()), count_json(value));
  response.set("solver_wins", std::move(solver_wins));

  Json conns = Json::object();
  conns.set("accepted", count_json(snapshot.counter_or("serve.conns.accepted")));
  conns.set("rejected", count_json(snapshot.counter_or("serve.conns.rejected")));
  conns.set("active", Json(snapshot.gauge_or("serve.conns.active")));
  response.set("conns", std::move(conns));

  Json tcp = Json::object();
  tcp.set("accepted", count_json(snapshot.counter_or("serve.tcp.accepted")));
  tcp.set("shed", count_json(snapshot.counter_or("serve.tcp.shed")));
  tcp.set("idle_reaped",
          count_json(snapshot.counter_or("serve.tcp.idle_reaped")));
  tcp.set("active", Json(snapshot.gauge_or("serve.tcp.active")));
  tcp.set("read_buf_highwater",
          Json(snapshot.gauge_or("serve.tcp.read_buf_highwater")));
  tcp.set("write_buf_highwater",
          Json(snapshot.gauge_or("serve.tcp.write_buf_highwater")));
  response.set("tcp", std::move(tcp));

  Json sessions = Json::object();
  sessions.set("active", Json(snapshot.gauge_or("serve.session.active")));
  sessions.set("opened",
               count_json(snapshot.counter_or("serve.session.opened")));
  sessions.set("closed",
               count_json(snapshot.counter_or("serve.session.closed")));
  sessions.set("submits",
               count_json(snapshot.counter_or("serve.session.submits")));
  sessions.set("cancels",
               count_json(snapshot.counter_or("serve.session.cancels")));
  sessions.set("snapshots",
               count_json(snapshot.counter_or("serve.session.snapshots")));
  sessions.set("repairs",
               count_json(snapshot.counter_or("serve.session.repairs")));
  sessions.set("fallbacks",
               count_json(snapshot.counter_or("serve.session.fallbacks")));
  response.set("sessions", std::move(sessions));

  Json latency = Json::object();
  for (const char* stage : kStageNames) {
    const obs::Histogram::Snapshot* h =
        snapshot.histogram(stage_metric(stage));
    if (h == nullptr) continue;
    Json entry = Json::object();
    entry.set("count", count_json(h->count));
    entry.set("p50_us", h->quantile(0.50));
    entry.set("p95_us", h->quantile(0.95));
    entry.set("p99_us", h->quantile(0.99));
    entry.set("mean_us", h->mean());
    latency.set(stage, std::move(entry));
  }
  response.set("latency", std::move(latency));

  // Appended last so earlier consumers' key order is untouched.
  response.set("uptime_seconds",
               Json(snapshot.gauge_or("serve.uptime_seconds")));
  Json build = Json::object();
  for (const auto& [key, value] : build_info_labels()) build.set(key, value);
  response.set("build_info", std::move(build));
  return response.str();
}

Service::Service(ServiceOptions options,
                 const engine::SolverRegistry& registry)
    : options_(std::move(options)),
      registry_(&registry),
      tracer_(std::make_unique<obs::Tracer>(options_.trace)),
      pool_(options_.shards == 0 ? std::thread::hardware_concurrency()
                                 : options_.shards) {
  // Pre-register every exposed metric so the stats key set is stable from
  // the first snapshot, and resolve the hot-path handles once.
  received_c_ = &metrics_.counter("serve.received");
  responded_c_ = &metrics_.counter("serve.responded");
  rejected_c_ = &metrics_.counter("serve.rejected");
  errors_c_ = &metrics_.counter("serve.errors");
  for (const WireError code : kAllWireErrors)
    error_code_c_.push_back(&metrics_.counter(
        "serve.errors." + std::string(wire_error_name(code))));
  lat_admission_ = &metrics_.histogram(stage_metric("admission"));
  lat_queue_ = &metrics_.histogram(stage_metric("queue"));
  lat_solve_ = &metrics_.histogram(stage_metric("solve"));
  lat_write_ = &metrics_.histogram(stage_metric("write"));
  lat_total_ = &metrics_.histogram(stage_metric("total"));
  metrics_.counter("serve.conns.accepted");
  metrics_.counter("serve.conns.rejected");
  metrics_.gauge("serve.conns.active");
  metrics_.counter("serve.tcp.accepted");
  metrics_.counter("serve.tcp.shed");
  metrics_.counter("serve.tcp.idle_reaped");
  metrics_.gauge("serve.tcp.active");
  metrics_.gauge("serve.tcp.read_buf_highwater");
  metrics_.gauge("serve.tcp.write_buf_highwater");
  session_opened_c_ = &metrics_.counter("serve.session.opened");
  session_closed_c_ = &metrics_.counter("serve.session.closed");
  session_submits_c_ = &metrics_.counter("serve.session.submits");
  session_cancels_c_ = &metrics_.counter("serve.session.cancels");
  session_snapshots_c_ = &metrics_.counter("serve.session.snapshots");
  session_repairs_c_ = &metrics_.counter("serve.session.repairs");
  session_fallbacks_c_ = &metrics_.counter("serve.session.fallbacks");
  session_active_g_ = &metrics_.gauge("serve.session.active");
  uptime_g_ = &metrics_.gauge("serve.uptime_seconds");
  start_ = obs::TraceClock::now();

  // Monitoring: the watchdog is always constructed (its obs.watchdog.*
  // counters are part of the stable key set); the recorder is optional.
  watchdog_ = std::make_unique<obs::Watchdog>(options_.watchdog, metrics_);
  if (options_.recorder_events > 0) {
    obs::RecorderOptions recorder_options;
    recorder_options.capacity = options_.recorder_events;
    recorder_ = std::make_unique<obs::FlightRecorder>(recorder_options);
    // Pre-intern every label the hot path may attach, so record() callers
    // never touch the intern lock.
    error_label_.reserve(std::size(kAllWireErrors));
    for (const WireError code : kAllWireErrors)
      error_label_.push_back(recorder_->intern(wire_error_name(code)));
    for (const std::string& solver : registry.names())
      solver_label_.emplace(solver, recorder_->intern(solver));
    solver_label_.emplace("empty", recorder_->intern("empty"));
  }

  const unsigned shard_count = pool_.size();
  engine::PortfolioOptions portfolio;
  portfolio.budget_ms = options_.budget_ms;
  portfolio.only = options_.solvers;
  portfolio.threads = 1;  // the shard layer owns the parallelism
  portfolio.metrics = &metrics_;
  shards_.reserve(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>(options_.queue_depth,
                                         options_.cache_capacity);
    shard->index = static_cast<int>(s);
    shard->portfolio =
        std::make_unique<engine::PortfolioSolver>(registry, portfolio);
    shard->requests =
        &metrics_.counter("serve.shard_requests." + std::to_string(s));
    metrics_.gauge("serve.queue_depth." + std::to_string(s));
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_)
    pool_.submit([this, raw = shard.get()] { shard_loop(*raw); });
}

Service::~Service() { shutdown(std::chrono::seconds(30)); }

void Service::respond(Done& done, std::string&& line) {
  responded_c_->inc();
  done(std::move(line));
}

void Service::respond_error(Done& done, const Json& id, WireError code,
                            std::string_view detail,
                            const obs::TraceContext* trace) {
  errors_c_->inc();
  error_code_c_[static_cast<std::size_t>(code)]->inc();
  responded_c_->inc();
  if (recorder_ != nullptr && trace != nullptr)
    recorder_->record(obs::EventKind::kError, trace->seq,
                      obs::recorder_ts_ns(obs::TraceClock::now()), 0xff,
                      error_label_[static_cast<std::size_t>(code)], 0);
  done(error_response(id, code, detail));
  if (trace != nullptr) {
    const double total =
        obs::stage_us(trace->admit, obs::TraceClock::now());
    if (tracer_->sampled(trace->seq) || tracer_->slow(total)) {
      obs::Span span;
      span.seq = trace->seq;
      span.error = std::string(wire_error_name(code));
      span.admission_us = obs::stage_us(trace->admit, trace->enqueue);
      span.queue_us = obs::stage_us(trace->enqueue, trace->dispatch);
      span.total_us = total;
      tracer_->observe(span);
    }
  }
}

void Service::finish_item() {
  util::MutexLock lock(pending_mutex_);
  if (--pending_ == 0) drained_.notify_all();
}

void Service::submit(const std::string& line, Done done) {
  received_c_->inc();
  obs::TraceContext trace;
  // relaxed: only uniqueness matters — each caller needs a distinct seq;
  // nothing is published through this counter.
  trace.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  trace.admit = obs::TraceClock::now();
  if (recorder_ != nullptr)
    recorder_->record(obs::EventKind::kAdmit, trace.seq,
                      obs::recorder_ts_ns(trace.admit), 0xff, 0,
                      static_cast<std::uint32_t>(line.size()));
  Json salvaged_id;
  WireError code = WireError::kParseError;
  std::string detail;
  std::optional<Request> request =
      parse_request(line, &code, &detail, &salvaged_id);
  if (!request) {
    respond_error(done, salvaged_id, code, detail, &trace);
    return;
  }
  if (!accepting_.load()) {
    respond_error(done, request->id, WireError::kShuttingDown,
                  "service is shutting down", &trace);
    return;
  }
  if (request->wire != 0 && request->wire != kWireVersion) {
    respond_error(done, request->id, WireError::kVersionMismatch,
                  "client speaks wire version " +
                      std::to_string(request->wire) + ", service speaks " +
                      std::to_string(kWireVersion),
                  &trace);
    return;
  }

  switch (request->op) {
    case Op::kPing:
      respond(done, ok_response(request->id, "ping"));
      return;
    case Op::kVersion:
      respond(done, version_response(request->id));
      return;
    case Op::kStats:
      respond(done,
              stats_response(request->id, stats(), metrics_snapshot()));
      return;
    case Op::kShutdown:
      accepting_.store(false);
      respond(done, ok_response(request->id, "shutdown"));
      return;
    case Op::kDumpRecorder:
      if (recorder_ == nullptr) {
        respond_error(done, request->id, WireError::kBadRequest,
                      "the flight recorder is disabled", &trace);
      } else {
        respond(done, dump_recorder_response(request->id, *recorder_,
                                             request->canonical));
      }
      return;
    case Op::kOpenSession:
    case Op::kSubmitJob:
    case Op::kCancelJob:
    case Op::kSnapshot:
    case Op::kCloseSession: {
      // Session ops route by the session-name hash, not the canonical
      // form: every op of one session serializes on one shard's FIFO, so
      // the owning worker mutates session state shared-nothing and the
      // response stream is a pure function of the session's op order —
      // identical at any shard count.
      Item item;
      item.op = request->op;
      item.id = std::move(request->id);
      item.session = std::move(request->session);
      item.job_class = std::move(request->job_class);
      item.size = request->size;
      item.job = request->job;
      item.machines = request->machines;
      item.done = std::move(done);
      item.trace = trace;
      Shard& shard = *shards_[static_cast<std::size_t>(
          session_hash(item.session) % shards_.size())];
      if (options_.session_queue_budget > 0) {
        // Admission fairness: a churn burst may hold at most
        // session_queue_budget slots of this shard's queue, so solve ops
        // behind it are delayed by a bounded number of cheap mutations.
        if (options_.reject_when_full) {
          util::MutexLock lock(shard.session_gate_mutex);
          if (shard.queued_session_ops >=
              options_.session_queue_budget) {
            rejected_c_->inc();
            respond_error(item.done, item.id, WireError::kOverloaded,
                          "session op budget of this shard is full",
                          &item.trace);
            return;
          }
          ++shard.queued_session_ops;
        } else {
          util::MutexLock lock(shard.session_gate_mutex);
          while (accepting_.load() &&
                 shard.queued_session_ops >= options_.session_queue_budget)
            shard.session_gate_cv.wait(shard.session_gate_mutex);
          if (!accepting_.load()) {
            respond_error(item.done, item.id, WireError::kShuttingDown,
                          "service is shutting down", &item.trace);
            return;
          }
          ++shard.queued_session_ops;
        }
      }
      {
        util::MutexLock lock(pending_mutex_);
        ++pending_;
      }
      item.trace.enqueue = obs::TraceClock::now();
      const bool admitted = options_.reject_when_full
                                ? shard.queue.try_push(item)
                                : shard.queue.push(item);
      if (!admitted) {
        release_session_slot(shard);
        const bool closed = !accepting_.load();
        if (!closed) rejected_c_->inc();
        respond_error(item.done, item.id,
                      closed ? WireError::kShuttingDown
                             : WireError::kOverloaded,
                      closed ? "service is shutting down"
                             : "request queue is full",
                      &item.trace);
        finish_item();
      }
      return;
    }
    case Op::kSolve:
      break;
  }

  Item item;
  item.id = std::move(request->id);
  item.budget_ms = request->budget_ms;
  item.done = std::move(done);
  item.trace = trace;
  if (!request->spec.empty()) {
    std::string error;
    const auto spec = parse_spec(request->spec, &error);
    if (!spec) {
      respond_error(item.done, item.id, WireError::kBadSpec, error,
                    &item.trace);
      return;
    }
    item.instance = generate(*spec);
  } else {
    std::string error;
    auto parsed = from_text(request->instance, &error);
    if (!parsed) {
      respond_error(item.done, item.id, WireError::kBadInstance, error,
                    &item.trace);
      return;
    }
    item.instance = std::move(*parsed);
  }
  item.form = engine::canonical_form(item.instance);
  Shard& shard =
      *shards_[static_cast<std::size_t>(item.form.key % shards_.size())];

  {
    util::MutexLock lock(pending_mutex_);
    ++pending_;
  }
  item.trace.enqueue = obs::TraceClock::now();
  const bool admitted = options_.reject_when_full ? shard.queue.try_push(item)
                                                  : shard.queue.push(item);
  if (!admitted) {
    // try_push: full (overloaded); push: only fails when closed (shutdown).
    const bool closed = !accepting_.load();
    if (!closed) rejected_c_->inc();
    respond_error(item.done, item.id,
                  closed ? WireError::kShuttingDown : WireError::kOverloaded,
                  closed ? "service is shutting down"
                         : "request queue is full",
                  &item.trace);
    finish_item();
  }
}

std::string Service::handle(const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  submit(line, [&promise](std::string&& response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

void Service::shard_loop(Shard& shard) {
  while (std::optional<Item> item = shard.queue.pop()) {
    const bool session_op = item->op != Op::kSolve;
    process(shard, *item);
    // The fairness gate slot is held until the op is *processed*, not just
    // dequeued — the budget bounds queue occupancy, so it must only free
    // up when the burst actually drains.
    if (session_op) release_session_slot(shard);
  }
}

void Service::release_session_slot(Shard& shard) {
  if (options_.session_queue_budget == 0) return;
  {
    util::MutexLock lock(shard.session_gate_mutex);
    if (shard.queued_session_ops > 0) --shard.queued_session_ops;
  }
  shard.session_gate_cv.notify_one();
}

void Service::process(Shard& shard, Item& item) {
  item.trace.dispatch = obs::TraceClock::now();
  const std::uint8_t shard_id = static_cast<std::uint8_t>(shard.index);
  if (recorder_ != nullptr)
    recorder_->record(obs::EventKind::kDispatch, item.trace.seq,
                      obs::recorder_ts_ns(item.trace.dispatch), shard_id, 0,
                      0);
  if (abort_.load()) {
    respond_error(item.done, item.id, WireError::kShuttingDown,
                  "service stopped before this request was served",
                  &item.trace);
    finish_item();
    return;
  }
  if (item.op != Op::kSolve) {
    process_session(shard, item);
    finish_item();
    return;
  }
  item.trace.solve_begin = item.trace.dispatch;
  if (recorder_ != nullptr)
    recorder_->record(obs::EventKind::kSolveBegin, item.trace.seq,
                      obs::recorder_ts_ns(item.trace.solve_begin), shard_id,
                      0, 0);
  std::string response;
  std::string solver;
  const char* cache_state = "";
  std::uint32_t cache_value = 0;  // recorder encoding: miss/hit/bypass
  if (item.budget_ms != 0) {
    // Non-default effort changes the result, so it must not share cache
    // entries with default-budget traffic; solve uncached.
    engine::PortfolioOptions per_request = shard.portfolio->options();
    per_request.budget_ms = item.budget_ms;
    engine::PortfolioResult result =
        engine::PortfolioSolver(*registry_, per_request).solve(item.instance);
    solver = result.solver;
    cache_state = "bypass";
    cache_value = 2;
    response = solve_response(item.id, result);
    shard.solved.fetch_add(1);
  } else if (const TailCache::Entry* entry = shard.cache.find(item.form)) {
    response = compose_response(item.id, entry->second.tail);
    solver = entry->second.solver;
    cache_state = "hit";
    cache_value = 1;
  } else {
    engine::PortfolioResult result = shard.portfolio->solve(item.instance);
    std::string tail = solve_response_tail(result);
    response = compose_response(item.id, tail);
    solver = result.solver;
    cache_state = "miss";
    shard.cache.insert(std::move(item.form),
                       CachedResult{std::move(tail), std::move(result.solver)});
    shard.solved.fetch_add(1);
  }
  item.trace.solve_end = obs::TraceClock::now();
  if (recorder_ != nullptr) {
    const auto label = solver_label_.find(solver);
    recorder_->record(obs::EventKind::kSolveEnd, item.trace.seq,
                      obs::recorder_ts_ns(item.trace.solve_end), shard_id,
                      label != solver_label_.end() ? label->second : 0,
                      cache_value);
  }
  // Mirror the (single-threaded) LRU counters into atomics for stats().
  const LruStats& cache = shard.cache.stats();
  shard.hits.store(cache.hits);
  shard.misses.store(cache.misses);
  shard.evictions.store(cache.evictions);
  shard.entries.store(cache.entries);
  shard.requests->inc();
  const obs::TraceClock::time_point end = obs::TraceClock::now();
  if (recorder_ != nullptr)
    recorder_->record(obs::EventKind::kWrite, item.trace.seq,
                      obs::recorder_ts_ns(end), shard_id, 0,
                      static_cast<std::uint32_t>(response.size()));

  // Stage decomposition: every solve request feeds the five lifecycle
  // histograms; spans are materialized only when sampled or slow. All
  // telemetry is recorded BEFORE the response is delivered so that a
  // synchronous observer (handle(), the stats op) sees a consistent
  // count; "write" therefore covers post-solve bookkeeping, not the
  // ordered-writer flush.
  const double admission_us = obs::stage_us(item.trace.admit,
                                            item.trace.enqueue);
  const double queue_us = obs::stage_us(item.trace.enqueue,
                                        item.trace.dispatch);
  const double solve_us = obs::stage_us(item.trace.solve_begin,
                                        item.trace.solve_end);
  const double write_us = obs::stage_us(item.trace.solve_end, end);
  const double total_us = obs::stage_us(item.trace.admit, end);
  lat_admission_->record(admission_us);
  lat_queue_->record(queue_us);
  lat_solve_->record(solve_us);
  lat_write_->record(write_us);
  lat_total_->record(total_us);
  if (tracer_->sampled(item.trace.seq) || tracer_->slow(total_us)) {
    obs::Span span;
    span.seq = item.trace.seq;
    span.shard = shard.index;
    span.solver = solver;
    span.cache = cache_state;
    span.admission_us = admission_us;
    span.queue_us = queue_us;
    span.solve_us = solve_us;
    span.write_us = write_us;
    span.total_us = total_us;
    tracer_->observe(span);
  }
  respond(item.done, std::move(response));
  finish_item();
}

void Service::process_session(Shard& shard, Item& item) {
  item.trace.solve_begin = item.trace.dispatch;
  const auto found = shard.sessions.find(item.session);
  const auto unknown_session = [this, &item] {
    respond_error(item.done, item.id, WireError::kUnknownSession,
                  "no open session named '" + item.session + "'",
                  &item.trace);
  };
  std::string response;
  obs::EventKind session_kind = obs::EventKind::kSessionClose;
  std::uint32_t session_value = 0;  // per-kind recorder payload
  switch (item.op) {
    case Op::kOpenSession: {
      if (found != shard.sessions.end()) {
        respond_error(item.done, item.id, WireError::kBadRequest,
                      "session '" + item.session + "' is already open",
                      &item.trace);
        return;
      }
      // Global cap, checked optimistically: open_session is rare, so the
      // fetch_add/rollback race window is irrelevant in practice.
      if (active_sessions_.fetch_add(1) + 1 > options_.session_limit) {
        active_sessions_.fetch_sub(1);
        respond_error(item.done, item.id, WireError::kSessionLimit,
                      "open sessions are capped at " +
                          std::to_string(options_.session_limit),
                      &item.trace);
        return;
      }
      engine::SessionOptions session_options;
      session_options.portfolio = shard.portfolio->options();
      session_options.cache_capacity = options_.session_cache;
      shard.sessions.emplace(item.session, std::make_unique<engine::SessionEngine>(
                                               item.machines, *registry_,
                                               session_options));
      session_active_g_->set(
          static_cast<std::int64_t>(active_sessions_.load()));
      session_opened_c_->inc();
      session_kind = obs::EventKind::kSessionOpen;
      session_value = static_cast<std::uint32_t>(item.machines);
      response = session_response(item.id, "open_session", item.session);
      break;
    }
    case Op::kSubmitJob: {
      if (found == shard.sessions.end()) return unknown_session();
      const std::uint64_t job =
          found->second->submit(item.job_class, item.size);
      session_submits_c_->inc();
      session_kind = obs::EventKind::kSessionSubmit;
      session_value = static_cast<std::uint32_t>(job);
      response = submit_response(item.id, item.session, job);
      break;
    }
    case Op::kCancelJob: {
      if (found == shard.sessions.end()) return unknown_session();
      if (!found->second->cancel(static_cast<std::uint64_t>(item.job))) {
        respond_error(item.done, item.id, WireError::kUnknownJob,
                      "job " + std::to_string(item.job) +
                          " is not an alive job of session '" +
                          item.session + "'",
                      &item.trace);
        return;
      }
      session_cancels_c_->inc();
      session_kind = obs::EventKind::kSessionCancel;
      session_value = static_cast<std::uint32_t>(item.job);
      response = cancel_response(item.id, item.session,
                                 static_cast<std::uint64_t>(item.job));
      break;
    }
    case Op::kSnapshot: {
      if (found == shard.sessions.end()) return unknown_session();
      engine::SessionEngine& session = *found->second;
      const engine::SessionStats before = session.stats();
      const engine::SessionSnapshot& snap = session.snapshot();
      session_snapshots_c_->inc();
      session_repairs_c_->add(session.stats().repairs - before.repairs);
      session_fallbacks_c_->add(session.stats().fallbacks -
                                before.fallbacks);
      SnapshotBody body;
      body.session = item.session;
      body.jobs = session.jobs_alive();
      body.classes = session.classes_alive();
      body.machines = session.machines();
      body.solver = snap.result.solver;
      body.makespan = snap.result.makespan;
      body.t_bound = static_cast<std::int64_t>(snap.result.t_bound);
      body.ratio = snap.result.ratio_vs_bound;
      body.valid = snap.result.valid;
      body.source = engine::snapshot_source_name(snap.source);
      session_kind = obs::EventKind::kSessionSnapshot;
      session_value = static_cast<std::uint32_t>(body.jobs);
      response = snapshot_response(item.id, body);
      break;
    }
    case Op::kCloseSession: {
      if (found == shard.sessions.end()) return unknown_session();
      shard.sessions.erase(found);
      active_sessions_.fetch_sub(1);
      session_active_g_->set(
          static_cast<std::int64_t>(active_sessions_.load()));
      session_closed_c_->inc();
      response = session_response(item.id, "close_session", item.session);
      break;
    }
    default:
      return;  // unreachable: submit() routes only session ops here
  }
  item.trace.solve_end = obs::TraceClock::now();
  shard.requests->inc();
  const obs::TraceClock::time_point end = obs::TraceClock::now();
  if (recorder_ != nullptr) {
    const std::uint8_t shard_id = static_cast<std::uint8_t>(shard.index);
    recorder_->record(session_kind, item.trace.seq,
                      obs::recorder_ts_ns(item.trace.solve_end), shard_id, 0,
                      session_value);
    recorder_->record(obs::EventKind::kWrite, item.trace.seq,
                      obs::recorder_ts_ns(end), shard_id, 0,
                      static_cast<std::uint32_t>(response.size()));
  }
  // Session ops feed the same lifecycle histograms as solves ("solve"
  // covers the session mutation/repair work); spans stay solve-only.
  lat_admission_->record(obs::stage_us(item.trace.admit, item.trace.enqueue));
  lat_queue_->record(obs::stage_us(item.trace.enqueue, item.trace.dispatch));
  lat_solve_->record(
      obs::stage_us(item.trace.solve_begin, item.trace.solve_end));
  lat_write_->record(obs::stage_us(item.trace.solve_end, end));
  lat_total_->record(obs::stage_us(item.trace.admit, end));
  respond(item.done, std::move(response));
}

ServiceStats Service::stats() const {
  ServiceStats stats;
  stats.shards = static_cast<unsigned>(shards_.size());
  stats.received = received_c_->value();
  stats.responded = responded_c_->value();
  stats.rejected = rejected_c_->value();
  stats.errors = errors_c_->value();
  stats.queue_depths.reserve(shards_.size());
  stats.shard_requests.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.solved += shard->solved.load();
    stats.cache_hits += shard->hits.load();
    stats.cache_misses += shard->misses.load();
    stats.cache_evictions += shard->evictions.load();
    stats.cache_entries += shard->entries.load();
    stats.queue_depths.push_back(shard->queue.size());
    stats.shard_requests.push_back(
        static_cast<std::size_t>(shard->requests->value()));
  }
  return stats;
}

obs::MetricsSnapshot Service::metrics_snapshot() {
  for (const auto& shard : shards_)
    metrics_.gauge("serve.queue_depth." + std::to_string(shard->index))
        .set(static_cast<std::int64_t>(shard->queue.size()));
  uptime_g_->set(std::chrono::duration_cast<std::chrono::seconds>(
                     obs::TraceClock::now() - start_)
                     .count());
  obs::MetricsSnapshot snapshot = metrics_.snapshot();
  snapshot.info.emplace_back("build_info", build_info_labels());
  return snapshot;
}

bool Service::monitor_tick() {
  util::MutexLock lock(monitor_mutex_);
  if (!watchdog_->tick(metrics_snapshot())) return false;
  if (recorder_ != nullptr && !options_.watchdog_dump.empty()) {
    // Full (wall-clock) rendering: a post-mortem wants timestamps.
    std::ofstream out(options_.watchdog_dump,
                      std::ios::binary | std::ios::trunc);
    out << recorder_->jsonl(false);
  }
  return true;
}

bool Service::shutdown(std::chrono::milliseconds deadline) {
  std::call_once(shutdown_once_, [this, deadline] {
    accepting_.store(false);
    for (auto& shard : shards_) {
      shard->queue.close();
      // Wake submitters blocked on the session fairness gate; they see
      // !accepting() and answer shutting_down.
      shard->session_gate_cv.notify_all();
    }
    bool drained = true;
    {
      util::MutexLock lock(pending_mutex_);
      if (deadline == std::chrono::milliseconds::max()) {
        // An effectively infinite deadline must not feed wait_until
        // (time_point overflow); wait without one.
        while (pending_ != 0) drained_.wait(pending_mutex_);
      } else {
        const auto until = util::deadline_after(deadline);
        while (pending_ != 0) {
          if (drained_.wait_until(pending_mutex_, until) ==
              std::cv_status::timeout) {
            drained = pending_ == 0;
            break;
          }
        }
      }
    }
    if (!drained) {
      // Deadline passed: remaining queued items are answered with the
      // named shutting_down error (cheap), never silently dropped.
      abort_.store(true);
      util::MutexLock lock(pending_mutex_);
      while (pending_ != 0) drained_.wait(pending_mutex_);
    }
    pool_.shutdown();  // shard loops exit once their queues are drained
    tracer_->flush();
    shutdown_result_ = drained;
  });
  return shutdown_result_;
}

}  // namespace msrs::serve
