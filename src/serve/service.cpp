#include "serve/service.hpp"

#include <future>
#include <utility>

#include "core/instance_io.hpp"
#include "sim/workloads.hpp"

namespace msrs::serve {

std::string stats_response(const Json& id, const ServiceStats& stats) {
  const auto count = [](std::size_t v) {
    return Json(static_cast<std::int64_t>(v));
  };
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", true);
  response.set("shards", count(stats.shards));
  response.set("received", count(stats.received));
  response.set("responded", count(stats.responded));
  response.set("rejected", count(stats.rejected));
  response.set("errors", count(stats.errors));
  response.set("solved", count(stats.solved));
  response.set("cache_hits", count(stats.cache_hits));
  response.set("cache_misses", count(stats.cache_misses));
  response.set("cache_evictions", count(stats.cache_evictions));
  response.set("cache_entries", count(stats.cache_entries));
  return response.str();
}

Service::Service(ServiceOptions options,
                 const engine::SolverRegistry& registry)
    : options_(std::move(options)),
      registry_(&registry),
      pool_(options_.shards == 0 ? std::thread::hardware_concurrency()
                                 : options_.shards) {
  const unsigned shard_count = pool_.size();
  engine::PortfolioOptions portfolio;
  portfolio.budget_ms = options_.budget_ms;
  portfolio.only = options_.solvers;
  portfolio.threads = 1;  // the shard layer owns the parallelism
  shards_.reserve(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>(options_.queue_depth,
                                         options_.cache_capacity);
    shard->portfolio =
        std::make_unique<engine::PortfolioSolver>(registry, portfolio);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_)
    pool_.submit([this, raw = shard.get()] { shard_loop(*raw); });
}

Service::~Service() { shutdown(std::chrono::seconds(30)); }

void Service::respond(Done& done, std::string&& line, bool is_error) {
  if (is_error) ++errors_;
  ++responded_;
  done(std::move(line));
}

void Service::finish_item() {
  std::lock_guard lock(pending_mutex_);
  if (--pending_ == 0) drained_.notify_all();
}

void Service::submit(const std::string& line, Done done) {
  ++received_;
  Json salvaged_id;
  WireError code = WireError::kParseError;
  std::string detail;
  std::optional<Request> request =
      parse_request(line, &code, &detail, &salvaged_id);
  if (!request) {
    respond(done, error_response(salvaged_id, code, detail), true);
    return;
  }
  if (!accepting_.load()) {
    respond(done,
            error_response(request->id, WireError::kShuttingDown,
                           "service is shutting down"),
            true);
    return;
  }
  if (request->wire != 0 && request->wire != kWireVersion) {
    respond(done,
            error_response(request->id, WireError::kVersionMismatch,
                           "client speaks wire version " +
                               std::to_string(request->wire) +
                               ", service speaks " +
                               std::to_string(kWireVersion)),
            true);
    return;
  }

  switch (request->op) {
    case Op::kPing:
      respond(done, ok_response(request->id, "ping"), false);
      return;
    case Op::kVersion:
      respond(done, version_response(request->id), false);
      return;
    case Op::kStats:
      respond(done, stats_response(request->id, stats()), false);
      return;
    case Op::kShutdown:
      accepting_.store(false);
      respond(done, ok_response(request->id, "shutdown"), false);
      return;
    case Op::kSolve:
      break;
  }

  Item item;
  item.id = std::move(request->id);
  item.budget_ms = request->budget_ms;
  item.done = std::move(done);
  if (!request->spec.empty()) {
    std::string error;
    const auto spec = parse_spec(request->spec, &error);
    if (!spec) {
      respond(item.done, error_response(item.id, WireError::kBadSpec, error),
              true);
      return;
    }
    item.instance = generate(*spec);
  } else {
    std::string error;
    auto parsed = from_text(request->instance, &error);
    if (!parsed) {
      respond(item.done,
              error_response(item.id, WireError::kBadInstance, error), true);
      return;
    }
    item.instance = std::move(*parsed);
  }
  item.form = engine::canonical_form(item.instance);
  Shard& shard =
      *shards_[static_cast<std::size_t>(item.form.key % shards_.size())];

  {
    std::lock_guard lock(pending_mutex_);
    ++pending_;
  }
  const bool admitted = options_.reject_when_full ? shard.queue.try_push(item)
                                                  : shard.queue.push(item);
  if (!admitted) {
    // try_push: full (overloaded); push: only fails when closed (shutdown).
    const bool closed = !accepting_.load();
    if (!closed) ++rejected_;
    respond(item.done,
            error_response(item.id,
                           closed ? WireError::kShuttingDown
                                  : WireError::kOverloaded,
                           closed ? "service is shutting down"
                                  : "request queue is full"),
            true);
    finish_item();
  }
}

std::string Service::handle(const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  submit(line, [&promise](std::string&& response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

void Service::shard_loop(Shard& shard) {
  while (std::optional<Item> item = shard.queue.pop()) process(shard, *item);
}

void Service::process(Shard& shard, Item& item) {
  if (abort_.load()) {
    respond(item.done,
            error_response(item.id, WireError::kShuttingDown,
                           "service stopped before this request was served"),
            true);
    finish_item();
    return;
  }
  std::string response;
  if (item.budget_ms != 0) {
    // Non-default effort changes the result, so it must not share cache
    // entries with default-budget traffic; solve uncached.
    engine::PortfolioOptions per_request = shard.portfolio->options();
    per_request.budget_ms = item.budget_ms;
    response = solve_response(item.id,
                              engine::PortfolioSolver(*registry_, per_request)
                                  .solve(item.instance));
    shard.solved.fetch_add(1);
  } else if (const TailCache::Entry* entry = shard.cache.find(item.form)) {
    response = compose_response(item.id, entry->second);
  } else {
    std::string tail =
        solve_response_tail(shard.portfolio->solve(item.instance));
    response = compose_response(item.id, tail);
    shard.cache.insert(std::move(item.form), std::move(tail));
    shard.solved.fetch_add(1);
  }
  // Mirror the (single-threaded) LRU counters into atomics for stats().
  const LruStats& cache = shard.cache.stats();
  shard.hits.store(cache.hits);
  shard.misses.store(cache.misses);
  shard.evictions.store(cache.evictions);
  shard.entries.store(cache.entries);
  respond(item.done, std::move(response), false);
  finish_item();
}

ServiceStats Service::stats() const {
  ServiceStats stats;
  stats.shards = static_cast<unsigned>(shards_.size());
  stats.received = received_.load();
  stats.responded = responded_.load();
  stats.rejected = rejected_.load();
  stats.errors = errors_.load();
  for (const auto& shard : shards_) {
    stats.solved += shard->solved.load();
    stats.cache_hits += shard->hits.load();
    stats.cache_misses += shard->misses.load();
    stats.cache_evictions += shard->evictions.load();
    stats.cache_entries += shard->entries.load();
  }
  return stats;
}

bool Service::shutdown(std::chrono::milliseconds deadline) {
  std::call_once(shutdown_once_, [this, deadline] {
    accepting_.store(false);
    for (auto& shard : shards_) shard->queue.close();
    bool drained;
    {
      std::unique_lock lock(pending_mutex_);
      if (deadline == std::chrono::milliseconds::max()) {
        drained_.wait(lock, [this] { return pending_ == 0; });
        drained = true;
      } else {
        drained = drained_.wait_for(lock, deadline,
                                    [this] { return pending_ == 0; });
      }
    }
    if (!drained) {
      // Deadline passed: remaining queued items are answered with the
      // named shutting_down error (cheap), never silently dropped.
      abort_.store(true);
      std::unique_lock lock(pending_mutex_);
      drained_.wait(lock, [this] { return pending_ == 0; });
    }
    pool_.shutdown();  // shard loops exit once their queues are drained
    shutdown_result_ = drained;
  });
  return shutdown_result_;
}

}  // namespace msrs::serve
