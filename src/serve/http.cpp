#include "serve/http.hpp"

namespace msrs::serve {
namespace {

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Error";
}

}  // namespace

HttpParse parse_http_request(std::string_view buffer, HttpRequest* request,
                             std::size_t* head_len) {
  // The head ends at the first blank line; accept CRLF and bare LF.
  std::size_t consumed = 0;
  if (const std::size_t crlf = buffer.find("\r\n\r\n");
      crlf != std::string_view::npos) {
    consumed = crlf + 4;
  } else if (const std::size_t lf = buffer.find("\n\n");
             lf != std::string_view::npos) {
    consumed = lf + 2;
  } else {
    return HttpParse::kIncomplete;
  }

  std::string_view line = buffer.substr(0, buffer.find('\n'));
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return HttpParse::kBad;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return HttpParse::kBad;
  const std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return HttpParse::kBad;
  if (request != nullptr) {
    request->method = std::string(line.substr(0, sp1));
    request->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  if (head_len != nullptr) *head_len = consumed;
  return HttpParse::kOk;
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string http_route(Service& service, const HttpRequest& request) {
  if (request.method != "GET")
    return http_response(405, "text/plain", "method not allowed\n");
  std::string_view target = request.target;
  std::string_view query;
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    query = target.substr(q + 1);
    target = target.substr(0, q);
  }
  if (target == "/metrics")
    return http_response(200, "text/plain; version=0.0.4",
                         service.metrics_snapshot().prometheus());
  if (target == "/healthz")
    return service.accepting()
               ? http_response(200, "text/plain", "ok\n")
               : http_response(503, "text/plain", "draining\n");
  if (target == "/recorder") {
    const obs::FlightRecorder* recorder = service.recorder();
    if (recorder == nullptr)
      return http_response(404, "text/plain",
                           "the flight recorder is disabled\n");
    const bool canonical = query.find("canonical=1") != std::string_view::npos;
    return http_response(200, "application/jsonl",
                         recorder->jsonl(canonical));
  }
  if (target == "/watchdog")
    return http_response(200, "application/json",
                         service.watchdog().json().str() + "\n");
  return http_response(404, "text/plain", "not found\n");
}

}  // namespace msrs::serve
