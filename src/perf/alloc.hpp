/// \file
/// Thread-local heap-allocation counting for the perf harness.
///
/// When enabled (the default), linking libmsrs replaces the global
/// `operator new` family with malloc-backed versions that bump a
/// thread-local counter, so the Runner can report exact allocations-per-op
/// for the hot paths — a deterministic metric, unlike wall-clock time.
///
/// Counting is compiled out under AddressSanitizer (ASan interposes the
/// allocator itself); `alloc_counting_enabled()` then returns false and
/// `alloc_count()` stays 0, and every consumer must degrade gracefully.
#pragma once

#include <cstdint>

namespace msrs::perf {

/// True when the operator-new hooks are compiled in (false under ASan).
bool alloc_counting_enabled();

/// Number of heap allocations observed on the calling thread so far.
/// Monotone; meaningful only as a difference across a region of interest.
std::uint64_t alloc_count();

/// Allocations on the calling thread during `fn()` (0 when counting is
/// disabled).
template <typename Fn>
std::uint64_t count_allocs(Fn&& fn) {
  const std::uint64_t before = alloc_count();
  fn();
  return alloc_count() - before;
}

}  // namespace msrs::perf
