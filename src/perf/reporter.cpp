#include "perf/reporter.hpp"

#include <fstream>

#include "util/table.hpp"

namespace msrs::perf {
namespace {

const char* tier_name(Tier tier) {
  return tier == Tier::kQuick ? "quick" : "full";
}

Json row_json(const BenchRow& row, bool timing) {
  Json out = Json::object();
  out.set("name", row.name);
  out.set("solver", row.solver);
  out.set("n", static_cast<std::int64_t>(row.jobs));
  out.set("m", static_cast<std::int64_t>(row.machines));
  out.set("ops", static_cast<std::int64_t>(row.timing.ops));
  out.set("makespan_ratio", row.makespan_ratio);
  out.set("allocs_per_op", static_cast<std::int64_t>(row.timing.allocs_per_op));
  Json counters = Json::object();
  for (const auto& [key, value] : row.counters) counters.set(key, value);
  out.set("counters", std::move(counters));
  if (timing) {
    Json t = Json::object();
    t.set("ns_per_op", row.timing.ns_per_op);
    t.set("ns_p25", row.timing.ns_p25);
    t.set("ns_p75", row.timing.ns_p75);
    out.set("timing", std::move(t));
  }
  return out;
}

}  // namespace

Json bench_json(const CaseResult& result) {
  Json out = Json::object();
  out.set("schema_version", static_cast<std::int64_t>(kBenchSchemaVersion));
  out.set("case", result.name);
  out.set("description", result.description);
  out.set("paper_ref", result.paper_ref);
  out.set("tier", tier_name(result.tier));
  out.set("deterministic", !result.timing);
  Json rows = Json::array();
  for (const BenchRow& row : result.rows)
    rows.push_back(row_json(row, result.timing));
  out.set("rows", std::move(rows));
  if (!result.notes.empty()) out.set("notes", result.notes);
  return out;
}

std::string write_bench_json(const CaseResult& result,
                             const std::string& directory) {
  std::string path = directory;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "BENCH_" + result.name + ".json";
  std::ofstream out(path);
  if (!out) return "cannot write '" + path + "'";
  out << bench_json(result).str(/*indent=*/2) << "\n";
  out.close();
  if (!out) return "write error on '" + path + "'";
  return "";
}

std::string check_bench_schema(const Json& document) {
  if (!document.is_object()) return "document is not an object";
  const Json* version = document.find("schema_version");
  if (version == nullptr || !version->is_number())
    return "missing numeric 'schema_version'";
  if (static_cast<int>(version->as_number()) != kBenchSchemaVersion)
    return "unsupported schema_version " +
           std::to_string(version->as_number());
  for (const char* key : {"case", "description", "paper_ref", "tier"}) {
    const Json* value = document.find(key);
    if (value == nullptr || !value->is_string())
      return std::string("missing string '") + key + "'";
  }
  const Json* deterministic = document.find("deterministic");
  if (deterministic == nullptr || !deterministic->is_bool())
    return "missing boolean 'deterministic'";
  const Json* rows = document.find("rows");
  if (rows == nullptr || !rows->is_array()) return "missing array 'rows'";
  for (const Json& row : rows->items()) {
    if (!row.is_object()) return "row is not an object";
    const Json* name = row.find("name");
    if (name == nullptr || !name->is_string())
      return "row missing string 'name'";
    for (const char* key :
         {"n", "m", "ops", "makespan_ratio", "allocs_per_op"}) {
      const Json* value = row.find(key);
      if (value == nullptr || !value->is_number())
        return "row '" + name->as_string() + "' missing numeric '" + key +
               "'";
    }
    const Json* counters = row.find("counters");
    if (counters == nullptr || !counters->is_object())
      return "row '" + name->as_string() + "' missing object 'counters'";
    const Json* timing = row.find("timing");
    if (timing != nullptr) {
      if (!timing->is_object())
        return "row '" + name->as_string() + "': 'timing' is not an object";
      for (const char* key : {"ns_per_op", "ns_p25", "ns_p75"}) {
        const Json* value = timing->find(key);
        if (value == nullptr || !value->is_number())
          return "row '" + name->as_string() + "' timing missing '" + key +
                 "'";
      }
    }
  }
  return "";
}

std::string bench_table(const CaseResult& result) {
  Table table({"row", "solver", "n", "m", "ops", "ratio", "allocs/op",
               "ns/op", "counters"});
  for (const BenchRow& row : result.rows) {
    std::string counters;
    for (const auto& [key, value] : row.counters) {
      if (!counters.empty()) counters += " ";
      counters += key + "=" + Table::num(value, 4);
    }
    table.add_row(
        {row.name, row.solver,
         Table::num(static_cast<std::int64_t>(row.jobs)),
         Table::num(static_cast<std::int64_t>(row.machines)),
         Table::num(static_cast<std::int64_t>(row.timing.ops)),
         row.makespan_ratio > 0.0 ? Table::num(row.makespan_ratio, 4) : "-",
         Table::num(static_cast<std::int64_t>(row.timing.allocs_per_op)),
         result.timing ? Table::num(row.timing.ns_per_op, 1) : "-",
         counters});
  }
  return table.str();
}

}  // namespace msrs::perf
