/// \file
/// BenchCase: one named, registered experiment of the perf harness.
///
/// A case corresponds to one paper experiment (E1–E12) or one synthetic
/// probe, and produces a list of BenchRow — one row per measured
/// configuration (family × size × solver × ...). Cases are registered in a
/// BenchRegistry (mirroring SolverRegistry) and executed by the shared
/// bench CLI (perf/cli.hpp), which renders rows as a table and/or a
/// schema-versioned `BENCH_<case>.json` file (perf/reporter.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "perf/runner.hpp"

namespace msrs::perf {

/// Which harness invocations pick a case up by default.
enum class Tier {
  kQuick,  ///< seconds-scale; run by CI and the default CLI invocation
  kFull,   ///< minutes-scale sweeps; run with --tier=full/all
};

/// One measured configuration of a case: identity columns, quality
/// metrics, deterministic counters, and the timing Measurement.
struct BenchRow {
  std::string name;    ///< row label, unique within the case (baseline key)
  std::string solver;  ///< solver/algorithm measured ("" when n/a)
  int jobs = 0;        ///< instance size n (0 when n/a)
  int machines = 0;    ///< machine count m (0 when n/a)
  double makespan_ratio = 0.0;  ///< mean makespan / lower bound (0 = n/a)
  /// Case-specific deterministic metrics, in insertion order (e.g.
  /// ratio_max, cache_hits, aug_iterations).
  std::vector<std::pair<std::string, double>> counters;
  Measurement timing;  ///< ops / ns stats / allocs from the Runner
};

/// One registered experiment; subclass or use make_case().
class BenchCase {
 public:
  /// Virtual base; cases are owned by a registry via unique_ptr.
  virtual ~BenchCase() = default;

  /// Registry key and `BENCH_<name>.json` stem, e.g. "e4_runtime".
  virtual std::string_view name() const = 0;
  /// One-line human description (shown by --list, embedded in the JSON).
  virtual std::string_view description() const = 0;
  /// The paper section/theorem/figure this case reproduces.
  virtual std::string_view paper_ref() const = 0;
  /// Default selection tier.
  virtual Tier tier() const { return Tier::kQuick; }

  /// Executes the case, measuring through `runner`. Must be deterministic
  /// in the runner's deterministic mode: equal rows (minus ns fields) on
  /// every run at every thread count.
  virtual std::vector<BenchRow> run(const Runner& runner) const = 0;
};

/// Builds a BenchCase from a run function (how cases.cpp registers E1–E12).
std::unique_ptr<BenchCase> make_case(
    std::string name, std::string description, std::string paper_ref,
    Tier tier, std::function<std::vector<BenchRow>(const Runner&)> run);

}  // namespace msrs::perf
