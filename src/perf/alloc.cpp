#include "perf/alloc.hpp"

#include <cstdlib>
#include <new>

// ASan replaces the global allocator; interposing operator new underneath
// it breaks poisoning, so counting is compiled out entirely.
#if defined(__SANITIZE_ADDRESS__)
#define MSRS_PERF_ALLOC_HOOKS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MSRS_PERF_ALLOC_HOOKS 0
#endif
#endif
#ifndef MSRS_PERF_ALLOC_HOOKS
#define MSRS_PERF_ALLOC_HOOKS 1
#endif

namespace msrs::perf {
namespace {

thread_local std::uint64_t g_allocs = 0;

}  // namespace

bool alloc_counting_enabled() { return MSRS_PERF_ALLOC_HOOKS != 0; }

std::uint64_t alloc_count() { return g_allocs; }

}  // namespace msrs::perf

#if MSRS_PERF_ALLOC_HOOKS

namespace {

// The standard operator-new contract: on failure, call the installed
// new-handler and retry until it either frees memory or is absent.
void run_new_handler_or_throw() {
  const std::new_handler handler = std::get_new_handler();
  if (handler == nullptr) throw std::bad_alloc();
  handler();
}

void* counted_alloc(std::size_t size) {
  ++msrs::perf::g_allocs;
  for (;;) {
    // malloc(0) may return nullptr; operator new must not.
    void* p = std::malloc(size > 0 ? size : 1);
    if (p != nullptr) return p;
    run_new_handler_or_throw();
  }
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++msrs::perf::g_allocs;
  // posix_memalign requires align to be a power of two multiple of
  // sizeof(void*); operator new guarantees a power of two.
  if (align < sizeof(void*)) align = sizeof(void*);
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align, size > 0 ? size : 1) == 0) return p;
    run_new_handler_or_throw();
  }
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // MSRS_PERF_ALLOC_HOOKS
