/// \file
/// JsonReporter: renders bench results as schema-versioned `BENCH_*.json`
/// perf-trajectory artifacts, plus the human-readable table view.
///
/// The JSON schema (version 1; field-by-field reference in
/// docs/benchmarking.md): a top-level object {schema_version, case,
/// description, paper_ref, tier, deterministic, rows[, notes]} where each
/// row is {name, solver, n, m, ops, makespan_ratio, allocs_per_op,
/// counters{...}[, timing{ns_per_op, ns_p25, ns_p75}]}. The `timing`
/// object is present only when the harness ran with --timing; without it
/// every byte of the document is a pure function of the case, which is the
/// byte-identical-across-runs contract of the committed baseline.
#pragma once

#include <string>
#include <vector>

#include "perf/bench_case.hpp"
#include "util/json.hpp"

namespace msrs::perf {

/// Schema version stamped into every document this build writes.
inline constexpr int kBenchSchemaVersion = 1;

/// The result of one executed case, ready for reporting.
struct CaseResult {
  std::string name;         ///< case name (JSON `case`, file stem)
  std::string description;  ///< case description
  std::string paper_ref;    ///< paper section/theorem/figure
  Tier tier = Tier::kQuick;  ///< the case's tier
  bool timing = false;      ///< rows carry wall-clock measurements
  std::vector<BenchRow> rows;  ///< measured rows, in case order
  std::string notes;        ///< optional provenance (baseline refresh info)
};

/// Builds the schema-version-1 JSON document for one case result.
Json bench_json(const CaseResult& result);

/// Serializes bench_json() and writes it to `<directory>/BENCH_<case>.json`.
/// Returns an empty string on success, else a one-line error description.
std::string write_bench_json(const CaseResult& result,
                             const std::string& directory);

/// Validates that `document` is a well-formed schema-version-1 bench
/// document; returns an empty string when valid, else the first problem.
std::string check_bench_schema(const Json& document);

/// Renders the rows of one case as an aligned text table (util/table).
std::string bench_table(const CaseResult& result);

}  // namespace msrs::perf
