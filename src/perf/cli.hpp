/// \file
/// The shared bench command line: one implementation behind every
/// `bench_e*` binary, `bench_all`, and `msrs_engine_cli bench`.
///
/// Grammar (named errors, exit codes 0 ok / 1 regression or write failure /
/// 2 usage):
///
///   bench [CASE|PREFIX ...] [--list] [--tier=quick|full|all]
///         [--json=DIR] [--timing] [--repeats=N] [--warmup=N]
///         [--min-time-ms=X] [--notes=TEXT]
///         [--baseline=DIR] [--max-regression=X]
///         [--spec=SPEC]... [--sweep=SWEEPSPEC] [--count=K] [--solvers=a,b]
///
/// Positional arguments select registered cases by exact name or prefix
/// (`e4` selects `e4_runtime`). `--spec`/`--sweep` append a dynamic case
/// measuring `--solvers` (default: the batched portfolio) over the
/// generated corpus. `--baseline` compares ns/op of matching rows against
/// committed `BENCH_*.json` files and fails on regressions beyond
/// `--max-regression` (default 0.25).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace msrs::perf {

/// Runs the bench CLI on already-split arguments. `default_filter` is the
/// case prefix used when no positional case argument is given ("" = every
/// case of the selected tier). Output goes to `out`, diagnostics to `err`.
int run_bench_cli(const std::vector<std::string>& args,
                  std::string_view default_filter, std::ostream& out,
                  std::ostream& err);

/// main() adapter for the bench_e* / bench_all binaries.
int bench_main(int argc, char** argv, std::string_view default_filter);

}  // namespace msrs::perf
