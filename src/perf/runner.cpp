#include "perf/runner.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "perf/alloc.hpp"
#include "util/stats.hpp"

namespace msrs::perf {

Measurement Runner::measure(const std::function<void()>& op) const {
  Measurement out;
  for (int i = 0; i < options_.warmup; ++i) op();

  const int repeats = std::max(1, options_.repeats);
  if (!options_.timing) {
    // Deterministic mode: exact repetition count, no clocks.
    for (int i = 0; i < repeats - 1; ++i) op();
    out.allocs_per_op = count_allocs(op);
    out.ops = static_cast<std::uint64_t>(repeats);
    return out;
  }

  using Clock = std::chrono::steady_clock;
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(repeats));
  double total_ms = 0.0;
  while (static_cast<int>(ns.size()) < repeats ||
         total_ms < options_.min_time_ms) {
    const Clock::time_point begin = Clock::now();
    out.allocs_per_op = count_allocs(op);
    const double elapsed_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - begin).count();
    ns.push_back(elapsed_ns);
    total_ms += elapsed_ns / 1e6;
  }
  std::sort(ns.begin(), ns.end());
  out.ops = ns.size();
  out.ns_per_op = quantile_sorted(ns, 0.5);
  out.ns_p25 = quantile_sorted(ns, 0.25);
  out.ns_p75 = quantile_sorted(ns, 0.75);
  return out;
}

}  // namespace msrs::perf
