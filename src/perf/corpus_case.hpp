/// \file
/// Dynamic bench cases over generated corpora: the bridge between the
/// workload generator subsystem (sim/spec.hpp) and the perf harness.
///
/// `msrs_engine_cli bench --spec=... / --sweep=...` builds one of these: a
/// case measuring named solvers (or the batched portfolio) over the
/// expanded GeneratorSpec/SweepSpec corpus, reported through the same
/// Runner/JsonReporter machinery as the registered E1–E12 cases.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "perf/bench_case.hpp"
#include "sim/generator.hpp"

namespace msrs::perf {

/// Builds a case named `name` measuring `solver_names` (registry names; an
/// empty list means the batched portfolio) over `corpus`. One row per
/// solver, aggregated over the whole corpus; inapplicable instances are
/// skipped and counted in the `skipped` counter.
std::unique_ptr<BenchCase> make_corpus_case(
    std::string name, std::vector<CorpusEntry> corpus,
    std::vector<std::string> solver_names);

}  // namespace msrs::perf
