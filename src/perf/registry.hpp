/// \file
/// BenchRegistry: name -> BenchCase dispatch, mirroring SolverRegistry.
///
/// Registration order is presentation order (--list, bench_all output);
/// the default registry lists the paper experiments E1–E12 in paper order.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "perf/bench_case.hpp"

namespace msrs::perf {

/// Ordered, uniquely-named collection of bench cases. Move-only; the
/// default registry is a shared singleton.
class BenchRegistry {
 public:
  /// An empty registry; populate with add().
  BenchRegistry() = default;
  /// Move-constructs (registries own their cases, so no copying).
  BenchRegistry(BenchRegistry&&) = default;
  /// Move-assigns.
  BenchRegistry& operator=(BenchRegistry&&) = default;

  /// Registers a case; throws std::invalid_argument on duplicate names.
  void add(std::unique_ptr<BenchCase> bench_case);

  /// nullptr if no case of that name is registered.
  const BenchCase* find(std::string_view name) const;

  /// Case names in registration order.
  std::vector<std::string> names() const;

  /// All cases, in registration order.
  const std::vector<std::unique_ptr<BenchCase>>& cases() const {
    return cases_;
  }

  /// The twelve paper experiments (see cases.cpp / docs/benchmarking.md).
  static BenchRegistry make_default();

  /// Shared immutable default registry (thread-safe lazy init).
  static const BenchRegistry& default_registry();

 private:
  std::vector<std::unique_ptr<BenchCase>> cases_;
};

}  // namespace msrs::perf
