#include "perf/cli.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <utility>

#include "engine/registry.hpp"
#include "perf/corpus_case.hpp"
#include "perf/registry.hpp"
#include "perf/reporter.hpp"
#include "sim/workloads.hpp"
#include "util/json.hpp"

namespace msrs::perf {
namespace {

struct CliOptions {
  std::vector<std::string> filters;  // positional case names/prefixes
  std::vector<std::string> specs;    // --spec corpora
  std::string sweep;                 // --sweep corpus
  std::vector<std::string> solvers;  // --solvers for corpus cases
  std::string json_dir;              // --json output directory
  std::string baseline_dir;          // --baseline comparison directory
  std::string notes;                 // --notes embedded in the JSON
  std::string tier = "quick";        // --tier
  double max_regression = 0.25;      // --max-regression
  int count = 3;                     // --count seeds per --spec
  RunnerOptions runner;
  bool list = false;
  bool help = false;
};

std::optional<std::string> arg_value(const std::string& arg,
                                     const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.compare(0, prefix.size(), prefix) == 0)
    return arg.substr(prefix.size());
  return std::nullopt;
}

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t comma = value.find(',', begin);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > begin) out.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

void print_usage(std::ostream& to) {
  to << "usage: bench [CASE|PREFIX ...] [options]\n"
        "\n"
        "Runs registered perf-harness cases (see docs/benchmarking.md).\n"
        "Positional arguments select cases by name or prefix; none selects\n"
        "every case of the tier.\n"
        "\n"
        "options:\n"
        "  --list              list registered cases and exit\n"
        "  --tier=T            quick (default) | full | all\n"
        "  --json=DIR          write BENCH_<case>.json files into DIR\n"
        "  --timing            measure wall clock (ns/op fields; output is\n"
        "                      no longer byte-reproducible)\n"
        "  --repeats=N         measured repetitions per row (default 5)\n"
        "  --warmup=N          untimed warmup repetitions (default 1)\n"
        "  --min-time-ms=X     per-row minimum measured time (timing mode)\n"
        "  --notes=TEXT        provenance note embedded in the JSON\n"
        "  --baseline=DIR      compare ns/op against committed BENCH JSONs\n"
        "  --max-regression=X  failure threshold for --baseline (def 0.25)\n"
        "  --spec=SPEC         also bench a generated corpus (repeatable)\n"
        "  --sweep=SWEEPSPEC   also bench a sweep-grid corpus\n"
        "  --count=K           seeds per --spec corpus (default 3)\n"
        "  --solvers=a,b       solvers measured on --spec/--sweep corpora\n"
        "                      (default: the batched portfolio)\n";
}

// Parses argv into options; returns a named error string on failure.
// Value flags accept both `--flag=value` and `--flag value`.
std::string parse(const std::vector<std::string>& args, CliOptions* options) {
  std::size_t i = 0;
  // Returns the value of `--name=...` / `--name <next>`, advancing `i`.
  // A following flag is never consumed as a value, so `--json --timing`
  // errors instead of writing into a directory called "--timing".
  const auto value_of = [&](const char* name) -> std::optional<std::string> {
    if (auto inline_value = arg_value(args[i], name)) return inline_value;
    if (args[i] == std::string("--") + name && i + 1 < args.size() &&
        (args[i + 1].empty() || args[i + 1][0] != '-'))
      return args[++i];
    return std::nullopt;
  };
  for (; i < args.size(); ++i) {
    const std::string arg = args[i];
    if (arg.empty()) continue;
    if (arg[0] != '-') {
      options->filters.push_back(arg);
      continue;
    }
    try {
      if (auto v = value_of("json")) options->json_dir = *v;
      else if (auto v2 = value_of("baseline")) options->baseline_dir = *v2;
      else if (auto v3 = value_of("notes")) options->notes = *v3;
      else if (auto v4 = value_of("tier")) options->tier = *v4;
      else if (auto v5 = value_of("repeats"))
        options->runner.repeats = std::stoi(*v5);
      else if (auto v6 = value_of("warmup"))
        options->runner.warmup = std::stoi(*v6);
      else if (auto v7 = value_of("min-time-ms"))
        options->runner.min_time_ms = std::stod(*v7);
      else if (auto v8 = value_of("max-regression"))
        options->max_regression = std::stod(*v8);
      else if (auto v9 = value_of("spec"))
        options->specs.push_back(*v9);
      else if (auto v10 = value_of("sweep")) options->sweep = *v10;
      else if (auto v11 = value_of("solvers"))
        options->solvers = split_csv(*v11);
      else if (auto v12 = value_of("count"))
        options->count = std::stoi(*v12);
      else if (arg == "--timing") options->runner.timing = true;
      else if (arg == "--list") options->list = true;
      else if (arg == "--help" || arg == "-h") options->help = true;
      else {
        for (const char* name :
             {"json", "baseline", "notes", "tier", "repeats", "warmup",
              "min-time-ms", "max-regression", "spec", "sweep", "solvers",
              "count"})
          if (arg == std::string("--") + name)
            return "missing value for '" + arg + "'";
        return "unknown option '" + arg + "'";
      }
    } catch (const std::exception&) {
      return "bad numeric value in '" + arg + "'";
    }
  }
  if (options->tier != "quick" && options->tier != "full" &&
      options->tier != "all")
    return "bad --tier '" + options->tier + "' (quick|full|all)";
  if (options->runner.repeats < 1)
    return "--repeats must be >= 1";
  if (options->runner.warmup < 0)
    return "--warmup must be >= 0";
  if (options->max_regression <= 0.0)
    return "--max-regression must be > 0";
  if (options->count < 1) return "--count must be >= 1";
  if (!options->baseline_dir.empty() && !options->runner.timing)
    return "--baseline requires --timing (baselines compare ns/op)";
  return "";
}

bool tier_selected(Tier tier, const std::string& wanted) {
  if (wanted == "all") return true;
  return (tier == Tier::kQuick) == (wanted == "quick");
}

// Expands corpus options into dynamic cases; named error on a bad spec.
std::string corpus_cases(const CliOptions& options,
                         std::vector<std::unique_ptr<BenchCase>>* cases) {
  for (const std::string& name : options.solvers)
    if (engine::SolverRegistry::default_registry().find(name) == nullptr)
      return "unknown solver '" + name + "' (see list-solvers)";
  for (std::size_t i = 0; i < options.specs.size(); ++i) {
    std::string error;
    const auto spec = parse_spec(options.specs[i], &error);
    if (!spec) return "bad spec '" + options.specs[i] + "': " + error;
    cases->push_back(make_corpus_case(
        "corpus" + std::to_string(i + 1) + "_" + family_name(spec->family),
        seed_corpus(*spec, options.count), options.solvers));
  }
  if (!options.sweep.empty()) {
    std::string error;
    const auto sweep = parse_sweep(options.sweep, &error);
    if (!sweep) return "bad sweep '" + options.sweep + "': " + error;
    cases->push_back(
        make_corpus_case("sweep_corpus", make_corpus(*sweep),
                         options.solvers));
  }
  return "";
}

// ns/op regression check of `result` against `<dir>/BENCH_<case>.json`.
// Appends one line per regressed row to `problems`.
std::string compare_to_baseline(const CaseResult& result,
                                const std::string& dir,
                                double max_regression,
                                std::vector<std::string>* problems,
                                std::ostream& err) {
  const std::string path = dir + "/BENCH_" + result.name + ".json";
  std::ifstream in(path);
  if (!in) {
    err << "bench: note: no baseline " << path << " (skipped)\n";
    return "";
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto document = json_parse(buffer.str(), &error);
  if (!document) return "cannot parse baseline " + path + ": " + error;
  const std::string schema_error = check_bench_schema(*document);
  if (!schema_error.empty())
    return "baseline " + path + " fails schema check: " + schema_error;
  const Json* rows = document->find("rows");
  for (const BenchRow& row : result.rows) {
    if (row.timing.ns_per_op <= 0.0) continue;
    for (const Json& base_row : rows->items()) {
      const Json* name = base_row.find("name");
      if (name == nullptr || name->as_string() != row.name) continue;
      const Json* timing = base_row.find("timing");
      if (timing == nullptr) break;  // deterministic baseline: nothing to do
      const double base_ns = timing->find("ns_per_op")->as_number();
      // Noise-aware comparison: a regression must clear the threshold even
      // comparing the new run's fast quartile against the baseline's slow
      // quartile, so overlapping run-to-run jitter (CPU frequency, cache
      // state) does not trip the gate while a real >=25% shift — which
      // moves the whole distribution — still does.
      const Json* base_p75_json = timing->find("ns_p75");
      const double base_p75 =
          base_p75_json != nullptr && base_p75_json->as_number() > 0.0
              ? base_p75_json->as_number()
              : base_ns;
      const double new_p25 =
          row.timing.ns_p25 > 0.0 ? row.timing.ns_p25 : row.timing.ns_per_op;
      if (base_ns > 0.0 && new_p25 > base_p75 * (1.0 + max_regression)) {
        std::ostringstream line;
        line << result.name << "/" << row.name << ": "
             << row.timing.ns_per_op << " ns/op (p25 " << new_p25
             << ") vs baseline " << base_ns << " (p75 " << base_p75 << "): +"
             << 100.0 * (new_p25 / base_p75 - 1.0) << "% beyond noise";
        problems->push_back(line.str());
      }
      break;
    }
  }
  return "";
}

}  // namespace

int run_bench_cli(const std::vector<std::string>& args,
                  std::string_view default_filter, std::ostream& out,
                  std::ostream& err) {
  CliOptions options;
  const std::string parse_error = parse(args, &options);
  if (!parse_error.empty()) {
    err << "bench: " << parse_error << "\n";
    print_usage(err);
    return 2;
  }
  if (options.help) {
    print_usage(out);
    return 0;
  }

  const BenchRegistry& registry = BenchRegistry::default_registry();
  if (options.list) {
    for (const auto& bench_case : registry.cases())
      out << bench_case->name() << "  ["
          << (bench_case->tier() == Tier::kQuick ? "quick" : "full") << "]  "
          << bench_case->description() << "  (" << bench_case->paper_ref()
          << ")\n";
    return 0;
  }

  // Select registered cases: positional filters win over the default
  // filter; no filter means every case of the tier.
  std::vector<std::string> filters = options.filters;
  if (filters.empty() && !default_filter.empty())
    filters.emplace_back(default_filter);
  std::vector<const BenchCase*> selected;
  for (const std::string& filter : filters) {
    bool matched = false;
    for (const auto& bench_case : registry.cases()) {
      const std::string_view name = bench_case->name();
      // Prefix matches only at a '_' boundary, so "e1" selects
      // e1_ratio_53 but not e10_ablation.
      const std::string boundary = filter + "_";
      if (name == filter ||
          name.substr(0, boundary.size()) == boundary) {
        if (std::find(selected.begin(), selected.end(), bench_case.get()) ==
            selected.end())
          selected.push_back(bench_case.get());
        matched = true;
      }
    }
    if (!matched) {
      err << "bench: unknown case '" << filter
          << "' (--list shows the registry)\n";
      return 2;
    }
  }
  // With no explicit case selection, `--spec`/`--sweep` alone bench just
  // the corpus; otherwise the whole selected tier runs.
  const bool corpus_only =
      filters.empty() && (!options.specs.empty() || !options.sweep.empty());
  if (filters.empty() && !corpus_only)
    for (const auto& bench_case : registry.cases())
      if (tier_selected(bench_case->tier(), options.tier))
        selected.push_back(bench_case.get());

  // Dynamic corpus cases from --spec/--sweep.
  std::vector<std::unique_ptr<BenchCase>> dynamic;
  const std::string corpus_error = corpus_cases(options, &dynamic);
  if (!corpus_error.empty()) {
    err << "bench: " << corpus_error << "\n";
    return 2;
  }
  for (const auto& bench_case : dynamic) selected.push_back(bench_case.get());

  if (selected.empty()) {
    err << "bench: nothing selected (no case matches tier '" << options.tier
        << "')\n";
    return 2;
  }

  if (!options.json_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.json_dir, ec);
    if (ec) {
      err << "bench: cannot create --json directory '" << options.json_dir
          << "': " << ec.message() << "\n";
      return 1;
    }
  }

  const Runner runner(options.runner);
  std::vector<std::string> regressions;
  for (const BenchCase* bench_case : selected) {
    CaseResult result;
    result.name = bench_case->name();
    result.description = bench_case->description();
    result.paper_ref = bench_case->paper_ref();
    result.tier = bench_case->tier();
    result.timing = options.runner.timing;
    result.notes = options.notes;
    result.rows = bench_case->run(runner);

    out << "== " << result.name << " — " << result.description << "\n"
        << bench_table(result) << "\n";
    if (!options.json_dir.empty()) {
      const std::string write_error =
          write_bench_json(result, options.json_dir);
      if (!write_error.empty()) {
        err << "bench: " << write_error << "\n";
        return 1;
      }
    }
    if (!options.baseline_dir.empty()) {
      const std::string compare_error =
          compare_to_baseline(result, options.baseline_dir,
                              options.max_regression, &regressions, err);
      if (!compare_error.empty()) {
        err << "bench: " << compare_error << "\n";
        return 1;
      }
    }
  }

  if (!regressions.empty()) {
    err << "bench: ns/op regressions beyond "
        << 100.0 * options.max_regression << "%:\n";
    for (const std::string& line : regressions) err << "  " << line << "\n";
    return 1;
  }
  return 0;
}

int bench_main(int argc, char** argv, std::string_view default_filter) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run_bench_cli(args, default_filter, std::cout, std::cerr);
}

}  // namespace msrs::perf
