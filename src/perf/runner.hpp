/// \file
/// Runner: the measurement core of the perf harness.
///
/// One `measure()` call = one benchmark row. The runner executes untimed
/// warmup repetitions, then timed repetitions on `std::chrono::steady_clock`
/// until both the configured repeat count and the minimum measured time are
/// satisfied, and summarizes per-repetition nanoseconds as median + IQR
/// (robust against scheduler noise, unlike the mean).
///
/// Determinism contract: with `timing == false` the runner executes exactly
/// `warmup + repeats` repetitions and reports zero for every nanosecond
/// field, so all remaining fields of a row (op counts, makespans,
/// allocations) are pure functions of the case — this is what makes the
/// default `BENCH_*.json` output byte-identical across runs and thread
/// counts.
#pragma once

#include <cstdint>
#include <functional>

namespace msrs::perf {

/// Knobs of one Runner (uniform across every case of a harness invocation).
struct RunnerOptions {
  int warmup = 1;    ///< untimed repetitions before measuring
  int repeats = 5;   ///< measured repetitions (exact count when !timing)
  double min_time_ms = 0.0;  ///< keep repeating until this much measured
                             ///< time accumulates (timing mode only)
  bool timing = false;  ///< measure wall clock; false = deterministic mode
};

/// Result of one measured region.
struct Measurement {
  std::uint64_t ops = 0;        ///< repetitions actually executed
  double ns_per_op = 0.0;       ///< median nanoseconds per repetition
  double ns_p25 = 0.0;          ///< 25th percentile (IQR low)
  double ns_p75 = 0.0;          ///< 75th percentile (IQR high)
  std::uint64_t allocs_per_op = 0;  ///< heap allocations of one repetition
                                    ///< on the measuring thread (0 when
                                    ///< counting is disabled, e.g. ASan)
};

/// Executes operations under the configured warmup/repeat/min-time policy.
class Runner {
 public:
  /// A runner with the given knobs.
  explicit Runner(RunnerOptions options = {}) : options_(options) {}

  /// Runs `op` per the policy and summarizes it. The allocation count is
  /// taken over the final repetition (deterministic for deterministic ops).
  Measurement measure(const std::function<void()>& op) const;

  /// The knobs this runner was built with.
  const RunnerOptions& options() const { return options_; }

 private:
  RunnerOptions options_;
};

}  // namespace msrs::perf
