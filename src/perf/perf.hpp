/// \file
/// Umbrella header for the perf-harness layer: engine/sim -> perf.
///
///   BenchRegistry — name -> BenchCase over the paper experiments E1–E12
///   Runner        — warmup/repeat/min-time steady-clock measurement
///   JsonReporter  — schema-versioned BENCH_<case>.json trajectory files
///   bench CLI     — the shared front-end of bench_e*, bench_all and
///                   `msrs_engine_cli bench`
#pragma once

#include "perf/alloc.hpp"        // IWYU pragma: export
#include "perf/bench_case.hpp"   // IWYU pragma: export
#include "perf/cli.hpp"          // IWYU pragma: export
#include "perf/corpus_case.hpp"  // IWYU pragma: export
#include "perf/registry.hpp"     // IWYU pragma: export
#include "perf/reporter.hpp"     // IWYU pragma: export
#include "perf/runner.hpp"       // IWYU pragma: export
