#include "perf/registry.hpp"

#include <stdexcept>
#include <utility>

namespace msrs::perf {

namespace {

class FunctionCase final : public BenchCase {
 public:
  FunctionCase(std::string name, std::string description,
               std::string paper_ref, Tier tier,
               std::function<std::vector<BenchRow>(const Runner&)> run)
      : name_(std::move(name)),
        description_(std::move(description)),
        paper_ref_(std::move(paper_ref)),
        tier_(tier),
        run_(std::move(run)) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  std::string_view paper_ref() const override { return paper_ref_; }
  Tier tier() const override { return tier_; }
  std::vector<BenchRow> run(const Runner& runner) const override {
    return run_(runner);
  }

 private:
  std::string name_, description_, paper_ref_;
  Tier tier_;
  std::function<std::vector<BenchRow>(const Runner&)> run_;
};

}  // namespace

std::unique_ptr<BenchCase> make_case(
    std::string name, std::string description, std::string paper_ref,
    Tier tier, std::function<std::vector<BenchRow>(const Runner&)> run) {
  return std::make_unique<FunctionCase>(std::move(name),
                                        std::move(description),
                                        std::move(paper_ref), tier,
                                        std::move(run));
}

void BenchRegistry::add(std::unique_ptr<BenchCase> bench_case) {
  if (find(bench_case->name()) != nullptr)
    throw std::invalid_argument("duplicate bench case: " +
                                std::string(bench_case->name()));
  cases_.push_back(std::move(bench_case));
}

const BenchCase* BenchRegistry::find(std::string_view name) const {
  for (const auto& bench_case : cases_)
    if (bench_case->name() == name) return bench_case.get();
  return nullptr;
}

std::vector<std::string> BenchRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(cases_.size());
  for (const auto& bench_case : cases_)
    out.emplace_back(bench_case->name());
  return out;
}

const BenchRegistry& BenchRegistry::default_registry() {
  static const BenchRegistry registry = make_default();
  return registry;
}

}  // namespace msrs::perf
