// The default BenchRegistry: the twelve paper experiments E1-E12, ported
// from the former ad-hoc google-benchmark binaries onto the harness
// (docs/benchmarking.md maps each case to its paper section and former
// binary). Every row is deterministic in the runner's deterministic mode;
// only the ns fields change when timing is on.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/exact.hpp"
#include "algo/five_thirds.hpp"
#include "algo/greedy.hpp"
#include "algo/t_bound.hpp"
#include "algo/three_halves.hpp"
#include "core/instance_io.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "obs/obs.hpp"
#include "serve/driver.hpp"
#include "serve/service.hpp"
#include "serve/tcp.hpp"
#include "ext/completion_time.hpp"
#include "multires/mschedule.hpp"
#include "multires/reduction.hpp"
#include "multires/sat.hpp"
#include "opt/nfold.hpp"
#include "perf/corpus_case.hpp"
#include "perf/registry.hpp"
#include "ptas/eptas.hpp"
#include "sim/arrivals.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

namespace msrs::perf {
namespace {

using AlgoFn = std::function<AlgoResult(const Instance&)>;

// --- shared helpers (the former bench_common.hpp, now runner-backed) -------

struct Quality {
  double ratio_mean = 0.0;  // makespan / T (combined lower bound)
  double ratio_max = 0.0;
  int invalid = 0;  // validation failures (must be 0)
  int seeds = 0;
};

Quality quality_over(const AlgoFn& algorithm,
                     const std::vector<CorpusEntry>& corpus) {
  Quality q;
  std::vector<double> ratios;
  for (const CorpusEntry& entry : corpus) {
    const Instance& instance = entry.instance;
    const AlgoResult result = algorithm(instance);
    if (!is_valid(instance, result.schedule)) {
      ++q.invalid;
      continue;
    }
    const Time T = lower_bounds(instance).combined;
    ratios.push_back(result.schedule.makespan(instance) /
                     static_cast<double>(T));
  }
  const Summary summary = summarize(ratios);
  q.ratio_mean = summary.mean;
  q.ratio_max = summary.max;
  q.seeds = static_cast<int>(corpus.size());
  return q;
}

std::vector<CorpusEntry> corpus_of(Family family, int jobs, int machines,
                                   int seeds) {
  GeneratorSpec base;
  base.family = family;
  base.jobs = jobs;
  base.machines = machines;
  return seed_corpus(base, seeds);
}

// One quality row: validated ratios computed once (deterministic), the
// measured op is the raw algorithm pass over the corpus (no validation).
BenchRow quality_row(const Runner& runner, std::string name,
                     std::string solver, const AlgoFn& algorithm,
                     Family family, int jobs, int machines, int seeds) {
  const std::vector<CorpusEntry> corpus =
      corpus_of(family, jobs, machines, seeds);
  const Quality q = quality_over(algorithm, corpus);
  BenchRow row;
  row.name = std::move(name);
  row.solver = std::move(solver);
  row.jobs = jobs;
  row.machines = machines;
  row.makespan_ratio = q.ratio_mean;
  row.counters.emplace_back("ratio_max", q.ratio_max);
  row.counters.emplace_back("invalid", q.invalid);
  row.counters.emplace_back("seeds", q.seeds);
  row.timing = runner.measure([&] {
    for (const CorpusEntry& entry : corpus) {
      const AlgoResult result = algorithm(entry.instance);
      (void)result;
    }
  });
  return row;
}

// Mean/max ratio against the exact optimum on exhaustively solvable
// instances (quality only; nothing worth timing at n <= 10).
BenchRow vs_exact_row(std::string name, std::string solver,
                      const AlgoFn& algorithm, Family family, int jobs,
                      int machines, int seeds) {
  double worst = 1.0, mean = 0.0;
  int samples = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    const Instance instance = generate(family, jobs, machines, seed);
    const ExactResult exact = exact_makespan(instance);
    if (!exact.optimal) continue;
    const AlgoResult approx = algorithm(instance);
    const double ratio = approx.schedule.makespan(instance) /
                         static_cast<double>(exact.makespan);
    worst = std::max(worst, ratio);
    mean += ratio;
    ++samples;
  }
  if (samples > 0) mean /= samples;
  BenchRow row;
  row.name = std::move(name);
  row.solver = std::move(solver);
  row.jobs = jobs;
  row.machines = machines;
  row.makespan_ratio = mean;
  row.counters.emplace_back("ratio_vs_opt_max", worst);
  row.counters.emplace_back("samples", samples);
  row.timing.ops = static_cast<std::uint64_t>(samples);
  return row;
}

const Instance& cached_instance(Family family, int jobs, int machines) {
  static std::map<std::tuple<Family, int, int>, Instance> cache;
  const auto key = std::make_tuple(family, jobs, machines);
  auto it = cache.find(key);
  if (it == cache.end())
    it = cache.emplace(key, generate(family, jobs, machines, 42)).first;
  return it->second;
}

// One runtime row: ns/op + allocs/op of `algorithm` on one cached
// instance, plus its (deterministic) makespan ratio on that instance.
BenchRow runtime_row(const Runner& runner, std::string solver, Family family,
                     int jobs, int machines, const AlgoFn& algorithm) {
  const Instance& instance = cached_instance(family, jobs, machines);
  BenchRow row;
  row.name = solver + "/" + family_name(family) + "/n=" +
             std::to_string(jobs) + ",m=" + std::to_string(machines);
  row.solver = std::move(solver);
  row.jobs = jobs;
  row.machines = machines;
  const AlgoResult once = algorithm(instance);
  if (once.lower_bound > 0)
    row.makespan_ratio = once.ratio_vs_bound(instance);
  row.timing = runner.measure([&] {
    const AlgoResult result = algorithm(instance);
    (void)result;
  });
  return row;
}

// --- E1 / E2: approximation-ratio experiments ------------------------------

std::vector<BenchRow> ratio_case(const Runner& runner, const AlgoFn& algorithm,
                                 const std::string& solver) {
  std::vector<BenchRow> rows;
  for (const Family family :
       {Family::kUniform, Family::kHugeHeavy, Family::kFewFatClasses,
        Family::kAdversarialLpt, Family::kLemma9Tight}) {
    rows.push_back(quality_row(
        runner, std::string(family_name(family)) + "/n=240,m=8", solver,
        algorithm, family, 240, 8, /*seeds=*/5));
  }
  for (const Family family : {Family::kUniform, Family::kHugeHeavy}) {
    rows.push_back(vs_exact_row(
        std::string("vs_exact/") + family_name(family) + "/n=9,m=3", solver,
        algorithm, family, 9, 3, /*seeds=*/6));
  }
  return rows;
}

// --- E3: ladder vs the prior (2m/(m+1))-approximations ---------------------

AlgoResult run_registry_solver(const std::string& name,
                               const Instance& instance) {
  const engine::Solver* solver =
      engine::SolverRegistry::default_registry().find(name);
  engine::SolverResult result = solver->solve(instance);
  AlgoResult out;
  out.schedule = std::move(result.schedule);
  out.lower_bound = result.lower_bound;
  out.name = result.solver;
  return out;
}

std::vector<BenchRow> e3_vs_baseline(const Runner& runner) {
  const std::pair<const char*, double> contenders[] = {
      {"merge_lpt", 0.0},  // guarantee 2m/(m+1), filled per row
      {"hebrard", 0.0},
      {"five_thirds", 5.0 / 3.0},
      {"three_halves", 1.5},
  };
  std::vector<BenchRow> rows;
  for (const auto& [name, guarantee] : contenders) {
    for (const int machines : {4, 8}) {
      const AlgoFn fn = [&name = name](const Instance& instance) {
        return run_registry_solver(name, instance);
      };
      BenchRow row = quality_row(
          runner, std::string(name) + "/m=" + std::to_string(machines), name,
          fn, Family::kAdversarialLpt, 12 * machines, machines, /*seeds=*/5);
      row.counters.emplace_back(
          "guarantee", guarantee > 0.0
                           ? guarantee
                           : 2.0 * machines / (machines + 1.0));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// --- E4: running-time shape (THE hot-loop case of the perf trajectory) -----

std::vector<BenchRow> e4_runtime(const Runner& runner, bool full) {
  std::vector<BenchRow> rows;
  // Serving shape: many small instances => per-op constant factors (and
  // allocations) dominate. This is where the hot-path scratch reuse shows.
  for (const int jobs : {64, 512}) {
    rows.push_back(runtime_row(runner, "list_lpt", Family::kUniform, jobs, 8,
                               [](const Instance& i) {
                                 return list_schedule(i,
                                                      ListPriority::kLptJob);
                               }));
    rows.push_back(runtime_row(runner, "three_halves", Family::kManySmallClasses,
                               jobs, 4,
                               [](const Instance& i) { return three_halves(i); }));
  }
  // Linear-time shape: per-row time should scale ~linearly in n.
  const std::vector<int> sizes =
      full ? std::vector<int>{4096, 32768, 262144} : std::vector<int>{4096};
  for (const int jobs : sizes) {
    rows.push_back(runtime_row(runner, "five_thirds", Family::kUniform, jobs,
                               16,
                               [](const Instance& i) { return five_thirds(i); }));
    rows.push_back(runtime_row(runner, "three_halves", Family::kUniform, jobs,
                               16,
                               [](const Instance& i) { return three_halves(i); }));
    rows.push_back(runtime_row(runner, "merge_lpt", Family::kUniform, jobs, 16,
                               [](const Instance& i) { return merge_lpt(i); }));
    // Lemma-9 bound alone (Theorem 7's O(n + m log m) term).
    const Instance& instance = cached_instance(Family::kUniform, jobs, 16);
    BenchRow row;
    row.name = "t_bound/uniform/n=" + std::to_string(jobs) + ",m=16";
    row.solver = "t_bound";
    row.jobs = jobs;
    row.machines = 16;
    row.counters.emplace_back(
        "t", static_cast<double>(three_halves_bound(instance)));
    row.timing = runner.measure([&] {
      const Time t = three_halves_bound(instance);
      (void)t;
    });
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- E5: N-fold IP augmentation solver -------------------------------------

NFold nfold_toy(int N, std::int64_t target) {
  NFold problem;
  problem.r = 1;
  problem.s = 1;
  problem.t = 2;
  problem.N = N;
  for (int i = 0; i < N; ++i) {
    problem.A.push_back({1, 0});
    problem.B.push_back({1, -1});
  }
  problem.b.assign(static_cast<std::size_t>(1 + N), 0);
  problem.b[0] = target;
  problem.lower.assign(static_cast<std::size_t>(2 * N), 0);
  problem.upper.assign(static_cast<std::size_t>(2 * N), 3);
  problem.c.assign(static_cast<std::size_t>(2 * N), 0);
  for (int i = 0; i < N; ++i)
    problem.c[static_cast<std::size_t>(2 * i)] = (i % 3) + 1;
  return problem;
}

std::vector<BenchRow> e5_nfold(const Runner& runner) {
  std::vector<BenchRow> rows;
  for (const int N : {4, 16, 64}) {
    const NFold problem = nfold_toy(N, 2 * N / 3);
    const NFoldResult once = solve_nfold(problem);
    BenchRow row;
    row.name = "solve/N=" + std::to_string(N);
    row.solver = "nfold";
    row.counters.emplace_back("aug_iterations",
                              static_cast<double>(once.iterations));
    row.counters.emplace_back("feasible", once.feasible ? 1.0 : 0.0);
    row.counters.emplace_back("objective",
                              static_cast<double>(once.objective));
    row.timing = runner.measure([&] {
      const NFoldResult result = solve_nfold(problem);
      (void)result;
    });
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- E6: EPTAS quality vs epsilon ------------------------------------------

std::vector<BenchRow> e6_eptas(const Runner& runner) {
  std::vector<BenchRow> rows;
  for (const int e : {2, 3}) {
    for (const Family family : {Family::kUniform, Family::kHugeHeavy}) {
      double mean = 0.0, worst = 1.0, fallbacks = 0.0;
      int samples = 0;
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const Instance instance = generate(family, 10, 3, seed);
        const EptasResult result = eptas(instance, {.e = e});
        const ExactResult exact = exact_makespan(instance);
        if (!exact.optimal) continue;
        const double ratio = result.schedule.makespan(instance) /
                             static_cast<double>(exact.makespan);
        mean += ratio;
        worst = std::max(worst, ratio);
        fallbacks += result.used_fallback ? 1.0 : 0.0;
        ++samples;
      }
      if (samples > 0) mean /= samples;
      BenchRow row;
      row.name = std::string(family_name(family)) + "/eps=1over" +
                 std::to_string(e);
      row.solver = "eptas";
      row.jobs = 10;
      row.machines = 3;
      row.makespan_ratio = mean;
      row.counters.emplace_back("ratio_vs_opt_max", worst);
      row.counters.emplace_back("one_plus_eps", 1.0 + 1.0 / e);
      row.counters.emplace_back("fallbacks", fallbacks);
      row.counters.emplace_back("samples", samples);
      const Instance timed = generate(family, 10, 3, 1);
      row.timing = runner.measure([&] {
        const EptasResult result = eptas(timed, {.e = e});
        (void)result;
      });
      rows.push_back(std::move(row));
    }
  }
  // Resource-augmentation mode: extra-machine usage.
  {
    double machines_used = 0.0, ratio_mean = 0.0;
    int samples = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance = generate(Family::kUniform, 40, 6, seed);
      const EptasResult result =
          eptas(instance, {.e = 2, .m_constant = false});
      machines_used =
          std::max(machines_used, static_cast<double>(result.machines_used));
      const Time T = lower_bounds(instance).combined;
      ratio_mean +=
          result.schedule.makespan(instance) / static_cast<double>(T);
      ++samples;
    }
    BenchRow row;
    row.name = "augmentation/uniform/n=40,m=6";
    row.solver = "eptas";
    row.jobs = 40;
    row.machines = 6;
    row.makespan_ratio = ratio_mean / samples;
    row.counters.emplace_back("machines_used_max", machines_used);
    row.counters.emplace_back("samples", samples);
    row.timing.ops = static_cast<std::uint64_t>(samples);
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- E7: the Section-5 hardness reduction ----------------------------------

std::vector<BenchRow> e7_hardness(const Runner& runner) {
  std::vector<BenchRow> rows;
  for (const int vars : {6, 12, 24}) {
    int sat = 0, decoded = 0, total = 0;
    double jobs = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Cnf formula = generate_monotone22(vars, seed);
      const auto model = dpll(formula);
      const Reduction red = build_reduction(formula);
      jobs = red.instance.num_jobs();
      ++total;
      if (model.has_value()) {
        ++sat;
        const MSchedule schedule = schedule_from_assignment(red, *model);
        if (validate_multi(red.instance, schedule, 4).ok()) {
          const auto back = assignment_from_schedule(red, schedule);
          if (back && formula.satisfied_by(*back)) ++decoded;
        }
      }
      const MSchedule fallback = trivial_schedule(red);
      const bool five_ok = validate_multi(red.instance, fallback, 5).ok();
      (void)five_ok;
    }
    BenchRow row;
    row.name = "gap/vars=" + std::to_string(vars);
    row.solver = "reduction";
    row.counters.emplace_back("sat_rate",
                              static_cast<double>(sat) / total);
    row.counters.emplace_back(
        "decode_roundtrip",
        sat > 0 ? static_cast<double>(decoded) / sat : 1.0);
    row.counters.emplace_back("gap", 5.0 / 4.0);
    row.counters.emplace_back("gadget_jobs", jobs);
    // Construction cost: the polynomial transformation itself.
    const Cnf formula = generate_monotone22(vars, 1);
    row.timing = runner.measure([&] {
      const Reduction red = build_reduction(formula);
      (void)red.instance.num_jobs();
    });
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- E8: total-completion-time extension -----------------------------------

std::vector<BenchRow> e8_completion(const Runner& runner) {
  std::vector<BenchRow> rows;
  for (const Family family :
       {Family::kUniform, Family::kManySmallClasses, Family::kPhotolith}) {
    for (const int machines : {2, 8}) {
      std::vector<double> ratios;
      const std::vector<CorpusEntry> corpus =
          corpus_of(family, 20 * machines, machines, /*seeds=*/5);
      for (const CorpusEntry& entry : corpus) {
        const AlgoResult result = spt_completion(entry.instance);
        const double objective =
            total_completion_time(entry.instance, result.schedule);
        const double bound = static_cast<double>(
            completion_time_lower_bound(entry.instance));
        ratios.push_back(objective / bound);
      }
      const Summary summary = summarize(ratios);
      BenchRow row;
      row.name = std::string(family_name(family)) + "/m=" +
                 std::to_string(machines);
      row.solver = "spt";
      row.jobs = 20 * machines;
      row.machines = machines;
      row.makespan_ratio = summary.mean;  // completion-time ratio here
      row.counters.emplace_back("ratio_max", summary.max);
      row.counters.emplace_back("two_minus_1_over_m", 2.0 - 1.0 / machines);
      row.timing = runner.measure([&] {
        for (const CorpusEntry& entry : corpus) {
          const AlgoResult result = spt_completion(entry.instance);
          (void)result;
        }
      });
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// --- E9: lower-bound tightness ---------------------------------------------

std::vector<BenchRow> e9_bounds(const Runner&) {
  std::vector<BenchRow> rows;
  for (const Family family :
       {Family::kUniform, Family::kHugeHeavy, Family::kFewFatClasses,
        Family::kUnit}) {
    double combined_mean = 0.0, lemma9_mean = 0.0, worst = 1.0;
    int samples = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const Instance instance = generate(family, 9, 3, seed);
      const ExactResult exact = exact_makespan(instance);
      if (!exact.optimal) continue;
      const double opt = static_cast<double>(exact.makespan);
      const double combined =
          static_cast<double>(lower_bounds(instance).combined);
      const double lemma9 = static_cast<double>(three_halves_bound(instance));
      combined_mean += opt / combined;
      lemma9_mean += opt / lemma9;
      worst = std::max(worst, opt / combined);
      ++samples;
    }
    if (samples > 0) {
      combined_mean /= samples;
      lemma9_mean /= samples;
    }
    BenchRow row;
    row.name = std::string(family_name(family)) + "/n=9,m=3";
    row.jobs = 9;
    row.machines = 3;
    row.counters.emplace_back("opt_over_note1_mean", combined_mean);
    row.counters.emplace_back("opt_over_lemma9_mean", lemma9_mean);
    row.counters.emplace_back("opt_over_note1_max", worst);
    row.counters.emplace_back("samples", samples);
    row.timing.ops = static_cast<std::uint64_t>(samples);
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- E10: design-choice ablations ------------------------------------------

std::vector<BenchRow> e10_ablation(const Runner& runner) {
  std::vector<BenchRow> rows;
  // (a) pairing-bound dominance in the combined lower bound.
  for (const Family family :
       {Family::kHugeHeavy, Family::kFewFatClasses, Family::kUnit}) {
    double pair_dominates = 0.0, mean_gain = 0.0;
    int samples = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Instance instance = generate(family, 32, 4, seed);
      const LowerBounds bounds = lower_bounds(instance);
      const Time without_pair = std::max(bounds.area, bounds.class_bound);
      if (bounds.pair > without_pair) pair_dominates += 1.0;
      mean_gain += static_cast<double>(bounds.combined) /
                   static_cast<double>(without_pair);
      ++samples;
    }
    BenchRow row;
    row.name = std::string("pair_bound/") + family_name(family);
    row.jobs = 32;
    row.machines = 4;
    row.counters.emplace_back("pair_dominates_frac", pair_dominates / samples);
    row.counters.emplace_back("bound_gain_mean", mean_gain / samples);
    row.timing.ops = static_cast<std::uint64_t>(samples);
    rows.push_back(std::move(row));
  }
  // (b) dynamic (Hebrard) vs static class-priority insertion.
  for (const bool dynamic : {false, true}) {
    const AlgoFn fn = [dynamic](const Instance& instance) {
      return dynamic ? hebrard_insertion(instance)
                     : list_schedule(instance, ListPriority::kClassLoadDesc);
    };
    rows.push_back(quality_row(
        runner, std::string("hebrard/") + (dynamic ? "dynamic" : "static"),
        dynamic ? "hebrard" : "list_class_desc", fn, Family::kFewFatClasses,
        120, 6, /*seeds=*/5));
  }
  // (c) list-scheduling priority rules against each other.
  const std::pair<ListPriority, const char*> priorities[] = {
      {ListPriority::kInputOrder, "input"},
      {ListPriority::kLptJob, "lpt"},
      {ListPriority::kClassLoadDesc, "class_desc"},
  };
  for (const auto& [priority, label] : priorities) {
    const AlgoFn fn = [priority = priority](const Instance& instance) {
      return list_schedule(instance, priority);
    };
    rows.push_back(quality_row(runner, std::string("priority/") + label,
                               std::string("list_") + label, fn,
                               Family::kPhotolith, 120, 6, /*seeds=*/5));
  }
  return rows;
}

// --- E11: BatchEngine throughput -------------------------------------------

std::vector<Instance> mixed_batch() {
  // 5 families x 10 seeds x 2 repeats = 100 instances, 50 unique shapes.
  std::vector<Instance> batch;
  batch.reserve(100);
  for (int repeat = 0; repeat < 2; ++repeat)
    for (int seed = 1; seed <= 10; ++seed)
      for (const Family family :
           {Family::kUniform, Family::kBimodal, Family::kManySmallClasses,
            Family::kSatellite, Family::kPhotolith})
        batch.push_back(generate(family, 60, 3 + (seed % 3) * 2,
                                 static_cast<std::uint64_t>(seed)));
  return batch;
}

std::vector<BenchRow> e11_engine(const Runner& runner) {
  const std::vector<Instance> batch = mixed_batch();
  std::vector<BenchRow> rows;
  for (const bool cache : {false, true}) {
    for (const unsigned threads : {1u, 4u}) {
      engine::BatchOptions options;
      options.threads = threads;
      options.cache = cache;
      std::size_t solved = 0, hits = 0;
      double ratio_mean = 0.0;
      bool all_valid = true;
      BenchRow row;
      row.timing = runner.measure([&] {
        engine::BatchEngine batch_engine(
            engine::SolverRegistry::default_registry(), options);
        const auto results = batch_engine.solve(batch);
        solved = batch_engine.stats().solved;
        hits = batch_engine.stats().cache_hits;
        ratio_mean = 0.0;
        for (const engine::PortfolioResult& result : results) {
          ratio_mean += result.ratio_vs_bound;
          all_valid = all_valid && result.valid;
        }
        ratio_mean /= static_cast<double>(results.size());
      });
      row.name = std::string(cache ? "cache" : "nocache") + "/t=" +
                 std::to_string(threads);
      row.solver = "portfolio";
      row.jobs = static_cast<int>(batch.size());
      row.makespan_ratio = ratio_mean;
      row.counters.emplace_back("solved", static_cast<double>(solved));
      row.counters.emplace_back("cache_hits", static_cast<double>(hits));
      row.counters.emplace_back("all_valid", all_valid ? 1.0 : 0.0);
      row.counters.emplace_back("batch_size",
                                static_cast<double>(batch.size()));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// --- E12: generator subsystem ----------------------------------------------

std::vector<BenchRow> e12_generator(const Runner& runner) {
  std::vector<BenchRow> rows;
  {
    BenchRow row;
    row.name = "spec_parse";
    const std::string text = "huge_heavy:n=5000,m=32,classes=zipf(1.2),seed=7";
    row.timing = runner.measure([&] {
      const auto spec = parse_spec(text);
      (void)spec;
    });
    rows.push_back(std::move(row));
  }
  for (const Family family :
       {Family::kUniform, Family::kHugeHeavy, Family::kLemma9Tight}) {
    GeneratorSpec spec;
    spec.family = family;
    spec.jobs = 1000;
    spec.machines = 8;
    spec.seed = 1;
    const Instance once = generate(spec);
    BenchRow row;
    row.name = std::string("generate/") + family_name(family) + "/n=1000";
    row.jobs = once.num_jobs();
    row.machines = 8;
    row.counters.emplace_back("total_load",
                              static_cast<double>(once.total_load()));
    row.counters.emplace_back("classes",
                              static_cast<double>(once.num_classes()));
    row.timing = runner.measure([&] {
      const Instance instance = generate(spec);
      (void)instance.total_load();
    });
    rows.push_back(std::move(row));
  }
  {
    SweepSpec sweep;
    sweep.families = {Family::kUniform, Family::kHugeHeavy,
                      Family::kLemma9Tight, Family::kBoundary};
    sweep.jobs = {40, 80};
    sweep.machines = {8};
    sweep.seeds = 3;
    std::vector<std::string> groups;
    std::vector<Instance> instances;
    std::vector<CorpusEntry> corpus = make_corpus(sweep);
    groups.reserve(corpus.size());
    instances.reserve(corpus.size());
    for (CorpusEntry& entry : corpus) {
      groups.push_back(family_name(entry.spec.family));
      instances.push_back(std::move(entry.instance));
    }
    engine::BatchOptions options;
    options.threads = 1;
    double ratio_mean = 0.0, ratio_max = 0.0, invalid = 0.0;
    BenchRow row;
    row.timing = runner.measure([&] {
      const engine::CorpusReport report = engine::evaluate_corpus(
          groups, instances, engine::SolverRegistry::default_registry(),
          options);
      double sum = 0.0;
      ratio_max = 0.0;
      invalid = 0.0;
      for (const engine::GroupReport& group : report.groups) {
        sum += group.ratio_mean;
        ratio_max = std::max(ratio_max, group.ratio_max);
        invalid += static_cast<double>(group.invalid);
      }
      ratio_mean = sum / static_cast<double>(report.groups.size());
    });
    row.name = "sweep_evaluate/cells=8,seeds=3";
    row.solver = "portfolio";
    row.jobs = static_cast<int>(instances.size());
    row.makespan_ratio = ratio_mean;
    row.counters.emplace_back("ratio_max", ratio_max);
    row.counters.emplace_back("invalid", invalid);
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- E13: serving layer ----------------------------------------------------

// Steady-state serving path: a running sharded Service (serve/service.hpp),
// repeated-corpus traffic submitted as raw JSONL lines, responses counted
// via the per-request callbacks. One measured op = one full pass over the
// request list (parse -> canonical form -> shard queue -> cache remap ->
// response bytes). The `steady` rows are prewarmed (every request a cache
// hit — the serving regime the acceptance gate cares about); `cold` builds
// a fresh service per op, measuring the dispatch + first-solve path.
std::vector<BenchRow> e13_serve(const Runner& runner) {
  // 64 distinct small shapes, the high-QPS serving sweet spot.
  GeneratorSpec spec;
  spec.family = Family::kUniform;
  spec.jobs = 32;
  spec.machines = 4;
  std::vector<std::string> lines;
  for (const CorpusEntry& entry : seed_corpus(spec, 64)) {
    Json request = Json::object();
    request.set("id", static_cast<std::int64_t>(lines.size()));
    request.set("op", "solve");
    request.set("instance", to_text(entry.instance));
    lines.push_back(request.str());
  }

  // Submits every line and blocks until all responses fired; returns the
  // total response bytes (a determinism probe across shard counts).
  const auto replay = [&lines](serve::Service& service) {
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::size_t> left{lines.size()};
    std::promise<void> all_done;
    std::future<void> done = all_done.get_future();
    for (const std::string& line : lines)
      service.submit(line, [&](std::string&& response) {
        bytes.fetch_add(response.size());
        if (left.fetch_sub(1) == 1) all_done.set_value();
      });
    done.wait();
    return bytes.load();
  };

  std::vector<BenchRow> rows;
  for (const unsigned shards : {1u, 4u}) {
    serve::ServiceOptions options;
    options.shards = shards;
    options.queue_depth = 1024;
    options.cache_capacity = 1 << 14;
    serve::Service service(options);
    (void)replay(service);  // prewarm: every measured request is a repeat
    std::size_t bytes = 0;
    double hit_rate = 0.0;
    BenchRow row;
    row.timing = runner.measure([&] {
      const serve::ServiceStats before = service.stats();
      bytes = replay(service);
      const serve::ServiceStats after = service.stats();
      const double lookups =
          static_cast<double>((after.cache_hits + after.cache_misses) -
                              (before.cache_hits + before.cache_misses));
      hit_rate = lookups > 0.0
                     ? static_cast<double>(after.cache_hits -
                                           before.cache_hits) /
                           lookups
                     : 0.0;
    });
    row.name = "steady/t=" + std::to_string(shards);
    row.solver = "portfolio";
    row.jobs = spec.jobs;
    row.machines = spec.machines;
    row.counters.emplace_back("requests",
                              static_cast<double>(lines.size()));
    row.counters.emplace_back("hit_rate", hit_rate);
    row.counters.emplace_back("resp_bytes", static_cast<double>(bytes));
    rows.push_back(std::move(row));
  }
  {
    // Cold path: fresh service per op — dispatch + portfolio solves.
    std::size_t bytes = 0;
    BenchRow row;
    row.timing = runner.measure([&] {
      serve::ServiceOptions options;
      options.shards = 4;
      serve::Service service(options);
      bytes = replay(service);
      service.shutdown(std::chrono::seconds(30));
    });
    row.name = "cold/t=4";
    row.solver = "portfolio";
    row.jobs = spec.jobs;
    row.machines = spec.machines;
    row.counters.emplace_back("requests",
                              static_cast<double>(lines.size()));
    row.counters.emplace_back("resp_bytes", static_cast<double>(bytes));
    rows.push_back(std::move(row));
  }
  if (serve::tcp_transport_available()) {
    // Fan-in path: the same steady-state traffic, but through the TCP
    // event loop — 64 concurrent closed-loop connections per measured op
    // (connect, version handshake, request/response over the wire, drain).
    // One op = one full drive run, so the row prices the whole transport:
    // accept, framing, shard fan-out, ordered write-back.
    serve::ServiceOptions options;
    options.shards = 4;
    options.queue_depth = 1024;
    options.cache_capacity = 1 << 14;
    serve::Service service(options);
    std::promise<std::uint16_t> port_promise;
    std::future<std::uint16_t> port = port_promise.get_future();
    serve::TcpOptions tcp_options;
    tcp_options.max_connections = 256;
    tcp_options.on_listen = [&port_promise](std::uint16_t p) {
      port_promise.set_value(p);
    };
    std::thread server([&service, &tcp_options] {
      std::string error;
      (void)serve::serve_tcp(service, "127.0.0.1:0", &error, tcp_options);
    });
    serve::DriveOptions drive_options;
    drive_options.tcp = "127.0.0.1:" + std::to_string(port.get());
    drive_options.specs = {"uniform:n=32,m=4,seed=1"};
    drive_options.seeds_per_spec = 64;  // the corpus of the steady rows
    drive_options.requests = 512;
    drive_options.conns = 64;
    std::string error;
    (void)serve::drive(drive_options, &error);  // prewarm the cache
    std::size_t ok = 0;
    BenchRow row;
    row.timing = runner.measure([&] {
      const auto report = serve::drive(drive_options, &error);
      ok = report ? report->ok : 0;
    });
    row.name = "tcp_fanin/c=64";
    row.solver = "portfolio";
    row.jobs = spec.jobs;
    row.machines = spec.machines;
    row.counters.emplace_back("requests",
                              static_cast<double>(drive_options.requests));
    row.counters.emplace_back("conns",
                              static_cast<double>(drive_options.conns));
    row.counters.emplace_back("ok", static_cast<double>(ok));
    rows.push_back(std::move(row));
    // End the event loop with the protocol's own shutdown op.
    serve::TcpClient closer;
    if (closer.connect(drive_options.tcp, &error)) {
      (void)closer.send_line("{\"op\":\"shutdown\"}");
      std::string line;
      (void)closer.recv_line(&line);
    }
    server.join();
  }
  return rows;
}

// E14 — telemetry overhead: the obs hot paths (counter add, histogram
// record), read-side snapshot + Prometheus render, and the live `stats` op
// of an instrumented service. Guards the "instrumentation is cheap enough
// to be always-on" contract (docs/observability.md). All emitted counters
// are constants of the workload shape, never live metric values, so the
// non-timing output stays byte-reproducible.
std::vector<BenchRow> e14_obs(const Runner& runner) {
  constexpr std::size_t kOps = 1024;
  std::vector<BenchRow> rows;

  {
    obs::MetricsRegistry registry;
    obs::Counter& counter = registry.counter("bench.counter");
    BenchRow row;
    row.timing = runner.measure([&] {
      for (std::size_t i = 0; i < kOps; ++i) counter.add(1);
    });
    row.name = "counter/add";
    row.solver = "obs";
    row.counters.emplace_back("per_op", static_cast<double>(kOps));
    rows.push_back(std::move(row));
  }

  {
    obs::MetricsRegistry registry;
    obs::Histogram& histogram = registry.histogram("bench.latency_us");
    // Fixed cycling samples spanning the bucket ladder: the recorded
    // distribution (and thus any later render) is run-independent.
    constexpr double kSamples[] = {0.5, 3.0, 42.0, 180.0, 950.0, 7500.0};
    std::size_t cursor = 0;
    BenchRow row;
    row.timing = runner.measure([&] {
      for (std::size_t i = 0; i < kOps; ++i) {
        histogram.record(kSamples[cursor]);
        cursor = (cursor + 1) % std::size(kSamples);
      }
    });
    row.name = "histogram/record";
    row.solver = "obs";
    row.counters.emplace_back("per_op", static_cast<double>(kOps));
    rows.push_back(std::move(row));
  }

  {
    // The flight-recorder hot path: one lifecycle event per request, so
    // record() must stay in the tens of nanoseconds (the ≤25 ns/event
    // budget of docs/observability.md). The timestamp is caller-supplied
    // (the serve path reuses its trace stamps), so a constant keeps the
    // measured work identical to the hot loop's.
    obs::FlightRecorder recorder({/*capacity=*/1 << 14});
    const std::uint16_t label = recorder.intern("three_halves");
    BenchRow row;
    row.timing = runner.measure([&] {
      for (std::size_t i = 0; i < kOps; ++i)
        recorder.record(obs::EventKind::kSolveEnd, /*seq=*/i,
                        /*ts_ns=*/123456789, /*shard=*/0, /*arg=*/label,
                        /*value=*/1);
    });
    row.name = "recorder/record";
    row.solver = "obs";
    row.counters.emplace_back("per_op", static_cast<double>(kOps));
    rows.push_back(std::move(row));
  }

  {
    // Read side: snapshot a fixed registry and render the Prometheus page.
    obs::MetricsRegistry registry;
    for (int c = 0; c < 16; ++c)
      registry.counter("bench.counter." + std::to_string(c)).add(
          static_cast<std::uint64_t>(c) * 17 + 1);
    for (int g = 0; g < 4; ++g)
      registry.gauge("bench.gauge." + std::to_string(g)).set(g * 5 - 3);
    obs::Histogram& histogram = registry.histogram("bench.latency_us");
    for (std::size_t i = 0; i < kOps; ++i)
      histogram.record(static_cast<double>((i * 37) % 4096));
    std::size_t page_bytes = 0;
    BenchRow row;
    row.timing = runner.measure(
        [&] { page_bytes = registry.snapshot().prometheus().size(); });
    row.name = "snapshot/prometheus";
    row.solver = "obs";
    row.counters.emplace_back("page_bytes", static_cast<double>(page_bytes));
    rows.push_back(std::move(row));
  }

  {
    // The live stats surface: render the full telemetry `stats` response
    // (counter body + breakdowns + quantile decomposition) from a fixed
    // synthetic snapshot. A live service's latency histograms carry real
    // clock values, whose rendered digit counts (and thus allocations)
    // vary run to run — a synthetic snapshot keeps the row reproducible
    // while exercising the same render path the serve hot loop uses.
    obs::MetricsRegistry registry;
    registry.counter("serve.errors.bad_spec").add(3);
    registry.counter("engine.race_win.three_halves").add(5);
    registry.counter("serve.conns.accepted").add(4);
    registry.gauge("serve.conns.active").set(2);
    constexpr const char* kStages[] = {"admission", "queue", "solve",
                                       "write", "total"};
    for (const char* stage : kStages) {
      obs::Histogram& histogram = registry.histogram(
          std::string("serve.latency.") + stage + "_us");
      for (std::size_t i = 0; i < 256; ++i)
        histogram.record(static_cast<double>((i * 53) % 2048));
    }
    serve::ServiceStats stats;
    stats.received = 512;
    stats.responded = 512;
    stats.solved = 256;
    stats.cache_hits = 128;
    stats.cache_misses = 256;
    stats.shards = 2;
    stats.queue_depths = {3, 1};
    stats.shard_requests = {200, 184};
    const obs::MetricsSnapshot snapshot = registry.snapshot();
    std::size_t line_bytes = 0;
    BenchRow row;
    row.timing = runner.measure([&] {
      line_bytes = serve::stats_response(Json(), stats, snapshot).size();
    });
    row.name = "serve/stats_op";
    row.solver = "obs";
    row.counters.emplace_back("line_bytes", static_cast<double>(line_bytes));
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- E15: online sessions: incremental repair vs full re-solve -------------

std::vector<BenchRow> e15_session(const Runner& runner) {
  // One Poisson and one bursty on/off trace, snapshot after every mutation
  // (snap=1: the serving worst case). The repair arm and the oracle arm
  // (repair=false: every snapshot is a full portfolio re-solve) replay the
  // identical trace; portfolio equivalence makes their final makespans
  // equal by contract, and the counters pin the repair hit profile — any
  // change to the memo or delta-census logic moves `repairs`/`fallbacks`
  // and fails the baseline diff before it can regress latency.
  constexpr const char* kSpecs[] = {
      "poisson:events=300,classes=6,m=4,max=50,cancel=0.4,snap=1,seed=5",
      "onoff:events=300,classes=5,m=3,max=40,cancel=0.45,snap=1,"
      "burst=8,blen=16,seed=6",
  };
  std::vector<BenchRow> rows;
  for (const char* text : kSpecs) {
    const std::optional<ChurnSpec> spec = parse_churn(text);
    if (!spec.has_value()) continue;  // unreachable: specs are literals
    const std::vector<ChurnEvent> trace = generate_churn(*spec);
    double final_makespan[2] = {0.0, 0.0};
    int arm = 0;
    for (const bool repair : {true, false}) {
      engine::SessionOptions options;
      options.repair = repair;
      options.portfolio.budget_ms = 5;
      std::size_t mutations = 0, snapshots = 0, repairs = 0, fallbacks = 0;
      bool all_valid = true;
      BenchRow row;
      row.timing = runner.measure([&] {
        engine::SessionEngine session(
            spec->machines, engine::SolverRegistry::default_registry(),
            options);
        mutations = 0;
        all_valid = true;
        for (const ChurnEvent& event : trace) {
          switch (event.kind) {
            case ChurnEvent::Kind::kSubmit:
              session.submit("c" + std::to_string(event.cls), event.size);
              ++mutations;
              break;
            case ChurnEvent::Kind::kCancel:
              session.cancel(static_cast<std::uint64_t>(event.target));
              ++mutations;
              break;
            case ChurnEvent::Kind::kSnapshot: {
              const engine::SessionSnapshot& snap = session.snapshot();
              all_valid =
                  all_valid && (snap.jobs.empty() || snap.result.valid);
              final_makespan[arm] = snap.result.makespan;
              break;
            }
          }
        }
        snapshots = session.stats().snapshots;
        repairs = session.stats().repairs;
        fallbacks = session.stats().fallbacks;
      });
      row.name = std::string(arrival_kind_name(spec->kind)) + "/" +
                 (repair ? "repair" : "resolve");
      row.solver = "session";
      row.jobs = static_cast<int>(mutations);
      row.counters.emplace_back("mutations", static_cast<double>(mutations));
      row.counters.emplace_back("snapshots", static_cast<double>(snapshots));
      row.counters.emplace_back("repairs", static_cast<double>(repairs));
      row.counters.emplace_back("fallbacks", static_cast<double>(fallbacks));
      row.counters.emplace_back("all_valid", all_valid ? 1.0 : 0.0);
      rows.push_back(std::move(row));
      ++arm;
    }
    // The portfolio-equivalence contract, pinned into the baseline: both
    // arms end the trace on the same makespan.
    BenchRow row;
    row.name = std::string(arrival_kind_name(spec->kind)) + "/equivalence";
    row.solver = "session";
    row.counters.emplace_back(
        "makespan_equal",
        final_makespan[0] == final_makespan[1] ? 1.0 : 0.0);
    row.counters.emplace_back("makespan", final_makespan[0]);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

BenchRegistry BenchRegistry::make_default() {
  BenchRegistry registry;
  registry.add(make_case(
      "e1_ratio_53", "Algorithm_5/3 ratio vs the Note-1 bound per family",
      "Theorem 2 / Section 2", Tier::kQuick, [](const Runner& runner) {
        return ratio_case(
            runner, [](const Instance& i) { return five_thirds(i); },
            "five_thirds");
      }));
  registry.add(make_case(
      "e2_ratio_32", "Algorithm_3/2 ratio vs the Lemma-9 bound per family",
      "Theorem 7 / Section 3.2", Tier::kQuick, [](const Runner& runner) {
        return ratio_case(
            runner, [](const Instance& i) { return three_halves(i); },
            "three_halves");
      }));
  registry.add(make_case(
      "e3_vs_baseline",
      "ladder vs prior (2m/(m+1))-approximations across m",
      "Section 1 (Results)", Tier::kQuick, e3_vs_baseline));
  registry.add(make_case(
      "e4_runtime",
      "ns/op + allocs/op of the near-linear hot paths (serving shapes and "
      "linear-scaling sizes)",
      "Theorem 2 (O(|I|)), Theorem 7 (O(n + m log m))", Tier::kQuick,
      [](const Runner& runner) { return e4_runtime(runner, false); }));
  registry.add(make_case(
      "xl_runtime", "e4_runtime shapes at 32k-262k jobs (slope check)",
      "Theorem 2, Theorem 7", Tier::kFull,
      [](const Runner& runner) { return e4_runtime(runner, true); }));
  registry.add(make_case(
      "e5_nfold", "N-fold IP augmentation runtime/iterations over N",
      "Theorem 22 / Section 4.2", Tier::kQuick, e5_nfold));
  registry.add(make_case(
      "e6_eptas", "EPTAS quality vs epsilon against the exact optimum",
      "Theorem 14 / Section 4", Tier::kQuick, e6_eptas));
  registry.add(make_case(
      "e7_hardness", "4-vs-5 hardness gadget: gap, decode round-trip, cost",
      "Theorem 23, Lemma 24 / Section 5", Tier::kQuick, e7_hardness));
  registry.add(make_case(
      "e8_completion", "SPT total-completion-time ratios vs relaxation bound",
      "Section 1 related work (Janssen et al.)", Tier::kQuick,
      e8_completion));
  registry.add(make_case(
      "e9_bounds", "tightness of the Note-1 / Lemma-9 bounds vs OPT",
      "Note 1, Lemma 9", Tier::kQuick, e9_bounds));
  registry.add(make_case(
      "e10_ablation",
      "pair-bound dominance; Hebrard dynamic-vs-static; list priorities",
      "DESIGN ablations (Note 1, Section 1 baselines)", Tier::kQuick,
      e10_ablation));
  registry.add(make_case(
      "e11_engine", "BatchEngine throughput: shard width x cache on/off",
      "serving layer (not in the paper)", Tier::kQuick, e11_engine));
  registry.add(make_case(
      "e12_generator", "generator throughput: spec parse, generate, sweep",
      "workload subsystem (docs/scenarios.md)", Tier::kQuick,
      e12_generator));
  registry.add(make_case(
      "e13_serve",
      "serving path: sharded service steady-state (cache) and cold dispatch",
      "serving layer (docs/architecture.md)", Tier::kQuick, e13_serve));
  registry.add(make_case(
      "e14_obs",
      "telemetry overhead: counter/histogram hot path, snapshot render, "
      "stats op",
      "observability layer (docs/observability.md)", Tier::kQuick, e14_obs));
  registry.add(make_case(
      "e15_session",
      "online sessions: incremental repair vs full re-solve over churn "
      "traces",
      "online serving layer (docs/scenarios.md)", Tier::kQuick,
      e15_session));
  return registry;
}

std::unique_ptr<BenchCase> make_corpus_case(
    std::string name, std::vector<CorpusEntry> corpus,
    std::vector<std::string> solver_names) {
  auto run = [corpus = std::move(corpus),
              solver_names](const Runner& runner) {
    std::vector<BenchRow> rows;
    if (solver_names.empty()) {
      // Batched portfolio over the corpus (cache off: honest timing).
      engine::BatchOptions options;
      options.threads = 1;
      options.cache = false;
      std::vector<Instance> batch;
      batch.reserve(corpus.size());
      for (const CorpusEntry& entry : corpus)
        batch.push_back(entry.instance);
      double ratio_mean = 0.0;
      bool all_valid = true;
      BenchRow row;
      row.timing = runner.measure([&] {
        engine::BatchEngine batch_engine(
            engine::SolverRegistry::default_registry(), options);
        const auto results = batch_engine.solve(batch);
        ratio_mean = 0.0;
        all_valid = true;
        for (const engine::PortfolioResult& result : results) {
          ratio_mean += result.ratio_vs_bound;
          all_valid = all_valid && result.valid;
        }
        ratio_mean /= static_cast<double>(results.size());
      });
      row.name = "portfolio";
      row.solver = "portfolio";
      row.jobs = static_cast<int>(batch.size());
      row.makespan_ratio = ratio_mean;
      row.counters.emplace_back("all_valid", all_valid ? 1.0 : 0.0);
      row.counters.emplace_back("instances",
                                static_cast<double>(batch.size()));
      rows.push_back(std::move(row));
      return rows;
    }
    for (const std::string& solver_name : solver_names) {
      const engine::Solver* solver =
          engine::SolverRegistry::default_registry().find(solver_name);
      if (solver == nullptr) continue;  // validated by the CLI up front
      std::vector<const Instance*> applicable;
      for (const CorpusEntry& entry : corpus)
        if (solver->applicable(entry.instance))
          applicable.push_back(&entry.instance);
      std::vector<double> ratios;
      int invalid = 0;
      for (const Instance* instance : applicable) {
        const engine::SolverResult result = solver->solve(*instance);
        if (!result.ok || !is_valid(*instance, result.schedule)) {
          ++invalid;
          continue;
        }
        const Time T = lower_bounds(*instance).combined;
        ratios.push_back(result.schedule.makespan(*instance) /
                         static_cast<double>(T));
      }
      const Summary summary = summarize(ratios);
      BenchRow row;
      row.name = solver_name;
      row.solver = solver_name;
      row.jobs = static_cast<int>(corpus.size());
      row.makespan_ratio = summary.mean;
      row.counters.emplace_back("ratio_max", summary.max);
      row.counters.emplace_back("invalid", invalid);
      row.counters.emplace_back(
          "skipped",
          static_cast<double>(corpus.size() - applicable.size()));
      if (!applicable.empty()) {
        row.timing = runner.measure([&] {
          for (const Instance* instance : applicable) {
            const engine::SolverResult result = solver->solve(*instance);
            (void)result;
          }
        });
      }
      rows.push_back(std::move(row));
    }
    return rows;
  };
  return make_case(std::move(name), "generated-corpus measurement",
                   "sim/spec.hpp corpus", Tier::kQuick, std::move(run));
}

}  // namespace msrs::perf
