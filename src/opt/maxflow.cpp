#include "opt/maxflow.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace msrs {

MaxFlow::MaxFlow(int nodes)
    : graph_(static_cast<std::size_t>(nodes)),
      level_(static_cast<std::size_t>(nodes)),
      iter_(static_cast<std::size_t>(nodes)) {}

int MaxFlow::add_edge(int from, int to, std::int64_t capacity) {
  assert(capacity >= 0);
  const auto fidx = static_cast<std::size_t>(from);
  const auto tidx = static_cast<std::size_t>(to);
  graph_[fidx].push_back({to, capacity, static_cast<int>(graph_[tidx].size())});
  graph_[tidx].push_back({from, 0, static_cast<int>(graph_[fidx].size()) - 1});
  edge_refs_.emplace_back(from, static_cast<int>(graph_[fidx].size()) - 1);
  original_capacity_.push_back(capacity);
  return static_cast<int>(edge_refs_.size()) - 1;
}

bool MaxFlow::bfs(int source, int sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<int> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[static_cast<std::size_t>(v)]) {
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

std::int64_t MaxFlow::dfs(int v, int sink, std::int64_t pushed) {
  if (v == sink) return pushed;
  auto& it = iter_[static_cast<std::size_t>(v)];
  auto& edges = graph_[static_cast<std::size_t>(v)];
  for (; it < static_cast<int>(edges.size()); ++it) {
    Edge& e = edges[static_cast<std::size_t>(it)];
    if (e.cap <= 0 || level_[static_cast<std::size_t>(e.to)] !=
                          level_[static_cast<std::size_t>(v)] + 1)
      continue;
    const std::int64_t got = dfs(e.to, sink, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      graph_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(int source, int sink) {
  std::int64_t total = 0;
  while (bfs(source, sink)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    for (;;) {
      const std::int64_t pushed =
          dfs(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::int64_t MaxFlow::flow_on(int id) const {
  const auto [node, index] = edge_refs_[static_cast<std::size_t>(id)];
  const Edge& e =
      graph_[static_cast<std::size_t>(node)][static_cast<std::size_t>(index)];
  return original_capacity_[static_cast<std::size_t>(id)] - e.cap;
}

}  // namespace msrs
