// A small exact solver for bounded integer linear programs.
//
// Reference solver used to cross-check the N-fold augmentation solver and
// the layered-schedule solver on small instances. Branch-and-bound over the
// variables in order with interval-arithmetic constraint propagation; exact
// for any instance it finishes (every search is finite as all variables are
// bounded).
#pragma once

#include <cstdint>
#include <vector>

namespace msrs {

struct IlpRow {
  enum class Relation { kEq, kLe };  // sum(terms) (=|<=) rhs
  std::vector<std::pair<int, std::int64_t>> terms;  // (variable, coefficient)
  Relation relation = Relation::kEq;
  std::int64_t rhs = 0;
};

struct IlpProblem {
  int num_vars = 0;
  std::vector<std::int64_t> lower;      // per-variable bounds (inclusive)
  std::vector<std::int64_t> upper;
  std::vector<std::int64_t> objective;  // minimize c^T x; empty = feasibility
  std::vector<IlpRow> rows;
};

struct IlpResult {
  bool feasible = false;
  bool proven = false;  // search completed within the node limit
  std::vector<std::int64_t> x;
  std::int64_t objective = 0;
  std::uint64_t nodes = 0;
};

IlpResult solve_ilp(const IlpProblem& problem,
                    std::uint64_t node_limit = 50'000'000);

}  // namespace msrs
