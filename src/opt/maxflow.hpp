// Dinic max-flow (integral capacities).
//
// Substrate for the Lemma-18 flow argument: the layered-schedule
// construction assigns placeholder small jobs to layer slots via an integral
// maximum flow in a class/layer bipartite network (paper, Figure 5). The
// EPTAS hot path obtains integral assignments directly from the IP solver;
// this module reproduces the paper's network construction faithfully and is
// exercised by tests and the E6 machinery checks.
#pragma once

#include <cstdint>
#include <vector>

namespace msrs {

class MaxFlow {
 public:
  explicit MaxFlow(int nodes);

  // Adds a directed edge with the given capacity; returns an edge id usable
  // with flow_on().
  int add_edge(int from, int to, std::int64_t capacity);

  // Computes the maximum s-t flow; callable once per instance.
  std::int64_t solve(int source, int sink);

  // Flow routed through edge `id` after solve().
  std::int64_t flow_on(int id) const;

  int nodes() const noexcept { return static_cast<int>(level_.size()); }

 private:
  struct Edge {
    int to;
    std::int64_t cap;  // residual capacity
    int rev;           // index of the reverse edge in graph_[to]
  };

  bool bfs(int source, int sink);
  std::int64_t dfs(int v, int sink, std::int64_t pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edge_refs_;   // id -> (node, index)
  std::vector<std::int64_t> original_capacity_;  // id -> capacity
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace msrs
