#include "opt/ilp.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace msrs {
namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

class Solver {
 public:
  explicit Solver(const IlpProblem& problem, std::uint64_t node_limit)
      : prob_(problem), node_limit_(node_limit) {
    // Per-row, per-variable coefficient lists for propagation: for each row
    // r and each variable v >= next unfixed, the remaining min/max
    // contribution. We precompute per-row suffix bounds.
    const auto rows = prob_.rows.size();
    row_suffix_min_.resize(rows);
    row_suffix_max_.resize(rows);
    row_coeff_.assign(rows, std::vector<std::int64_t>(
                                static_cast<std::size_t>(prob_.num_vars), 0));
    for (std::size_t r = 0; r < rows; ++r) {
      for (const auto& [v, coef] : prob_.rows[r].terms)
        row_coeff_[r][static_cast<std::size_t>(v)] += coef;
      row_suffix_min_[r].assign(static_cast<std::size_t>(prob_.num_vars) + 1, 0);
      row_suffix_max_[r].assign(static_cast<std::size_t>(prob_.num_vars) + 1, 0);
      for (int v = prob_.num_vars - 1; v >= 0; --v) {
        const auto vi = static_cast<std::size_t>(v);
        const std::int64_t coef = row_coeff_[r][vi];
        const std::int64_t lo_term =
            std::min(coef * prob_.lower[vi], coef * prob_.upper[vi]);
        const std::int64_t hi_term =
            std::max(coef * prob_.lower[vi], coef * prob_.upper[vi]);
        row_suffix_min_[r][vi] = row_suffix_min_[r][vi + 1] + lo_term;
        row_suffix_max_[r][vi] = row_suffix_max_[r][vi + 1] + hi_term;
      }
    }
    // Objective suffix minimum for bounding.
    obj_suffix_min_.assign(static_cast<std::size_t>(prob_.num_vars) + 1, 0);
    if (!prob_.objective.empty()) {
      for (int v = prob_.num_vars - 1; v >= 0; --v) {
        const auto vi = static_cast<std::size_t>(v);
        const std::int64_t c = prob_.objective[vi];
        obj_suffix_min_[vi] =
            obj_suffix_min_[vi + 1] +
            std::min(c * prob_.lower[vi], c * prob_.upper[vi]);
      }
    }
    x_.assign(static_cast<std::size_t>(prob_.num_vars), 0);
    row_partial_.assign(rows, 0);
  }

  IlpResult run() {
    IlpResult result;
    dfs(0, 0);
    result.feasible = best_found_;
    result.proven = !hit_limit_;
    result.nodes = nodes_;
    if (best_found_) {
      result.x = best_x_;
      result.objective = best_obj_;
    }
    return result;
  }

 private:
  bool row_can_satisfy(std::size_t r, int next_var) const {
    const auto vi = static_cast<std::size_t>(next_var);
    const std::int64_t lo = row_partial_[r] + row_suffix_min_[r][vi];
    const std::int64_t hi = row_partial_[r] + row_suffix_max_[r][vi];
    const auto& row = prob_.rows[r];
    if (row.relation == IlpRow::Relation::kEq)
      return lo <= row.rhs && row.rhs <= hi;
    return lo <= row.rhs;  // kLe
  }

  void dfs(int var, std::int64_t obj) {
    if (hit_limit_) return;
    if (++nodes_ > node_limit_) {
      hit_limit_ = true;
      return;
    }
    // Bound on the objective.
    if (best_found_ &&
        obj + obj_suffix_min_[static_cast<std::size_t>(var)] >= best_obj_)
      return;
    // Constraint propagation.
    for (std::size_t r = 0; r < prob_.rows.size(); ++r)
      if (!row_can_satisfy(r, var)) return;

    if (var == prob_.num_vars) {
      best_found_ = true;
      best_obj_ = obj;
      best_x_ = x_;
      if (prob_.objective.empty()) hit_limit_ = true;  // feasibility: stop
      return;
    }

    const auto vi = static_cast<std::size_t>(var);
    for (std::int64_t value = prob_.lower[vi]; value <= prob_.upper[vi];
         ++value) {
      x_[vi] = value;
      for (std::size_t r = 0; r < prob_.rows.size(); ++r)
        row_partial_[r] += row_coeff_[r][vi] * value;
      const std::int64_t delta =
          prob_.objective.empty() ? 0 : prob_.objective[vi] * value;
      dfs(var + 1, obj + delta);
      for (std::size_t r = 0; r < prob_.rows.size(); ++r)
        row_partial_[r] -= row_coeff_[r][vi] * value;
      if (hit_limit_ && prob_.objective.empty() && best_found_) return;
      if (hit_limit_) return;
    }
  }

  const IlpProblem& prob_;
  std::uint64_t node_limit_;
  std::vector<std::vector<std::int64_t>> row_coeff_;
  std::vector<std::vector<std::int64_t>> row_suffix_min_, row_suffix_max_;
  std::vector<std::int64_t> obj_suffix_min_;
  std::vector<std::int64_t> x_, best_x_;
  std::vector<std::int64_t> row_partial_;
  std::int64_t best_obj_ = kInf;
  bool best_found_ = false;
  bool hit_limit_ = false;
  std::uint64_t nodes_ = 0;
};

}  // namespace

IlpResult solve_ilp(const IlpProblem& problem, std::uint64_t node_limit) {
  assert(static_cast<int>(problem.lower.size()) == problem.num_vars);
  assert(static_cast<int>(problem.upper.size()) == problem.num_vars);
  assert(problem.objective.empty() ||
         static_cast<int>(problem.objective.size()) == problem.num_vars);
  Solver solver(problem, node_limit);
  IlpResult result = solver.run();
  // Feasibility-only runs stop at the first solution: that is still proven.
  if (problem.objective.empty() && result.feasible) result.proven = true;
  return result;
}

}  // namespace msrs
