// Generalized N-fold integer programming (paper Section 4.2, Theorem 22).
//
//   min c^T x   s.t.  Ax = b,  l <= x <= u,  x integral
//
// with the block-structured constraint matrix
//
//        [ A_1  A_2 ... A_N ]      A_i in Z^{r x t}  (global rows)
//    A = [ B_1   0  ...  0  ]      B_i in Z^{s x t}  (local rows)
//        [  0   B_2 ...  0  ]
//        [  0    0  ... B_N ]
//
// Solved by Graver-style augmentation: starting from a feasible point
// (obtained via a phase-1 construction with auxiliary slack variables that
// preserves the N-fold structure), repeatedly find the best improving step
// gamma * g with A g = 0, ||g||_inf <= graver_bound, using dynamic
// programming over the blocks with bounded partial prefix sums of the global
// rows. This mirrors the augmentation framework of Hemmecke-Onn-Romanchuk /
// Eisenbrand et al. that Theorem 22 builds upon.
//
// Demonstration-grade exactness: the solver is exact whenever `graver_bound`
// and `prefix_bound` dominate the true Graver complexity of the matrix; the
// defaults are validated against the reference ILP solver in the tests for
// every matrix family used in this repository. Runtime is near-linear in N
// for fixed r, s, t, Delta (bench E5 reproduces that shape).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msrs {

struct NFold {
  int r = 0;  // global rows
  int s = 0;  // local rows per block
  int t = 0;  // variables per block
  int N = 0;  // number of blocks
  // Row-major r*t resp. s*t matrices, one per block.
  std::vector<std::vector<std::int64_t>> A;
  std::vector<std::vector<std::int64_t>> B;
  std::vector<std::int64_t> b;      // r + N*s right-hand sides
  std::vector<std::int64_t> lower;  // N*t
  std::vector<std::int64_t> upper;  // N*t
  std::vector<std::int64_t> c;      // N*t (empty = feasibility problem)

  int num_vars() const { return N * t; }
  std::string check() const;  // empty if dimensions consistent
};

struct NFoldOptions {
  std::int64_t graver_bound = 2;    // ||g||_inf limit per augmentation step
  std::int64_t prefix_bound = 48;   // |partial global sums| limit in the DP
  std::uint64_t max_iterations = 200'000;
};

struct NFoldResult {
  bool feasible = false;
  bool converged = false;  // augmentation reached a local (=global) optimum
  std::vector<std::int64_t> x;
  std::int64_t objective = 0;
  std::uint64_t iterations = 0;
};

NFoldResult solve_nfold(const NFold& problem, const NFoldOptions& options = {});

}  // namespace msrs
