#include "opt/nfold.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

namespace msrs {
namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

// ---------- augmentation over a fixed N-fold problem ------------------------

class Augmenter {
 public:
  Augmenter(const NFold& problem, const NFoldOptions& options)
      : prob_(problem), opts_(options) {}

  // Improves x in place until no improving step is found. Returns iteration
  // count; sets *converged.
  std::uint64_t run(std::vector<std::int64_t>& x, bool* converged) {
    std::uint64_t iterations = 0;
    *converged = false;
    while (iterations < opts_.max_iterations) {
      ++iterations;
      if (!apply_best_step(x)) {
        *converged = true;
        break;
      }
    }
    return iterations;
  }

 private:
  // Encodes an r-dim prefix-sum state into a single integer.
  std::int64_t encode(const std::vector<std::int64_t>& state) const {
    const std::int64_t base = 2 * opts_.prefix_bound + 1;
    std::int64_t code = 0;
    for (std::int64_t v : state) code = code * base + (v + opts_.prefix_bound);
    return code;
  }

  // Enumerates block step vectors v in [-g, g]^t with B_i v = 0 and
  // l <= x_i + gamma*v <= u; calls f(v, delta=A_i v, cost=c_i . v).
  template <typename F>
  void enumerate_block(int block, const std::vector<std::int64_t>& x,
                       std::int64_t gamma, F&& f) const {
    const auto t = static_cast<std::size_t>(prob_.t);
    std::vector<std::int64_t> v(t, 0);
    const auto& A = prob_.A[static_cast<std::size_t>(block)];
    const auto& B = prob_.B[static_cast<std::size_t>(block)];
    const std::size_t offset = static_cast<std::size_t>(block) * t;

    auto rec = [&](auto&& self, std::size_t idx) -> void {
      if (idx == t) {
        // check B v = 0
        for (int row = 0; row < prob_.s; ++row) {
          std::int64_t sum = 0;
          for (std::size_t col = 0; col < t; ++col)
            sum += B[static_cast<std::size_t>(row) * t + col] * v[col];
          if (sum != 0) return;
        }
        std::vector<std::int64_t> delta(static_cast<std::size_t>(prob_.r), 0);
        for (int row = 0; row < prob_.r; ++row)
          for (std::size_t col = 0; col < t; ++col)
            delta[static_cast<std::size_t>(row)] +=
                A[static_cast<std::size_t>(row) * t + col] * v[col];
        std::int64_t cost = 0;
        if (!prob_.c.empty())
          for (std::size_t col = 0; col < t; ++col)
            cost += prob_.c[offset + col] * v[col];
        f(v, delta, cost);
        return;
      }
      for (std::int64_t val = -opts_.graver_bound; val <= opts_.graver_bound;
           ++val) {
        const std::int64_t moved = x[offset + idx] + gamma * val;
        if (moved < prob_.lower[offset + idx] ||
            moved > prob_.upper[offset + idx])
          continue;
        v[idx] = val;
        self(self, idx + 1);
      }
      v[idx] = 0;
    };
    rec(rec, 0);
  }

  struct DpEntry {
    std::int64_t cost = kInf;
    std::int64_t prev_code = 0;
    std::vector<std::int64_t> step;  // block step vector chosen
  };

  // Finds the best (most negative cost) step g with A g = 0 for a fixed
  // gamma; returns true and fills `g` if an improving one exists.
  bool best_step(const std::vector<std::int64_t>& x, std::int64_t gamma,
                 std::vector<std::int64_t>& g, std::int64_t* cost_out) const {
    std::unordered_map<std::int64_t, DpEntry> layer;
    std::vector<std::int64_t> zero(static_cast<std::size_t>(prob_.r), 0);
    layer[encode(zero)] = DpEntry{0, 0, {}};

    // decode helper
    const std::int64_t base = 2 * opts_.prefix_bound + 1;
    auto decode = [&](std::int64_t code) {
      std::vector<std::int64_t> state(static_cast<std::size_t>(prob_.r));
      for (int i = prob_.r - 1; i >= 0; --i) {
        state[static_cast<std::size_t>(i)] = code % base - opts_.prefix_bound;
        code /= base;
      }
      return state;
    };

    std::vector<std::unordered_map<std::int64_t, DpEntry>> layers;
    layers.push_back(layer);
    for (int block = 0; block < prob_.N; ++block) {
      std::unordered_map<std::int64_t, DpEntry> next;
      // Visit the previous layer in sorted code order: with first-wins
      // relaxation below, the surviving equal-cost predecessor is then the
      // smallest code rather than whichever the hash order served first —
      // hash iteration must not pick the reconstructed step vector.
      std::vector<std::int64_t> frontier;
      frontier.reserve(layers.back().size());
      // order-insensitive: collect-then-sort; the visitation order is the
      // sorted one, not the hash one.
      for (const auto& [code, entry] : layers.back()) {
        static_cast<void>(entry);
        frontier.push_back(code);
      }
      std::sort(frontier.begin(), frontier.end());
      for (const std::int64_t code : frontier) {
        const DpEntry& entry = layers.back().at(code);
        const auto state = decode(code);
        enumerate_block(block, x, gamma,
                        [&](const std::vector<std::int64_t>& v,
                            const std::vector<std::int64_t>& delta,
                            std::int64_t cost) {
                          std::vector<std::int64_t> to = state;
                          for (int i = 0; i < prob_.r; ++i) {
                            to[static_cast<std::size_t>(i)] +=
                                delta[static_cast<std::size_t>(i)];
                            if (std::abs(to[static_cast<std::size_t>(i)]) >
                                opts_.prefix_bound)
                              return;
                          }
                          const std::int64_t to_code = encode(to);
                          const std::int64_t new_cost =
                              entry.cost + gamma * cost;
                          // First-wins on equal cost: combined with the
                          // sorted visitation above this keeps the
                          // smallest equal-cost predecessor, at no
                          // per-relaxation cost. In-place update: `step`
                          // assignment reuses the vector's capacity, and
                          // the found iterator is reused instead of a
                          // second operator[] lookup.
                          auto it = next.find(to_code);
                          if (it == next.end()) {
                            next.emplace(to_code, DpEntry{new_cost, code, v});
                          } else if (new_cost < it->second.cost) {
                            it->second.cost = new_cost;
                            it->second.prev_code = code;
                            it->second.step = v;
                          }
                        });
      }
      layers.push_back(std::move(next));
    }

    const auto it = layers.back().find(encode(zero));
    if (it == layers.back().end() || it->second.cost >= 0) return false;

    // Reconstruct g block by block (walk layers backwards).
    g.assign(static_cast<std::size_t>(prob_.num_vars()), 0);
    std::int64_t code = encode(zero);
    for (int block = prob_.N - 1; block >= 0; --block) {
      const DpEntry& entry =
          layers[static_cast<std::size_t>(block) + 1].at(code);
      for (int col = 0; col < prob_.t; ++col)
        g[static_cast<std::size_t>(block * prob_.t + col)] =
            entry.step[static_cast<std::size_t>(col)];
      code = entry.prev_code;
    }
    *cost_out = it->second.cost;
    return true;
  }

  // Tries step lengths gamma = 1, 2, 4, ... and applies the best step found.
  bool apply_best_step(std::vector<std::int64_t>& x) const {
    std::int64_t best_cost = 0;
    std::vector<std::int64_t> best_g;
    std::int64_t best_gamma = 0;
    // Upper limit for gamma: the largest variable range.
    std::int64_t max_range = 1;
    for (int i = 0; i < prob_.num_vars(); ++i)
      max_range = std::max(max_range, prob_.upper[static_cast<std::size_t>(i)] -
                                          prob_.lower[static_cast<std::size_t>(i)]);
    for (std::int64_t gamma = 1; gamma <= max_range; gamma *= 2) {
      std::vector<std::int64_t> g;
      std::int64_t cost = 0;
      if (best_step(x, gamma, g, &cost) && cost < best_cost) {
        best_cost = cost;
        best_g = std::move(g);
        best_gamma = gamma;
      }
    }
    if (best_gamma == 0) return false;
    for (int i = 0; i < prob_.num_vars(); ++i)
      x[static_cast<std::size_t>(i)] +=
          best_gamma * best_g[static_cast<std::size_t>(i)];
    return true;
  }

  const NFold& prob_;
  const NFoldOptions& opts_;
};

// Builds the phase-1 problem: every block gets 2s local slack columns and
// 2r global slack columns (bounds fixed to zero outside block 0), so the
// extension is itself an N-fold program and the initial point below is
// feasible for it.
NFold build_phase1(const NFold& problem, std::vector<std::int64_t>* x0) {
  NFold ext;
  ext.r = problem.r;
  ext.s = problem.s;
  ext.N = problem.N;
  ext.t = problem.t + 2 * problem.s + 2 * problem.r;
  ext.b = problem.b;

  const auto t_old = static_cast<std::size_t>(problem.t);
  const auto t_new = static_cast<std::size_t>(ext.t);
  for (int i = 0; i < problem.N; ++i) {
    std::vector<std::int64_t> A(static_cast<std::size_t>(ext.r) * t_new, 0);
    std::vector<std::int64_t> B(static_cast<std::size_t>(ext.s) * t_new, 0);
    for (int row = 0; row < ext.r; ++row)
      for (std::size_t col = 0; col < t_old; ++col)
        A[static_cast<std::size_t>(row) * t_new + col] =
            problem.A[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(row) * t_old + col];
    for (int row = 0; row < ext.s; ++row)
      for (std::size_t col = 0; col < t_old; ++col)
        B[static_cast<std::size_t>(row) * t_new + col] =
            problem.B[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(row) * t_old + col];
    // local slack: columns t_old .. t_old+2s
    for (int row = 0; row < ext.s; ++row) {
      B[static_cast<std::size_t>(row) * t_new + t_old +
        static_cast<std::size_t>(2 * row)] = 1;
      B[static_cast<std::size_t>(row) * t_new + t_old +
        static_cast<std::size_t>(2 * row) + 1] = -1;
    }
    // global slack (only block 0 may use it; others are bound to zero)
    for (int row = 0; row < ext.r; ++row) {
      A[static_cast<std::size_t>(row) * t_new + t_old +
        static_cast<std::size_t>(2 * problem.s + 2 * row)] = 1;
      A[static_cast<std::size_t>(row) * t_new + t_old +
        static_cast<std::size_t>(2 * problem.s + 2 * row) + 1] = -1;
    }
    ext.A.push_back(std::move(A));
    ext.B.push_back(std::move(B));
  }

  // Bounds / objective / initial point.
  ext.lower.assign(static_cast<std::size_t>(ext.num_vars()), 0);
  ext.upper.assign(static_cast<std::size_t>(ext.num_vars()), 0);
  ext.c.assign(static_cast<std::size_t>(ext.num_vars()), 0);
  x0->assign(static_cast<std::size_t>(ext.num_vars()), 0);

  // Start from the original lower bounds.
  std::vector<std::int64_t> residual = problem.b;
  for (int i = 0; i < problem.N; ++i) {
    for (int col = 0; col < problem.t; ++col) {
      const auto src = static_cast<std::size_t>(i * problem.t + col);
      const auto dst = static_cast<std::size_t>(i * ext.t + col);
      ext.lower[dst] = problem.lower[src];
      ext.upper[dst] = problem.upper[src];
      (*x0)[dst] = problem.lower[src];
    }
  }
  // residual = b - A x0 (global rows first, then per-block local rows)
  for (int i = 0; i < problem.N; ++i)
    for (int row = 0; row < problem.r; ++row)
      for (int col = 0; col < problem.t; ++col)
        residual[static_cast<std::size_t>(row)] -=
            problem.A[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(row * problem.t + col)] *
            (*x0)[static_cast<std::size_t>(i * ext.t + col)];
  for (int i = 0; i < problem.N; ++i)
    for (int row = 0; row < problem.s; ++row)
      for (int col = 0; col < problem.t; ++col)
        residual[static_cast<std::size_t>(problem.r + i * problem.s + row)] -=
            problem.B[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(row * problem.t + col)] *
            (*x0)[static_cast<std::size_t>(i * ext.t + col)];

  const std::int64_t big = [&] {
    std::int64_t sum = 1;
    for (std::int64_t v : residual) sum += std::abs(v);
    return sum;
  }();

  // Local slack: absorb local residual in each block.
  for (int i = 0; i < problem.N; ++i) {
    for (int row = 0; row < problem.s; ++row) {
      const std::int64_t res =
          residual[static_cast<std::size_t>(problem.r + i * problem.s + row)];
      const auto plus =
          static_cast<std::size_t>(i * ext.t + problem.t + 2 * row);
      ext.upper[plus] = big;
      ext.upper[plus + 1] = big;
      ext.c[plus] = 1;
      ext.c[plus + 1] = 1;
      (*x0)[plus] = std::max<std::int64_t>(res, 0);
      (*x0)[plus + 1] = std::max<std::int64_t>(-res, 0);
    }
  }
  // Global slack in block 0.
  for (int row = 0; row < problem.r; ++row) {
    const auto plus = static_cast<std::size_t>(problem.t + 2 * problem.s +
                                               2 * row);
    ext.upper[plus] = big;
    ext.upper[plus + 1] = big;
    ext.c[plus] = 1;
    ext.c[plus + 1] = 1;
    const std::int64_t res = residual[static_cast<std::size_t>(row)];
    (*x0)[plus] = std::max<std::int64_t>(res, 0);
    (*x0)[plus + 1] = std::max<std::int64_t>(-res, 0);
  }
  return ext;
}

std::int64_t objective_value(const NFold& problem,
                             const std::vector<std::int64_t>& x) {
  if (problem.c.empty()) return 0;
  std::int64_t obj = 0;
  for (int i = 0; i < problem.num_vars(); ++i)
    obj += problem.c[static_cast<std::size_t>(i)] *
           x[static_cast<std::size_t>(i)];
  return obj;
}

}  // namespace

std::string NFold::check() const {
  if (r < 0 || s < 0 || t <= 0 || N <= 0) return "bad dimensions";
  if (static_cast<int>(A.size()) != N || static_cast<int>(B.size()) != N)
    return "need N block matrices";
  for (const auto& block : A)
    if (static_cast<int>(block.size()) != r * t) return "bad A block shape";
  for (const auto& block : B)
    if (static_cast<int>(block.size()) != s * t) return "bad B block shape";
  if (static_cast<int>(b.size()) != r + N * s) return "bad rhs size";
  if (static_cast<int>(lower.size()) != num_vars() ||
      static_cast<int>(upper.size()) != num_vars())
    return "bad bounds size";
  if (!c.empty() && static_cast<int>(c.size()) != num_vars())
    return "bad objective size";
  return {};
}

NFoldResult solve_nfold(const NFold& problem, const NFoldOptions& options) {
  assert(problem.check().empty());
  NFoldResult result;

  // Phase 1: drive the slack objective to zero.
  std::vector<std::int64_t> x_ext;
  const NFold ext = build_phase1(problem, &x_ext);
  Augmenter phase1(ext, options);
  bool converged = false;
  result.iterations += phase1.run(x_ext, &converged);
  if (objective_value(ext, x_ext) != 0) {
    result.feasible = false;
    result.converged = converged;
    return result;
  }

  // Extract the original variables.
  std::vector<std::int64_t> x(static_cast<std::size_t>(problem.num_vars()));
  for (int i = 0; i < problem.N; ++i)
    for (int col = 0; col < problem.t; ++col)
      x[static_cast<std::size_t>(i * problem.t + col)] =
          x_ext[static_cast<std::size_t>(i * ext.t + col)];
  result.feasible = true;

  // Phase 2: optimize the real objective (skip for feasibility problems).
  if (!problem.c.empty()) {
    Augmenter phase2(problem, options);
    result.iterations += phase2.run(x, &converged);
  }
  result.converged = converged;
  result.x = std::move(x);
  result.objective = objective_value(problem, result.x);
  return result;
}

}  // namespace msrs
