/// \file
/// Algorithm_5/3 (paper Section 2, Theorem 2).
///
/// A linear-time 5/3-approximation. With T = max{ceil(p(J)/m), max_c p(c),
/// p_(m)+p_(m+1)} the schedule it builds has makespan <= (5/3)T <= (5/3)OPT.
///
/// All times are exact: the returned schedule has scale 3, so the deadline
/// "(5/3)T" is the scaled time 5T.
#pragma once

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

/// Runs Algorithm_5/3; makespan <= (5/3)T with T the Note-1 bound.
AlgoResult five_thirds(const Instance& instance);

}  // namespace msrs
