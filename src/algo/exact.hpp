/// \file
/// Exact makespan via chronological branch-and-bound.
///
/// Used as ground truth for the empirical approximation-ratio experiments
/// (perf harness cases E1/E2/E6/E9) on small instances. The search is
/// complete: any left-shifted schedule is reproducible by the branching
/// scheme (schedule an available job on the earliest-free machine / idle
/// that machine to the next class release / retire the machine), so the
/// returned value is OPT whenever the node limit is not hit.
#pragma once

#include <cstdint>

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

/// Search knobs of exact_makespan().
struct ExactOptions {
  std::uint64_t node_limit = 20'000'000;  ///< search-node budget
  /// Disables lower-bound pruning (exhaustive search); used by tests to
  /// validate the pruned search on tiny instances.
  bool prune = true;
};

/// Outcome of the branch-and-bound search.
struct ExactResult {
  Time makespan = 0;       ///< best makespan found (instance units)
  Schedule schedule;       ///< scale 1; a schedule attaining `makespan`
  bool optimal = false;    ///< true iff search completed within the limit
  std::uint64_t nodes = 0; ///< search nodes expanded
};

/// Runs the branch-and-bound search.
ExactResult exact_makespan(const Instance& instance,
                           const ExactOptions& options = {});

/// Decision variant: is there a schedule with makespan <= deadline?
/// Returns 1 (yes), 0 (no), -1 (node limit hit, unknown).
int exact_decide(const Instance& instance, Time deadline,
                 const ExactOptions& options = {});

}  // namespace msrs
