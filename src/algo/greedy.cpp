#include "algo/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "core/lower_bounds.hpp"

namespace msrs {
namespace {

// Reused per-thread buffers of the list-scheduling hot path: one arena per
// thread means every BatchEngine shard (and every portfolio race worker)
// serves its whole instance stream without re-allocating these.
struct ListScratch {
  std::vector<JobId> order;
  std::vector<Time> machine_free;
  std::vector<Time> class_free;
};

thread_local ListScratch t_scratch;

// The comparators below add the job id as the final tie-break, which makes
// plain sort produce exactly the stable_sort order without its temporary
// buffer allocation.
void priority_order_into(const Instance& instance, ListPriority priority,
                         std::vector<JobId>& order) {
  order.resize(static_cast<std::size_t>(instance.num_jobs()));
  std::iota(order.begin(), order.end(), 0);
  switch (priority) {
    case ListPriority::kInputOrder:
      break;
    case ListPriority::kLptJob:
      std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
        if (instance.size(a) != instance.size(b))
          return instance.size(a) > instance.size(b);
        return a < b;
      });
      break;
    case ListPriority::kClassLoadDesc:
      std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
        const Time la = instance.class_load(instance.job_class(a));
        const Time lb = instance.class_load(instance.job_class(b));
        if (la != lb) return la > lb;
        if (instance.job_class(a) != instance.job_class(b))
          return instance.job_class(a) < instance.job_class(b);
        if (instance.size(a) != instance.size(b))
          return instance.size(a) > instance.size(b);
        return a < b;
      });
      break;
  }
}

}  // namespace

std::vector<JobId> priority_order(const Instance& instance,
                                  ListPriority priority) {
  std::vector<JobId> order;
  priority_order_into(instance, priority, order);
  return order;
}

AlgoResult list_schedule(const Instance& instance, ListPriority priority) {
  AlgoResult result;
  result.name = "list_schedule";
  result.lower_bound = lower_bounds(instance).combined;
  result.schedule = Schedule(instance.num_jobs(), /*scale=*/1);

  ListScratch& scratch = t_scratch;
  priority_order_into(instance, priority, scratch.order);
  scratch.machine_free.assign(static_cast<std::size_t>(instance.machines()),
                              0);
  scratch.class_free.assign(static_cast<std::size_t>(instance.num_classes()),
                            0);
  std::vector<Time>& machine_free = scratch.machine_free;
  std::vector<Time>& class_free = scratch.class_free;

  for (JobId j : scratch.order) {
    const auto c = static_cast<std::size_t>(instance.job_class(j));
    // Earliest feasible start over machines (resource-aware); ties broken
    // towards the machine that frees up first, then lower index.
    std::size_t best = 0;
    Time best_start = std::max(machine_free[0], class_free[c]);
    for (std::size_t k = 1; k < machine_free.size(); ++k) {
      const Time start = std::max(machine_free[k], class_free[c]);
      if (start < best_start ||
          (start == best_start && machine_free[k] < machine_free[best])) {
        best = k;
        best_start = start;
      }
    }
    result.schedule.assign(j, static_cast<int>(best), best_start);
    machine_free[best] = best_start + instance.size(j);
    class_free[c] = best_start + instance.size(j);
  }
  return result;
}

AlgoResult one_machine_per_class(const Instance& instance) {
  AlgoResult result;
  result.name = "one_machine_per_class";
  result.lower_bound = lower_bounds(instance).combined;
  result.schedule = Schedule(instance.num_jobs(), /*scale=*/1);
  for (ClassId c = 0; c < instance.num_classes(); ++c)
    place_block(instance, result.schedule, instance.class_jobs(c),
                /*machine=*/c, /*start=*/0);
  return result;
}

}  // namespace msrs
