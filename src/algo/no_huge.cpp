#include "algo/no_huge.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "core/class_partition.hpp"
#include "core/lower_bounds.hpp"
#include "util/fifo.hpp"

namespace msrs {
namespace {

// FIFO views over reused per-thread index buffers (util/fifo.hpp).
using IndexQueue = FifoView<std::size_t>;

// Split of a virtual class per Lemma 10 (classes with p(c) >= (3/4)T).
struct VSplit {
  std::vector<JobId> hat, check;
  Time hat_load = 0, check_load = 0;
};

VSplit vsplit10(const Instance& instance, const VirtualClass& vc, Time T) {
  ClassSplit s = split_lemma10_jobs(instance, vc.jobs(), T);
  return {std::move(s.hat), std::move(s.check), s.hat_load, s.check_load};
}

// Machine allocation + greedy bookkeeping shared by the terminal steps.
class Runner {
 public:
  Runner(const Instance& instance, std::span<const int> machines, Time T,
         Schedule& sched)
      : inst_(instance), machines_(machines), T_(T), sched_(sched) {
    assert(sched_.scale() == 2);
  }

  Time deadline() const { return 3 * T_; }  // "3/2" in scale-2 units
  Time unit() const { return 2 * T_; }      // "1" in scale-2 units

  int alloc() {
    if (next_ >= machines_.size())
      throw std::logic_error("no_huge: ran out of machines");
    return machines_[next_++];
  }

  // Places `jobs` consecutively from `start`; returns end.
  Time place(std::span<const JobId> jobs, int machine, Time start) {
    return place_block(inst_, sched_, jobs, machine, start);
  }
  // Places `jobs` consecutively ending at `end`; returns start.
  Time place_ending(std::span<const JobId> jobs, int machine, Time end) {
    return place_block_ending(inst_, sched_, jobs, machine, end);
  }

  // A machine still accepting greedy classes. Its occupied region is
  // [0, cursor) plus, for the gap machine of Step 6.2b, a reserved block
  // [top_start, 3T). `load` tracks total load for the close rule.
  // machine < 0 means "no target open yet".
  struct GreedyTarget {
    int machine = -1;
    Time cursor = 0;                       // next free position
    Time top_start = -1;                   // <0: none
    Time load = 0;                         // scaled
  };

  // Greedily places the remaining small classes (p <= T/2) on `target`
  // first (when open), then on fresh machines; a machine closes once its
  // load reaches "1" (2T scaled). Targets close in order and never reopen,
  // so a single current target replaces the former target vector.
  void greedy_finish(GreedyTarget target, std::span<const VirtualClass> classes,
                     IndexQueue& smalls) {
    while (!smalls.empty()) {
      if (target.machine < 0) target = GreedyTarget{alloc(), 0, -1, 0};
      if (target.load >= unit()) {  // machine full: close, move on
        target.machine = -1;
        continue;
      }
      const VirtualClass& vc = classes[smalls.front()];
      smalls.pop_front();
      assert(2 * vc.load <= T_);
      const Time end = place(vc.jobs(), target.machine, target.cursor);
      target.cursor = end;
      target.load += 2 * vc.load;
      assert(target.top_start < 0 || target.cursor <= target.top_start);
      assert(target.cursor <= deadline());
    }
  }

 private:
  const Instance& inst_;
  std::span<const int> machines_;
  std::size_t next_ = 0;
  Time T_;
  Schedule& sched_;
};

}  // namespace

VirtualClass make_virtual(const Instance& instance, ClassId c) {
  VirtualClass vc;
  vc.whole = &instance.class_jobs(c);
  vc.load = instance.class_load(c);
  vc.max_size = instance.class_max(c);
  return vc;
}

VirtualClass make_virtual(const Instance& instance,
                          std::span<const JobId> jobs) {
  VirtualClass vc;
  vc.frag.assign(jobs.begin(), jobs.end());
  for (JobId j : jobs) {
    vc.load += instance.size(j);
    vc.max_size = std::max(vc.max_size, instance.size(j));
  }
  return vc;
}

void no_huge_run(const Instance& instance, std::span<VirtualClass> classes,
                 std::span<const int> machines, Time T, Schedule& sched) {
  Runner run(instance, machines, T, sched);
  const Time D = run.deadline();  // 3T, i.e. "3/2"

  // Bucket the classes by index. Boundaries (scaled by 2 resp. 4 for
  // exactness): heavy: p(c) >= (3/4)T; mid: p(c) in (T/2, (3/4)T);
  // small: p(c) <= T/2. The index buffers are reused per thread.
  static thread_local std::vector<std::size_t> heavy_store, mid_store,
      small_store;
  IndexQueue heavy, mid, smalls;
  heavy.reset(&heavy_store);
  mid.reset(&mid_store);
  smalls.reset(&small_store);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const VirtualClass& vc = classes[i];
    assert(vc.load <= T);
    assert(4 * vc.max_size <= 3 * T);  // "no huge jobs"
    if (4 * vc.load >= 3 * T) {
      heavy.push_back(i);
    } else if (2 * vc.load > T) {
      mid.push_back(i);
    } else {
      smalls.push_back(i);
    }
  }

  // --- Step 1: Lemma-10 splits for every heavy class (computed lazily via
  // vsplit10 where needed). ---

  // --- Step 2: pairs of mid classes fill one machine each. ---
  while (mid.size() >= 2) {
    const VirtualClass& c1 = classes[mid.front()];
    mid.pop_front();
    const VirtualClass& c2 = classes[mid.front()];
    mid.pop_front();
    const int machine = run.alloc();
    run.place(c1.jobs(), machine, 0);
    run.place_ending(c2.jobs(), machine, D);
    // p(c1)+p(c2) > 1 (closed with load > 1) and both < 3/4 => no overlap.
  }

  // --- Step 3: quadruples of heavy classes fill three machines. ---
  while (heavy.size() >= 4) {
    const VirtualClass& c1 = classes[heavy.front()];
    heavy.pop_front();
    const VirtualClass& c2 = classes[heavy.front()];
    heavy.pop_front();
    const VirtualClass& c3 = classes[heavy.front()];
    heavy.pop_front();
    const VirtualClass& c4 = classes[heavy.front()];
    heavy.pop_front();
    const VSplit s1 = vsplit10(instance, c1, T);
    const VSplit s2 = vsplit10(instance, c2, T);
    const int m1 = run.alloc();
    const int m2 = run.alloc();
    const int m3 = run.alloc();
    run.place(s1.hat, m1, 0);
    run.place_ending(s2.hat, m1, D);
    run.place(c3.jobs(), m2, 0);
    run.place_ending(s1.check, m2, D);
    const Time check2_end = run.place(s2.check, m3, 0);
    run.place(c4.jobs(), m3, check2_end);
  }

  // --- Step 4: two heavy + the lone mid class fill two machines. ---
  if (heavy.size() >= 2 && mid.size() == 1) {
    const VirtualClass& c1 = classes[heavy.front()];
    heavy.pop_front();
    const VirtualClass& c2 = classes[heavy.front()];
    heavy.pop_front();
    const VirtualClass& c3 = classes[mid.front()];
    mid.pop_front();
    const VSplit s1 = vsplit10(instance, c1, T);
    const int m1 = run.alloc();
    const int m2 = run.alloc();
    run.place(c3.jobs(), m1, 0);
    run.place_ending(s1.hat, m1, D);
    const Time check1_end = run.place(s1.check, m2, 0);
    run.place(c2.jobs(), m2, check1_end);
  }

  // Classes with p > T/2 still open. After steps 2-4: |mid| + |heavy| <= 3,
  // and if three remain they are all heavy.
  std::array<std::size_t, 3> over{};
  std::size_t over_count = 0;
  while (!heavy.empty()) {
    assert(over_count < over.size());
    over[over_count++] = heavy.front();
    heavy.pop_front();
  }
  while (!mid.empty()) {
    assert(over_count < over.size());
    over[over_count++] = mid.front();
    mid.pop_front();
  }

  // --- Step 5: at most one class > 1/2 left. ---
  if (over_count <= 1) {
    Runner::GreedyTarget target;
    if (over_count == 1) {
      const int machine = run.alloc();
      const Time end = run.place(classes[over[0]].jobs(), machine, 0);
      target = {machine, end, -1, end};
    }
    run.greedy_finish(target, classes, smalls);
    return;
  }

  // --- Step 6: exactly two classes > 1/2 left. ---
  if (over_count == 2) {
    // c1 is the larger; it is heavy (p(c1) >= 3/4).
    if (classes[over[0]].load < classes[over[1]].load)
      std::swap(over[0], over[1]);
    const VirtualClass& c1 = classes[over[0]];
    const VirtualClass& c2 = classes[over[1]];
    assert(4 * c1.load >= 3 * T);

    if (4 * c2.load <= 3 * T) {  // p(c2) <= 3/4
      if (2 * (c1.load + c2.load) <= 3 * T) {  // 6.1a: both fit on one machine
        const int machine = run.alloc();
        run.place(c1.jobs(), machine, 0);
        run.place_ending(c2.jobs(), machine, D);
        run.greedy_finish({}, classes, smalls);
        return;
      }
      // 6.1b: c2 + hat(c1) on one machine; check(c1) starts the next.
      const VSplit s1 = vsplit10(instance, c1, T);
      const int m1 = run.alloc();
      run.place(c2.jobs(), m1, 0);
      run.place_ending(s1.hat, m1, D);
      const int m2 = run.alloc();
      const Time end = run.place(s1.check, m2, 0);
      run.greedy_finish({m2, end, -1, end}, classes, smalls);
      return;
    }

    // p(c2) > 3/4: both heavy.
    const VSplit s1 = vsplit10(instance, c1, T);
    const VSplit s2 = vsplit10(instance, c2, T);
    if (2 * (s1.hat_load + s2.hat_load) <= 2 * T) {  // 6.2a
      const int m1 = run.alloc();
      run.place(c2.jobs(), m1, 0);
      run.place_ending(s1.hat, m1, D);
      const int m2 = run.alloc();
      const Time end = run.place(s1.check, m2, 0);
      run.greedy_finish({m2, end, -1, end}, classes, smalls);
      return;
    }
    // 6.2b: hats on one machine; checks at bottom/top of the next, greedy
    // classes fill the gap in between.
    const int m1 = run.alloc();
    run.place(s1.hat, m1, 0);
    run.place_ending(s2.hat, m1, D);
    const int m2 = run.alloc();
    const Time bottom_end = run.place(s2.check, m2, 0);
    const Time top_start = run.place_ending(s1.check, m2, D);
    run.greedy_finish(
        {m2, bottom_end, top_start, bottom_end + (D - top_start)}, classes,
        smalls);
    return;
  }

  // --- Step 7: exactly three classes > 1/2 left; all heavy. ---
  assert(over_count == 3);
#ifndef NDEBUG
  for (std::size_t i = 0; i < over_count; ++i)
    assert(4 * classes[over[i]].load >= 3 * T);
#endif

  // 7.1: some hat part is <= 1/2 — reorder it to the front.
  std::array<VSplit, 3> splits = {vsplit10(instance, classes[over[0]], T),
                                  vsplit10(instance, classes[over[1]], T),
                                  vsplit10(instance, classes[over[2]], T)};
  int small_hat = -1;
  for (int i = 0; i < 3; ++i)
    if (2 * splits[static_cast<std::size_t>(i)].hat_load <= T) small_hat = i;
  if (small_hat >= 0) {
    std::swap(over[0], over[static_cast<std::size_t>(small_hat)]);
    std::swap(splits[0], splits[static_cast<std::size_t>(small_hat)]);
    const int m1 = run.alloc();
    const Time hat_end = run.place(splits[0].hat, m1, 0);
    run.place(classes[over[1]].jobs(), m1, hat_end);
    const int m2 = run.alloc();
    run.place(classes[over[2]].jobs(), m2, 0);
    run.place_ending(splits[0].check, m2, D);
    run.greedy_finish({}, classes, smalls);
    return;
  }

  // 7.2: all hats > 1/2.
  if (2 * (splits[0].check_load + splits[1].check_load +
           classes[over[2]].load) <= 3 * T) {
    // 7.2a: hats of c1,c2 on one machine; checks + whole c3 on the next.
    const int m1 = run.alloc();
    run.place(splits[0].hat, m1, 0);
    run.place_ending(splits[1].hat, m1, D);
    const int m2 = run.alloc();
    const Time b_end = run.place(splits[1].check, m2, 0);
    run.place(classes[over[2]].jobs(), m2, b_end);
    run.place_ending(splits[0].check, m2, D);
    run.greedy_finish({}, classes, smalls);
    return;
  }
  // 7.2b: w.l.o.g. p(check(c1)) > 1/4 (at least one of the two checks is).
  if (4 * splits[0].check_load <= T) {
    std::swap(over[0], over[1]);
    std::swap(splits[0], splits[1]);
  }
  assert(4 * splits[0].check_load > T);
  const int m1 = run.alloc();
  run.place(splits[0].hat, m1, 0);
  run.place_ending(splits[1].hat, m1, D);
  const int m2 = run.alloc();
  run.place(classes[over[2]].jobs(), m2, 0);
  run.place_ending(splits[0].check, m2, D);
  const int m3 = run.alloc();
  const Time end = run.place(splits[1].check, m3, 0);
  run.greedy_finish({m3, end, -1, end}, classes, smalls);
}

AlgoResult no_huge(const Instance& instance) {
  AlgoResult result;
  result.name = "no_huge";
  if (instance.num_jobs() == 0) {
    result.schedule = Schedule(0, 1);
    return result;
  }
  if (instance.machines() >= instance.num_classes()) {
    result = one_machine_per_class(instance);
    result.name = "no_huge";
    return result;
  }
  const Time T = lower_bounds(instance).combined;
  result.lower_bound = T;
  if (4 * instance.max_size() > 3 * T)
    throw std::invalid_argument(
        "no_huge: instance contains a huge job (> 3T/4); use three_halves");

  result.schedule = Schedule(instance.num_jobs(), /*scale=*/2);
  // Whole-class aliases are O(1) each; the buffers are reused per thread.
  static thread_local std::vector<VirtualClass> classes;
  classes.clear();
  classes.reserve(static_cast<std::size_t>(instance.num_classes()));
  for (ClassId c = 0; c < instance.num_classes(); ++c)
    classes.push_back(make_virtual(instance, c));
  static thread_local std::vector<int> machines;
  machines.resize(static_cast<std::size_t>(instance.machines()));
  for (int k = 0; k < instance.machines(); ++k)
    machines[static_cast<std::size_t>(k)] = k;
  no_huge_run(instance, classes, machines, T, result.schedule);
  assert(result.schedule.complete());
  return result;
}

}  // namespace msrs
