#include "algo/five_thirds.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "core/class_partition.hpp"
#include "core/lower_bounds.hpp"

namespace msrs {

AlgoResult five_thirds(const Instance& instance) {
  // Trivial cases first (paper: assume m < |C|, otherwise one machine per
  // class is optimal).
  if (instance.num_jobs() == 0) {
    AlgoResult empty;
    empty.name = "five_thirds";
    empty.schedule = Schedule(0, 1);
    return empty;
  }
  if (instance.machines() >= instance.num_classes()) {
    AlgoResult result = one_machine_per_class(instance);
    result.name = "five_thirds";
    return result;
  }

  const Time T = lower_bounds(instance).combined;
  const int m = instance.machines();

  AlgoResult result;
  result.name = "five_thirds";
  result.lower_bound = T;
  Schedule& sched = result.schedule;
  sched = Schedule(instance.num_jobs(), /*scale=*/3);
  const Time deadline = 5 * T;  // "(5/3)T" in scale-3 units; "1" is 3T.

  // Per-machine contiguous load in scaled units; every open machine carries
  // its jobs in [0, load).
  std::vector<Time> load(static_cast<std::size_t>(m), 0);
  std::vector<bool> closed(static_cast<std::size_t>(m), false);

  // Partition classes: C_{B+} (a job > T/2), then C_{>2/3}, then the rest.
  std::vector<ClassId> with_big, large, rest;
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    if (2 * instance.class_max(c) > T) {
      with_big.push_back(c);
    } else if (3 * instance.class_load(c) > 2 * T) {
      large.push_back(c);
    } else {
      rest.push_back(c);
    }
  }
  // Observation 4: at most m classes contain a job > T/2 (pair bound).
  assert(static_cast<int>(with_big.size()) <= m);

  // --- Step 1: one machine per class of C_{B+}, jobs consecutive from 0. ---
  for (std::size_t i = 0; i < with_big.size(); ++i) {
    const auto machine = static_cast<int>(i);
    load[i] = place_block(instance, sched, instance.class_jobs(with_big[i]),
                          machine, 0);
    assert(load[i] <= 3 * T);
  }

  // --- Step 2: classes with p(c) > (2/3)T; fill the C_{B+} machines first,
  // then empty machines. A machine is closed once its load reaches 1 (i.e.
  // 3T scaled) — the feasibility argument of Lemma 6 needs every closed
  // machine to carry load >= 1, so whole-class placements that leave the
  // machine below 1 keep it open for further classes.
  int mi = 0;  // current machine
  for (ClassId c : large) {
    if (mi >= m) throw std::logic_error("five_thirds: ran out of machines (step 2)");
    const Time class_len = 3 * instance.class_load(c);
    {
      const auto midx = static_cast<std::size_t>(mi);
      if (load[midx] + class_len <= deadline) {
        // Entire class fits below the 5/3 deadline.
        load[midx] = place_block(instance, sched, instance.class_jobs(c), mi,
                                 load[midx]);
        if (load[midx] >= 3 * T) {
          closed[midx] = true;
          ++mi;
        }
        continue;
      }
      // The class does not fit whole; this only happens on machines that
      // already carry load > 2T (an empty machine always fits a class, as
      // p(c) <= T). Split by Lemma 5; place the larger part at the top of
      // the current machine, the smaller part at the bottom of the next one
      // (whose existing jobs are delayed past it).
      assert(load[midx] > 2 * T);
      ClassSplit split = split_lemma5(instance, c, T);
      if (split.hat_load < split.check_load) {
        std::swap(split.hat, split.check);
        std::swap(split.hat_load, split.check_load);
      }
      [[maybe_unused]] const Time hat_len = 3 * split.hat_load;
      const Time check_len = 3 * split.check_load;

      // Larger part c1 ends at the deadline; close this machine. Its start
      // 5T - hat_len >= 3T > load, so it cannot collide with existing jobs.
      assert(load[midx] <= deadline - hat_len);
      place_block_ending(instance, sched, split.hat, mi, deadline);
      closed[midx] = true;
      ++mi;
      if (mi >= m)
        throw std::logic_error("five_thirds: ran out of machines (step 2b)");

      // Delay existing jobs on the next machine so the first starts at
      // p(c2), then place c2 in [0, p(c2)).
      const auto nidx = static_cast<std::size_t>(mi);
      if (load[nidx] > 0) {
        for (JobId j = 0; j < instance.num_jobs(); ++j)
          if (sched.assigned(j) && sched.machine(j) == mi)
            sched.assign(j, mi, sched.start(j) + check_len);
      }
      place_block(instance, sched, split.check, mi, 0);
      load[nidx] += check_len;
      assert(load[nidx] <= deadline);
      if (load[nidx] >= 3 * T) {  // "load of at least 1"
        closed[nidx] = true;
        ++mi;
      }
    }
  }

  // --- Step 3: greedily stack all residual classes on open machines. ---
  int greedy_machine = 0;
  auto next_open = [&](int from) {
    while (from < m && closed[static_cast<std::size_t>(from)]) ++from;
    return from;
  };
  greedy_machine = next_open(0);
  for (ClassId c : rest) {
    if (greedy_machine >= m)
      throw std::logic_error("five_thirds: ran out of machines (step 3)");
    const auto midx = static_cast<std::size_t>(greedy_machine);
    load[midx] = place_block(instance, sched, instance.class_jobs(c),
                             greedy_machine, load[midx]);
    assert(load[midx] <= deadline);
    if (load[midx] >= 3 * T) {  // machine full ("exceeds 1"): close it
      closed[midx] = true;
      greedy_machine = next_open(greedy_machine + 1);
    }
  }

  assert(sched.complete());
  assert(sched.makespan_scaled(instance) <= deadline);
  return result;
}

}  // namespace msrs
