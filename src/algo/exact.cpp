#include "algo/exact.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "algo/three_halves.hpp"
#include "core/lower_bounds.hpp"

namespace msrs {
namespace {

constexpr Time kInf = std::numeric_limits<Time>::max() / 4;

class Search {
 public:
  Search(const Instance& instance, const ExactOptions& options, Time bound)
      : inst_(instance),
        opts_(options),
        bound_(bound),
        machine_free_(static_cast<std::size_t>(instance.machines()), 0),
        retired_(static_cast<std::size_t>(instance.machines()), false),
        class_free_(static_cast<std::size_t>(instance.num_classes()), 0),
        class_remaining_(static_cast<std::size_t>(instance.num_classes()), 0),
        scheduled_(static_cast<std::size_t>(instance.num_jobs()), false),
        best_schedule_(instance.num_jobs(), 1),
        current_(instance.num_jobs(), 1) {
    for (JobId j = 0; j < instance.num_jobs(); ++j)
      class_remaining_[static_cast<std::size_t>(instance.job_class(j))] +=
          instance.size(j);
    remaining_ = instance.total_load();
    // Order jobs by size (descending) for branching.
    order_.resize(static_cast<std::size_t>(instance.num_jobs()));
    for (JobId j = 0; j < instance.num_jobs(); ++j)
      order_[static_cast<std::size_t>(j)] = j;
    std::stable_sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
      return instance.size(a) > instance.size(b);
    });
  }

  void run() { dfs(0, 0); }

  bool found() const { return best_makespan_ < kInf; }
  Time best_makespan() const { return best_makespan_; }
  const Schedule& best_schedule() const { return best_schedule_; }
  bool hit_limit() const { return hit_limit_; }
  std::uint64_t nodes() const { return nodes_; }

 private:
  Time lower_bound(Time cmax) const {
    Time lb = cmax;
    // Area bound over active machines.
    Time sum_free = 0;
    int active = 0;
    for (std::size_t k = 0; k < machine_free_.size(); ++k) {
      if (retired_[k]) continue;
      sum_free += machine_free_[k];
      ++active;
    }
    if (active == 0) return kInf;
    lb = std::max(lb, ceil_div(remaining_ + sum_free, active));
    // Per-class chain bound.
    for (std::size_t c = 0; c < class_free_.size(); ++c)
      if (class_remaining_[c] > 0)
        lb = std::max(lb, class_free_[c] + class_remaining_[c]);
    return lb;
  }

  void record(Time cmax) {
    if (cmax < best_makespan_) {
      best_makespan_ = cmax;
      best_schedule_ = current_;
      bound_ = std::min(bound_, cmax - 1);  // now search strictly better
    }
  }

  void dfs(int scheduled_count, Time cmax) {
    if (hit_limit_) return;
    if (++nodes_ > opts_.node_limit) {
      hit_limit_ = true;
      return;
    }
    if (scheduled_count == inst_.num_jobs()) {
      record(cmax);
      return;
    }
    if (opts_.prune && lower_bound(cmax) > bound_) return;

    // Decision point: earliest-free active machine (lowest index on ties).
    int machine = -1;
    Time t = kInf;
    for (std::size_t k = 0; k < machine_free_.size(); ++k) {
      if (retired_[k]) continue;
      if (machine_free_[k] < t) {
        t = machine_free_[k];
        machine = static_cast<int>(k);
      }
    }
    if (machine < 0) return;  // everything retired but jobs remain
    const auto midx = static_cast<std::size_t>(machine);

    // Branch 1: schedule an available job here (dedup identical class/size).
    std::vector<std::pair<ClassId, Time>> seen;
    for (JobId j : order_) {
      if (scheduled_[static_cast<std::size_t>(j)]) continue;
      const ClassId c = inst_.job_class(j);
      const auto cidx = static_cast<std::size_t>(c);
      if (class_free_[cidx] > t) continue;
      const Time p = inst_.size(j);
      if (t + p > bound_ && opts_.prune) continue;
      bool dup = false;
      for (const auto& [sc, sp] : seen)
        if (sc == c && sp == p) {
          dup = true;
          break;
        }
      if (dup) continue;
      seen.emplace_back(c, p);

      // apply
      scheduled_[static_cast<std::size_t>(j)] = true;
      const Time saved_machine = machine_free_[midx];
      const Time saved_class = class_free_[cidx];
      machine_free_[midx] = t + p;
      class_free_[cidx] = t + p;
      class_remaining_[cidx] -= p;
      remaining_ -= p;
      current_.assign(j, machine, t);
      dfs(scheduled_count + 1, std::max(cmax, t + p));
      // undo
      current_.unassign(j);
      remaining_ += p;
      class_remaining_[cidx] += p;
      class_free_[cidx] = saved_class;
      machine_free_[midx] = saved_machine;
      scheduled_[static_cast<std::size_t>(j)] = false;
      if (hit_limit_) return;
    }

    // Branch 2: idle this machine until the next class release.
    Time next_event = kInf;
    for (std::size_t c = 0; c < class_free_.size(); ++c)
      if (class_remaining_[c] > 0 && class_free_[c] > t)
        next_event = std::min(next_event, class_free_[c]);
    if (next_event < kInf && (!opts_.prune || next_event <= bound_)) {
      const Time saved = machine_free_[midx];
      machine_free_[midx] = next_event;
      dfs(scheduled_count, cmax);
      machine_free_[midx] = saved;
      if (hit_limit_) return;
    }

    // Branch 3: retire this machine (it receives no further jobs). Only
    // useful while at least one other machine stays active.
    int active = 0;
    for (std::size_t k = 0; k < retired_.size(); ++k)
      if (!retired_[k]) ++active;
    if (active > 1) {
      retired_[midx] = true;
      dfs(scheduled_count, cmax);
      retired_[midx] = false;
    }
  }

  const Instance& inst_;
  const ExactOptions& opts_;
  Time bound_;  // only schedules with makespan <= bound_ are searched
  std::vector<Time> machine_free_;
  std::vector<bool> retired_;
  std::vector<Time> class_free_;
  std::vector<Time> class_remaining_;
  std::vector<bool> scheduled_;
  Time remaining_ = 0;
  std::vector<JobId> order_;

  Time best_makespan_ = kInf;
  Schedule best_schedule_;
  Schedule current_;
  std::uint64_t nodes_ = 0;
  bool hit_limit_ = false;
};

}  // namespace

ExactResult exact_makespan(const Instance& instance,
                           const ExactOptions& options) {
  ExactResult result;
  if (instance.num_jobs() == 0) {
    result.schedule = Schedule(0, 1);
    result.optimal = true;
    return result;
  }
  // Upper bound: OPT is integral and <= (3/2)T by Theorem 7, so searching
  // makespans <= floor(3T/2) is complete. The incumbent schedule comes from
  // the search itself.
  const AlgoResult approx = three_halves(instance);
  const Time ub = floor_div(3 * approx.lower_bound, 2) > 0
                      ? floor_div(3 * approx.lower_bound, 2)
                      : instance.total_load();
  Search search(instance, options, std::max(ub, lower_bounds(instance).combined));
  search.run();

  result.nodes = search.nodes();
  result.optimal = !search.hit_limit();
  if (search.found()) {
    result.makespan = search.best_makespan();
    result.schedule = search.best_schedule();
  } else {
    // Node limit hit before any schedule was found: fall back to the 3/2
    // schedule's value rounded up (not claimed optimal).
    result.makespan = ceil_div(approx.schedule.makespan_scaled(instance),
                               approx.schedule.scale());
    result.schedule = Schedule(instance.num_jobs(), 1);
    result.optimal = false;
  }
  return result;
}

int exact_decide(const Instance& instance, Time deadline,
                 const ExactOptions& options) {
  if (instance.num_jobs() == 0) return 1;
  ExactOptions opts = options;
  opts.prune = true;  // the deadline is enforced through the search bound
  Search search(instance, opts, deadline);
  search.run();
  if (search.found()) return 1;
  return search.hit_limit() ? -1 : 0;
}

}  // namespace msrs
