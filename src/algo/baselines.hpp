/// \file
/// Prior-art baselines the paper compares against (Section 1):
///
///  * Strusevich [29]: merge each class into a single job (no two jobs of a
///    class can ever run in parallel anyway) and run LPT on the resulting
///    resource-free instance. This is his "faster, simpler"
///    (2m/(m+1))-approximation.
///  * Hebrard et al. [17]: successively choose jobs by their size and the
///    remaining load of their class, inserting each at the earliest feasible
///    start. (Our implementation is a faithful reading of the paper's
///    one-sentence description of that algorithm; the published
///    (2m/(m+1)) analysis applies to the authors' exact insertion procedure,
///    so we report measured ratios without claiming their bound.)
#pragma once

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

/// Strusevich-style class merging + LPT.
AlgoResult merge_lpt(const Instance& instance);

/// Hebrard-style priority insertion (classes by remaining load, jobs by
/// size).
AlgoResult hebrard_insertion(const Instance& instance);

}  // namespace msrs
