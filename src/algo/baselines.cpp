#include "algo/baselines.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "algo/greedy.hpp"
#include "core/lower_bounds.hpp"

namespace msrs {

AlgoResult merge_lpt(const Instance& instance) {
  AlgoResult result;
  result.name = "merge_lpt";
  result.lower_bound = lower_bounds(instance).combined;
  result.schedule = Schedule(instance.num_jobs(), /*scale=*/1);

  // LPT over merged class-jobs: repeatedly give the largest remaining class
  // to the machine with minimum load.
  std::vector<ClassId> classes(static_cast<std::size_t>(instance.num_classes()));
  std::iota(classes.begin(), classes.end(), 0);
  std::sort(classes.begin(), classes.end(), [&](ClassId a, ClassId b) {
    if (instance.class_load(a) != instance.class_load(b))
      return instance.class_load(a) > instance.class_load(b);
    return a < b;
  });

  // min-heap of (load, machine)
  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int k = 0; k < instance.machines(); ++k) heap.emplace(0, k);

  for (ClassId c : classes) {
    auto [load, machine] = heap.top();
    heap.pop();
    const Time end =
        place_block(instance, result.schedule, instance.class_jobs(c), machine,
                    load);
    heap.emplace(end, machine);
  }
  return result;
}

AlgoResult hebrard_insertion(const Instance& instance) {
  AlgoResult result;
  result.name = "hebrard_insertion";
  result.lower_bound = lower_bounds(instance).combined;
  result.schedule = Schedule(instance.num_jobs(), /*scale=*/1);

  // Dynamic priority: repeatedly take the largest unscheduled job of the
  // class with maximum remaining load ("chooses jobs based on their size
  // and the size of the remaining jobs in their class"), placed at the
  // earliest feasible start. Re-evaluating after every placement
  // interleaves the heavy classes instead of serializing them.
  std::vector<Time> remaining(static_cast<std::size_t>(instance.num_classes()));
  std::vector<std::vector<JobId>> queue(
      static_cast<std::size_t>(instance.num_classes()));
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    const auto ci = static_cast<std::size_t>(c);
    remaining[ci] = instance.class_load(c);
    queue[ci] = instance.class_jobs(c);
    std::sort(queue[ci].begin(), queue[ci].end(), [&](JobId a, JobId b) {
      return instance.size(a) > instance.size(b);
    });
  }
  std::vector<Time> machine_free(static_cast<std::size_t>(instance.machines()),
                                 0);
  std::vector<Time> class_free(static_cast<std::size_t>(instance.num_classes()),
                               0);
  std::vector<std::size_t> next_in_class(
      static_cast<std::size_t>(instance.num_classes()), 0);

  for (int placed = 0; placed < instance.num_jobs(); ++placed) {
    // Class with maximum remaining load; break ties towards the earlier
    // resource release so machines do not starve.
    ClassId best_class = kInvalidClass;
    for (ClassId c = 0; c < instance.num_classes(); ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (next_in_class[ci] >= queue[ci].size()) continue;
      if (best_class == kInvalidClass ||
          remaining[ci] > remaining[static_cast<std::size_t>(best_class)] ||
          (remaining[ci] == remaining[static_cast<std::size_t>(best_class)] &&
           class_free[ci] < class_free[static_cast<std::size_t>(best_class)]))
        best_class = c;
    }
    const auto ci = static_cast<std::size_t>(best_class);
    const JobId j = queue[ci][next_in_class[ci]++];

    std::size_t best = 0;
    Time best_start = std::max(machine_free[0], class_free[ci]);
    for (std::size_t k = 1; k < machine_free.size(); ++k) {
      const Time start = std::max(machine_free[k], class_free[ci]);
      if (start < best_start ||
          (start == best_start && machine_free[k] < machine_free[best])) {
        best = k;
        best_start = start;
      }
    }
    result.schedule.assign(j, static_cast<int>(best), best_start);
    machine_free[best] = best_start + instance.size(j);
    class_free[ci] = best_start + instance.size(j);
    remaining[ci] -= instance.size(j);
  }
  return result;
}

}  // namespace msrs
