// Algorithm_no_huge (paper Section 3.1, Lemma 12).
//
// Schedules instances without huge jobs (no job > (3/4)T) with makespan at
// most (3/2)T, where T = max{ceil(p(J)/m), max_c p(c), p~_m + p~_{m+1}}.
// Also used as the subroutine of Algorithm_3/2 (Section 3.2), which hands it
// residual class sets — including at most one *fragment* of a class — and a
// set of still-empty machines. Class fragments are modelled as VirtualClass.
#pragma once

#include <span>
#include <vector>

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

// A class or class fragment treated as one resource unit by no_huge.
struct VirtualClass {
  std::vector<JobId> jobs;
  Time load = 0;
  Time max_size = 0;
};

VirtualClass make_virtual(const Instance& instance, ClassId c);
VirtualClass make_virtual(const Instance& instance,
                          std::span<const JobId> jobs);

// Core routine: schedules `classes` onto the (empty) machine ids `machines`
// within the scaled deadline 3T. `sched` must have scale 2. Requirements
// (Lemma 12): every class load <= T, no job > (3/4)T, total load <=
// |machines| * T, and at most |machines| jobs with size > T/2.
// Throws std::logic_error if it runs out of machines (i.e. the requirements
// were violated).
void no_huge_run(const Instance& instance, std::vector<VirtualClass> classes,
                 std::span<const int> machines, Time T, Schedule& sched);

// Standalone wrapper: computes T from the instance's lower bounds and runs
// the algorithm. Requires the instance to contain no job > (3/4)T.
AlgoResult no_huge(const Instance& instance);

}  // namespace msrs
