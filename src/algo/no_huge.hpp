/// \file
/// Algorithm_no_huge (paper Section 3.1, Lemma 12).
///
/// Schedules instances without huge jobs (no job > (3/4)T) with makespan at
/// most (3/2)T, where T = max{ceil(p(J)/m), max_c p(c), p~_m + p~_{m+1}}.
/// Also used as the subroutine of Algorithm_3/2 (Section 3.2), which hands
/// it residual class sets — including at most one *fragment* of a class —
/// and a set of still-empty machines. Fragments are modelled as
/// VirtualClass.
#pragma once

#include <span>
#include <vector>

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

/// A class or class fragment treated as one resource unit by no_huge.
///
/// Whole classes alias the instance's own job list (no copy, O(1) to
/// build); only fragments — the split parts Algorithm_3/2 produces, at most
/// a machine-bounded handful per run — own their job storage. Safe to move:
/// jobs() is computed on demand, never cached across a move.
struct VirtualClass {
  std::vector<JobId> frag;  ///< owned jobs (fragments only; else empty)
  const std::vector<JobId>* whole = nullptr;  ///< aliases Instance storage
  Time load = 0;            ///< total processing time of the job set
  Time max_size = 0;        ///< largest job size in the set

  /// The job set of this (virtual) class.
  std::span<const JobId> jobs() const {
    return whole != nullptr ? std::span<const JobId>(*whole)
                            : std::span<const JobId>(frag);
  }
};

/// Aliases class `c` of the instance; O(1) (loads/maxima are precomputed).
VirtualClass make_virtual(const Instance& instance, ClassId c);
/// Copies `jobs` into an owned fragment; O(|jobs|).
VirtualClass make_virtual(const Instance& instance,
                          std::span<const JobId> jobs);

/// Core routine: schedules `classes` onto the (empty) machine ids
/// `machines` within the scaled deadline 3T. `sched` must have scale 2.
/// Requirements (Lemma 12): every class load <= T, no job > (3/4)T, total
/// load <= |machines| * T, and at most |machines| jobs with size > T/2.
/// Throws std::logic_error if it runs out of machines (i.e. the
/// requirements were violated). Reads `classes` without taking ownership
/// (callers keep — and may reuse — the backing buffer).
void no_huge_run(const Instance& instance, std::span<VirtualClass> classes,
                 std::span<const int> machines, Time T, Schedule& sched);

/// Standalone wrapper: computes T from the instance's lower bounds and runs
/// the algorithm. Requires the instance to contain no job > (3/4)T.
AlgoResult no_huge(const Instance& instance);

}  // namespace msrs
