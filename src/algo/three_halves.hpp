/// \file
/// Algorithm_3/2 (paper Section 3.2, Theorem 7).
///
/// A 3/2-approximation running in O(n + m log m). Classes containing a huge
/// job (> (3/4)T) each get their own machine; those machines are then topped
/// up with carefully chosen classes/parts, and Algorithm_no_huge finishes the
/// residual instance. T is the Lemma-9 bound (see algo/t_bound.hpp).
///
/// The returned schedule has scale 2 (the deadline "(3/2)T" is scaled 3T).
#pragma once

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

/// Runs Algorithm_3/2; makespan <= (3/2)T with T the Lemma-9 bound.
/// Allocation-free in steady state (per-thread scratch arena; see
/// docs/benchmarking.md).
AlgoResult three_halves(const Instance& instance);

}  // namespace msrs
