#include "algo/three_halves.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <span>
#include <stdexcept>
#include <vector>

#include "algo/no_huge.hpp"
#include "algo/t_bound.hpp"
#include "core/class_partition.hpp"
#include "util/fifo.hpp"

namespace msrs {
namespace {

// The contiguous block tracked on an open huge machine: a sequence of job
// segments (spans into Instance / split storage — never copied per job).
struct MachineBlock {
  std::vector<std::span<const JobId>> segments;
  Time load = 0;    // scaled total
  Time origin = 0;  // scaled start of the block
};

// Per-thread arena of Algorithm_3/2: every buffer the algorithm needs,
// reused across calls. One arena per thread means every BatchEngine shard
// and portfolio worker runs the whole algorithm allocation-free in steady
// state (docs/benchmarking.md, "hot-path allocations").
struct Scratch {
  std::vector<ClassId> huge;
  std::vector<ClassId> smalls, noncb_mid, cb_mid, cb_heavy, noncb_heavy;
  std::vector<int> bar_mh;
  std::vector<MachineBlock> blocks;  // grow-only (nested buffers retained)
  std::vector<VirtualClass> vclasses;
  std::vector<int> fresh_machines;
};

thread_local Scratch t_scratch;

// Mutable algorithm state; the steps below mirror the paper's Steps 2-10.
class ThreeHalves {
 public:
  ThreeHalves(const Instance& instance, Time T, Schedule& sched,
              Scratch& scratch)
      : inst_(instance), T_(T), D_(3 * T), sched_(sched), scratch_(scratch) {
    scratch_.huge.clear();
    smalls_.reset(&scratch_.smalls);
    noncb_mid_.reset(&scratch_.noncb_mid);
    cb_mid_.reset(&scratch_.cb_mid);
    cb_heavy_.reset(&scratch_.cb_heavy);
    noncb_heavy_.reset(&scratch_.noncb_heavy);
    bar_mh_.reset(&scratch_.bar_mh);
  }

  void run() {
    classify();
    if (scratch_.huge.empty()) {
      finish_no_huge();
      return;
    }
    step2_open_huge_machines();
    if (residual_empty()) return;
    if (bar_mh_.empty()) {
      finish_no_huge();
      return;
    }
    step3_greedy_smalls();
    if (residual_empty()) return;
    if (bar_mh_.empty()) {
      finish_no_huge();
      return;
    }
    if (step4_pair_mids()) return;
    if (bar_mh_.size() == 1) {
      step5_or_10_single_mh();
      return;
    }
    // Defensive steps 6/7: with |barMH| >= 2 the mid\C_B classes are already
    // exhausted by step 4, so these loops are normally no-ops; they are kept
    // to mirror the paper and as a safety net.
    if (step6_mid_heavy_pairs()) return;
    step7_own_machines_for_mids();
    if (residual_empty()) return;
    if (bar_mh_.empty()) {
      finish_no_huge();
      return;
    }
    if (bar_mh_.size() == 1) {
      step5_or_10_single_mh();
      return;
    }
    if (step8_heavy_pairs()) return;
    step9_endgame();
  }

 private:
  // --- machine bookkeeping --------------------------------------------------
  MachineBlock& block(int mi) {
    return scratch_.blocks[static_cast<std::size_t>(mi)];
  }

  int alloc_fresh() {
    if (next_fresh_ >= inst_.machines())
      throw std::logic_error("three_halves: ran out of machines");
    return next_fresh_++;
  }

  Time place(std::span<const JobId> jobs, int machine, Time start) {
    return place_block(inst_, sched_, jobs, machine, start);
  }
  Time place_ending(std::span<const JobId> jobs, int machine, Time end) {
    return place_block_ending(inst_, sched_, jobs, machine, end);
  }

  // Appends `jobs` to the tracked contiguous block of machine `mi`.
  void stack_on(int mi, std::span<const JobId> jobs) {
    MachineBlock& info = block(mi);
    const Time end = place(jobs, mi, info.origin + info.load);
    info.segments.push_back(jobs);
    info.load = end - info.origin;
  }

  // Shifts the tracked block of machine `mi` so that it ends at D.
  void shift_to_top(int mi) {
    MachineBlock& info = block(mi);
    const Time offset = D_ - (info.origin + info.load);
    assert(offset >= 0);
    for (std::span<const JobId> segment : info.segments)
      for (JobId j : segment) sched_.assign(j, mi, sched_.start(j) + offset);
    info.origin += offset;
  }

  // --- classification --------------------------------------------------------
  void classify() {
    for (ClassId c = 0; c < inst_.num_classes(); ++c) {
      const Time a = inst_.class_max(c);
      const Time L = inst_.class_load(c);
      assert(L <= T_);
      if (4 * a > 3 * T_) {
        scratch_.huge.push_back(c);
      } else if (2 * a > T_) {  // C_B: big job in (T/2, 3T/4]
        if (4 * L >= 3 * T_) {
          cb_heavy_.push_back(c);
        } else {
          cb_mid_.push_back(c);
        }
      } else if (4 * L >= 3 * T_) {
        noncb_heavy_.push_back(c);
      } else if (2 * L > T_) {
        noncb_mid_.push_back(c);
      } else {
        smalls_.push_back(c);
      }
    }
  }

  bool residual_empty() const {
    return smalls_.empty() && noncb_mid_.empty() && cb_mid_.empty() &&
           cb_heavy_.empty() && noncb_heavy_.empty();
  }

  int heavy_count() const {
    return static_cast<int>(cb_heavy_.size() + noncb_heavy_.size());
  }

  ClassId pop_heavy_cb_first() {
    if (!cb_heavy_.empty()) {
      const ClassId c = cb_heavy_.front();
      cb_heavy_.pop_front();
      return c;
    }
    const ClassId c = noncb_heavy_.front();
    noncb_heavy_.pop_front();
    return c;
  }

  // --- steps -----------------------------------------------------------------
  // Step 2: one machine per huge class, jobs consecutive from 0.
  void step2_open_huge_machines() {
    const std::size_t huge_count = scratch_.huge.size();
    assert(static_cast<int>(huge_count) <= inst_.machines());
    // Grow-only: shrinking would free the nested segment buffers.
    if (scratch_.blocks.size() < huge_count)
      scratch_.blocks.resize(huge_count);
    for (std::size_t i = 0; i < huge_count; ++i) {
      const int machine = static_cast<int>(i);
      const auto& jobs = inst_.class_jobs(scratch_.huge[i]);
      const Time end = place(jobs, machine, 0);
      MachineBlock& info = scratch_.blocks[i];
      info.segments.clear();
      info.segments.push_back(jobs);
      info.load = end;
      info.origin = 0;
      // Close machines with load exactly "1" (2T); the rest stay open.
      if (end < 2 * T_) bar_mh_.push_back(machine);
    }
    next_fresh_ = static_cast<int>(huge_count);
  }

  // Step 3: greedily top up the open huge machines with small classes.
  void step3_greedy_smalls() {
    while (!bar_mh_.empty() && !smalls_.empty()) {
      const int mi = bar_mh_.front();
      if (block(mi).load >= 2 * T_) {
        bar_mh_.pop_front();
        continue;
      }
      const ClassId c = smalls_.front();
      smalls_.pop_front();
      stack_on(mi, inst_.class_jobs(c));
      assert(block(mi).load <= D_);
      if (block(mi).load >= 2 * T_) bar_mh_.pop_front();
    }
  }

  // Step 4: pair two open huge machines with one mid class (not in C_B).
  // Returns true if everything was scheduled.
  bool step4_pair_mids() {
    while (bar_mh_.size() >= 2 && !noncb_mid_.empty()) {
      const ClassId c = noncb_mid_.front();
      noncb_mid_.pop_front();
      const ClassSplit split = split_lemma11(inst_, c, T_);
      const int m1 = bar_mh_.front();
      bar_mh_.pop_front();
      const int m2 = bar_mh_.front();
      bar_mh_.pop_front();
      place_ending(split.hat, m1, D_);  // above m1's block; both <= 3/2
      shift_to_top(m2);
      place(split.check, m2, 0);
      if (residual_empty()) return true;
    }
    if (bar_mh_.empty()) {
      finish_no_huge();
      return true;
    }
    return false;
  }

  // Steps 5 and 10 share their mechanics: a single open huge machine m0.
  void step5_or_10_single_mh() {
    assert(bar_mh_.size() == 1);
    const int m0 = bar_mh_.front();
    bar_mh_.pop_front();
    if (!noncb_mid_.empty() || !noncb_heavy_.empty()) {
      finish_with_rotation(m0);
      return;
    }
    // All residual classes are in C_B: one fresh machine each.
    own_machines_for_all_residual();
  }

  // Step 6 (defensive): one open huge machine + one mid-class + one heavy
  // class fill the huge machine and one fresh machine.
  bool step6_mid_heavy_pairs() {
    while (!bar_mh_.empty() && !noncb_mid_.empty() && heavy_count() >= 1) {
      const ClassId b = noncb_mid_.front();
      noncb_mid_.pop_front();
      const ClassId c = pop_heavy_cb_first();
      const ClassSplit split = split_lemma10(inst_, c, T_);
      const int m1 = bar_mh_.front();
      bar_mh_.pop_front();
      const int m2 = alloc_fresh();
      place_ending(split.check, m1, D_);
      place(split.hat, m2, 0);
      place_ending(inst_.class_jobs(b), m2, D_);
      if (residual_empty()) return true;
      if (bar_mh_.empty()) {
        finish_no_huge();
        return true;
      }
    }
    return false;
  }

  // Step 7 (defensive): any remaining mid classes not in C_B get their own
  // machines.
  void step7_own_machines_for_mids() {
    while (!noncb_mid_.empty()) {
      const ClassId c = noncb_mid_.front();
      noncb_mid_.pop_front();
      place(inst_.class_jobs(c), alloc_fresh(), 0);
    }
  }

  // Step 8: two open huge machines + two heavy classes fill three machines.
  bool step8_heavy_pairs() {
    while (bar_mh_.size() >= 2 && heavy_count() >= 2) {
      const ClassId c1 = pop_heavy_cb_first();
      const ClassId c2 = pop_heavy_cb_first();
      const ClassSplit s1 = split_lemma10(inst_, c1, T_);
      const ClassSplit s2 = split_lemma10(inst_, c2, T_);
      const int m1 = bar_mh_.front();
      bar_mh_.pop_front();
      const int m2 = bar_mh_.front();
      bar_mh_.pop_front();
      const int m3 = alloc_fresh();
      place_ending(s1.check, m1, D_);
      shift_to_top(m2);
      place(s2.check, m2, 0);
      place(s1.hat, m3, 0);
      place_ending(s2.hat, m3, D_);
      if (residual_empty()) return true;
      if (bar_mh_.empty()) {
        finish_no_huge();
        return true;
      }
    }
    return false;
  }

  // Step 9: the |barMH| >= 2 endgame. At most one heavy class remains and no
  // mid class outside C_B. A remaining heavy class outside C_B is paired
  // with a C_B mid class (step-6 mechanics) when possible so the machine
  // budget |M_u| >= |C_B| suffices; everything else gets its own machine.
  void step9_endgame() {
    if (bar_mh_.size() == 1) {
      step5_or_10_single_mh();
      return;
    }
    assert(heavy_count() <= 1);
    if (!noncb_heavy_.empty() && !cb_mid_.empty()) {
      const ClassId e = noncb_heavy_.front();
      noncb_heavy_.pop_front();
      const ClassId b = cb_mid_.front();
      cb_mid_.pop_front();
      const ClassSplit split = split_lemma10(inst_, e, T_);
      const int m1 = bar_mh_.front();
      bar_mh_.pop_front();
      const int m2 = alloc_fresh();
      place_ending(split.check, m1, D_);
      place(split.hat, m2, 0);
      place_ending(inst_.class_jobs(b), m2, D_);
    }
    own_machines_for_all_residual();
  }

  void own_machines_for_all_residual() {
    for (auto* queue : {&cb_mid_, &cb_heavy_, &noncb_mid_, &noncb_heavy_,
                        &smalls_}) {
      while (!queue->empty()) {
        const ClassId c = queue->front();
        queue->pop_front();
        place(inst_.class_jobs(c), alloc_fresh(), 0);
      }
    }
  }

  std::span<const int> fresh_machines() {
    scratch_.fresh_machines.clear();
    for (int k = next_fresh_; k < inst_.machines(); ++k)
      scratch_.fresh_machines.push_back(k);
    return scratch_.fresh_machines;
  }

  // Runs Algorithm_no_huge on all residual classes over the remaining fresh
  // machines.
  void finish_no_huge() {
    std::vector<VirtualClass>& classes = scratch_.vclasses;
    classes.clear();
    for (auto* queue : {&smalls_, &noncb_mid_, &cb_mid_, &cb_heavy_,
                        &noncb_heavy_}) {
      for (ClassId c : queue->remaining())
        classes.push_back(make_virtual(inst_, c));
      queue->drain();
    }
    if (classes.empty()) return;
    no_huge_run(inst_, classes, fresh_machines(), T_, sched_);
  }

  // Steps 5/10: place a part c' (load in (T/4, T/2]) of a class c not in C_B
  // on m0, finish the rest (including the complement c'') with
  // Algorithm_no_huge, then rearrange m0 so c' and c'' do not overlap. The
  // complement has load < (3/4)T, so no_huge keeps it in one contiguous
  // block, and at least one of the bottom/top positions for c' is free
  // (2 p(c) + p(c') <= 3T/scale... see DESIGN.md / paper Step 5).
  void finish_with_rotation(int m0) {
    const bool use_mid = !noncb_mid_.empty();
    ClassId c;
    if (use_mid) {
      c = noncb_mid_.front();
      noncb_mid_.pop_front();
    } else {
      c = noncb_heavy_.front();
      noncb_heavy_.pop_front();
    }
    const ClassSplit split = use_mid ? split_lemma11(inst_, c, T_)
                                     : split_lemma10(inst_, c, T_);
    // Pick the part with load in (T/4, T/2] as c'.
    const bool hat_fits =
        4 * split.hat_load > T_ && 2 * split.hat_load <= T_;
    const std::vector<JobId>& part = hat_fits ? split.hat : split.check;
    const std::vector<JobId>& rest = hat_fits ? split.check : split.hat;
    const Time part_load = hat_fits ? split.hat_load : split.check_load;
    [[maybe_unused]] const Time rest_load =
        hat_fits ? split.check_load : split.hat_load;
    assert(4 * part_load > T_ && 2 * part_load <= T_);
    assert(4 * rest_load < 3 * T_);  // complement stays contiguous in no_huge

    MachineBlock& info = block(m0);
    assert(info.origin == 0 && info.load < 2 * T_);
    const Time part_len = 2 * part_load;
    Time part_start = info.load;  // provisional: on top of m0's block
    place(part, m0, part_start);

    // Residual instance: everything left plus the complement c''.
    std::vector<VirtualClass>& classes = scratch_.vclasses;
    classes.clear();
    if (!rest.empty()) classes.push_back(make_virtual(inst_, rest));
    for (auto* queue : {&smalls_, &noncb_mid_, &cb_mid_, &cb_heavy_,
                        &noncb_heavy_}) {
      for (ClassId cc : queue->remaining())
        classes.push_back(make_virtual(inst_, cc));
      queue->drain();
    }
    if (!classes.empty())
      no_huge_run(inst_, classes, fresh_machines(), T_, sched_);

    if (rest.empty()) return;
    // Locate the (contiguous) complement and resolve any overlap by moving
    // c' to the bottom or the top of m0.
    Time rest_start = sched_.start(rest.front());
    Time rest_end = rest_start;
    for (JobId j : rest) {
      rest_start = std::min(rest_start, sched_.start(j));
      rest_end = std::max(rest_end, sched_.end(inst_, j));
    }
    assert(rest_end - rest_start == 2 * rest_load);

    auto overlaps = [&](Time a, Time b) {
      return a < rest_end && rest_start < b;
    };
    if (!overlaps(part_start, part_start + part_len)) return;
    if (!overlaps(0, part_len)) {
      // Move c' to the bottom, m0's original block right after it.
      place(part, m0, 0);
      for (std::span<const JobId> segment : info.segments)
        for (JobId j : segment)
          sched_.assign(j, m0, sched_.start(j) + part_len);
      info.origin += part_len;
      return;
    }
    // Top position must be free: both positions blocked would require
    // 2 p(c) + p(c') > 3T (impossible; see paper Step 5).
    assert(!overlaps(D_ - part_len, D_));
    place(part, m0, D_ - part_len);
    assert(info.origin + info.load <= D_ - part_len);
  }

  const Instance& inst_;
  Time T_;
  Time D_;  // 3T: the scaled deadline "(3/2)T"
  Schedule& sched_;
  Scratch& scratch_;

  FifoView<ClassId> smalls_, noncb_mid_, cb_mid_, cb_heavy_, noncb_heavy_;
  FifoView<int> bar_mh_;
  int next_fresh_ = 0;
};

}  // namespace

AlgoResult three_halves(const Instance& instance) {
  AlgoResult result;
  result.name = "three_halves";
  if (instance.num_jobs() == 0) {
    result.schedule = Schedule(0, 1);
    return result;
  }
  if (instance.machines() >= instance.num_classes()) {
    result = one_machine_per_class(instance);
    result.name = "three_halves";
    return result;
  }
  const Time T = three_halves_bound(instance);
  result.lower_bound = T;
  result.schedule = Schedule(instance.num_jobs(), /*scale=*/2);
  ThreeHalves algorithm(instance, T, result.schedule, t_scratch);
  algorithm.run();
  assert(result.schedule.complete());
  assert(result.schedule.makespan_scaled(instance) <= 3 * T);
  return result;
}

}  // namespace msrs
