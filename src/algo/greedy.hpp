/// \file
/// Resource-aware list scheduling: the workhorse behind the prior-art
/// baselines (Section 1 of the paper) and a sanity baseline of its own.
#pragma once

#include <vector>

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

/// Job orderings of list_schedule().
enum class ListPriority {
  kInputOrder,      ///< jobs in instance order
  kLptJob,          ///< largest processing time first
  kClassLoadDesc,   ///< classes by total load (desc), jobs within by size
};

/// Schedules jobs one by one in priority order. Each job starts at
/// max(min_k machine_free[k], class_free[class]) on a machine attaining the
/// earliest such start. Resource conflicts are avoided by construction.
/// Allocation-free in steady state (per-thread scratch buffers; see
/// docs/benchmarking.md).
AlgoResult list_schedule(const Instance& instance, ListPriority priority);

/// Returns the job order used by `list_schedule` (exposed for tests).
std::vector<JobId> priority_order(const Instance& instance,
                                  ListPriority priority);

}  // namespace msrs
