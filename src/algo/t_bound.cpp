#include "algo/t_bound.hpp"

#include <algorithm>
#include <vector>

#include "core/lower_bounds.hpp"

namespace msrs {
namespace {

// Category of a class relative to T. Exactly one of:
//   kHuge:  max job > (3/4)T          <=> 4a > 3T
//   kBig:   else, max job > T/2       <=> 2a > T
//   kHeavy: else, p(c) >= (3/4)T      <=> 4L >= 3T
//   kNone:  otherwise
enum class Cat { kHuge, kBig, kHeavy, kNone };

Cat categorize(Time a, Time L, Time T) {
  if (4 * a > 3 * T) return Cat::kHuge;
  if (2 * a > T) return Cat::kBig;
  if (4 * L >= 3 * T) return Cat::kHeavy;
  return Cat::kNone;
}

}  // namespace

Census census(const Instance& instance, Time T) {
  Census counts;
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    switch (categorize(instance.class_max(c), instance.class_load(c), T)) {
      case Cat::kHuge: ++counts.huge; break;
      case Cat::kBig: ++counts.big; break;
      case Cat::kHeavy: ++counts.heavy; break;
      case Cat::kNone: break;
    }
  }
  return counts;
}

bool census_ok(const Instance& instance, Time T) {
  return census(instance, T).ok(instance.machines());
}

Time three_halves_bound(const Instance& instance) {
  const Time base = lower_bounds(instance).combined;
  if (census_ok(instance, base)) return base;

  // Event sweep: each class changes category at up to three thresholds
  //   leaves huge at   T >= ceil(4a/3)
  //   leaves big at    T >= 2a
  //   leaves heavy at  T >  (4/3)L, i.e. T >= floor(4L/3)+1
  // The census is constant between consecutive thresholds, so the smallest
  // satisfying T is one of them (or `base`, checked above). Lemma 8
  // guarantees the census holds at OPT >= base, hence the returned value is
  // <= OPT.
  struct Event {
    Time t;
    ClassId c;
  };
  // Reused per thread: the sweep runs once per three_halves call, which is
  // itself a hot path of the portfolio.
  static thread_local std::vector<Event> events;
  events.clear();
  events.reserve(static_cast<std::size_t>(instance.num_classes()) * 3);
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    const Time a = instance.class_max(c);
    const Time L = instance.class_load(c);
    for (Time t : {ceil_div(4 * a, 3), 2 * a, floor_div(4 * L, 3) + 1})
      if (t > base) events.push_back({t, c});
  }
  std::sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
    return x.t != y.t ? x.t < y.t : x.c < y.c;
  });

  Census counts = census(instance, base);
  const int m = instance.machines();
  Time prev = base;
  std::size_t i = 0;
  while (i < events.size()) {
    const Time t = events[i].t;
    // Apply all transitions at time t (deduplicating per class).
    ClassId last = kInvalidClass;
    for (; i < events.size() && events[i].t == t; ++i) {
      const ClassId c = events[i].c;
      if (c == last) continue;  // several thresholds of c coincide
      last = c;
      const Time a = instance.class_max(c);
      const Time L = instance.class_load(c);
      const Cat before = categorize(a, L, prev);
      const Cat after = categorize(a, L, t);
      if (before == after) continue;
      switch (before) {
        case Cat::kHuge: --counts.huge; break;
        case Cat::kBig: --counts.big; break;
        case Cat::kHeavy: --counts.heavy; break;
        case Cat::kNone: break;
      }
      switch (after) {
        case Cat::kHuge: ++counts.huge; break;
        case Cat::kBig: ++counts.big; break;
        case Cat::kHeavy: ++counts.heavy; break;
        case Cat::kNone: break;
      }
    }
    if (counts.ok(m)) return t;
    prev = t;
  }
  // All categories eventually empty, so the last event always satisfies the
  // census; reaching here means there were no events and base satisfied it.
  return base;
}

}  // namespace msrs
