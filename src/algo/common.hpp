/// \file
/// Shared helpers for the scheduling algorithms.
#pragma once

#include <span>
#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace msrs {

/// Result of an approximation algorithm: the schedule plus the lower bound T
/// it was proven against (the paper's T; always <= OPT). The guarantee of
/// algorithm X is makespan_scaled <= ratio * T * scale.
struct AlgoResult {
  Schedule schedule;     ///< the produced schedule
  Time lower_bound = 0;  ///< T, in instance units (0 = none proven)
  std::string name;      ///< producing algorithm

  /// makespan / lower_bound; an upper bound on the real approximation ratio.
  double ratio_vs_bound(const Instance& instance) const {
    if (lower_bound == 0) return 1.0;
    return schedule.makespan(instance) / static_cast<double>(lower_bound);
  }
};

/// Places `jobs` consecutively on `machine` starting at scaled time `start`.
/// Returns the scaled end time.
inline Time place_block(const Instance& instance, Schedule& schedule,
                        std::span<const JobId> jobs, int machine, Time start) {
  Time cursor = start;
  for (JobId j : jobs) {
    schedule.assign(j, machine, cursor);
    cursor += checked_mul(instance.size(j), schedule.scale());
  }
  return cursor;
}

/// Places `jobs` consecutively on `machine` so the block ends at scaled time
/// `end`. Returns the scaled start time.
inline Time place_block_ending(const Instance& instance, Schedule& schedule,
                               std::span<const JobId> jobs, int machine,
                               Time end) {
  Time total = 0;
  for (JobId j : jobs) total += checked_mul(instance.size(j), schedule.scale());
  place_block(instance, schedule, jobs, machine, end - total);
  return end - total;
}

/// Total scaled length of a block.
inline Time block_length(const Instance& instance, const Schedule& schedule,
                         std::span<const JobId> jobs) {
  Time total = 0;
  for (JobId j : jobs) total += checked_mul(instance.size(j), schedule.scale());
  return total;
}

/// The trivial schedule used when m >= |C|: one machine per class
/// (paper, Note 1 discussion). Scale 1, makespan = max_c p(c).
AlgoResult one_machine_per_class(const Instance& instance);

}  // namespace msrs
