/// \file
/// The lower bound T for Algorithm_3/2 (paper Lemmas 8 and 9).
///
/// Lemma 8 shows every feasible makespan T satisfies the census
///   |C_H| + max{|C_B|, ceil((|C_B| + |C_{>=3/4} \ (C_H u C_B)|)/2)} <= m
/// where, relative to T: C_H are classes with a job > (3/4)T, C_B classes
/// with a job in (T/2, (3/4)T], and C_{>=3/4} classes with p(c) >= (3/4)T.
///
/// Lemma 9 finds the smallest integer T >= max{ceil(p(J)/m), max_c p(c),
/// p~_m + p~_{m+1}} satisfying the census in O(n + m log m) via the
/// per-class threshold values at which a class leaves each category.
#pragma once

#include <algorithm>

#include "core/instance.hpp"

namespace msrs {

/// The census of Lemma 8 evaluated at T: true iff the inequality holds.
bool census_ok(const Instance& instance, Time T);

/// Per-category counts at T (exposed for tests).
struct Census {
  int huge = 0;      ///< |C_H|
  int big = 0;       ///< |C_B|
  int heavy = 0;     ///< |C_{>=3/4} \ (C_H u C_B)|
  /// True iff the Lemma-8 inequality holds on m machines.
  bool ok(int m) const {
    const int need = huge + std::max(big, static_cast<int>((big + heavy + 1) / 2));
    return need <= m;
  }
};
/// Counts the census categories at T.
Census census(const Instance& instance, Time T);

/// Lemma 9: smallest T >= combined lower bound with census_ok(T). Always <=
/// OPT (the census holds at OPT by Lemma 8 and is evaluated on candidate
/// values only, between which it is constant).
Time three_halves_bound(const Instance& instance);

}  // namespace msrs
