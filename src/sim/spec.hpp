/// \file
/// Generator specifications: the vocabulary of the workload subsystem.
///
/// A GeneratorSpec names one instance draw — a Family plus sizing knobs and
/// a seed — and round-trips through a compact spec string such as
/// `huge:m=32,classes=zipf(1.2),n=5000,seed=7`. Specs are pure data: parsing
/// never touches an RNG, and `generate(spec)` (sim/generator.hpp) is a pure
/// function of the spec, so a spec string is a complete, shareable name for
/// an instance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace msrs {

class Rng;

/// The workload families. The first nine are the original fixed list (the
/// two application scenarios cited by the paper plus structural regimes of
/// its case analyses); the last three are adversarial/stress families added
/// for regime-transition sweeps. New values must be appended (the enum value
/// is mixed into the RNG seed, so reordering would change every corpus).
enum class Family {
  kUniform,          ///< class sizes ~ U, job sizes ~ U
  kBimodal,          ///< mix of tiny and large jobs
  kHugeHeavy,        ///< many classes with one near-T huge job
  kManySmallClasses, ///< lots of light classes (stress for greedy phases)
  kFewFatClasses,    ///< few classes with load near the class bound
  kSatellite,        ///< downlink windows: channels = resources
  kPhotolith,        ///< wafer lots: reticles = resources
  kAdversarialLpt,   ///< near-worst-case for merge-LPT baseline
  kUnit,             ///< unit jobs (cograph clique world, Section 6 remark)
  kLemma9Tight,      ///< census of Lemma 8 tight at T (Lemma-9 bound binds)
  kSingleDominant,   ///< one class carries ~half the load (class bound rules)
  kBoundary,         ///< job sizes straddle the T/2 and (3/4)T thresholds
};

/// Canonical lowercase name of a family (stable; used in spec strings,
/// report tables, and test labels).
constexpr const char* family_name(Family family) {
  switch (family) {
    case Family::kUniform: return "uniform";
    case Family::kBimodal: return "bimodal";
    case Family::kHugeHeavy: return "huge_heavy";
    case Family::kManySmallClasses: return "many_small";
    case Family::kFewFatClasses: return "few_fat";
    case Family::kSatellite: return "satellite";
    case Family::kPhotolith: return "photolith";
    case Family::kAdversarialLpt: return "adv_lpt";
    case Family::kUnit: return "unit";
    case Family::kLemma9Tight: return "lemma9_tight";
    case Family::kSingleDominant: return "single_dominant";
    case Family::kBoundary: return "boundary";
  }
  return "?";
}

/// All families, in spec-string/report order, for sweep loops.
inline constexpr Family kAllFamilies[] = {
    Family::kUniform,        Family::kBimodal,
    Family::kHugeHeavy,      Family::kManySmallClasses,
    Family::kFewFatClasses,  Family::kSatellite,
    Family::kPhotolith,      Family::kAdversarialLpt,
    Family::kUnit,           Family::kLemma9Tight,
    Family::kSingleDominant, Family::kBoundary,
};

/// Parses a family name or alias (`huge` = huge_heavy, `lemma9` =
/// lemma9_tight, `dominant` = single_dominant). std::nullopt when unknown.
std::optional<Family> parse_family(std::string_view name);

/// A small closed distribution vocabulary for generator knobs.
///
/// Written `uniform(lo,hi)`, `zipf(s)`, or `const(v)` in spec strings. A
/// default-constructed Dist means "use the family's built-in draw"; that is
/// also the only state in which the RNG consumption of a family is
/// guaranteed identical to the pre-spec workloads API.
struct Dist {
  /// Which distribution a Dist denotes.
  enum class Kind {
    kDefault,  ///< family built-in behavior (Dist absent from spec string)
    kUniform,  ///< uniform integer on [lo, hi]
    kZipf,     ///< rank r in [lo, hi] with probability proportional to r^-s
    kConst,    ///< always `value`
  };

  Kind kind = Kind::kDefault;  ///< discriminator
  std::int64_t lo = 1;         ///< uniform/zipf support lower end
  std::int64_t hi = 1;         ///< uniform/zipf support upper end
  double s = 1.0;              ///< zipf exponent (> 0)
  std::int64_t value = 1;      ///< const value

  /// True when the Dist overrides the family default.
  bool set() const { return kind != Kind::kDefault; }

  /// Draws a value. `lo_default`/`hi_default` are the family's built-in
  /// support: kDefault and kZipf sample on it (zipf keeps ranks in
  /// [lo_default, hi_default]); kUniform/kConst use their own parameters,
  /// clamped to [1, hi_cap] so generators never see a non-positive size.
  std::int64_t sample(Rng& rng, std::int64_t lo_default,
                      std::int64_t hi_default, std::int64_t hi_cap) const;

  /// Spec-string form (`zipf(1.2)`, ...); empty for kDefault.
  std::string str() const;

  /// Mixed into the generator seed so distinct dists give distinct streams.
  std::uint64_t hash() const;

  /// Field-wise equality.
  friend bool operator==(const Dist&, const Dist&) = default;
};

/// One instance draw: family x sizing x distributions x seed.
///
/// The compact string form is `family:key=value,...` with keys `n` (target
/// job count), `m` (machines), `max` (job size scale), `seed`, `classes`
/// (jobs-per-class Dist) and `sizes` (job-size Dist); omitted keys keep the
/// defaults below. `str()` renders the canonical form, which `parse_spec`
/// round-trips exactly.
struct GeneratorSpec {
  Family family = Family::kUniform;  ///< workload family
  int jobs = 100;                    ///< target job count (`n=`)
  int machines = 8;                  ///< machine count (`m=`)
  Time max_size = 1000;              ///< job size scale (`max=`)
  std::uint64_t seed = 1;            ///< RNG seed (`seed=`)
  Dist class_size;                   ///< jobs-per-class override (`classes=`)
  Dist job_size;                     ///< job-size override (`sizes=`)

  /// Canonical spec string; `parse_spec(str())` reproduces the spec.
  std::string str() const;

  /// Field-wise equality.
  friend bool operator==(const GeneratorSpec&, const GeneratorSpec&) = default;
};

/// Parses a compact spec string. On failure returns std::nullopt and, when
/// `error` is non-null, a message naming the offending token.
std::optional<GeneratorSpec> parse_spec(std::string_view text,
                                        std::string* error = nullptr);

/// A cross-product sweep grid over specs.
///
/// String form: `;`-separated `key=list` clauses, e.g.
/// `families=uniform,huge_heavy;n=50,200;m=4,8;seeds=5;max=1000`. Keys:
/// `families` (comma list or `all`), `n`, `m`, `max` (comma lists of ints),
/// `seeds` (count K: seeds 1..K per cell), and the per-spec Dist keys
/// `classes` / `sizes` applied to every cell. Expansion order is
/// family-major (family, then n, m, max, seed), so corpora group by family.
struct SweepSpec {
  std::vector<Family> families = {Family::kUniform};  ///< families axis
  std::vector<int> jobs = {100};                      ///< `n` axis
  std::vector<int> machines = {8};                    ///< `m` axis
  std::vector<Time> max_sizes = {1000};               ///< `max` axis
  int seeds = 3;              ///< draws per cell (seeds 1..K)
  Dist class_size;            ///< applied to every expanded spec
  Dist job_size;              ///< applied to every expanded spec

  /// Canonical sweep string; `parse_sweep(str())` reproduces the sweep.
  std::string str() const;

  /// Cells x seeds = number of specs `expand()` yields.
  std::size_t size() const;

  /// Field-wise equality.
  friend bool operator==(const SweepSpec&, const SweepSpec&) = default;
};

/// Parses a sweep string (see SweepSpec). On failure returns std::nullopt
/// and, when `error` is non-null, a message naming the offending clause.
std::optional<SweepSpec> parse_sweep(std::string_view text,
                                     std::string* error = nullptr);

/// Expands the grid into concrete specs, family-major, seeds innermost.
std::vector<GeneratorSpec> expand(const SweepSpec& sweep);

}  // namespace msrs
