#include "sim/arrivals.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/rng.hpp"

namespace msrs {
namespace {

bool parse_int(std::string_view text, std::int64_t* out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool parse_double(std::string_view text, double* out) {
  // Same portability posture as sim/spec.cpp: strtod on a bounded copy,
  // with the character set restricted so locales cannot change the result.
  if (text.empty() ||
      text.find_first_not_of("0123456789.+-eE") != std::string_view::npos)
    return false;
  const std::string copy(text);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

// Shortest decimal that round-trips through strtod, so parse_churn(str())
// reproduces the exact double (its bit pattern is folded into the seed).
std::string render_double(double v) {
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, v);
  (void)ec;
  return std::string(buffer, static_cast<std::size_t>(end - buffer));
}

// Parser-enforced caps: traces are materialized in memory and replayed
// event-by-event, so the event count stays modest; sizes obey the same
// 2^40 ceiling as the batch generator (sim/spec.cpp).
constexpr std::int64_t kMaxEvents = 1 << 24;    // ~16.7M events
constexpr std::int64_t kMaxClasses = 1 << 20;
constexpr std::int64_t kMaxMachines = 1 << 22;
constexpr std::int64_t kMaxSize = 1LL << 40;

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::string ChurnSpec::str() const {
  std::ostringstream out;
  out << arrival_kind_name(kind) << ":events=" << events
      << ",classes=" << classes << ",m=" << machines << ",max=" << max_size
      << ",cancel=" << render_double(cancel) << ",snap=" << snap_every
      << ",rate=" << render_double(rate);
  if (kind == ArrivalKind::kOnOff)
    out << ",burst=" << render_double(burst) << ",blen=" << burst_len;
  out << ",seed=" << seed;
  return out.str();
}

std::optional<ChurnSpec> parse_churn(std::string_view text,
                                     std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<ChurnSpec> {
    if (error) *error = message;
    return std::nullopt;
  };
  if (text.empty())
    return fail("empty churn spec (expected kind[:key=value,...])");

  ChurnSpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view kind_part = text.substr(0, colon);
  if (kind_part == "poisson") spec.kind = ArrivalKind::kPoisson;
  else if (kind_part == "onoff") spec.kind = ArrivalKind::kOnOff;
  else
    return fail("unknown arrival kind '" + std::string(kind_part) +
                "' (known: poisson, onoff)");
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view clause = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                          : rest.substr(comma + 1);
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos)
      return fail("bad clause '" + std::string(clause) +
                  "' (expected key=value)");
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    std::int64_t number = 0;
    double real = 0.0;
    if (key == "events") {
      if (!parse_int(value, &number) || number < 0 || number > kMaxEvents)
        return fail("events must be an integer in [0, " +
                    std::to_string(kMaxEvents) + "], got '" +
                    std::string(value) + "'");
      spec.events = static_cast<int>(number);
    } else if (key == "classes") {
      if (!parse_int(value, &number) || number < 1 || number > kMaxClasses)
        return fail("classes must be an integer in [1, " +
                    std::to_string(kMaxClasses) + "], got '" +
                    std::string(value) + "'");
      spec.classes = static_cast<int>(number);
    } else if (key == "m") {
      if (!parse_int(value, &number) || number < 1 || number > kMaxMachines)
        return fail("m must be an integer in [1, " +
                    std::to_string(kMaxMachines) + "], got '" +
                    std::string(value) + "'");
      spec.machines = static_cast<int>(number);
    } else if (key == "max") {
      if (!parse_int(value, &number) || number < 1 || number > kMaxSize)
        return fail("max must be an integer in [1, " +
                    std::to_string(kMaxSize) + "], got '" +
                    std::string(value) + "'");
      spec.max_size = number;
    } else if (key == "cancel") {
      if (!parse_double(value, &real) || !std::isfinite(real) || real < 0.0 ||
          real > 1.0)
        return fail("cancel must be a fraction in [0, 1], got '" +
                    std::string(value) + "'");
      spec.cancel = real;
    } else if (key == "snap") {
      if (!parse_int(value, &number) || number < 0 || number > kMaxEvents)
        return fail("snap must be an integer >= 0, got '" +
                    std::string(value) + "'");
      spec.snap_every = static_cast<int>(number);
    } else if (key == "rate") {
      if (!parse_double(value, &real) || !std::isfinite(real) || real <= 0.0)
        return fail("rate must be a finite number > 0, got '" +
                    std::string(value) + "'");
      spec.rate = real;
    } else if (key == "burst") {
      if (!parse_double(value, &real) || !std::isfinite(real) || real < 1.0)
        return fail("burst must be a finite number >= 1, got '" +
                    std::string(value) + "'");
      spec.burst = real;
    } else if (key == "blen") {
      if (!parse_int(value, &number) || number < 1 || number > kMaxEvents)
        return fail("blen must be an integer >= 1, got '" +
                    std::string(value) + "'");
      spec.burst_len = static_cast<int>(number);
    } else if (key == "seed") {
      if (!parse_int(value, &number) || number < 0)
        return fail("seed must be an integer >= 0, got '" +
                    std::string(value) + "'");
      spec.seed = static_cast<std::uint64_t>(number);
    } else {
      return fail("unknown key '" + std::string(key) +
                  "' (known: events, classes, m, max, cancel, snap, rate, "
                  "burst, blen, seed)");
    }
  }
  return spec;
}

std::vector<ChurnEvent> generate_churn(const ChurnSpec& spec) {
  // Seed mix mirrors sim/generator.cpp: every structural field perturbs the
  // stream, so poisson and onoff traces with equal seeds differ, as do
  // traces that differ only in the cancel mix.
  std::uint64_t state = spec.seed;
  state ^= static_cast<std::uint64_t>(spec.kind) << 56;
  state ^= static_cast<std::uint64_t>(spec.events) << 32;
  state ^= static_cast<std::uint64_t>(spec.classes) << 16;
  state ^= static_cast<std::uint64_t>(spec.machines);
  std::uint64_t mix = splitmix64(state);
  state ^= static_cast<std::uint64_t>(spec.max_size);
  mix ^= splitmix64(state);
  state ^= double_bits(spec.cancel);
  mix ^= splitmix64(state);
  Rng root(mix);
  // Two independent child streams: `structure` decides what happens (all
  // integer draws — bit-identical everywhere), `timing` decides when (libm
  // transcendentals; excluded from the byte-identity contract).
  Rng structure = root.split(1);
  Rng timing = root.split(2);

  const std::int64_t cancel_ppm =
      std::llround(spec.cancel * 1e6);  // integer threshold, no float compare

  std::vector<ChurnEvent> events;
  events.reserve(static_cast<std::size_t>(spec.events) +
                 static_cast<std::size_t>(spec.events) /
                     std::max(1, spec.snap_every) +
                 2);
  std::vector<std::int64_t> alive;  // submission indices not yet cancelled
  std::int64_t submitted = 0;
  double at = 0.0;

  for (int i = 0; i < spec.events; ++i) {
    // Timing first: the gap distribution depends only on the event index
    // (on/off phases are event-count based), never on the structure draws.
    double gap_rate = spec.rate;
    if (spec.kind == ArrivalKind::kOnOff) {
      const bool on = (i / std::max(1, spec.burst_len)) % 2 == 0;
      gap_rate = on ? spec.rate * spec.burst : spec.rate / spec.burst;
    }
    at += -std::log1p(-timing.uniform01()) / gap_rate;

    ChurnEvent event;
    event.at_s = at;
    const bool want_cancel =
        structure.uniform(0, 999999) < cancel_ppm && !alive.empty();
    if (want_cancel) {
      event.kind = ChurnEvent::Kind::kCancel;
      const auto pick = static_cast<std::size_t>(
          structure.uniform(0, static_cast<std::int64_t>(alive.size()) - 1));
      event.target = alive[pick];
      alive[pick] = alive.back();  // O(1) swap-erase; order is irrelevant
      alive.pop_back();
    } else {
      event.kind = ChurnEvent::Kind::kSubmit;
      event.cls = static_cast<int>(structure.uniform(0, spec.classes - 1));
      event.size = structure.uniform(1, spec.max_size);
      event.target = submitted;
      alive.push_back(submitted++);
    }
    events.push_back(event);

    if (spec.snap_every > 0 && (i + 1) % spec.snap_every == 0) {
      ChurnEvent snap;
      snap.kind = ChurnEvent::Kind::kSnapshot;
      snap.at_s = at;
      events.push_back(snap);
    }
  }
  // Always end on a snapshot so every replay observes the final schedule
  // (the byte-identity smoke diffs these lines across shard counts).
  if (events.empty() || events.back().kind != ChurnEvent::Kind::kSnapshot) {
    ChurnEvent snap;
    snap.kind = ChurnEvent::Kind::kSnapshot;
    snap.at_s = at;
    events.push_back(snap);
  }
  return events;
}

}  // namespace msrs
