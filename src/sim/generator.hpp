/// \file
/// The generator front door: spec -> instance, sweep -> corpus.
///
/// `generate(spec)` is a pure function — the RNG stream is derived from the
/// spec alone (family, n, m, seed, and the Dist overrides), so a spec
/// string is a complete reproducible name for its instance and a sweep
/// string for its corpus. Corpora stream through the `core/instance_io`
/// text format (write_corpus / read_corpus), which is what
/// `msrs_engine_cli generate | solve` pipes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "sim/spec.hpp"

namespace msrs {

/// Generates the instance named by `spec`. Deterministic in the spec;
/// always well-formed (`instance.check()` is empty).
Instance generate(const GeneratorSpec& spec);

/// One corpus element: the spec that produced it plus the instance.
struct CorpusEntry {
  GeneratorSpec spec;  ///< full provenance (round-trips via spec.str())
  Instance instance;   ///< the generated instance
};

/// Generates `seeds` instances of `base` with seeds 1..seeds (the base
/// spec's own seed is ignored). The shared corpus shape behind
/// bench_common's quality rows and the CLI's seed batches.
std::vector<CorpusEntry> seed_corpus(const GeneratorSpec& base, int seeds);

/// Expands the sweep grid and generates every cell, family-major.
std::vector<CorpusEntry> make_corpus(const SweepSpec& sweep);

/// Writes the corpus instances as concatenated instance_io documents; the
/// stream is readable back with `read_corpus` (core/instance_io.hpp).
void write_corpus(std::ostream& out, const std::vector<CorpusEntry>& corpus);

}  // namespace msrs
