/// \file
/// Back-compatible front of the workload generator subsystem.
///
/// The original fixed-family API (`generate(family, jobs, machines, seed)`)
/// now delegates to the composable spec-based generator (sim/spec.hpp,
/// sim/generator.hpp); default-dist draws are byte-identical to the
/// historical families, so corpora referenced by (family, n, m, seed) stay
/// reproducible. New code should prefer GeneratorSpec / SweepSpec.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "sim/generator.hpp"  // IWYU pragma: export
#include "sim/spec.hpp"       // IWYU pragma: export

namespace msrs {

/// Legacy parameter pack; superseded by GeneratorSpec (which adds Dist
/// overrides) but kept because (family, jobs, machines, seed) names every
/// corpus in EXPERIMENTS.md.
struct WorkloadParams {
  Family family = Family::kUniform;  ///< workload family
  int jobs = 100;       ///< target job count (some families deviate slightly)
  int machines = 8;     ///< machine count
  Time max_size = 1000; ///< job size scale
  std::uint64_t seed = 1;  ///< RNG seed
};

/// Generates an instance; always well-formed (instance.check() is empty).
Instance generate(const WorkloadParams& params);

/// Convenience: generate by family with default sizing.
Instance generate(Family family, int jobs, int machines, std::uint64_t seed);

}  // namespace msrs
