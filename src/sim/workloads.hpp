// Synthetic workload families for experiments and property tests.
//
// The paper evaluates nothing empirically (it is an algorithms paper); these
// families are chosen to cover the structural regimes its case analyses
// distinguish (huge/big jobs, heavy classes, many small classes) plus the
// two application scenarios cited in its introduction: Earth-observation
// satellite downlink scheduling (Hebrard et al. [17]) and semiconductor
// photolithography (Strusevich [29] / Janssen et al. [23,24]).
//
// All generators are deterministic in (params, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"

namespace msrs {

enum class Family {
  kUniform,          // class sizes ~ U, job sizes ~ U
  kBimodal,          // mix of tiny and large jobs
  kHugeHeavy,        // many classes with one near-T huge job
  kManySmallClasses, // lots of light classes (stress for greedy phases)
  kFewFatClasses,    // few classes with load near the class bound
  kSatellite,        // downlink windows: channels = resources
  kPhotolith,        // wafer lots: reticles = resources
  kAdversarialLpt,   // near-worst-case for merge-LPT baseline
  kUnit,             // unit jobs (cograph clique world, Section 6 remark)
};

constexpr const char* family_name(Family family) {
  switch (family) {
    case Family::kUniform: return "uniform";
    case Family::kBimodal: return "bimodal";
    case Family::kHugeHeavy: return "huge_heavy";
    case Family::kManySmallClasses: return "many_small";
    case Family::kFewFatClasses: return "few_fat";
    case Family::kSatellite: return "satellite";
    case Family::kPhotolith: return "photolith";
    case Family::kAdversarialLpt: return "adv_lpt";
    case Family::kUnit: return "unit";
  }
  return "?";
}

// All nine families, for sweep loops.
inline constexpr Family kAllFamilies[] = {
    Family::kUniform,          Family::kBimodal,
    Family::kHugeHeavy,        Family::kManySmallClasses,
    Family::kFewFatClasses,    Family::kSatellite,
    Family::kPhotolith,        Family::kAdversarialLpt,
    Family::kUnit,
};

struct WorkloadParams {
  Family family = Family::kUniform;
  int jobs = 100;       // target job count (some families deviate slightly)
  int machines = 8;
  Time max_size = 1000; // job size scale
  std::uint64_t seed = 1;
};

// Generates an instance; always well-formed (instance.check() is empty).
Instance generate(const WorkloadParams& params);

// Convenience: generate by family with default sizing.
Instance generate(Family family, int jobs, int machines, std::uint64_t seed);

}  // namespace msrs
