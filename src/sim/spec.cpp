#include "sim/spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/rng.hpp"

namespace msrs {
namespace {

// Splits on `sep`, but never inside parentheses (dist arguments contain
// commas: `classes=uniform(1,8)`).
std::vector<std::string_view> split_outside_parens(std::string_view text,
                                                   char sep) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] == '(') ++depth;
    if (i < text.size() && text[i] == ')') --depth;
    if (i == text.size() || (text[i] == sep && depth == 0)) {
      if (i > begin) out.push_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

bool parse_int(std::string_view text, std::int64_t* out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool parse_double(std::string_view text, double* out) {
  // std::from_chars for double is not universally available; strtod on a
  // bounded copy is portable and locale headaches are avoided by rejecting
  // anything but plain digits, '.', '-', '+'.
  if (text.empty() ||
      text.find_first_not_of("0123456789.+-eE") != std::string_view::npos)
    return false;
  const std::string copy(text);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

std::optional<Dist> parse_dist(std::string_view text, std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<Dist> {
    if (error) *error = message;
    return std::nullopt;
  };
  const std::size_t open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')')
    return fail("distribution '" + std::string(text) +
                "' must look like name(args), e.g. zipf(1.2)");
  const std::string_view name = text.substr(0, open);
  const std::string_view inner =
      text.substr(open + 1, text.size() - open - 2);
  const std::vector<std::string_view> args =
      split_outside_parens(inner, ',');
  Dist dist;
  if (name == "uniform") {
    dist.kind = Dist::Kind::kUniform;
    if (args.size() != 2 || !parse_int(args[0], &dist.lo) ||
        !parse_int(args[1], &dist.hi))
      return fail("uniform needs two integer arguments: uniform(lo,hi)");
    if (dist.lo > dist.hi)
      return fail("uniform(lo,hi) needs lo <= hi, got " + std::string(inner));
  } else if (name == "zipf") {
    dist.kind = Dist::Kind::kZipf;
    if (args.size() != 1 || !parse_double(args[0], &dist.s))
      return fail("zipf needs one numeric argument: zipf(s)");
    if (!(dist.s > 0.0) || !std::isfinite(dist.s))
      return fail("zipf exponent must be a finite number > 0");
  } else if (name == "const") {
    dist.kind = Dist::Kind::kConst;
    if (args.size() != 1 || !parse_int(args[0], &dist.value))
      return fail("const needs one integer argument: const(v)");
    if (dist.value < 1) return fail("const value must be >= 1");
  } else {
    return fail("unknown distribution '" + std::string(name) +
                "' (known: uniform, zipf, const)");
  }
  return dist;
}

// Parser-enforced sizing caps. Jobs/machines must fit the int-based
// Instance model; max_size is capped so scaled loads (size * machines *
// small schedule scales) stay well under the documented 2^62 limit of
// core/types.hpp.
constexpr std::int64_t kMaxJobs = std::numeric_limits<std::int32_t>::max();
constexpr std::int64_t kMaxMachines = 1 << 22;       // ~4.2M machines
constexpr std::int64_t kMaxSize = 1LL << 40;         // ~1.1e12 time units

std::string known_families() {
  std::string out;
  for (const Family family : kAllFamilies) {
    if (!out.empty()) out += ", ";
    out += family_name(family);
  }
  return out;
}

}  // namespace

std::optional<Family> parse_family(std::string_view name) {
  for (const Family family : kAllFamilies)
    if (name == family_name(family)) return family;
  // Aliases for the long names, matching the ISSUE/README shorthand.
  if (name == "huge") return Family::kHugeHeavy;
  if (name == "lemma9" || name == "tight") return Family::kLemma9Tight;
  if (name == "dominant") return Family::kSingleDominant;
  return std::nullopt;
}

std::int64_t Dist::sample(Rng& rng, std::int64_t lo_default,
                          std::int64_t hi_default, std::int64_t hi_cap) const {
  const auto clamp = [&](std::int64_t v) {
    return std::clamp<std::int64_t>(v, 1, std::max<std::int64_t>(1, hi_cap));
  };
  switch (kind) {
    case Kind::kDefault:
      return clamp(rng.uniform(lo_default, std::max(lo_default, hi_default)));
    case Kind::kUniform:
      return clamp(rng.uniform(lo, hi));
    case Kind::kConst:
      return clamp(value);
    case Kind::kZipf: {
      // P(r) proportional to r^-s on ranks [lo_default, hi_default] (the
      // family's natural support, so zipf only reshapes, never rescales).
      // Sampled by rejection-inversion (Hörmann & Derflinger 1996): invert
      // the integral envelope of x^-s, accept against the true pmf — exact
      // and O(1) expected per draw, independent of the support size.
      const std::int64_t first = std::max<std::int64_t>(1, lo_default);
      const std::int64_t last = std::max(first, hi_default);
      if (first == last) return clamp(first);
      const auto h = [this](double x) {
        return s == 1.0 ? std::log(x)
                        : (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
      };
      const auto h_inverse = [this](double y) {
        return s == 1.0 ? std::exp(y)
                        : std::pow(1.0 + (1.0 - s) * y, 1.0 / (1.0 - s));
      };
      const double lo_integral = h(static_cast<double>(first) - 0.5);
      const double hi_integral = h(static_cast<double>(last) + 0.5);
      for (;;) {
        const double u =
            lo_integral + rng.uniform01() * (hi_integral - lo_integral);
        const std::int64_t r = std::clamp<std::int64_t>(
            std::llround(h_inverse(u)), first, last);
        // Accept when u lands in the top r^-s slice of r's envelope bucket
        // [h(r-1/2), h(r+1/2)] — the bucket is at least that wide because
        // x^-s is convex, so acceptance reproduces the pmf exactly.
        if (u >= h(static_cast<double>(r) + 0.5) -
                     std::pow(static_cast<double>(r), -s))
          return clamp(r);
      }
    }
  }
  return 1;
}

std::string Dist::str() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kDefault: break;
    case Kind::kUniform: out << "uniform(" << lo << ',' << hi << ')'; break;
    case Kind::kConst: out << "const(" << value << ')'; break;
    case Kind::kZipf: {
      // Shortest representation that round-trips through strtod, so
      // parse_spec(str()) reproduces the exact double (Dist::hash() mixes
      // the bit pattern into the RNG seed).
      char buffer[32];
      const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, s);
      out << "zipf("
          << std::string_view(buffer, static_cast<std::size_t>(end - buffer))
          << ')';
      break;
    }
  }
  return out.str();
}

std::uint64_t Dist::hash() const {
  std::uint64_t state = static_cast<std::uint64_t>(kind);
  std::uint64_t h = splitmix64(state);
  state ^= static_cast<std::uint64_t>(lo) * 0x9e3779b97f4a7c15ULL;
  h ^= splitmix64(state);
  state ^= static_cast<std::uint64_t>(hi) * 0xbf58476d1ce4e5b9ULL;
  h ^= splitmix64(state);
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(s));
  __builtin_memcpy(&bits, &s, sizeof(bits));
  state ^= bits;
  h ^= splitmix64(state);
  state ^= static_cast<std::uint64_t>(value);
  h ^= splitmix64(state);
  return h;
}

std::string GeneratorSpec::str() const {
  std::ostringstream out;
  out << family_name(family) << ":n=" << jobs << ",m=" << machines
      << ",max=" << max_size << ",seed=" << seed;
  if (class_size.set()) out << ",classes=" << class_size.str();
  if (job_size.set()) out << ",sizes=" << job_size.str();
  return out.str();
}

std::optional<GeneratorSpec> parse_spec(std::string_view text,
                                        std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<GeneratorSpec> {
    if (error) *error = message;
    return std::nullopt;
  };
  if (text.empty()) return fail("empty spec (expected family[:key=value,...])");

  GeneratorSpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view family_part = text.substr(0, colon);
  const auto family = parse_family(family_part);
  if (!family)
    return fail("unknown family '" + std::string(family_part) +
                "' (known: " + known_families() + ")");
  spec.family = *family;
  if (colon == std::string_view::npos) return spec;

  for (const std::string_view clause :
       split_outside_parens(text.substr(colon + 1), ',')) {
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos)
      return fail("bad clause '" + std::string(clause) +
                  "' (expected key=value)");
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    std::int64_t number = 0;
    if (key == "n") {
      if (!parse_int(value, &number) || number < 0 || number > kMaxJobs)
        return fail("n must be an integer in [0, " + std::to_string(kMaxJobs) +
                    "], got '" + std::string(value) + "'");
      spec.jobs = static_cast<int>(number);
    } else if (key == "m") {
      if (!parse_int(value, &number) || number < 1 || number > kMaxMachines)
        return fail("m must be an integer in [1, " +
                    std::to_string(kMaxMachines) + "], got '" +
                    std::string(value) + "'");
      spec.machines = static_cast<int>(number);
    } else if (key == "max") {
      if (!parse_int(value, &number) || number < 1 || number > kMaxSize)
        return fail("max must be an integer in [1, " +
                    std::to_string(kMaxSize) + "], got '" +
                    std::string(value) + "'");
      spec.max_size = number;
    } else if (key == "seed") {
      if (!parse_int(value, &number) || number < 0)
        return fail("seed must be an integer >= 0, got '" +
                    std::string(value) + "'");
      spec.seed = static_cast<std::uint64_t>(number);
    } else if (key == "classes" || key == "sizes") {
      const auto dist = parse_dist(value, error);
      if (!dist) return std::nullopt;
      (key == "classes" ? spec.class_size : spec.job_size) = *dist;
    } else {
      return fail("unknown key '" + std::string(key) +
                  "' (known: n, m, max, seed, classes, sizes)");
    }
  }
  return spec;
}

std::string SweepSpec::str() const {
  std::ostringstream out;
  out << "families=";
  for (std::size_t i = 0; i < families.size(); ++i)
    out << (i ? "," : "") << family_name(families[i]);
  out << ";n=";
  for (std::size_t i = 0; i < jobs.size(); ++i)
    out << (i ? "," : "") << jobs[i];
  out << ";m=";
  for (std::size_t i = 0; i < machines.size(); ++i)
    out << (i ? "," : "") << machines[i];
  out << ";max=";
  for (std::size_t i = 0; i < max_sizes.size(); ++i)
    out << (i ? "," : "") << max_sizes[i];
  out << ";seeds=" << seeds;
  if (class_size.set()) out << ";classes=" << class_size.str();
  if (job_size.set()) out << ";sizes=" << job_size.str();
  return out.str();
}

std::size_t SweepSpec::size() const {
  return families.size() * jobs.size() * machines.size() * max_sizes.size() *
         static_cast<std::size_t>(std::max(0, seeds));
}

std::optional<SweepSpec> parse_sweep(std::string_view text,
                                     std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<SweepSpec> {
    if (error) *error = message;
    return std::nullopt;
  };
  if (text.empty())
    return fail("empty sweep (expected families=...;n=...;m=...;seeds=K)");

  SweepSpec sweep;
  for (const std::string_view clause : split_outside_parens(text, ';')) {
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos)
      return fail("bad clause '" + std::string(clause) +
                  "' (expected key=list)");
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    const std::vector<std::string_view> items =
        split_outside_parens(value, ',');
    if (items.empty())
      return fail("empty list for '" + std::string(key) + "'");
    if (key == "families" || key == "family") {
      sweep.families.clear();
      for (const std::string_view item : items) {
        if (item == "all") {
          sweep.families.assign(std::begin(kAllFamilies),
                                std::end(kAllFamilies));
          continue;
        }
        const auto family = parse_family(item);
        if (!family)
          return fail("unknown family '" + std::string(item) +
                      "' (known: all, " + known_families() + ")");
        sweep.families.push_back(*family);
      }
    } else if (key == "n" || key == "m" || key == "max") {
      const std::int64_t cap = key == "n"    ? kMaxJobs
                               : key == "m"  ? kMaxMachines
                                             : kMaxSize;
      std::vector<std::int64_t> numbers;
      for (const std::string_view item : items) {
        std::int64_t number = 0;
        if (!parse_int(item, &number) || number < (key == "n" ? 0 : 1) ||
            number > cap)
          return fail(std::string(key) + " list entry '" + std::string(item) +
                      "' is not a valid integer (max " + std::to_string(cap) +
                      ")");
        numbers.push_back(number);
      }
      if (key == "n") {
        sweep.jobs.assign(numbers.begin(), numbers.end());
      } else if (key == "m") {
        sweep.machines.assign(numbers.begin(), numbers.end());
      } else {
        sweep.max_sizes.assign(numbers.begin(), numbers.end());
      }
    } else if (key == "seeds") {
      std::int64_t number = 0;
      if (items.size() != 1 || !parse_int(items[0], &number) || number < 1)
        return fail("seeds must be a single integer >= 1");
      sweep.seeds = static_cast<int>(number);
    } else if (key == "classes" || key == "sizes") {
      if (items.size() != 1)
        return fail(std::string(key) + " takes a single distribution");
      const auto dist = parse_dist(items[0], error);
      if (!dist) return std::nullopt;
      (key == "classes" ? sweep.class_size : sweep.job_size) = *dist;
    } else {
      return fail("unknown key '" + std::string(key) +
                  "' (known: families, n, m, max, seeds, classes, sizes)");
    }
  }
  return sweep;
}

std::vector<GeneratorSpec> expand(const SweepSpec& sweep) {
  std::vector<GeneratorSpec> specs;
  specs.reserve(sweep.size());
  for (const Family family : sweep.families)
    for (const int n : sweep.jobs)
      for (const int m : sweep.machines)
        for (const Time max_size : sweep.max_sizes)
          for (int seed = 1; seed <= sweep.seeds; ++seed) {
            GeneratorSpec spec;
            spec.family = family;
            spec.jobs = n;
            spec.machines = m;
            spec.max_size = max_size;
            spec.seed = static_cast<std::uint64_t>(seed);
            spec.class_size = sweep.class_size;
            spec.job_size = sweep.job_size;
            specs.push_back(spec);
          }
  return specs;
}

}  // namespace msrs
