#include "sim/families.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/rng.hpp"

namespace msrs {
namespace {

// One jobs-per-class draw with `left` jobs remaining. The default path is
// exactly the historical `random_class_sizes` step so that specs without a
// `classes=` override reproduce the original corpora byte for byte.
int class_chunk(Rng& rng, const Dist& dist, int lo, int hi, int left) {
  if (!dist.set()) {
    const int take = static_cast<int>(
        rng.uniform(lo, std::min<std::int64_t>(hi, left)));
    return std::max(1, take);
  }
  return static_cast<int>(dist.sample(rng, lo, hi, left));
}

// One job-size draw on the family's default support [lo, hi]; a `sizes=`
// override replaces the draw (explicit uniform/const bounds win over the
// default support, subject only to sizes being >= 1).
Time job_draw(Rng& rng, const Dist& dist, Time lo, Time hi) {
  if (!dist.set()) return rng.uniform(lo, hi);
  return dist.sample(rng, lo, hi, std::numeric_limits<std::int64_t>::max());
}

// Splits `total` jobs into classes of dist-driven size in [lo, hi].
std::vector<int> class_sizes(Rng& rng, const Dist& dist, int total, int lo,
                             int hi) {
  std::vector<int> sizes;
  int left = total;
  while (left > 0) {
    sizes.push_back(class_chunk(rng, dist, lo, hi, left));
    left -= sizes.back();
  }
  return sizes;
}

Instance gen_uniform(const GeneratorSpec& spec, Rng& rng) {
  Instance instance;
  instance.set_machines(spec.machines);
  for (int count : class_sizes(rng, spec.class_size, spec.jobs, 1, 8)) {
    const ClassId c = instance.add_class();
    for (int i = 0; i < count; ++i)
      instance.add_job(c, job_draw(rng, spec.job_size, 1, spec.max_size));
  }
  return instance;
}

Instance gen_bimodal(const GeneratorSpec& spec, Rng& rng) {
  Instance instance;
  instance.set_machines(spec.machines);
  for (int count : class_sizes(rng, spec.class_size, spec.jobs, 1, 6)) {
    const ClassId c = instance.add_class();
    for (int i = 0; i < count; ++i) {
      const bool large = rng.bernoulli(0.25);
      const Time p =
          large ? rng.uniform(spec.max_size / 2, spec.max_size)
                : rng.uniform(1, std::max<Time>(spec.max_size / 20, 1));
      instance.add_job(c, std::max<Time>(1, p));
    }
  }
  return instance;
}

Instance gen_huge_heavy(const GeneratorSpec& spec, Rng& rng) {
  // Roughly one class per machine containing a huge job (> 3/4 of the
  // eventual lower bound T), padded with small filler classes: exercises
  // Algorithm_3/2's M_H machinery. Filler sizes are budgeted so the area
  // bound p(J)/m stays close to the huge-job size, keeping those jobs huge
  // relative to T = max(area, class bound, pair bound).
  Instance instance;
  instance.set_machines(spec.machines);
  const Time big = spec.max_size;
  int placed = 0;
  const int huge_classes = std::max(1, spec.machines - 1);
  for (int i = 0; i < huge_classes && placed < spec.jobs; ++i) {
    const ClassId c = instance.add_class();
    instance.add_job(c, rng.uniform((9 * big) / 10, big));
    ++placed;
    // occasionally one tiny companion in the same class
    if (rng.bernoulli(0.3) && placed < spec.jobs) {
      instance.add_job(c, rng.uniform(1, big / 20 + 1));
      ++placed;
    }
  }
  // Keep total filler mass under ~ (m/4) * big so the area bound stays near
  // `big` and the huge jobs remain > (3/4)T.
  const Time filler_cap = std::max<Time>(
      2, (big * spec.machines) / (4 * std::max(1, spec.jobs)));
  while (placed < spec.jobs) {
    const ClassId c = instance.add_class();
    const int count =
        class_chunk(rng, spec.class_size, 1,
                    static_cast<int>(std::min<std::int64_t>(
                        4, spec.jobs - placed)),
                    spec.jobs - placed);
    for (int k = 0; k < count && placed < spec.jobs; ++k, ++placed)
      instance.add_job(c, rng.uniform(1, filler_cap));
  }
  return instance;
}

Instance gen_many_small_classes(const GeneratorSpec& spec, Rng& rng) {
  Instance instance;
  instance.set_machines(spec.machines);
  for (int placed = 0; placed < spec.jobs;) {
    const ClassId c = instance.add_class();
    const int count =
        class_chunk(rng, spec.class_size, 1,
                    static_cast<int>(std::min<std::int64_t>(
                        3, spec.jobs - placed)),
                    spec.jobs - placed);
    for (int k = 0; k < count; ++k, ++placed)
      instance.add_job(
          c, job_draw(rng, spec.job_size, 1,
                      std::max<Time>(spec.max_size / 10, 2)));
  }
  return instance;
}

Instance gen_few_fat_classes(const GeneratorSpec& spec, Rng& rng) {
  // About m+1 classes, each with load close to the maximum class load:
  // the class bound dominates and the algorithms must interleave classes.
  Instance instance;
  instance.set_machines(spec.machines);
  const int classes =
      spec.machines + 1 + static_cast<int>(rng.uniform(0, 2));
  const int per_class = std::max(1, spec.jobs / classes);
  for (int c = 0; c < classes; ++c) {
    const ClassId cls = instance.add_class();
    for (int k = 0; k < per_class; ++k)
      instance.add_job(cls, job_draw(rng, spec.job_size, spec.max_size / 2,
                                     spec.max_size));
  }
  return instance;
}

Instance gen_satellite(const GeneratorSpec& spec, Rng& rng) {
  // Earth-observation downlink planning (Hebrard et al.): each image
  // acquisition (job) must be downlinked through one ground-station channel
  // (resource); several reception antennas (machines) run in parallel.
  // Downloads of one channel cannot overlap. Typical shape: a moderate
  // number of channels, each with a burst of transfers whose sizes follow
  // the image sizes (lognormal-ish: mostly small, some large mosaics).
  Instance instance;
  instance.set_machines(spec.machines);
  const int channels = std::max(spec.machines + 1, spec.jobs / 6);
  int placed = 0;
  for (int ch = 0; ch < channels || placed < spec.jobs; ++ch) {
    const ClassId c = instance.add_class();
    const int burst = class_chunk(rng, spec.class_size, 1, 6,
                                  std::numeric_limits<int>::max());
    for (int k = 0; k < burst; ++k, ++placed) {
      // 80% small telemetry dumps, 20% large mosaics.
      const Time p = rng.bernoulli(0.8)
                         ? rng.uniform(1, spec.max_size / 8 + 1)
                         : rng.uniform(spec.max_size / 3, spec.max_size);
      instance.add_job(c, p);
    }
    if (placed >= spec.jobs && ch >= channels - 1) break;
  }
  return instance;
}

Instance gen_photolith(const GeneratorSpec& spec, Rng& rng) {
  // Photolithography bay (Janssen et al.): wafer lots (jobs) need a stepper
  // (machine) plus the lot's reticle (resource); a reticle serves one
  // stepper at a time. Lots using the same reticle have similar exposure
  // times; a few hot reticles carry many lots.
  Instance instance;
  instance.set_machines(spec.machines);
  int placed = 0;
  while (placed < spec.jobs) {
    const ClassId c = instance.add_class();
    const bool hot = rng.bernoulli(0.2);
    const int lots =
        static_cast<int>(hot ? rng.uniform(4, 10) : rng.uniform(1, 3));
    const Time base = rng.uniform(spec.max_size / 4, spec.max_size);
    for (int k = 0; k < lots && placed < spec.jobs; ++k, ++placed) {
      const Time jitter = rng.uniform(-base / 10, base / 10);
      instance.add_job(c, std::max<Time>(1, base + jitter));
    }
  }
  return instance;
}

Instance gen_adversarial_lpt(const GeneratorSpec& spec, Rng& rng) {
  // Classic LPT-adversarial shape lifted to classes: 2m+1 classes of loads
  // {2m-1, 2m-1, ..., m, m, m} (scaled), so merge-LPT ends near 4/3 while
  // interleaving achieves close to 1.
  Instance instance;
  instance.set_machines(spec.machines);
  const int m = spec.machines;
  const Time unit = std::max<Time>(1, spec.max_size / (2 * m + 1));
  for (int k = m; k < 2 * m; ++k) {
    for (int twice = 0; twice < 2; ++twice) {
      const ClassId c = instance.add_class();
      // split the class load into a couple of jobs
      const Time load = unit * (2 * m - 1 - (k - m));
      const Time first = std::max<Time>(1, load / 2 + rng.uniform(0, unit));
      instance.add_job(c, std::min(first, load - 1 > 0 ? load - 1 : first));
      if (load - std::min(first, load - 1) > 0)
        instance.add_job(c, load - std::min(first, load - 1));
    }
  }
  const ClassId c = instance.add_class();
  instance.add_job(c, unit * m);
  return instance;
}

Instance gen_unit(const GeneratorSpec& spec, Rng& rng) {
  Instance instance;
  instance.set_machines(spec.machines);
  for (int count : class_sizes(rng, spec.class_size, spec.jobs, 1, 10)) {
    const ClassId c = instance.add_class();
    for (int i = 0; i < count; ++i) instance.add_job(c, 1);
  }
  return instance;
}

Instance gen_lemma9_tight(const GeneratorSpec& spec, Rng& rng) {
  // Near-tight Lemma-9 instances: at the intended bound T the Lemma-8
  // census |C_H| + max{|C_B|, ceil((|C_B|+|C_heavy|)/2)} uses all m
  // machines, so three_halves_bound sits at (or just above) T while the
  // plain Note-1 bounds sit below it — the regime where Algorithm_3/2's
  // census machinery, not the area bound, decides the schedule.
  Instance instance;
  instance.set_machines(spec.machines);
  if (spec.jobs == 0) return instance;
  const int m = spec.machines;
  const Time T = std::max<Time>(spec.max_size, 16);
  int placed = 0;
  // |C_H| huge classes: one job each in ((3/4)T, (17/20)T].
  const int huge_count = std::max(1, (m + 2) / 3);
  for (int i = 0; i < huge_count && placed < spec.jobs; ++i, ++placed) {
    const ClassId c = instance.add_class();
    instance.add_job(c, rng.uniform((3 * T) / 4 + 1, (17 * T) / 20));
  }
  // |C_B| big classes: one job each in (T/2, (3/4)T].
  const int big_count = std::max(0, m - huge_count);
  for (int i = 0; i < big_count && placed < spec.jobs; ++i, ++placed) {
    const ClassId c = instance.add_class();
    instance.add_job(c, rng.uniform(T / 2 + 1, (3 * T) / 4));
  }
  // Two heavy classes (p(c) >= (3/4)T from small jobs) feed the ceil term.
  for (int h = 0; h < 2 && placed < spec.jobs; ++h) {
    const ClassId c = instance.add_class();
    Time load = 0;
    while (load < (3 * T) / 4 && placed < spec.jobs) {
      const Time p = rng.uniform(T / 10, T / 6);
      instance.add_job(c, p);
      load += p;
      ++placed;
    }
  }
  // Small filler, budgeted so the area bound stays at or below T.
  while (placed < spec.jobs) {
    const Time budget =
        std::max<Time>(1, (checked_mul(T, m) - instance.total_load()) /
                              std::max(1, spec.jobs - placed) / 2);
    const ClassId c = instance.add_class();
    const int count = class_chunk(rng, spec.class_size, 1, 3,
                                  spec.jobs - placed);
    for (int k = 0; k < count && placed < spec.jobs; ++k, ++placed)
      instance.add_job(c, rng.uniform(1, budget));
  }
  return instance;
}

Instance gen_single_dominant(const GeneratorSpec& spec, Rng& rng) {
  // One class carries roughly half the total load, split into many jobs:
  // max_c p(c) dominates T, most machines idle unless the schedulers
  // interleave the dominant class tightly with everything else.
  Instance instance;
  instance.set_machines(spec.machines);
  if (spec.jobs == 0) return instance;
  const Time unit = std::max<Time>(spec.max_size, 4);
  const int dominant_jobs = std::max(1, std::min(spec.jobs, spec.jobs / 3 + 1));
  const ClassId dominant = instance.add_class();
  for (int k = 0; k < dominant_jobs; ++k)
    instance.add_job(dominant, rng.uniform(unit / 4, unit / 2));
  int placed = dominant_jobs;
  // Filler mass capped at ~ (3/4)(m-1) * p(dominant), so the class bound
  // still dominates the area bound.
  const Time budget = std::max<Time>(
      1, (3 * checked_mul(instance.class_load(dominant),
                          std::max(1, spec.machines - 1))) /
             4 / std::max(1, spec.jobs - placed));
  while (placed < spec.jobs) {
    const ClassId c = instance.add_class();
    const int count = class_chunk(rng, spec.class_size, 1, 2,
                                  spec.jobs - placed);
    for (int k = 0; k < count && placed < spec.jobs; ++k, ++placed)
      instance.add_job(c, job_draw(rng, spec.job_size, 1, budget));
  }
  return instance;
}

Instance gen_boundary(const GeneratorSpec& spec, Rng& rng) {
  // Regime-boundary mix: ~40% of jobs sit just around (3/4)T' and ~30%
  // around T'/2 for the nominal scale T' = max_size, with small filler for
  // the rest. Because the realized Lemma-9 bound floats with the mix, jobs
  // land on both sides of the huge/big thresholds across seeds — the
  // transition zone between Algorithm_no_huge's regime and Algorithm_3/2's
  // census handling.
  Instance instance;
  instance.set_machines(spec.machines);
  const Time T = std::max<Time>(spec.max_size, 16);
  int placed = 0;
  while (placed < spec.jobs) {
    const std::int64_t roll = rng.uniform(0, 9);
    const ClassId c = instance.add_class();
    if (roll < 4) {  // straddle (3/4)T
      instance.add_job(c, rng.uniform((7 * T) / 10, (4 * T) / 5));
      ++placed;
    } else if (roll < 7) {  // straddle T/2, one or two per class
      const int count = class_chunk(rng, spec.class_size, 1, 2,
                                    spec.jobs - placed);
      for (int k = 0; k < count && placed < spec.jobs; ++k, ++placed)
        instance.add_job(c, rng.uniform((9 * T) / 20, (11 * T) / 20));
    } else {  // small filler
      const int count = class_chunk(rng, spec.class_size, 1, 4,
                                    spec.jobs - placed);
      for (int k = 0; k < count && placed < spec.jobs; ++k, ++placed)
        instance.add_job(c, rng.uniform(1, std::max<Time>(T / 8, 2)));
    }
  }
  return instance;
}

}  // namespace

Instance build_family(const GeneratorSpec& spec, Rng& rng) {
  Instance instance;
  switch (spec.family) {
    case Family::kUniform: instance = gen_uniform(spec, rng); break;
    case Family::kBimodal: instance = gen_bimodal(spec, rng); break;
    case Family::kHugeHeavy: instance = gen_huge_heavy(spec, rng); break;
    case Family::kManySmallClasses:
      instance = gen_many_small_classes(spec, rng);
      break;
    case Family::kFewFatClasses:
      instance = gen_few_fat_classes(spec, rng);
      break;
    case Family::kSatellite: instance = gen_satellite(spec, rng); break;
    case Family::kPhotolith: instance = gen_photolith(spec, rng); break;
    case Family::kAdversarialLpt:
      instance = gen_adversarial_lpt(spec, rng);
      break;
    case Family::kUnit: instance = gen_unit(spec, rng); break;
    case Family::kLemma9Tight:
      instance = gen_lemma9_tight(spec, rng);
      break;
    case Family::kSingleDominant:
      instance = gen_single_dominant(spec, rng);
      break;
    case Family::kBoundary: instance = gen_boundary(spec, rng); break;
  }
  assert(instance.check().empty());
  return instance;
}

}  // namespace msrs
