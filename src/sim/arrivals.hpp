/// \file
/// Arrival processes: deterministic churn traces for the online sessions.
///
/// A ChurnSpec names one submit/cancel/snapshot event stream — an arrival
/// process (Poisson or bursty on/off) over a pool of resource classes —
/// and, like GeneratorSpec (sim/spec.hpp), round-trips through a compact
/// string such as `poisson:events=500,classes=8,m=4,seed=7`. The trace is a
/// pure function of the spec: `generate_churn(spec)` derives every draw
/// from a seed mixed out of the spec's fields (util/rng.hpp), so a spec
/// string is a complete, shareable name for a churn workload — the load
/// driver replays it over stdio/socket/TCP (`drive --churn`), CI replays a
/// committed spec for the snapshot byte-identity smoke, and the E15 bench
/// replays it against engine/session.hpp directly.
///
/// Determinism split: the event *structure* (kinds, classes, sizes, cancel
/// targets) is produced exclusively from integer draws, so it is identical
/// on every platform; event *timestamps* (`at_s`, used only for optional
/// replay pacing) come from an independent child stream and never feed back
/// into the structure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace msrs {

/// The arrival-process kinds. New values must be appended (the enum value
/// is mixed into the trace seed, so reordering would change every trace).
enum class ArrivalKind {
  kPoisson,  ///< memoryless arrivals at a constant mean rate
  kOnOff,    ///< bursty: alternating on-phases (rate x burst) and off-phases
};

/// Canonical lowercase name of an arrival kind ("poisson"/"onoff").
constexpr const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kOnOff: return "onoff";
  }
  return "?";
}

/// One churn workload: arrival process x sizing x mutation mix x seed.
///
/// The compact string form is `kind:key=value,...` with keys `events`,
/// `classes`, `m` (machines), `max` (job size scale), `cancel` (cancel
/// fraction), `snap` (snapshot every k churn events; 0 = final snapshot
/// only), `rate` (mean arrivals/s, timing only), `burst`/`blen` (on/off
/// rate multiplier and events per phase) and `seed`. `str()` renders the
/// canonical form, which `parse_churn` round-trips exactly.
struct ChurnSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;  ///< arrival process
  int events = 200;       ///< churn (submit/cancel) events in the trace
  int classes = 8;        ///< resource-class pool size
  int machines = 8;       ///< machine pool of the session (`m=`)
  Time max_size = 1000;   ///< job size scale (`max=`)
  double cancel = 0.3;    ///< target fraction of cancel events (`cancel=`)
  int snap_every = 10;    ///< snapshot after every k churn events (`snap=`)
  double rate = 1000.0;   ///< mean arrivals per second (`rate=`; timing only)
  double burst = 10.0;    ///< on/off: on-phase rate multiplier (`burst=`)
  int burst_len = 32;     ///< on/off: events per phase (`blen=`)
  std::uint64_t seed = 1; ///< RNG seed (`seed=`)

  /// Canonical spec string; `parse_churn(str())` reproduces the spec.
  std::string str() const;

  /// Field-wise equality.
  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// Parses a compact churn spec string. On failure returns std::nullopt and,
/// when `error` is non-null, a message naming the offending token.
std::optional<ChurnSpec> parse_churn(std::string_view text,
                                     std::string* error = nullptr);

/// One event of a churn trace.
struct ChurnEvent {
  /// Event kinds, in wire-op correspondence.
  enum class Kind {
    kSubmit,    ///< submit a job (`cls`, `size`)
    kCancel,    ///< cancel a previously submitted job (`target`)
    kSnapshot,  ///< observe the current schedule
  };
  Kind kind = Kind::kSubmit;  ///< discriminator
  int cls = 0;                ///< kSubmit: class index in [0, classes)
  Time size = 0;              ///< kSubmit: job processing time (>= 1)
  /// kCancel: the submission index of the cancelled job — the position of
  /// its submit event among all submits, which equals the session job id a
  /// SessionEngine assigns (ids are a monotone per-session counter), so a
  /// replayer can predict server job ids without parsing responses.
  std::int64_t target = -1;
  double at_s = 0.0;  ///< arrival offset from trace start (pacing only)
};

/// Generates the event trace of a spec (pure function; see file comment).
/// Cancel events only ever target alive (not yet cancelled) submissions,
/// and a cancel draw with nothing alive degrades to a submit, so the trace
/// replays cleanly without unknown_job errors; adversarial cancel patterns
/// are the fuzzers' job, not the generator's.
std::vector<ChurnEvent> generate_churn(const ChurnSpec& spec);

}  // namespace msrs
