#include "sim/generator.hpp"

#include <ostream>

#include "core/instance_io.hpp"
#include "sim/families.hpp"
#include "util/rng.hpp"

namespace msrs {

Instance generate(const GeneratorSpec& spec) {
  // The base mix is the historical workloads seeding, so default-dist specs
  // reproduce the original nine families' corpora exactly; Dist overrides
  // fold in their own hash to get an independent stream.
  std::uint64_t mix = spec.seed ^
                      (static_cast<std::uint64_t>(spec.family) << 56) ^
                      (static_cast<std::uint64_t>(spec.jobs) << 32) ^
                      static_cast<std::uint64_t>(spec.machines);
  if (spec.class_size.set()) mix ^= spec.class_size.hash();
  if (spec.job_size.set()) mix ^= spec.job_size.hash() * 0x9e3779b97f4a7c15ULL;
  Rng rng(mix);
  return build_family(spec, rng);
}

std::vector<CorpusEntry> seed_corpus(const GeneratorSpec& base, int seeds) {
  std::vector<CorpusEntry> corpus;
  corpus.reserve(static_cast<std::size_t>(std::max(0, seeds)));
  for (int seed = 1; seed <= seeds; ++seed) {
    GeneratorSpec spec = base;
    spec.seed = static_cast<std::uint64_t>(seed);
    corpus.push_back({spec, generate(spec)});
  }
  return corpus;
}

std::vector<CorpusEntry> make_corpus(const SweepSpec& sweep) {
  std::vector<CorpusEntry> corpus;
  corpus.reserve(sweep.size());
  for (const GeneratorSpec& spec : expand(sweep))
    corpus.push_back({spec, generate(spec)});
  return corpus;
}

void write_corpus(std::ostream& out, const std::vector<CorpusEntry>& corpus) {
  for (const CorpusEntry& entry : corpus) write_text(out, entry.instance);
}

}  // namespace msrs
