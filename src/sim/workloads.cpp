#include "sim/workloads.hpp"

namespace msrs {

Instance generate(const WorkloadParams& params) {
  GeneratorSpec spec;
  spec.family = params.family;
  spec.jobs = params.jobs;
  spec.machines = params.machines;
  spec.max_size = params.max_size;
  spec.seed = params.seed;
  return generate(spec);
}

Instance generate(Family family, int jobs, int machines, std::uint64_t seed) {
  WorkloadParams params;
  params.family = family;
  params.jobs = jobs;
  params.machines = machines;
  params.seed = seed;
  return generate(params);
}

}  // namespace msrs
