#include "sim/workloads.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace msrs {
namespace {

// Splits `total` jobs into classes of random size in [lo, hi].
std::vector<int> random_class_sizes(Rng& rng, int total, int lo, int hi) {
  std::vector<int> sizes;
  int left = total;
  while (left > 0) {
    const int take =
        static_cast<int>(rng.uniform(lo, std::min<std::int64_t>(hi, left)));
    sizes.push_back(std::max(1, take));
    left -= sizes.back();
  }
  return sizes;
}

Instance gen_uniform(const WorkloadParams& params, Rng& rng) {
  Instance instance;
  instance.set_machines(params.machines);
  for (int count : random_class_sizes(rng, params.jobs, 1, 8)) {
    const ClassId c = instance.add_class();
    for (int i = 0; i < count; ++i)
      instance.add_job(c, rng.uniform(1, params.max_size));
  }
  return instance;
}

Instance gen_bimodal(const WorkloadParams& params, Rng& rng) {
  Instance instance;
  instance.set_machines(params.machines);
  for (int count : random_class_sizes(rng, params.jobs, 1, 6)) {
    const ClassId c = instance.add_class();
    for (int i = 0; i < count; ++i) {
      const bool large = rng.bernoulli(0.25);
      const Time p = large ? rng.uniform(params.max_size / 2, params.max_size)
                           : rng.uniform(1, std::max<Time>(params.max_size / 20, 1));
      instance.add_job(c, std::max<Time>(1, p));
    }
  }
  return instance;
}

Instance gen_huge_heavy(const WorkloadParams& params, Rng& rng) {
  // Roughly one class per machine containing a huge job (> 3/4 of the
  // eventual lower bound T), padded with small filler classes: exercises
  // Algorithm_3/2's M_H machinery. Filler sizes are budgeted so the area
  // bound p(J)/m stays close to the huge-job size, keeping those jobs huge
  // relative to T = max(area, class bound, pair bound).
  Instance instance;
  instance.set_machines(params.machines);
  const Time big = params.max_size;
  int placed = 0;
  const int huge_classes = std::max(1, params.machines - 1);
  for (int i = 0; i < huge_classes && placed < params.jobs; ++i) {
    const ClassId c = instance.add_class();
    instance.add_job(c, rng.uniform((9 * big) / 10, big));
    ++placed;
    // occasionally one tiny companion in the same class
    if (rng.bernoulli(0.3) && placed < params.jobs) {
      instance.add_job(c, rng.uniform(1, big / 20 + 1));
      ++placed;
    }
  }
  // Keep total filler mass under ~ (m/4) * big so the area bound stays near
  // `big` and the huge jobs remain > (3/4)T.
  const Time filler_cap = std::max<Time>(
      2, (big * params.machines) / (4 * std::max(1, params.jobs)));
  while (placed < params.jobs) {
    const ClassId c = instance.add_class();
    const int count = static_cast<int>(
        rng.uniform(1, std::min<std::int64_t>(4, params.jobs - placed)));
    for (int k = 0; k < count; ++k, ++placed)
      instance.add_job(c, rng.uniform(1, filler_cap));
  }
  return instance;
}

Instance gen_many_small_classes(const WorkloadParams& params, Rng& rng) {
  Instance instance;
  instance.set_machines(params.machines);
  for (int placed = 0; placed < params.jobs;) {
    const ClassId c = instance.add_class();
    const int count = static_cast<int>(
        rng.uniform(1, std::min<std::int64_t>(3, params.jobs - placed)));
    for (int k = 0; k < count; ++k, ++placed)
      instance.add_job(c, rng.uniform(1, std::max<Time>(params.max_size / 10, 2)));
  }
  return instance;
}

Instance gen_few_fat_classes(const WorkloadParams& params, Rng& rng) {
  // About m+1 classes, each with load close to the maximum class load:
  // the class bound dominates and the algorithms must interleave classes.
  Instance instance;
  instance.set_machines(params.machines);
  const int classes = params.machines + 1 + static_cast<int>(rng.uniform(0, 2));
  const int per_class = std::max(1, params.jobs / classes);
  for (int c = 0; c < classes; ++c) {
    const ClassId cls = instance.add_class();
    for (int k = 0; k < per_class; ++k)
      instance.add_job(cls,
                       rng.uniform(params.max_size / 2, params.max_size));
  }
  return instance;
}

Instance gen_satellite(const WorkloadParams& params, Rng& rng) {
  // Earth-observation downlink planning (Hebrard et al.): each image
  // acquisition (job) must be downlinked through one ground-station channel
  // (resource); several reception antennas (machines) run in parallel.
  // Downloads of one channel cannot overlap. Typical shape: a moderate
  // number of channels, each with a burst of transfers whose sizes follow
  // the image sizes (lognormal-ish: mostly small, some large mosaics).
  Instance instance;
  instance.set_machines(params.machines);
  const int channels = std::max(params.machines + 1, params.jobs / 6);
  int placed = 0;
  for (int ch = 0; ch < channels || placed < params.jobs; ++ch) {
    const ClassId c = instance.add_class();
    const int burst = static_cast<int>(rng.uniform(1, 6));
    for (int k = 0; k < burst; ++k, ++placed) {
      // 80% small telemetry dumps, 20% large mosaics.
      const Time p = rng.bernoulli(0.8)
                         ? rng.uniform(1, params.max_size / 8 + 1)
                         : rng.uniform(params.max_size / 3, params.max_size);
      instance.add_job(c, p);
    }
    if (placed >= params.jobs && ch >= channels - 1) break;
  }
  return instance;
}

Instance gen_photolith(const WorkloadParams& params, Rng& rng) {
  // Photolithography bay (Janssen et al.): wafer lots (jobs) need a stepper
  // (machine) plus the lot's reticle (resource); a reticle serves one
  // stepper at a time. Lots using the same reticle have similar exposure
  // times; a few hot reticles carry many lots.
  Instance instance;
  instance.set_machines(params.machines);
  int placed = 0;
  while (placed < params.jobs) {
    const ClassId c = instance.add_class();
    const bool hot = rng.bernoulli(0.2);
    const int lots = static_cast<int>(
        hot ? rng.uniform(4, 10) : rng.uniform(1, 3));
    const Time base = rng.uniform(params.max_size / 4, params.max_size);
    for (int k = 0; k < lots && placed < params.jobs; ++k, ++placed) {
      const Time jitter = rng.uniform(-base / 10, base / 10);
      instance.add_job(c, std::max<Time>(1, base + jitter));
    }
  }
  return instance;
}

Instance gen_adversarial_lpt(const WorkloadParams& params, Rng& rng) {
  // Classic LPT-adversarial shape lifted to classes: 2m+1 classes of loads
  // {2m-1, 2m-1, ..., m, m, m} (scaled), so merge-LPT ends near 4/3 while
  // interleaving achieves close to 1.
  Instance instance;
  instance.set_machines(params.machines);
  const int m = params.machines;
  const Time unit = std::max<Time>(1, params.max_size / (2 * m + 1));
  for (int k = m; k < 2 * m; ++k) {
    for (int twice = 0; twice < 2; ++twice) {
      const ClassId c = instance.add_class();
      // split the class load into a couple of jobs
      const Time load = unit * (2 * m - 1 - (k - m));
      const Time first = std::max<Time>(1, load / 2 + rng.uniform(0, unit));
      instance.add_job(c, std::min(first, load - 1 > 0 ? load - 1 : first));
      if (load - std::min(first, load - 1) > 0)
        instance.add_job(c, load - std::min(first, load - 1));
    }
  }
  const ClassId c = instance.add_class();
  instance.add_job(c, unit * m);
  return instance;
}

Instance gen_unit(const WorkloadParams& params, Rng& rng) {
  Instance instance;
  instance.set_machines(params.machines);
  for (int count : random_class_sizes(rng, params.jobs, 1, 10)) {
    const ClassId c = instance.add_class();
    for (int i = 0; i < count; ++i) instance.add_job(c, 1);
  }
  return instance;
}

}  // namespace

Instance generate(const WorkloadParams& params) {
  Rng rng(params.seed ^ (static_cast<std::uint64_t>(params.family) << 56) ^
          (static_cast<std::uint64_t>(params.jobs) << 32) ^
          static_cast<std::uint64_t>(params.machines));
  Instance instance;
  switch (params.family) {
    case Family::kUniform: instance = gen_uniform(params, rng); break;
    case Family::kBimodal: instance = gen_bimodal(params, rng); break;
    case Family::kHugeHeavy: instance = gen_huge_heavy(params, rng); break;
    case Family::kManySmallClasses:
      instance = gen_many_small_classes(params, rng);
      break;
    case Family::kFewFatClasses:
      instance = gen_few_fat_classes(params, rng);
      break;
    case Family::kSatellite: instance = gen_satellite(params, rng); break;
    case Family::kPhotolith: instance = gen_photolith(params, rng); break;
    case Family::kAdversarialLpt:
      instance = gen_adversarial_lpt(params, rng);
      break;
    case Family::kUnit: instance = gen_unit(params, rng); break;
  }
  assert(instance.check().empty());
  return instance;
}

Instance generate(Family family, int jobs, int machines, std::uint64_t seed) {
  WorkloadParams params;
  params.family = family;
  params.jobs = jobs;
  params.machines = machines;
  params.seed = seed;
  return generate(params);
}

}  // namespace msrs
