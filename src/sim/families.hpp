/// \file
/// Per-family instance builders (internal layer of the generator subsystem).
///
/// Each builder consumes one Rng stream and honors the spec's Dist
/// overrides where the family has a free choice (see docs/scenarios.md for
/// the per-family parameter map). Callers normally go through
/// `generate(spec)` in sim/generator.hpp, which owns seed derivation; this
/// header exists so tests can drive a family on a caller-controlled stream.
#pragma once

#include "core/instance.hpp"
#include "sim/spec.hpp"

namespace msrs {

class Rng;

/// Builds one instance of `spec.family` drawing from `rng`. The result is
/// always well-formed (`instance.check()` empty); when both Dists are
/// default the draw is identical to the original fixed workload families.
Instance build_family(const GeneratorSpec& spec, Rng& rng);

}  // namespace msrs
