/// \file
/// SolverRegistry: name -> Solver dispatch over the paper's algorithm
/// ladder.
///
/// Registration order is meaningful: it is the deterministic tie-break
/// priority of the portfolio (earlier wins on equal makespan), so the
/// default registry lists solvers best-guarantee-first.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/solver.hpp"

namespace msrs::engine {

/// Ordered, uniquely-named collection of solvers (see file comment for why
/// order matters). Move-only; the default registry is a shared singleton.
class SolverRegistry {
 public:
  /// An empty registry; populate with add().
  SolverRegistry() = default;
  /// Move-constructs (registries own their solvers, so no copying).
  SolverRegistry(SolverRegistry&&) = default;
  /// Move-assigns.
  SolverRegistry& operator=(SolverRegistry&&) = default;

  /// Registers a solver; throws std::invalid_argument on duplicate names.
  void add(std::unique_ptr<Solver> solver);

  /// nullptr if no solver of that name is registered.
  const Solver* find(std::string_view name) const;

  /// Names in registration order.
  std::vector<std::string> names() const;

  /// All solvers, in registration order.
  const std::vector<std::unique_ptr<Solver>>& solvers() const {
    return solvers_;
  }

  /// The full paper ladder: one_per_class, exact, three_halves, no_huge,
  /// five_thirds, eptas, list_lpt, merge_lpt, hebrard.
  static SolverRegistry make_default();

  /// Shared immutable default registry (thread-safe lazy init).
  static const SolverRegistry& default_registry();

 private:
  std::vector<std::unique_ptr<Solver>> solvers_;
};

}  // namespace msrs::engine
