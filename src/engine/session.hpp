/// \file
/// SessionEngine: an online, mutable MSRS instance with an incremental
/// repair path pinned to a full PortfolioSolver re-solve.
///
/// A session owns a stream of submit/cancel mutations against one machine
/// pool. Its observable contract is *portfolio equivalence*: after any
/// mutation history, `snapshot()` returns exactly the result a fresh,
/// deterministic PortfolioSolver race (engine/portfolio.hpp) would produce
/// on the materialized instance. The repair path is every way to reach that
/// result cheaper than re-solving from scratch:
///
///  - the canonical form (engine/batch.hpp) is maintained incrementally:
///    only the census classes touched since the last snapshot — the delta —
///    have their size vectors re-sorted; clean classes reuse their cached
///    vectors (the census categories of algo/t_bound.hpp are functions of
///    exactly these per-class sorted sizes);
///  - previously solved shapes are memoized per session in a bounded LRU,
///    so churn that revisits a shape (cancel undoing a submit, oscillating
///    arrival processes) is answered by remapping the previous schedule
///    through the canonical bijection instead of re-running the race.
///
/// Anything else falls back to the full portfolio re-solve — which doubles
/// as the oracle: tests/test_session.cpp replays fuzzed churn traces and
/// asserts after every mutation that the repair path's schedule is valid
/// and makespan-equal to an independent full re-solve. Determinism: the
/// snapshot (including its repair/resolve provenance) is a pure function of
/// the mutation history, so serving-layer snapshot responses stay
/// byte-identical across shard counts and transports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/batch.hpp"
#include "engine/portfolio.hpp"
#include "engine/registry.hpp"

namespace msrs::engine {

/// Options of one SessionEngine.
struct SessionOptions {
  /// Portfolio configuration of the repair/fallback solves (`threads` is
  /// forced to 1: a session lives on one serving shard).
  PortfolioOptions portfolio;
  /// Session-local memo bound, in canonical shapes (0 = unbounded). The
  /// memo is deliberately per-session — a shared cache would make repair
  /// provenance depend on unrelated traffic and break snapshot determinism
  /// across shard counts.
  std::size_t cache_capacity = 256;
  /// When false, every snapshot re-solves from scratch (oracle mode; used
  /// by the differential tests and the E15 bench's resolve arm).
  bool repair = true;
};

/// Lifetime counters of one session.
struct SessionStats {
  std::size_t submits = 0;    ///< submit() calls
  std::size_t cancels = 0;    ///< successful cancel() calls
  std::size_t snapshots = 0;  ///< snapshot() calls
  /// Snapshots recomputed without running the portfolio: a memoized shape
  /// remapped through the canonical bijection, or an empty instance.
  std::size_t repairs = 0;
  /// Snapshots recomputed by the full portfolio re-solve.
  std::size_t fallbacks = 0;
};

/// How the current snapshot's result was produced.
enum class SnapshotSource {
  kEmpty,    ///< no alive jobs: trivial schedule, no solve
  kRepair,   ///< memoized shape, remapped through the canonical bijection
  kResolve,  ///< full portfolio re-solve (the fallback/oracle path)
};

/// Stable lowercase name of a snapshot source ("empty"/"repair"/"resolve").
const char* snapshot_source_name(SnapshotSource source);

/// The materialized state of a session at one point of its mutation
/// history. References returned by SessionEngine::snapshot() stay valid
/// until the next mutation.
struct SessionSnapshot {
  /// Compact instance over the alive jobs (classes in creation order,
  /// empty classes skipped, jobs in submission order within a class).
  Instance instance;
  /// Session job id of each compact JobId (`jobs[j]` names instance job j).
  std::vector<std::uint64_t> jobs;
  /// Canonical form of `instance`, maintained incrementally (tests pin it
  /// against engine::canonical_form built from scratch).
  CanonicalForm form;
  /// The portfolio-equivalent result (schedule over compact JobIds).
  PortfolioResult result;
  /// Provenance of `result`.
  SnapshotSource source = SnapshotSource::kEmpty;
};

/// One online scheduling session (see file comment for the contract).
/// Not thread-safe: a session is owned by one serving shard.
class SessionEngine {
 public:
  /// A session over `machines` (>= 1) machines. The registry must outlive
  /// the session.
  explicit SessionEngine(
      int machines,
      const SolverRegistry& registry = SolverRegistry::default_registry(),
      SessionOptions options = {});

  /// Submits a job of `size` (>= 1) to the class named `class_name`
  /// (created on first use). Returns the session job id: a monotone
  /// counter, so id assignment is a pure function of the mutation history.
  std::uint64_t submit(std::string_view class_name, Time size);

  /// Cancels a previously submitted job. Returns false — and changes
  /// nothing — when `job` was never assigned or is already cancelled.
  bool cancel(std::uint64_t job);

  /// Machine count of this session.
  int machines() const { return machines_; }

  /// Jobs submitted and not cancelled.
  std::size_t jobs_alive() const { return alive_; }

  /// Classes with at least one alive job.
  std::size_t classes_alive() const;

  /// Total jobs ever submitted (== the next job id to be assigned).
  std::uint64_t submitted() const { return next_job_; }

  /// The current schedule, repairing or re-solving only when the session
  /// mutated since the last call (the delta classes are re-censused; clean
  /// classes reuse their cached canonical vectors). The reference stays
  /// valid until the next mutation.
  const SessionSnapshot& snapshot();

  /// Lifetime counters.
  const SessionStats& stats() const { return stats_; }

  /// The options this session was built with (after normalization).
  const SessionOptions& options() const { return options_; }

 private:
  struct JobRec {
    int cls = 0;
    Time size = 0;
    bool alive = false;
  };
  struct ClassRec {
    std::string name;
    std::vector<std::uint64_t> alive;    // session job ids, submission order
    std::vector<std::uint64_t> by_size;  // alive by (size desc, id asc)
    bool dirty = false;  // in the delta: by_size needs a re-census
  };

  void refresh();  // rebuild snapshot_ from the mutation delta

  int machines_ = 1;
  const SolverRegistry* registry_;
  SessionOptions options_;
  PortfolioSolver portfolio_;
  ResultCache memo_;

  std::vector<JobRec> jobs_;
  std::vector<ClassRec> classes_;
  std::unordered_map<std::string, int> class_index_;
  std::uint64_t next_job_ = 0;
  std::size_t alive_ = 0;
  bool dirty_ = true;

  SessionSnapshot snapshot_;
  SessionStats stats_;
};

}  // namespace msrs::engine
