#include "engine/portfolio.hpp"

#include <algorithm>
#include <utility>

#include "algo/t_bound.hpp"
#include "core/validate.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace msrs::engine {
namespace {

// Exact comparison of two schedules' makespans (they may carry different
// scales): a/sa < b/sb  <=>  a*sb < b*sa. Scales are tiny (<= ~20), so the
// products stay far below the documented 2^62 load limit.
bool makespan_less(const Schedule& a, const Schedule& b,
                   const Instance& instance) {
  return checked_mul(a.makespan_scaled(instance), b.scale()) <
         checked_mul(b.makespan_scaled(instance), a.scale());
}

}  // namespace

PortfolioSolver::PortfolioSolver(const SolverRegistry& registry,
                                 PortfolioOptions options)
    : registry_(&registry), options_(std::move(options)) {}

std::vector<const Solver*> PortfolioSolver::candidates(
    const Instance& instance) const {
  std::vector<const Solver*> out;
  if (!options_.only.empty()) {
    for (const std::string& name : options_.only) {
      const Solver* solver = registry_->find(name);
      if (solver != nullptr && solver->applicable(instance))
        out.push_back(solver);
    }
    return out;
  }
  if (instance.num_jobs() == 0) return out;

  // Regime: m >= |C| — one machine per class is optimal, nothing to race.
  if (instance.machines() >= instance.num_classes()) {
    if (const Solver* solver = registry_->find("one_per_class"))
      if (solver->applicable(instance)) {
        out.push_back(solver);
        return out;
      }
  }

  for (const auto& solver : registry_->solvers()) {
    if (solver->min_budget_ms() > options_.budget_ms) continue;
    if (!options_.include_heuristics && solver->guarantee() == 0.0) continue;
    if (!solver->applicable(instance)) continue;
    out.push_back(solver.get());
  }
  return out;
}

PortfolioResult PortfolioSolver::solve(const Instance& instance) const {
  PortfolioResult result;
  result.t_bound =
      instance.num_jobs() > 0 ? three_halves_bound(instance) : 0;

  if (instance.num_jobs() == 0) {
    result.schedule = Schedule(0);
    result.solver = "trivial";
    result.valid = true;
    result.ratio_vs_bound = 1.0;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("engine.races").inc();
      options_.metrics->counter("engine.race_win.trivial").inc();
    }
    return result;
  }

  const std::vector<const Solver*> racers = candidates(instance);
  std::vector<SolverResult> raced(racers.size());
  if (options_.threads > 1 && racers.size() > 1) {
    ThreadPool pool(std::min<unsigned>(
        options_.threads, static_cast<unsigned>(racers.size())));
    std::vector<std::future<SolverResult>> futures;
    futures.reserve(racers.size());
    for (const Solver* solver : racers)
      futures.push_back(pool.submit_task(
          [solver, &instance] { return solver->solve(instance); }));
    for (std::size_t i = 0; i < futures.size(); ++i)
      raced[i] = futures[i].get();
  } else {
    for (std::size_t i = 0; i < racers.size(); ++i)
      raced[i] = racers[i]->solve(instance);
  }

  // Deterministic selection: best exact makespan, candidate order breaks
  // ties — never completion order.
  int winner = -1;
  result.attempts.reserve(raced.size());
  for (std::size_t i = 0; i < raced.size(); ++i) {
    SolverResult& run = raced[i];
    Attempt attempt;
    attempt.solver = run.solver;
    attempt.ok = run.ok;
    attempt.error = run.error;
    if (run.ok) {
      attempt.makespan = run.makespan(instance);
      if (!run.schedule.complete()) {
        attempt.valid = false;
        attempt.error = "incomplete schedule";
      } else {
        const ValidationReport report = validate(instance, run.schedule);
        attempt.valid = report.ok();
        if (!attempt.valid) attempt.error = report.summary();
      }
      if (attempt.valid &&
          (winner < 0 ||
           makespan_less(run.schedule,
                         raced[static_cast<std::size_t>(winner)].schedule,
                         instance)))
        winner = static_cast<int>(i);
    }
    result.attempts.push_back(std::move(attempt));
  }

  if (winner >= 0) {
    SolverResult& best = raced[static_cast<std::size_t>(winner)];
    result.schedule = std::move(best.schedule);
    result.solver = best.solver;
    result.makespan = result.schedule.makespan(instance);
    result.valid = true;
    result.ratio_vs_bound =
        result.t_bound > 0
            ? result.makespan / static_cast<double>(result.t_bound)
            : 1.0;
  }

  if (options_.metrics != nullptr) {
    options_.metrics->counter("engine.races").inc();
    options_.metrics->counter("engine.race_attempts")
        .add(result.attempts.size());
    std::uint64_t invalid = 0;
    for (const Attempt& attempt : result.attempts)
      if (!attempt.valid) ++invalid;
    if (invalid > 0)
      options_.metrics->counter("engine.race_invalid").add(invalid);
    if (result.valid)
      options_.metrics->counter("engine.race_win." + result.solver).inc();
    else
      options_.metrics->counter("engine.race_failed").inc();
  }
  return result;
}

}  // namespace msrs::engine
