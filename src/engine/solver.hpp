/// \file
/// The uniform Solver interface of the engine layer.
///
/// The paper gives a ladder of algorithms with incomparable applicability
/// (exact only for tiny n, Algorithm_no_huge only without huge jobs, the
/// trivial one-machine-per-class schedule only for m >= |C|, ...). A Solver
/// packages one rung of that ladder together with a cheap structural
/// applicability predicate and its proven guarantee, so the portfolio and
/// batch layers can dispatch over the whole ladder uniformly.
#pragma once

#include <string>
#include <string_view>

#include "core/instance.hpp"
#include "core/schedule.hpp"

/// \namespace msrs
/// \brief Reproduction of *Scheduling with Many Shared Resources* (IPPS
/// 2023) grown into a serving engine: problem core, the paper's algorithm
/// ladder, and the generator/engine subsystems on top.
namespace msrs {}

/// \namespace msrs::engine
/// \brief The serving layer: SolverRegistry (name -> rung of the paper's
/// ladder), PortfolioSolver (deterministic candidate racing), BatchEngine
/// (sharded batches + canonical-form cache) and corpus evaluation.
namespace msrs::engine {

/// Outcome of one solver run. `ok == false` means the solver declined or
/// failed (`error` says why); the schedule is then meaningless.
struct SolverResult {
  Schedule schedule;     ///< the produced schedule (meaningful iff `ok`)
  Time lower_bound = 0;  ///< solver-proven lower bound on OPT (0 = none)
  std::string solver;    ///< provenance: name of the producing solver
  bool ok = false;       ///< whether a schedule was produced
  std::string error;     ///< failure reason, set when `!ok`

  /// Makespan of the schedule in instance units.
  double makespan(const Instance& instance) const {
    return schedule.makespan(instance);
  }
};

/// How expensive a solver is, for the portfolio's deterministic budget gate.
enum class CostTier {
  kLinear,      ///< linear / near-linear: always affordable
  kPolynomial,  ///< superlinear but polynomial (e.g. repeated exact subcalls)
  kSearch,      ///< exponential search (exact B&B, EPTAS feasibility tests)
};

/// One rung of the algorithm ladder behind a uniform dispatch interface.
class Solver {
 public:
  /// Virtual base; solvers are owned by a registry via unique_ptr.
  virtual ~Solver() = default;

  /// Registry key; stable and unique within a registry.
  virtual std::string_view name() const = 0;

  /// Proven worst-case makespan / T ratio against the Lemma-9 bound
  /// (0 = heuristic, no uniform guarantee).
  virtual double guarantee() const { return 0.0; }

  /// Cost tier used by the portfolio's deterministic budget gate.
  virtual CostTier cost() const { return CostTier::kLinear; }

  /// Smallest portfolio budget (ms) at which this solver joins a race; the
  /// gate is deterministic — an integer threshold, not a measured deadline.
  virtual int min_budget_ms() const { return 0; }

  /// Cheap structural predicate: can this solver run on `instance` at all?
  /// Must be deterministic in the instance alone (no clocks, no randomness)
  /// so portfolio candidate sets are reproducible.
  virtual bool applicable(const Instance& instance) const {
    (void)instance;
    return true;
  }

  /// Runs the solver. Must not throw: failures are reported via ok/error.
  virtual SolverResult solve(const Instance& instance) const = 0;
};

}  // namespace msrs::engine
