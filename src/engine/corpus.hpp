/// \file
/// Corpus evaluation: BatchEngine over a labeled instance set, aggregated
/// into a per-group report table.
///
/// The engine layer stays agnostic of how instances were produced — a
/// corpus is just (group label, instance) pairs; `msrs_engine_cli sweep`
/// labels each generator cell, bench_e12 labels families. The report table
/// contains only solve-derived columns (winner, ratios, cache behavior), so
/// it is bit-identical across runs and thread counts; wall-clock timing is
/// reported separately via `timing()`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "engine/batch.hpp"

namespace msrs::engine {

/// Aggregates of one report group (deterministic across runs/threads).
struct GroupReport {
  std::string group;          ///< the row key
  std::size_t instances = 0;  ///< corpus items in this group
  std::size_t cache_hits = 0; ///< items served by the canonical-form cache
  std::size_t invalid = 0;    ///< items with no valid schedule (must be 0)
  std::string top_solver;     ///< most frequent winner ("name(count)")
  double ratio_mean = 0.0;    ///< mean makespan / t_bound over the group
  double ratio_max = 0.0;     ///< worst makespan / t_bound over the group
};

/// Result of `evaluate_corpus`.
struct CorpusReport {
  std::vector<GroupReport> groups;        ///< rows, first-seen group order
  std::vector<PortfolioResult> results;   ///< per item, input order
  BatchStats stats;                       ///< batch/cache counters
  LruStats cache;                         ///< bounded result-cache counters
  double elapsed_ms = 0.0;                ///< wall clock of the batch solve
  bool all_valid = true;                  ///< every item got a valid schedule

  /// Renders the deterministic report table (one row per group), followed
  /// by a one-line summary of the bounded result cache (entries/capacity,
  /// hits, misses, evictions — deterministic for any thread count).
  std::string table() const;

  /// One-line wall-clock summary (NOT deterministic; print to stderr).
  std::string timing() const;
};

/// Solves the corpus through a BatchEngine and aggregates per group.
/// `groups[i]` is the report row key of `instances[i]` (typically a
/// generator-cell label like `uniform:n=100,m=8`); the vectors must have
/// equal length. Results are deterministic in (corpus, registry, options) —
/// identical for any `options.threads` — because BatchEngine output is.
CorpusReport evaluate_corpus(
    const std::vector<std::string>& groups,
    const std::vector<Instance>& instances,
    const SolverRegistry& registry = SolverRegistry::default_registry(),
    const BatchOptions& options = {});

}  // namespace msrs::engine
