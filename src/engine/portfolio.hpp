/// \file
/// PortfolioSolver: regime-aware candidate selection + racing + validation.
///
/// Given an instance, a deterministic regime heuristic (huge jobs? m >= |C|?
/// tiny n? unit sizes?) picks the candidate rungs of the algorithm ladder;
/// the candidates are raced (optionally across a thread pool), every
/// returned schedule is checked by core/validate, and the best valid
/// makespan wins. The result carries provenance: the winning solver's name
/// and the measured ratio against the Lemma-9 bound T (algo/t_bound.hpp).
///
/// Everything here is deterministic in (instance, options): candidate sets
/// come from structural predicates and the integer budget only — never wall
/// clocks — and the winner is chosen by exact makespan comparison with
/// registration order as the tie-break, independent of completion order.
#pragma once

#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "engine/solver.hpp"

namespace msrs::obs {
class MetricsRegistry;
}  // namespace msrs::obs

namespace msrs::engine {

/// Options of one portfolio race.
struct PortfolioOptions {
  /// Deterministic effort gate (NOT a wall-clock deadline): search-tier
  /// solvers (exact, eptas) only join the race if their estimated cost
  /// fits. exact joins from >= 10, eptas from >= 500.
  int budget_ms = 100;
  /// Threads used to race the candidates (<= 1: run them sequentially).
  unsigned threads = 1;
  /// Also race the unbounded heuristics (list_lpt, merge_lpt, hebrard);
  /// they frequently win on benign instances despite having no guarantee.
  bool include_heuristics = true;
  /// When non-empty, restrict the race to these solver names (still
  /// filtered by applicability).
  std::vector<std::string> only;
  /// Optional telemetry sink (not owned; must outlive the solver). Each
  /// race increments `engine.races`, `engine.race_attempts`,
  /// `engine.race_invalid` and the per-winner `engine.race_win.<solver>`
  /// counters. Never affects the solve result.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One raced candidate, in candidate order (provenance of the whole race).
struct Attempt {
  std::string solver;     ///< candidate solver name
  bool ok = false;        ///< solver produced a schedule
  bool valid = false;     ///< ... and it passed validate()
  double makespan = 0.0;  ///< instance units; 0 if `!ok`
  std::string error;      ///< failure reason when `!ok` or `!valid`
};

/// Outcome of a portfolio race (also the unit BatchEngine caches).
struct PortfolioResult {
  Schedule schedule;          ///< the winning schedule
  std::string solver;         ///< provenance: winning solver name
  Time t_bound = 0;           ///< Lemma-9 bound (three_halves_bound)
  double makespan = 0.0;      ///< winner's makespan, instance units
  double ratio_vs_bound = 0;  ///< makespan / t_bound (1.0 when t_bound == 0)
  bool valid = false;         ///< a validated schedule was found
  bool from_cache = false;    ///< set by BatchEngine when served by remapping
  std::vector<Attempt> attempts;  ///< every raced candidate, in order
};

/// Races the applicable rungs of a registry on one instance. Stateless
/// between calls; safe to share const across threads.
class PortfolioSolver {
 public:
  /// Binds the portfolio to a registry (not owned; must outlive this).
  explicit PortfolioSolver(
      const SolverRegistry& registry = SolverRegistry::default_registry(),
      PortfolioOptions options = {});

  /// The regime heuristic, exposed for tests: candidates in priority order.
  std::vector<const Solver*> candidates(const Instance& instance) const;

  /// Runs the race; deterministic in (instance, options).
  PortfolioResult solve(const Instance& instance) const;

  /// The options this portfolio was built with.
  const PortfolioOptions& options() const { return options_; }

 private:
  const SolverRegistry* registry_;
  PortfolioOptions options_;
};

}  // namespace msrs::engine
