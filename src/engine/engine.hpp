/// \file
/// Umbrella header for the engine layer: core -> algo -> engine.
///
///   SolverRegistry  — name -> Solver over the paper's algorithm ladder
///   PortfolioSolver — regime heuristic + candidate racing + validation
///   BatchEngine     — sharded batches + canonical-form instance cache
///   evaluate_corpus — BatchEngine over a labeled corpus, per-group report
#pragma once

#include "engine/batch.hpp"      // IWYU pragma: export
#include "engine/corpus.hpp"     // IWYU pragma: export
#include "engine/portfolio.hpp"  // IWYU pragma: export
#include "engine/registry.hpp"   // IWYU pragma: export
#include "engine/solver.hpp"     // IWYU pragma: export
