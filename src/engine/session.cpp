#include "engine/session.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/rng.hpp"

namespace msrs::engine {
namespace {

// Hash fold of the canonical-form key. Must mix exactly like the fold in
// batch.cpp's canonical_form(): the differential harness asserts the
// incrementally maintained form (including `key`) equals a from-scratch
// canonical_form() after every mutation.
std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

}  // namespace

const char* snapshot_source_name(SnapshotSource source) {
  switch (source) {
    case SnapshotSource::kEmpty: return "empty";
    case SnapshotSource::kRepair: return "repair";
    case SnapshotSource::kResolve: return "resolve";
  }
  return "?";
}

SessionEngine::SessionEngine(int machines, const SolverRegistry& registry,
                             SessionOptions options)
    : machines_(machines),
      registry_(&registry),
      options_([&options] {
        options.portfolio.threads = 1;  // a session lives on one shard
        return options;
      }()),
      portfolio_(registry, options_.portfolio),
      memo_(options_.cache_capacity) {
  assert(machines_ >= 1);
}

std::uint64_t SessionEngine::submit(std::string_view class_name, Time size) {
  assert(size >= 1);
  const auto [it, inserted] =
      class_index_.try_emplace(std::string(class_name),
                               static_cast<int>(classes_.size()));
  if (inserted) {
    ClassRec rec;
    rec.name = it->first;
    classes_.push_back(std::move(rec));
  }
  const int cls = it->second;
  const std::uint64_t job = next_job_++;
  jobs_.push_back(JobRec{cls, size, true});
  ClassRec& rec = classes_[static_cast<std::size_t>(cls)];
  rec.alive.push_back(job);
  rec.dirty = true;
  ++alive_;
  ++stats_.submits;
  dirty_ = true;
  return job;
}

bool SessionEngine::cancel(std::uint64_t job) {
  if (job >= next_job_) return false;
  JobRec& rec = jobs_[static_cast<std::size_t>(job)];
  if (!rec.alive) return false;
  rec.alive = false;
  ClassRec& cls = classes_[static_cast<std::size_t>(rec.cls)];
  cls.alive.erase(std::find(cls.alive.begin(), cls.alive.end(), job));
  cls.dirty = true;
  --alive_;
  ++stats_.cancels;
  dirty_ = true;
  return true;
}

std::size_t SessionEngine::classes_alive() const {
  std::size_t count = 0;
  for (const ClassRec& cls : classes_)
    if (!cls.alive.empty()) ++count;
  return count;
}

const SessionSnapshot& SessionEngine::snapshot() {
  ++stats_.snapshots;
  if (dirty_) refresh();
  return snapshot_;
}

void SessionEngine::refresh() {
  dirty_ = false;

  // The delta: re-census only the classes a mutation touched — re-sort
  // their alive jobs by (size desc, session id asc). Clean classes keep
  // their cached order (the bulk of the work the repair path avoids).
  for (ClassRec& cls : classes_) {
    if (!cls.dirty) continue;
    cls.dirty = false;
    cls.by_size = cls.alive;
    std::sort(cls.by_size.begin(), cls.by_size.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                const Time pa = jobs_[static_cast<std::size_t>(a)].size;
                const Time pb = jobs_[static_cast<std::size_t>(b)].size;
                if (pa != pb) return pa > pb;
                return a < b;
              });
  }

  // Materialize the compact instance: classes in creation order (empty
  // ones skipped), jobs in submission order within a class — so within a
  // class, compact JobId order coincides with session id order, and the
  // cached (size desc, session id asc) orders transfer verbatim to the
  // canonical (size desc, JobId asc) orders canonical_form() computes.
  snapshot_.instance = Instance();
  snapshot_.instance.set_machines(machines_);
  snapshot_.jobs.clear();
  std::vector<int> compact_cls;  // class index -> position among non-empty
  compact_cls.assign(classes_.size(), -1);
  std::unordered_map<std::uint64_t, JobId> compact_of;
  compact_of.reserve(alive_);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const ClassRec& cls = classes_[c];
    if (cls.alive.empty()) continue;
    compact_cls[c] = static_cast<int>(snapshot_.instance.add_class());
    for (const std::uint64_t job : cls.alive) {
      const JobId id = snapshot_.instance.add_job(
          compact_cls[c], jobs_[static_cast<std::size_t>(job)].size);
      compact_of.emplace(job, id);
      snapshot_.jobs.push_back(job);
    }
  }

  // Assemble the canonical form from the per-class cached orders. Class
  // ranking and the tie-break (heavier shapes first, then lower class id)
  // mirror canonical_form(): compact class ids preserve creation order, so
  // a stable index tie-break reproduces its `by_shape` order.
  CanonicalForm& form = snapshot_.form;
  form.machines = machines_;
  form.classes.clear();
  form.order.clear();
  std::vector<std::size_t> live;  // indices into classes_, creation order
  for (std::size_t c = 0; c < classes_.size(); ++c)
    if (!classes_[c].alive.empty()) live.push_back(c);
  std::vector<std::size_t> rank(live.size());
  std::iota(rank.begin(), rank.end(), std::size_t{0});
  std::vector<std::vector<Time>> sizes(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const ClassRec& cls = classes_[live[i]];
    sizes[i].reserve(cls.by_size.size());
    for (const std::uint64_t job : cls.by_size)
      sizes[i].push_back(jobs_[static_cast<std::size_t>(job)].size);
  }
  std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    if (sizes[a] != sizes[b]) return sizes[a] > sizes[b];
    return a < b;
  });
  form.order.reserve(alive_);
  form.classes.reserve(live.size());
  std::uint64_t h = fold(0x6d737273ULL /* "msrs" */,
                         static_cast<std::uint64_t>(form.machines));
  for (const std::size_t i : rank) {
    h = fold(h, 0xC1A55EEDULL);  // class separator
    for (const Time p : sizes[i]) h = fold(h, static_cast<std::uint64_t>(p));
    for (const std::uint64_t job : classes_[live[i]].by_size)
      form.order.push_back(compact_of.at(job));
    form.classes.push_back(std::move(sizes[i]));
  }
  form.key = h;

  // Produce the portfolio-equivalent result: trivial when empty, remapped
  // from the session memo when the shape was solved before, full re-solve
  // otherwise (the fallback — and, with options().repair off, the oracle).
  if (alive_ == 0) {
    snapshot_.result = PortfolioResult{};
    snapshot_.result.schedule = Schedule(0, 1);
    snapshot_.result.solver = "empty";
    snapshot_.result.ratio_vs_bound = 1.0;
    snapshot_.result.valid = true;
    snapshot_.source = SnapshotSource::kEmpty;
    ++stats_.repairs;
    return;
  }
  if (options_.repair) {
    if (const ResultCache::Entry* entry = memo_.find(form)) {
      snapshot_.result = remap_result(entry->first, entry->second, form);
      snapshot_.source = SnapshotSource::kRepair;
      ++stats_.repairs;
      return;
    }
  }
  snapshot_.result = portfolio_.solve(snapshot_.instance);
  snapshot_.source = SnapshotSource::kResolve;
  ++stats_.fallbacks;
  if (options_.repair) memo_.insert(form, snapshot_.result);
}

}  // namespace msrs::engine
