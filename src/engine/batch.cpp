#include "engine/batch.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace msrs::engine {
namespace {

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

}  // namespace

PortfolioResult remap_result(const CanonicalForm& src_form,
                             const PortfolioResult& src_result,
                             const CanonicalForm& dst_form) {
  PortfolioResult out = src_result;
  out.from_cache = true;
  const Schedule& src = src_result.schedule;
  Schedule dst(static_cast<int>(dst_form.order.size()), src.scale());
  for (std::size_t i = 0; i < dst_form.order.size(); ++i) {
    const JobId from = src_form.order[i];
    if (src.assigned(from))
      dst.assign(dst_form.order[i], src.machine(from), src.start(from));
  }
  out.schedule = std::move(dst);
  return out;
}

CanonicalForm canonical_form(const Instance& instance) {
  CanonicalForm form;
  form.machines = instance.machines();

  const int num_classes = instance.num_classes();
  std::vector<std::vector<JobId>> class_order(
      static_cast<std::size_t>(num_classes));
  form.classes.resize(static_cast<std::size_t>(num_classes));
  for (ClassId c = 0; c < num_classes; ++c) {
    auto& jobs = class_order[static_cast<std::size_t>(c)];
    jobs = instance.class_jobs(c);
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (instance.size(a) != instance.size(b))
        return instance.size(a) > instance.size(b);
      return a < b;
    });
    auto& sizes = form.classes[static_cast<std::size_t>(c)];
    sizes.reserve(jobs.size());
    for (JobId j : jobs) sizes.push_back(instance.size(j));
  }

  std::vector<int> by_shape(static_cast<std::size_t>(num_classes));
  std::iota(by_shape.begin(), by_shape.end(), 0);
  std::sort(by_shape.begin(), by_shape.end(), [&](int a, int b) {
    const auto& sa = form.classes[static_cast<std::size_t>(a)];
    const auto& sb = form.classes[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;  // heavier shapes first
    return a < b;
  });

  std::vector<std::vector<Time>> sorted_classes;
  sorted_classes.reserve(form.classes.size());
  form.order.reserve(static_cast<std::size_t>(instance.num_jobs()));
  std::uint64_t h = fold(0x6d737273ULL /* "msrs" */,
                         static_cast<std::uint64_t>(form.machines));
  for (int c : by_shape) {
    auto& sizes = form.classes[static_cast<std::size_t>(c)];
    h = fold(h, 0xC1A55EEDULL);  // class separator
    for (Time p : sizes) h = fold(h, static_cast<std::uint64_t>(p));
    for (JobId j : class_order[static_cast<std::size_t>(c)])
      form.order.push_back(j);
    sorted_classes.push_back(std::move(sizes));
  }
  form.classes = std::move(sorted_classes);
  form.key = h;
  return form;
}

BatchEngine::BatchEngine(const SolverRegistry& registry, BatchOptions options)
    : portfolio_(registry,
                 [&options] {
                   // The batch layer owns the parallelism: one portfolio run
                   // stays on its shard's thread.
                   PortfolioOptions po = options.portfolio;
                   po.threads = 1;
                   return po;
                 }()),
      options_(std::move(options)),
      cache_(options_.cache_capacity) {}

void BatchEngine::clear_cache() {
  cache_.clear();
  stats_.entries = 0;
}

std::vector<PortfolioResult> BatchEngine::solve(
    const std::vector<Instance>& batch) {
  const std::size_t count = batch.size();
  std::vector<PortfolioResult> results(count);
  if (count == 0) return results;
  stats_.instances += count;
  const std::size_t hits_before = stats_.cache_hits;

  std::vector<CanonicalForm> forms(count);
  parallel_for(
      0, count, [&](std::size_t i) { forms[i] = canonical_form(batch[i]); },
      options_.threads);

  // Classify in input order: serve prior-batch cache entries immediately,
  // pick the first occurrence of each new shape as its representative.
  constexpr std::size_t kFromCache = static_cast<std::size_t>(-1);
  std::vector<std::size_t> source(count);  // rep index, or kFromCache
  std::vector<std::size_t> reps;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> first_of;
  for (std::size_t i = 0; i < count; ++i) {
    if (!options_.cache) {
      source[i] = i;
      reps.push_back(i);
      continue;
    }
    if (const ResultCache::Entry* entry = cache_.find(forms[i])) {
      source[i] = kFromCache;
      results[i] = remap_result(entry->first, entry->second, forms[i]);
      ++stats_.cache_hits;
      continue;
    }
    std::size_t rep = i;
    for (std::size_t j : first_of[forms[i].key])
      if (forms[j].same_shape(forms[i])) {
        rep = j;
        break;
      }
    source[i] = rep;
    if (rep == i) {
      first_of[forms[i].key].push_back(i);
      reps.push_back(i);
    } else {
      ++stats_.cache_hits;
    }
  }

  parallel_for(
      0, reps.size(),
      [&](std::size_t r) {
        const std::size_t i = reps[r];
        results[i] = portfolio_.solve(batch[i]);
      },
      options_.threads);
  stats_.solved += reps.size();

  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t rep = source[i];
    if (rep == kFromCache || rep == i) continue;
    results[i] = remap_result(forms[rep], results[rep], forms[i]);
  }

  if (options_.cache) {
    for (std::size_t i : reps) cache_.insert(forms[i], results[i]);
    stats_.entries = cache_.size();
  }
  if (obs::MetricsRegistry* metrics = options_.portfolio.metrics;
      metrics != nullptr) {
    metrics->counter("batch.instances").add(count);
    metrics->counter("batch.solved").add(reps.size());
    metrics->counter("batch.cache_hits").add(stats_.cache_hits - hits_before);
    metrics->gauge("batch.cache_entries")
        .set(static_cast<std::int64_t>(stats_.entries));
  }
  return results;
}

}  // namespace msrs::engine
