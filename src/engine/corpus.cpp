#include "engine/corpus.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <sstream>

#include "util/table.hpp"

namespace msrs::engine {

std::string CorpusReport::table() const {
  Table table({"group", "instances", "cache", "winner", "ratio_mean",
               "ratio_max", "invalid"});
  for (const GroupReport& group : groups)
    table.add_row({group.group,
                   Table::num(static_cast<std::int64_t>(group.instances)),
                   Table::num(static_cast<std::int64_t>(group.cache_hits)),
                   group.top_solver, Table::num(group.ratio_mean, 4),
                   Table::num(group.ratio_max, 4),
                   Table::num(static_cast<std::int64_t>(group.invalid))});
  std::ostringstream out;
  out << table.str() << "cache: " << cache.entries << "/"
      << (cache.capacity == 0 ? std::string("unbounded")
                              : std::to_string(cache.capacity))
      << " entries, " << cache.hits << " hits, " << cache.misses
      << " misses, " << cache.evictions << " evictions\n";
  return out.str();
}

std::string CorpusReport::timing() const {
  std::ostringstream out;
  out << "corpus: " << stats.instances << " instances, " << stats.solved
      << " solved, " << stats.cache_hits << " cache hits, " << stats.entries
      << " cache entries\ntime:   " << elapsed_ms << " ms";
  if (elapsed_ms > 0.0)
    out << " (" << static_cast<std::int64_t>(
                       1000.0 * static_cast<double>(stats.instances) /
                       elapsed_ms)
        << " instances/sec)";
  return out.str();
}

CorpusReport evaluate_corpus(const std::vector<std::string>& groups,
                             const std::vector<Instance>& instances,
                             const SolverRegistry& registry,
                             const BatchOptions& options) {
  assert(groups.size() == instances.size());
  CorpusReport report;
  BatchEngine engine(registry, options);
  const auto start = std::chrono::steady_clock::now();
  report.results = engine.solve(instances);
  report.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  report.stats = engine.stats();
  report.cache = engine.cache_stats();

  // Aggregate in input order; group rows appear at first occurrence, winner
  // ties break lexicographically — all deterministic.
  struct Accumulator {
    std::size_t index = 0;
    double ratio_sum = 0.0;
    std::map<std::string, std::size_t> winners;
  };
  std::map<std::string, Accumulator> accumulators;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const PortfolioResult& result = report.results[i];
    auto [it, inserted] = accumulators.try_emplace(groups[i]);
    Accumulator& acc = it->second;
    if (inserted) {
      acc.index = report.groups.size();
      GroupReport group;
      group.group = groups[i];
      report.groups.push_back(group);
    }
    GroupReport& group = report.groups[acc.index];
    ++group.instances;
    if (result.from_cache) ++group.cache_hits;
    if (!result.valid) {
      ++group.invalid;
      report.all_valid = false;
      continue;
    }
    acc.ratio_sum += result.ratio_vs_bound;
    group.ratio_max = std::max(group.ratio_max, result.ratio_vs_bound);
    ++acc.winners[result.solver];
  }
  for (auto& [name, acc] : accumulators) {
    GroupReport& group = report.groups[acc.index];
    const std::size_t valid = group.instances - group.invalid;
    if (valid > 0) group.ratio_mean = acc.ratio_sum / static_cast<double>(valid);
    const auto top = std::max_element(
        acc.winners.begin(), acc.winners.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (top != acc.winners.end())
      group.top_solver =
          top->first + "(" + std::to_string(top->second) + ")";
  }
  return report;
}

}  // namespace msrs::engine
