/// \file
/// BatchEngine: the throughput layer — shards an instance stream across the
/// thread pool and serves repeated instances from a canonical-form cache.
///
/// Canonical form: (m, classes as sorted size vectors, classes sorted). Two
/// instances with the same canonical form are identical up to renaming jobs
/// and classes, so a solved schedule transfers by the canonical bijection
/// (same canonical position -> same size and class structure). Cached
/// results are remapped through that bijection, never re-solved.
///
/// Determinism: a batch is deduplicated by canonical key up front; one
/// representative per key (the first occurrence, or a prior cache entry) is
/// solved, all duplicates are remapped from it. Representatives are chosen
/// and results assembled in input order, so the output is identical for any
/// thread count — only wall-clock time changes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/instance.hpp"
#include "engine/portfolio.hpp"
#include "engine/registry.hpp"

namespace msrs::engine {

/// Canonical form of an instance plus the job bijection realizing it.
struct CanonicalForm {
  int machines = 0;  ///< machine count (part of the shape)
  std::vector<std::vector<Time>> classes;  ///< per-class sizes desc, sorted
  std::vector<JobId> order;  ///< job ids in canonical position order
  std::uint64_t key = 0;     ///< hash of (machines, classes)

  /// True when the shapes (machines + class size vectors) coincide.
  bool same_shape(const CanonicalForm& other) const {
    return machines == other.machines && classes == other.classes;
  }
};

/// Computes the canonical form of an instance (O(n log n)).
CanonicalForm canonical_form(const Instance& instance);

/// Options of a BatchEngine.
struct BatchOptions {
  unsigned threads = 0;  ///< sharding width; 0 = hardware concurrency
  bool cache = true;     ///< canonical-form dedup + cross-batch memory
  PortfolioOptions portfolio;  ///< per-instance options (raced sequentially;
                               ///< the batch layer owns the parallelism)
};

/// Counters accumulated across an engine's lifetime.
struct BatchStats {
  std::size_t instances = 0;   ///< total instances seen
  std::size_t solved = 0;      ///< portfolio runs actually executed
  std::size_t cache_hits = 0;  ///< results served by remapping a cache entry
  std::size_t entries = 0;     ///< resident cache entries
};

/// Sharded, cached batch solver (see file comment for the contract).
class BatchEngine {
 public:
  /// Binds the engine to a registry (not owned; must outlive this).
  explicit BatchEngine(
      const SolverRegistry& registry = SolverRegistry::default_registry(),
      BatchOptions options = {});

  /// Solves the batch; results[i] corresponds to batch[i]. Not thread-safe
  /// (one engine per serving thread, or external synchronization).
  std::vector<PortfolioResult> solve(const std::vector<Instance>& batch);

  /// Lifetime counters (monotone across solve() calls).
  const BatchStats& stats() const { return stats_; }

  /// Drops every resident cache entry (stats().entries becomes 0).
  void clear_cache();

 private:
  struct CacheEntry {
    CanonicalForm form;      // includes the representative's job order
    PortfolioResult result;  // solved on the representative instance
  };

  const CacheEntry* lookup(const CanonicalForm& form) const;

  PortfolioSolver portfolio_;
  BatchOptions options_;
  BatchStats stats_;
  // key -> entries with that hash (collision chain checked by same_shape).
  std::unordered_map<std::uint64_t, std::vector<CacheEntry>> cache_;
};

}  // namespace msrs::engine
