/// \file
/// BatchEngine: the throughput layer — shards an instance stream across the
/// thread pool and serves repeated instances from a canonical-form cache.
///
/// Canonical form: (m, classes as sorted size vectors, classes sorted). Two
/// instances with the same canonical form are identical up to renaming jobs
/// and classes, so a solved schedule transfers by the canonical bijection
/// (same canonical position -> same size and class structure). Cached
/// results are remapped through that bijection, never re-solved.
///
/// Determinism: a batch is deduplicated by canonical key up front; one
/// representative per key (the first occurrence, or a prior cache entry) is
/// solved, all duplicates are remapped from it. Representatives are chosen
/// and results assembled in input order, so the output is identical for any
/// thread count — only wall-clock time changes.
///
/// The cross-batch cache is a bounded LRU (util/lru.hpp, default 65536
/// shapes, `BatchOptions::cache_capacity`); long sweeps and long-lived
/// services stay within a fixed memory budget, with hit/miss/eviction
/// counters exposed via cache_stats(). Lookups and insertions happen in
/// input order on the coordinating thread, so eviction order — and thus
/// every output — remains independent of the thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "engine/portfolio.hpp"
#include "engine/registry.hpp"
#include "util/lru.hpp"

namespace msrs::engine {

/// Canonical form of an instance plus the job bijection realizing it.
struct CanonicalForm {
  int machines = 0;  ///< machine count (part of the shape)
  std::vector<std::vector<Time>> classes;  ///< per-class sizes desc, sorted
  std::vector<JobId> order;  ///< job ids in canonical position order
  std::uint64_t key = 0;     ///< hash of (machines, classes)

  /// True when the shapes (machines + class size vectors) coincide.
  bool same_shape(const CanonicalForm& other) const {
    return machines == other.machines && classes == other.classes;
  }
};

/// Computes the canonical form of an instance (O(n log n)).
CanonicalForm canonical_form(const Instance& instance);

/// Remaps a result solved on `src_form`'s instance onto the instance behind
/// `dst_form` (which must have the same canonical shape): canonical position
/// i of one maps to canonical position i of the other, preserving sizes and
/// class structure. The returned result is flagged `from_cache`.
PortfolioResult remap_result(const CanonicalForm& src_form,
                             const PortfolioResult& src_result,
                             const CanonicalForm& dst_form);

/// Hashes a canonical-form cache key: the precomputed shape hash.
struct CanonicalFormHash {
  /// The form's `key` field, truncated to size_t.
  std::size_t operator()(const CanonicalForm& form) const {
    return static_cast<std::size_t>(form.key);
  }
};

/// Canonical-form cache-key equivalence: shape equality. The per-instance
/// job bijection (`order`) is deliberately ignored — it is payload carried
/// by the resident key for remapping, not identity.
struct CanonicalFormShapeEq {
  /// True when machines and class size vectors coincide.
  bool operator()(const CanonicalForm& a, const CanonicalForm& b) const {
    return a.same_shape(b);
  }
};

/// Bounded LRU from canonical shape to the representative's solved result.
/// Shared by BatchEngine and the serving layer's per-shard caches.
using ResultCache = LruCache<CanonicalForm, PortfolioResult,
                             CanonicalFormHash, CanonicalFormShapeEq>;

/// Options of a BatchEngine.
struct BatchOptions {
  unsigned threads = 0;  ///< sharding width; 0 = hardware concurrency
  bool cache = true;     ///< canonical-form dedup + cross-batch memory
  /// Cross-batch cache bound, in resident entries (least recently used
  /// shape evicted first); 0 opts into the historical unbounded behavior.
  std::size_t cache_capacity = 1 << 16;
  PortfolioOptions portfolio;  ///< per-instance options (raced sequentially;
                               ///< the batch layer owns the parallelism)
};

/// Counters accumulated across an engine's lifetime.
struct BatchStats {
  std::size_t instances = 0;   ///< total instances seen
  std::size_t solved = 0;      ///< portfolio runs actually executed
  std::size_t cache_hits = 0;  ///< results served by remapping a cache entry
  std::size_t entries = 0;     ///< resident cache entries
};

/// Sharded, cached batch solver (see file comment for the contract).
class BatchEngine {
 public:
  /// Binds the engine to a registry (not owned; must outlive this).
  explicit BatchEngine(
      const SolverRegistry& registry = SolverRegistry::default_registry(),
      BatchOptions options = {});

  /// Solves the batch; results[i] corresponds to batch[i]. Not thread-safe
  /// (one engine per serving thread, or external synchronization).
  std::vector<PortfolioResult> solve(const std::vector<Instance>& batch);

  /// Lifetime counters (monotone across solve() calls).
  const BatchStats& stats() const { return stats_; }

  /// Counters of the bounded cross-batch result cache (hit/miss/eviction).
  const LruStats& cache_stats() const { return cache_.stats(); }

  /// Drops every resident cache entry (stats().entries becomes 0).
  void clear_cache();

 private:
  PortfolioSolver portfolio_;
  BatchOptions options_;
  BatchStats stats_;
  ResultCache cache_;
};

}  // namespace msrs::engine
