#include "engine/registry.hpp"

#include <functional>
#include <stdexcept>
#include <utility>

#include "algo/baselines.hpp"
#include "algo/exact.hpp"
#include "algo/five_thirds.hpp"
#include "algo/greedy.hpp"
#include "algo/no_huge.hpp"
#include "algo/three_halves.hpp"
#include "core/lower_bounds.hpp"
#include "ptas/eptas.hpp"

namespace msrs::engine {
namespace {

// Exact branch-and-bound is exponential; beyond this many jobs the portfolio
// should not even consider it.
constexpr int kExactMaxJobs = 10;
// Node cap for engine-dispatched exact runs: bounds the worst case to well
// under a second while still proving optimality on almost all n <= 10
// instances.
constexpr std::uint64_t kExactNodeLimit = 1'500'000;

// EPTAS feasibility tests grow quickly in m and the simplification only pays
// off for moderately sized instances.
constexpr int kEptasMaxJobs = 60;
constexpr int kEptasMaxMachines = 12;

// Adapts a free function returning AlgoResult to the Solver interface,
// converting exceptions (e.g. no_huge on a violated precondition) into
// ok=false results.
class FnSolver final : public Solver {
 public:
  using SolveFn = std::function<AlgoResult(const Instance&)>;
  using Predicate = std::function<bool(const Instance&)>;

  FnSolver(std::string name, double guarantee, CostTier cost, SolveFn solve,
           Predicate applicable = nullptr)
      : name_(std::move(name)),
        guarantee_(guarantee),
        cost_(cost),
        solve_(std::move(solve)),
        applicable_(std::move(applicable)) {}

  std::string_view name() const override { return name_; }
  double guarantee() const override { return guarantee_; }
  CostTier cost() const override { return cost_; }
  bool applicable(const Instance& instance) const override {
    return applicable_ ? applicable_(instance) : true;
  }

  SolverResult solve(const Instance& instance) const override {
    SolverResult result;
    result.solver = name_;
    try {
      AlgoResult algo = solve_(instance);
      result.schedule = std::move(algo.schedule);
      result.lower_bound = algo.lower_bound;
      result.ok = true;
    } catch (const std::exception& e) {
      result.error = e.what();
    }
    return result;
  }

 private:
  std::string name_;
  double guarantee_;
  CostTier cost_;
  SolveFn solve_;
  Predicate applicable_;
};

class ExactSolver final : public Solver {
 public:
  std::string_view name() const override { return "exact"; }
  double guarantee() const override { return 1.0; }
  CostTier cost() const override { return CostTier::kSearch; }
  int min_budget_ms() const override { return 10; }
  bool applicable(const Instance& instance) const override {
    return instance.num_jobs() <= kExactMaxJobs;
  }

  SolverResult solve(const Instance& instance) const override {
    SolverResult result;
    result.solver = "exact";
    try {
      ExactOptions options;
      options.node_limit = kExactNodeLimit;
      ExactResult exact = exact_makespan(instance, options);
      result.schedule = std::move(exact.schedule);
      // The makespan is a proven lower bound only if the search completed.
      result.lower_bound = exact.optimal ? exact.makespan : 0;
      result.ok = result.schedule.complete();
      if (!result.ok) result.error = "node limit hit before any full schedule";
    } catch (const std::exception& e) {
      result.error = e.what();
    }
    return result;
  }
};

class EptasSolver final : public Solver {
 public:
  std::string_view name() const override { return "eptas"; }
  // Run with e = 3: makespan <= (1+1/3)(1+1/3) * guess in the worst case,
  // with the 3/2 schedule as fallback; 16/9 is the conservative bound.
  double guarantee() const override { return 16.0 / 9.0; }
  CostTier cost() const override { return CostTier::kSearch; }
  int min_budget_ms() const override { return 500; }
  bool applicable(const Instance& instance) const override {
    return instance.num_jobs() <= kEptasMaxJobs &&
           instance.machines() <= kEptasMaxMachines;
  }

  SolverResult solve(const Instance& instance) const override {
    SolverResult result;
    result.solver = "eptas";
    try {
      EptasResult eptas_result =
          eptas(instance, {.e = 3, .m_constant = true});
      result.schedule = std::move(eptas_result.schedule);
      result.lower_bound = 0;  // the accepted guess is not a bound on OPT
      result.ok = result.schedule.complete();
      if (!result.ok) result.error = "eptas returned an incomplete schedule";
    } catch (const std::exception& e) {
      result.error = e.what();
    }
    return result;
  }
};

}  // namespace

void SolverRegistry::add(std::unique_ptr<Solver> solver) {
  if (find(solver->name()) != nullptr)
    throw std::invalid_argument("duplicate solver name: " +
                                std::string(solver->name()));
  solvers_.push_back(std::move(solver));
}

const Solver* SolverRegistry::find(std::string_view name) const {
  for (const auto& solver : solvers_)
    if (solver->name() == name) return solver.get();
  return nullptr;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.emplace_back(solver->name());
  return out;
}

SolverRegistry SolverRegistry::make_default() {
  SolverRegistry registry;
  // Optimal when m >= |C|: every class gets a private machine, and
  // max_c p(c) is a lower bound on OPT (Note 1).
  registry.add(std::make_unique<FnSolver>(
      "one_per_class", 1.0, CostTier::kLinear, one_machine_per_class,
      [](const Instance& i) { return i.machines() >= i.num_classes(); }));
  registry.add(std::make_unique<ExactSolver>());
  registry.add(std::make_unique<FnSolver>("three_halves", 1.5,
                                          CostTier::kLinear, three_halves));
  // Standalone Algorithm_no_huge requires no job > (3/4)T (Lemma 12); the
  // wrapper also handles the trivial m >= |C| case itself.
  registry.add(std::make_unique<FnSolver>(
      "no_huge", 1.5, CostTier::kLinear, no_huge, [](const Instance& i) {
        if (i.num_jobs() == 0 || i.machines() >= i.num_classes()) return true;
        return 4 * i.max_size() <= 3 * lower_bounds(i).combined;
      }));
  registry.add(std::make_unique<FnSolver>("five_thirds", 5.0 / 3.0,
                                          CostTier::kLinear, five_thirds));
  registry.add(std::make_unique<EptasSolver>());
  registry.add(std::make_unique<FnSolver>(
      "list_lpt", 0.0, CostTier::kLinear, [](const Instance& i) {
        return list_schedule(i, ListPriority::kLptJob);
      }));
  registry.add(std::make_unique<FnSolver>("merge_lpt", 0.0, CostTier::kLinear,
                                          merge_lpt));
  registry.add(std::make_unique<FnSolver>("hebrard", 0.0, CostTier::kLinear,
                                          hebrard_insertion));
  return registry;
}

const SolverRegistry& SolverRegistry::default_registry() {
  static const SolverRegistry registry = make_default();
  return registry;
}

}  // namespace msrs::engine
