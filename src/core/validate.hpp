/// \file
/// Exact schedule validation: the two validity conditions of Section 1
/// (no machine overlap, no same-class overlap) plus basic sanity checks.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace msrs {

/// One validity violation found by validate().
struct Violation {
  /// What went wrong.
  enum class Kind {
    kUnassignedJob,     ///< a job has no machine
    kBadMachine,        ///< machine id out of [0, m)
    kNegativeStart,     ///< a job starts before time 0
    kMachineOverlap,    ///< two jobs overlap on one machine
    kClassOverlap,      ///< two same-class jobs overlap in time
    kMakespanExceeded,  ///< a job ends after the given deadline
  };
  Kind kind;               ///< violation kind
  JobId a = kInvalidJob;   ///< first involved job (if any)
  JobId b = kInvalidJob;   ///< second involved job (overlaps)
  std::string detail;      ///< human-readable description
};

/// All violations of one schedule; empty means valid.
struct ValidationReport {
  std::vector<Violation> violations;  ///< every violation found
  /// True iff the schedule is valid.
  bool ok() const noexcept { return violations.empty(); }
  /// One line per violation.
  std::string summary() const;
};

/// Validates the schedule; if `makespan_limit_scaled >= 0`, additionally
/// checks that every job finishes by that (scaled-unit) deadline.
ValidationReport validate(const Instance& instance, const Schedule& schedule,
                          Time makespan_limit_scaled = -1);

/// Convenience assertion helper for tests: returns true iff valid.
bool is_valid(const Instance& instance, const Schedule& schedule);

}  // namespace msrs
