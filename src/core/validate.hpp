// Exact schedule validation: the two validity conditions of Section 1
// (no machine overlap, no same-class overlap) plus basic sanity checks.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace msrs {

struct Violation {
  enum class Kind {
    kUnassignedJob,
    kBadMachine,
    kNegativeStart,
    kMachineOverlap,
    kClassOverlap,
    kMakespanExceeded,
  };
  Kind kind;
  JobId a = kInvalidJob;
  JobId b = kInvalidJob;
  std::string detail;
};

struct ValidationReport {
  std::vector<Violation> violations;
  bool ok() const noexcept { return violations.empty(); }
  std::string summary() const;
};

// Validates the schedule; if `makespan_limit_scaled >= 0`, additionally checks
// that every job finishes by that (scaled-unit) deadline.
ValidationReport validate(const Instance& instance, const Schedule& schedule,
                          Time makespan_limit_scaled = -1);

// Convenience assertion helper for tests: returns true iff valid.
bool is_valid(const Instance& instance, const Schedule& schedule);

}  // namespace msrs
