#include "core/class_partition.hpp"

#include <algorithm>
#include <cassert>

namespace msrs {
namespace {

Time load_of(const Instance& instance, std::span<const JobId> jobs) {
  Time total = 0;
  for (JobId j : jobs) total += instance.size(j);
  return total;
}

[[maybe_unused]] Time max_of(const Instance& instance,
                             std::span<const JobId> jobs) {
  Time best = 0;
  for (JobId j : jobs) best = std::max(best, instance.size(j));
  return best;
}

// Finds (an index of) a maximal job of the set.
JobId max_job(const Instance& instance, std::span<const JobId> jobs) {
  JobId best = jobs.front();
  for (JobId j : jobs)
    if (instance.size(j) > instance.size(best)) best = j;
  return best;
}

// Splits by pulling `single` into one part, the rest into the other.
ClassSplit split_single(const Instance& instance, std::span<const JobId> jobs,
                        JobId single) {
  ClassSplit split;
  split.hat.push_back(single);
  for (JobId j : jobs)
    if (j != single) split.check.push_back(j);
  split.hat_load = instance.size(single);
  split.check_load = load_of(instance, jobs) - split.hat_load;
  return split;
}

// Greedily moves jobs into `hat` while 4 * p(hat) <= T (i.e. until the load
// first exceeds T/4).
ClassSplit split_greedy_quarter(const Instance& instance,
                                std::span<const JobId> jobs, Time T) {
  ClassSplit split;
  Time acc = 0;
  for (JobId j : jobs) {
    if (4 * acc <= T) {
      split.hat.push_back(j);
      acc += instance.size(j);
    } else {
      split.check.push_back(j);
    }
  }
  split.hat_load = acc;
  split.check_load = load_of(instance, jobs) - acc;
  return split;
}

void order_by_load(ClassSplit& split) {
  if (split.hat_load < split.check_load) {
    std::swap(split.hat, split.check);
    std::swap(split.hat_load, split.check_load);
  }
}

}  // namespace

ClassSplit split_lemma5(const Instance& instance, ClassId c, Time T) {
  const auto& jobs = instance.class_jobs(c);
  assert(3 * instance.class_load(c) > 2 * T);
  assert(2 * instance.class_max(c) <= T);  // no job > T/2

  // Case 1: a job with size > T/3 exists; it alone is c1 (it is <= T/2).
  const JobId top = max_job(instance, jobs);
  ClassSplit split;
  if (3 * instance.size(top) > T) {
    split = split_single(instance, jobs, top);
  } else {
    // Case 2: all jobs <= T/3; greedily fill c1 until p(c1) >= T/3.
    Time acc = 0;
    for (JobId j : jobs) {
      if (3 * acc < T) {
        split.hat.push_back(j);
        acc += instance.size(j);
      } else {
        split.check.push_back(j);
      }
    }
    split.hat_load = acc;
    split.check_load = instance.class_load(c) - acc;
  }

  assert(3 * split.hat_load >= T);
  assert(3 * split.hat_load <= 2 * T);
  assert(3 * split.check_load <= 2 * T);
  return split;
}

ClassSplit split_lemma10_jobs(const Instance& instance,
                              std::span<const JobId> jobs, Time T) {
  const Time load = load_of(instance, jobs);
  assert(4 * load >= 3 * T);
  assert(4 * max_of(instance, jobs) <= 3 * T);  // no huge job
  (void)load;

  const JobId top = max_job(instance, jobs);
  const Time a = instance.size(top);
  ClassSplit split;
  if (2 * a > T) {
    // max in (T/2, 3T/4]: it alone is ĉ; rest is < T/2 since p(c) <= T.
    split = split_single(instance, jobs, top);
  } else if (4 * a > T) {
    // max in (T/4, T/2]: c' = {max}; order parts by load.
    split = split_single(instance, jobs, top);
    order_by_load(split);
  } else {
    // all jobs <= T/4: greedily fill c' until p(c') > T/4 (lands in
    // (T/4, T/2]); order parts by load.
    split = split_greedy_quarter(instance, jobs, T);
    order_by_load(split);
  }

  assert(split.check_load <= split.hat_load);
  assert(2 * split.check_load <= T);
  assert(4 * split.hat_load <= 3 * T);
  return split;
}

ClassSplit split_lemma10(const Instance& instance, ClassId c, Time T) {
  return split_lemma10_jobs(instance, instance.class_jobs(c), T);
}

ClassSplit split_lemma11_jobs(const Instance& instance,
                              std::span<const JobId> jobs, Time T) {
  const Time load = load_of(instance, jobs);
  assert(2 * load > T && 4 * load < 3 * T);
  assert(2 * max_of(instance, jobs) <= T);
  (void)load;

  const JobId top = max_job(instance, jobs);
  const Time a = instance.size(top);
  ClassSplit split;
  if (4 * a > T) {
    // max in (T/4, T/2].
    split = split_single(instance, jobs, top);
    order_by_load(split);
  } else {
    // all jobs <= T/4: greedy until > T/4.
    split = split_greedy_quarter(instance, jobs, T);
    order_by_load(split);
  }

  assert(split.check_load <= split.hat_load);
  assert(2 * split.hat_load <= T);
  assert(4 * split.hat_load > T);
  return split;
}

ClassSplit split_lemma11(const Instance& instance, ClassId c, Time T) {
  return split_lemma11_jobs(instance, instance.class_jobs(c), T);
}

}  // namespace msrs
