#include "core/lower_bounds.hpp"

#include <algorithm>

#include "util/selection.hpp"

namespace msrs {

LowerBounds lower_bounds(const Instance& instance) {
  LowerBounds lb;
  const int m = instance.machines();
  lb.area = instance.total_load() > 0
                ? ceil_div(instance.total_load(), m)
                : 0;
  for (ClassId c = 0; c < instance.num_classes(); ++c)
    lb.class_bound = std::max(lb.class_bound, instance.class_load(c));

  // Pairing bound: consider jobs j_m and j_{m+1} with the m-th and (m+1)-st
  // largest processing time. Either j_{m+1} shares a machine with one of the
  // m largest, or two of the m largest share a machine; either way
  // OPT >= p_(m) + p_(m+1).
  //
  // One selection instead of two: partition around the (m+1)-st largest
  // (ascending position q); p_(m) is then the minimum of the m larger
  // elements above q. The scratch buffer is reused across calls on each
  // thread — this runs once per solve in the engine's hot path.
  const auto n = static_cast<std::size_t>(instance.num_jobs());
  if (n >= static_cast<std::size_t>(m) + 1) {
    static thread_local std::vector<Time> scratch;
    const std::span<const Time> sizes = instance.sizes();
    scratch.assign(sizes.begin(), sizes.end());
    const std::size_t q = n - 1 - static_cast<std::size_t>(m);
    nth_element_mom(scratch, q);
    const Time pm1 = scratch[q];
    Time pm = scratch[q + 1];
    for (std::size_t i = q + 2; i < n; ++i) pm = std::min(pm, scratch[i]);
    lb.pair = pm + pm1;
  }

  lb.combined = std::max({lb.area, lb.class_bound, lb.pair});
  return lb;
}

}  // namespace msrs
