#include "core/schedule.hpp"

#include <algorithm>
#include <cstdio>

namespace msrs {

bool Schedule::complete() const {
  return std::all_of(machine_.begin(), machine_.end(),
                     [](int m) { return m != kUnassigned; });
}

void Schedule::rescale(Time factor) {
  scale_ = checked_mul(scale_, factor);
  for (auto& s : start_) s = checked_mul(s, factor);
}

Time Schedule::makespan_scaled(const Instance& instance) const {
  Time best = 0;
  for (JobId j = 0; j < num_jobs(); ++j)
    if (assigned(j)) best = std::max(best, end(instance, j));
  return best;
}

double Schedule::makespan(const Instance& instance) const {
  return static_cast<double>(makespan_scaled(instance)) /
         static_cast<double>(scale_);
}

std::vector<GanttBlock> Schedule::gantt_blocks(const Instance& instance,
                                               bool label_jobs) const {
  std::vector<GanttBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(num_jobs()));
  // One label = one allocation: format into a stack buffer instead of
  // concatenating temporaries (this loop is per-job on the render path).
  char label[16];
  for (JobId j = 0; j < num_jobs(); ++j) {
    if (!assigned(j)) continue;
    GanttBlock b;
    b.machine = machine(j);
    b.start = static_cast<double>(start(j)) / static_cast<double>(scale_);
    b.end = static_cast<double>(end(instance, j)) / static_cast<double>(scale_);
    if (label_jobs)
      std::snprintf(label, sizeof(label), "j%d", j);
    else
      std::snprintf(label, sizeof(label), "c%d", instance.job_class(j));
    b.label = label;
    blocks.push_back(std::move(b));
  }
  return blocks;
}

std::string Schedule::render(const Instance& instance, int width) const {
  GanttOptions opt;
  opt.width = width;
  const auto blocks = gantt_blocks(instance);
  return render_gantt(blocks, opt);
}

}  // namespace msrs
