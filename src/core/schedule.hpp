/// \file
/// Schedule (sigma, t): machine assignment and starting time per job, with an
/// integral time scale for exact rational positions (see core/types.hpp).
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "util/gantt.hpp"

namespace msrs {

/// A (possibly partial) schedule: per-job machine and scaled start time.
class Schedule {
 public:
  /// An empty schedule (0 jobs, scale 1).
  Schedule() = default;
  /// `num_jobs` unassigned jobs at the given time scale.
  explicit Schedule(int num_jobs, Time scale = 1)
      : scale_(scale),
        machine_(static_cast<std::size_t>(num_jobs), kUnassigned),
        start_(static_cast<std::size_t>(num_jobs), 0) {}

  /// The time scale: a stored time t means t/scale() instance units.
  Time scale() const noexcept { return scale_; }

  /// Number of jobs this schedule covers.
  int num_jobs() const noexcept { return static_cast<int>(machine_.size()); }

  /// True iff job `j` has a machine.
  bool assigned(JobId j) const {
    return machine_[static_cast<std::size_t>(j)] != kUnassigned;
  }
  /// Machine of job `j` (kUnassigned if none).
  int machine(JobId j) const { return machine_[static_cast<std::size_t>(j)]; }
  /// Start time in scaled units (divide by scale() for instance units).
  Time start(JobId j) const { return start_[static_cast<std::size_t>(j)]; }
  /// End time in scaled units; needs the instance for the job size.
  Time end(const Instance& instance, JobId j) const {
    return start(j) + checked_mul(instance.size(j), scale_);
  }

  /// Places job `j` on `machine` at scaled time `start_scaled`.
  void assign(JobId j, int machine, Time start_scaled) {
    machine_[static_cast<std::size_t>(j)] = machine;
    start_[static_cast<std::size_t>(j)] = start_scaled;
  }
  /// Removes job `j` from its machine.
  void unassign(JobId j) { machine_[static_cast<std::size_t>(j)] = kUnassigned; }

  /// Re-initializes to `num_jobs` unassigned jobs at `scale`, reusing the
  /// existing heap buffers when capacity allows (the allocation-free reset
  /// of the solver hot paths; see docs/benchmarking.md).
  void reset(int num_jobs, Time scale = 1) {
    scale_ = scale;
    machine_.assign(static_cast<std::size_t>(num_jobs), kUnassigned);
    start_.assign(static_cast<std::size_t>(num_jobs), 0);
  }

  /// True iff every job is assigned.
  bool complete() const;

  /// Multiplies the scale by `factor`, keeping all times fixed in scaled
  /// units semantics (i.e. all rational times are multiplied accordingly).
  /// Used by algorithms that place jobs at finer grids than instance units.
  void rescale(Time factor);

  /// Largest end time over assigned jobs, in scaled units.
  Time makespan_scaled(const Instance& instance) const;
  /// Makespan in instance units as a double (exact value is scaled/scale).
  double makespan(const Instance& instance) const;

  /// Gantt adapter: one block per assigned job, labelled "c<class>" by
  /// default ("j<job>" with `label_jobs`).
  std::vector<GanttBlock> gantt_blocks(const Instance& instance,
                                       bool label_jobs = false) const;
  /// ASCII gantt rendering, `width` characters wide.
  std::string render(const Instance& instance, int width = 72) const;

 private:
  Time scale_ = 1;
  std::vector<int> machine_;
  std::vector<Time> start_;
};

}  // namespace msrs
