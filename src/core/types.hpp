/// \file
/// Fundamental types for the MSRS problem model.
///
/// All processing times and schedule times are exact 64-bit integers. The
/// paper's algorithms place jobs at rational times (multiples of T/2, T/3,
/// epsilon*delta*T, ...); schedules therefore carry an integral `scale`
/// (core/schedule.hpp) so times stay exact: a stored time t represents
/// t/scale instance time units.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>

namespace msrs {

/// A processing time or schedule time (exact integer; scaled when rational).
using Time = std::int64_t;
/// Index of a job within an Instance.
using JobId = std::int32_t;
/// Index of a class (= its exclusive shared resource) within an Instance.
using ClassId = std::int32_t;

/// Sentinel: no such job.
inline constexpr JobId kInvalidJob = -1;
/// Sentinel: no such class.
inline constexpr ClassId kInvalidClass = -1;
/// Sentinel machine id of an unassigned job in a Schedule.
inline constexpr int kUnassigned = -1;

/// ceil(a / b) for a >= 0, b > 0.
constexpr Time ceil_div(Time a, Time b) noexcept {
  assert(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

/// floor(a / b) for a >= 0, b > 0.
constexpr Time floor_div(Time a, Time b) noexcept {
  assert(a >= 0 && b > 0);
  return a / b;
}

/// a * b with a debug-mode overflow assertion; instance sizes and scales
/// are small enough that release builds never overflow (documented limits:
/// total scaled load < 2^62).
constexpr Time checked_mul(Time a, Time b) noexcept {
  assert(b == 0 || std::abs(a) <= std::numeric_limits<Time>::max() / std::abs(b));
  return a * b;
}

}  // namespace msrs
