// Plain-text instance serialization (round-trip tested).
//
// Format:
//   msrs 1
//   machines <m>
//   classes <k>
//   class <n_0> p p p ...
//   ...
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/instance.hpp"

namespace msrs {

std::string to_text(const Instance& instance);
void write_text(std::ostream& out, const Instance& instance);

// Returns std::nullopt (and fills *error if given) on malformed input.
std::optional<Instance> from_text(const std::string& text,
                                  std::string* error = nullptr);
std::optional<Instance> read_text(std::istream& in,
                                  std::string* error = nullptr);

}  // namespace msrs
