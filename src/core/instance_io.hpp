/// \file
/// Plain-text instance serialization (round-trip tested).
///
/// Format (one instance):
/// \verbatim
///   msrs 1
///   machines <m>
///   classes <k>
///   class <n_0> p p p ...
///   ...
/// \endverbatim
///
/// A *corpus* is simply instances concatenated in one stream; `read_corpus`
/// parses them all, which is what `msrs_engine_cli generate` emits and
/// `msrs_engine_cli solve --file=-` consumes.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.hpp"

namespace msrs {

/// Version of the text format this build reads and writes (the integer in
/// the `msrs 1` header line). Reported by `msrs_engine_cli version` next to
/// the bench-JSON and wire-protocol schema versions.
inline constexpr int kInstanceFormatVersion = 1;

/// Renders one instance as a text document.
std::string to_text(const Instance& instance);

/// Streams one instance as a text document.
void write_text(std::ostream& out, const Instance& instance);

/// Parses exactly one instance; trailing content is an error. Returns
/// std::nullopt (and fills *error if given) on malformed input.
std::optional<Instance> from_text(const std::string& text,
                                  std::string* error = nullptr);

/// Stream variant of from_text.
std::optional<Instance> read_text(std::istream& in,
                                  std::string* error = nullptr);

/// Parses a whole corpus: zero or more concatenated instances until EOF.
/// Returns std::nullopt on the first malformed instance (the error message
/// is prefixed with its position in the corpus).
std::optional<std::vector<Instance>> read_corpus(
    std::istream& in, std::string* error = nullptr);

}  // namespace msrs
