/// \file
/// Class splitting lemmas (paper Lemmas 5, 10, 11).
///
/// All thresholds are fractions of a scale value T; comparisons are done in
/// exact integer arithmetic (e.g. "p(c1) >= T/3" is "3*p(c1) >= T").
#pragma once

#include <span>
#include <vector>

#include "core/instance.hpp"

namespace msrs {

/// A two-way split of a class's job set.
struct ClassSplit {
  std::vector<JobId> hat;    ///< the larger part (paper: c1 / ĉ)
  std::vector<JobId> check;  ///< the smaller part (paper: c2 / č); may be empty
  Time hat_load = 0;         ///< p(hat)
  Time check_load = 0;       ///< p(check)
};

/// Lemma 5: for a class c with p(c) > (2/3)T and no job > T/2, partitions c
/// into c1, c2 with T/3 <= p(c1) <= (2/3)T and p(c2) <= (2/3)T.
/// Returned with hat = c1 (the part with load >= T/3).
ClassSplit split_lemma5(const Instance& instance, ClassId c, Time T);

/// Lemma 10: for a class c with p(c) >= (3/4)T and max job <= (3/4)T,
/// partitions c into ĉ, č with p(č) <= p(ĉ), p(č) <= T/2, p(ĉ) <= (3/4)T.
/// If additionally max job <= T/2, one of the parts has load in (T/4, T/2].
ClassSplit split_lemma10(const Instance& instance, ClassId c, Time T);

/// Lemma 11: for a class c with p(c) in (T/2, (3/4)T) and max job <= T/2,
/// partitions c into ĉ, č with p(č) <= p(ĉ) <= T/2 and p(ĉ) > T/4.
ClassSplit split_lemma11(const Instance& instance, ClassId c, Time T);

/// Span-based variant of split_lemma10 operating on an arbitrary job set
/// (used by Algorithm_3/2, which splits residual class fragments).
ClassSplit split_lemma10_jobs(const Instance& instance,
                              std::span<const JobId> jobs, Time T);
/// Span-based variant of split_lemma11.
ClassSplit split_lemma11_jobs(const Instance& instance,
                              std::span<const JobId> jobs, Time T);

}  // namespace msrs
