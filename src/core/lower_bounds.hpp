/// \file
/// Lower bounds on the optimal makespan (paper: Note 1 and Lemma 9).
#pragma once

#include "core/instance.hpp"

namespace msrs {

/// The Note-1 lower bounds on OPT.
struct LowerBounds {
  /// ceil(p(J)/m): average machine load, rounded up (OPT is integral).
  Time area = 0;
  /// max_c p(c): one resource can only run one job at a time.
  Time class_bound = 0;
  /// p_(m) + p_(m+1): the (m+1) largest jobs cannot all run pairwise
  /// disjoint on m machines / with distinct resources (Note 1 discussion).
  /// Zero when n <= m.
  Time pair = 0;
  /// max of the above; this is the paper's T of Theorem 2.
  Time combined = 0;
};

/// Computes all bounds in O(n) using median-of-medians selection.
LowerBounds lower_bounds(const Instance& instance);

}  // namespace msrs
