#include "core/validate.hpp"

#include <algorithm>
#include <cstdio>

namespace msrs {
namespace {

std::string interval_str(const Instance& instance, const Schedule& schedule,
                         JobId j) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "job %d (class %d) @ m%d [%lld, %lld)/%lld",
                j, instance.job_class(j), schedule.machine(j),
                static_cast<long long>(schedule.start(j)),
                static_cast<long long>(schedule.end(instance, j)),
                static_cast<long long>(schedule.scale()));
  return buf;
}

// Checks pairwise overlap within one group of jobs, sorted by start.
void check_group(const Instance& instance, const Schedule& schedule,
                 std::vector<JobId>& group, Violation::Kind kind,
                 std::vector<Violation>& out) {
  std::sort(group.begin(), group.end(), [&](JobId x, JobId y) {
    return schedule.start(x) < schedule.start(y);
  });
  for (std::size_t i = 1; i < group.size(); ++i) {
    const JobId prev = group[i - 1];
    const JobId cur = group[i];
    if (schedule.end(instance, prev) > schedule.start(cur)) {
      out.push_back({kind, prev, cur,
                     interval_str(instance, schedule, prev) + " overlaps " +
                         interval_str(instance, schedule, cur)});
    }
  }
}

}  // namespace

ValidationReport validate(const Instance& instance, const Schedule& schedule,
                          Time makespan_limit_scaled) {
  ValidationReport report;
  auto& out = report.violations;

  std::vector<std::vector<JobId>> per_machine(
      static_cast<std::size_t>(instance.machines()));
  std::vector<std::vector<JobId>> per_class(
      static_cast<std::size_t>(instance.num_classes()));

  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    if (!schedule.assigned(j)) {
      out.push_back({Violation::Kind::kUnassignedJob, j, kInvalidJob,
                     "job " + std::to_string(j) + " unassigned"});
      continue;
    }
    const int machine = schedule.machine(j);
    if (machine < 0 || machine >= instance.machines()) {
      out.push_back({Violation::Kind::kBadMachine, j, kInvalidJob,
                     "job " + std::to_string(j) + " on machine " +
                         std::to_string(machine)});
      continue;
    }
    if (schedule.start(j) < 0) {
      out.push_back({Violation::Kind::kNegativeStart, j, kInvalidJob,
                     interval_str(instance, schedule, j)});
      continue;
    }
    if (makespan_limit_scaled >= 0 &&
        schedule.end(instance, j) > makespan_limit_scaled) {
      out.push_back({Violation::Kind::kMakespanExceeded, j, kInvalidJob,
                     interval_str(instance, schedule, j) + " exceeds limit " +
                         std::to_string(makespan_limit_scaled)});
    }
    per_machine[static_cast<std::size_t>(machine)].push_back(j);
    per_class[static_cast<std::size_t>(instance.job_class(j))].push_back(j);
  }

  for (auto& group : per_machine)
    check_group(instance, schedule, group, Violation::Kind::kMachineOverlap, out);
  for (auto& group : per_class)
    check_group(instance, schedule, group, Violation::Kind::kClassOverlap, out);

  return report;
}

std::string ValidationReport::summary() const {
  if (ok()) return "valid";
  std::string s = std::to_string(violations.size()) + " violation(s):";
  const std::size_t show = std::min<std::size_t>(violations.size(), 8);
  for (std::size_t i = 0; i < show; ++i) s += "\n  " + violations[i].detail;
  if (violations.size() > show) s += "\n  ...";
  return s;
}

bool is_valid(const Instance& instance, const Schedule& schedule) {
  return validate(instance, schedule).ok();
}

}  // namespace msrs
