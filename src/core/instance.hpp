/// \file
/// The MSRS problem instance: m identical machines and jobs partitioned into
/// classes, one exclusive shared resource per class (paper, Section 1).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace msrs {

/// The problem instance. Immutable after construction via the builder
/// methods; all aggregates (class loads, class maxima, total load) are
/// maintained incrementally so algorithms can query them in O(1).
class Instance {
 public:
  /// An empty instance (1 machine, no jobs); populate via the builder.
  Instance() = default;

  /// Convenience: build from per-class job size lists.
  Instance(int machines, const std::vector<std::vector<Time>>& class_sizes);

  /// \name Builder
  /// @{

  /// Sets the machine count (>= 1).
  void set_machines(int machines);
  /// Appends an empty class; returns its id.
  ClassId add_class();
  /// Appends a job of `size` to class `c`; returns its id.
  JobId add_job(ClassId c, Time size);
  /// Adds a whole class at once, returns its id.
  ClassId add_class(std::span<const Time> sizes);
  /// @}

  /// \name Queries
  /// @{

  /// Machine count m.
  int machines() const noexcept { return machines_; }
  /// Job count n.
  int num_jobs() const noexcept { return static_cast<int>(size_.size()); }
  /// Class count |C|.
  int num_classes() const noexcept { return static_cast<int>(members_.size()); }

  /// Processing time p_j.
  Time size(JobId j) const { return size_[static_cast<std::size_t>(j)]; }
  /// The class of job `j`.
  ClassId job_class(JobId j) const { return cls_[static_cast<std::size_t>(j)]; }
  /// The jobs of class `c`, in insertion order.
  const std::vector<JobId>& class_jobs(ClassId c) const {
    return members_[static_cast<std::size_t>(c)];
  }

  /// p(c): total processing time of class c.
  Time class_load(ClassId c) const { return load_[static_cast<std::size_t>(c)]; }
  /// max_{j in c} p_j.
  Time class_max(ClassId c) const { return max_[static_cast<std::size_t>(c)]; }
  /// p(J): total processing time of all jobs.
  Time total_load() const noexcept { return total_; }
  /// max_j p_j.
  Time max_size() const noexcept { return max_size_; }

  /// All job sizes, indexed by JobId.
  std::span<const Time> sizes() const noexcept { return size_; }
  /// @}

  /// Returns an empty string if the instance is well-formed, else a
  /// description of the first problem (machines >= 1, every class non-empty,
  /// every size >= 1). Zero-size jobs are excluded WLOG: they can always be
  /// appended at time 0 on any machine of a valid schedule.
  std::string check() const;

  /// Human-readable one-line summary ("n=.. m=.. classes=.. p(J)=..").
  std::string summary() const;

 private:
  int machines_ = 1;
  std::vector<Time> size_;
  std::vector<ClassId> cls_;
  std::vector<std::vector<JobId>> members_;
  std::vector<Time> load_;
  std::vector<Time> max_;
  Time total_ = 0;
  Time max_size_ = 0;
};

}  // namespace msrs
