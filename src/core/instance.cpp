#include "core/instance.hpp"

#include <algorithm>
#include <cstdio>

namespace msrs {

Instance::Instance(int machines,
                   const std::vector<std::vector<Time>>& class_sizes) {
  set_machines(machines);
  for (const auto& sizes : class_sizes) add_class(sizes);
}

void Instance::set_machines(int machines) { machines_ = machines; }

ClassId Instance::add_class() {
  members_.emplace_back();
  load_.push_back(0);
  max_.push_back(0);
  return static_cast<ClassId>(members_.size() - 1);
}

JobId Instance::add_job(ClassId c, Time size) {
  const auto job = static_cast<JobId>(size_.size());
  size_.push_back(size);
  cls_.push_back(c);
  members_[static_cast<std::size_t>(c)].push_back(job);
  load_[static_cast<std::size_t>(c)] += size;
  max_[static_cast<std::size_t>(c)] =
      std::max(max_[static_cast<std::size_t>(c)], size);
  total_ += size;
  max_size_ = std::max(max_size_, size);
  return job;
}

ClassId Instance::add_class(std::span<const Time> sizes) {
  const ClassId c = add_class();
  for (Time p : sizes) add_job(c, p);
  return c;
}

std::string Instance::check() const {
  if (machines_ < 1) return "machines must be >= 1";
  for (std::size_t c = 0; c < members_.size(); ++c)
    if (members_[c].empty())
      return "class " + std::to_string(c) + " is empty";
  for (std::size_t j = 0; j < size_.size(); ++j)
    if (size_[j] < 1)
      return "job " + std::to_string(j) + " has size < 1";
  return {};
}

std::string Instance::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%d m=%d classes=%d p(J)=%lld max_p=%lld",
                num_jobs(), machines(), num_classes(),
                static_cast<long long>(total_),
                static_cast<long long>(max_size_));
  return buf;
}

}  // namespace msrs
