#include "core/instance_io.hpp"

#include <sstream>

namespace msrs {

void write_text(std::ostream& out, const Instance& instance) {
  out << "msrs 1\n";
  out << "machines " << instance.machines() << '\n';
  out << "classes " << instance.num_classes() << '\n';
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    const auto& jobs = instance.class_jobs(c);
    out << "class " << jobs.size();
    for (JobId j : jobs) out << ' ' << instance.size(j);
    out << '\n';
  }
}

std::string to_text(const Instance& instance) {
  std::ostringstream out;
  write_text(out, instance);
  return out.str();
}

std::optional<Instance> read_text(std::istream& in, std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<Instance> {
    if (error) *error = message;
    return std::nullopt;
  };

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "msrs" || version != 1)
    return fail("bad header (expected 'msrs 1')");

  std::string key;
  int machines = 0;
  if (!(in >> key >> machines) || key != "machines" || machines < 1)
    return fail("bad 'machines' line");
  int num_classes = 0;
  if (!(in >> key >> num_classes) || key != "classes" || num_classes < 0)
    return fail("bad 'classes' line");

  Instance instance;
  instance.set_machines(machines);
  for (int c = 0; c < num_classes; ++c) {
    std::size_t count = 0;
    if (!(in >> key >> count) || key != "class")
      return fail("bad 'class' line for class " + std::to_string(c));
    const ClassId cls = instance.add_class();
    for (std::size_t i = 0; i < count; ++i) {
      Time p = 0;
      if (!(in >> p) || p < 1)
        return fail("bad job size in class " + std::to_string(c));
      instance.add_job(cls, p);
    }
  }
  const std::string problem = instance.check();
  if (!problem.empty()) return fail(problem);
  return instance;
}

std::optional<Instance> from_text(const std::string& text, std::string* error) {
  std::istringstream in(text);
  return read_text(in, error);
}

}  // namespace msrs
