#include "core/instance_io.hpp"

#include <limits>
#include <sstream>

namespace msrs {

void write_text(std::ostream& out, const Instance& instance) {
  out << "msrs 1\n";
  out << "machines " << instance.machines() << '\n';
  out << "classes " << instance.num_classes() << '\n';
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    const auto& jobs = instance.class_jobs(c);
    out << "class " << jobs.size();
    for (JobId j : jobs) out << ' ' << instance.size(j);
    out << '\n';
  }
}

std::string to_text(const Instance& instance) {
  std::ostringstream out;
  write_text(out, instance);
  return out.str();
}

namespace {

// Parses one instance. Returns 1 on success, 0 on clean EOF before the
// header (end of a corpus), -1 on malformed input (*error describes it).
// Consumes nothing past the instance's own tokens, so concatenated
// instances parse by repeated calls.
int read_one(std::istream& in, Instance* out, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return -1;
  };
  // Echoes the offending token back in the error, so a typo in a keyword is
  // distinguishable from a truncated file.
  auto expect_key = [&](const char* wanted, std::string* got) {
    *got = {};
    if (!(in >> *got)) return false;
    return *got == wanted;
  };

  std::string token;
  if (!expect_key("msrs", &token)) {
    if (token.empty()) return 0;  // clean EOF: no (further) instance
    return fail("bad header: expected 'msrs', got '" + token + "'");
  }
  long long version = 0;
  if (!(in >> version) || version != 1)
    return fail("unsupported format version (expected 1)");

  long long machines = 0;
  if (!expect_key("machines", &token))
    return fail(token.empty()
                    ? "missing 'machines <m>' line"
                    : "expected 'machines', got '" + token + "'");
  if (!(in >> machines)) return fail("machine count is not a number");
  if (machines < 1)
    return fail("machine count must be >= 1, got " + std::to_string(machines));
  if (machines > std::numeric_limits<int>::max())
    return fail("machine count " + std::to_string(machines) +
                " exceeds the supported maximum");

  long long num_classes = 0;
  if (!expect_key("classes", &token))
    return fail(token.empty() ? "missing 'classes <k>' line"
                              : "expected 'classes', got '" + token + "'");
  if (!(in >> num_classes) || num_classes < 0)
    return fail("class count must be a number >= 0");

  Instance instance;
  instance.set_machines(static_cast<int>(machines));
  for (long long c = 0; c < num_classes; ++c) {
    if (!expect_key("class", &token))
      return fail("class " + std::to_string(c) +
                  (token.empty() ? ": missing 'class' line (file declares " +
                                       std::to_string(num_classes) +
                                       " classes)"
                                 : ": expected 'class', got '" + token + "'"));
    long long count = 0;
    if (!(in >> count)) return fail("class " + std::to_string(c) +
                                    ": job count is not a number");
    if (count < 1)
      return fail("class " + std::to_string(c) +
                  (count == 0 ? " is empty (every class needs >= 1 job)"
                              : ": job count must be >= 1, got " +
                                    std::to_string(count)));
    const ClassId cls = instance.add_class();
    for (long long i = 0; i < count; ++i) {
      Time p = 0;
      if (!(in >> p))
        return fail("class " + std::to_string(c) + ": job " +
                    std::to_string(i) + " of " + std::to_string(count) +
                    " is missing or not a number");
      if (p < 1)
        return fail("class " + std::to_string(c) + ": job size " +
                    std::to_string(p) + " < 1");
      instance.add_job(cls, p);
    }
  }
  const std::string problem = instance.check();
  if (!problem.empty()) return fail(problem);
  *out = std::move(instance);
  return 1;
}

}  // namespace

std::optional<Instance> read_text(std::istream& in, std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<Instance> {
    if (error) *error = message;
    return std::nullopt;
  };
  Instance instance;
  const int status = read_one(in, &instance, error);
  if (status == 0) return fail("empty input: missing 'msrs 1' header");
  if (status < 0) return std::nullopt;
  std::string token;
  if (in >> token)
    return fail("trailing garbage after " +
                std::to_string(instance.num_classes()) + " classes: '" +
                token + "'");
  return instance;
}

std::optional<std::vector<Instance>> read_corpus(std::istream& in,
                                                 std::string* error) {
  std::vector<Instance> corpus;
  for (;;) {
    Instance instance;
    const int status = read_one(in, &instance, error);
    if (status == 0) return corpus;
    if (status < 0) {
      if (error)
        *error = "corpus instance " + std::to_string(corpus.size()) + ": " +
                 *error;
      return std::nullopt;
    }
    corpus.push_back(std::move(instance));
  }
}

std::optional<Instance> from_text(const std::string& text, std::string* error) {
  std::istringstream in(text);
  return read_text(in, error);
}

}  // namespace msrs
