// Total-completion-time variant of MSRS (paper Section 1, "further related
// work": Janssen et al. [23, 24] study P|res.111|sum C_j motivated by
// photolithography scheduling; the SPT-style approach that is optimal
// without resources yields a (2 - 1/m)-approximation with them).
#pragma once

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

// sum over jobs of (finish time), exact in scaled units divided by scale.
double total_completion_time(const Instance& instance,
                             const Schedule& schedule);

// Scaled-integer exact variant: sum of scaled completion times.
Time total_completion_time_scaled(const Instance& instance,
                                  const Schedule& schedule);

// SPT list scheduling with resource awareness: jobs in non-decreasing size
// order, each started at the earliest feasible time (machine + resource).
// This mirrors the (2 - 1/m)-approximation discussed in [24].
AlgoResult spt_completion(const Instance& instance);

// Lower bound on the optimal total completion time: the resource-free SPT
// relaxation (optimal for P||sumCj by Conway et al.) plus the per-class
// serialization bound; the maximum of both.
Time completion_time_lower_bound(const Instance& instance);

}  // namespace msrs
