#include "ext/completion_time.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace msrs {

Time total_completion_time_scaled(const Instance& instance,
                                  const Schedule& schedule) {
  Time total = 0;
  for (JobId j = 0; j < instance.num_jobs(); ++j)
    if (schedule.assigned(j)) total += schedule.end(instance, j);
  return total;
}

double total_completion_time(const Instance& instance,
                             const Schedule& schedule) {
  return static_cast<double>(total_completion_time_scaled(instance, schedule)) /
         static_cast<double>(schedule.scale());
}

AlgoResult spt_completion(const Instance& instance) {
  AlgoResult result;
  result.name = "spt_completion";
  result.schedule = Schedule(instance.num_jobs(), /*scale=*/1);
  result.lower_bound = completion_time_lower_bound(instance);

  std::vector<JobId> order(static_cast<std::size_t>(instance.num_jobs()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return instance.size(a) < instance.size(b);  // shortest first
  });

  std::vector<Time> machine_free(static_cast<std::size_t>(instance.machines()),
                                 0);
  std::vector<Time> class_free(static_cast<std::size_t>(instance.num_classes()),
                               0);
  for (JobId j : order) {
    const auto c = static_cast<std::size_t>(instance.job_class(j));
    std::size_t best = 0;
    for (std::size_t k = 1; k < machine_free.size(); ++k)
      if (machine_free[k] < machine_free[best]) best = k;
    const Time start = std::max(machine_free[best], class_free[c]);
    result.schedule.assign(j, static_cast<int>(best), start);
    machine_free[best] = start + instance.size(j);
    class_free[c] = start + instance.size(j);
  }
  return result;
}

Time completion_time_lower_bound(const Instance& instance) {
  // Relaxation 1: ignore resources; SPT on identical machines is optimal
  // (jobs sorted ascending; the k-th shortest job on a machine contributes
  // its size times its position from the back).
  std::vector<Time> sizes(instance.sizes().begin(), instance.sizes().end());
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const auto m = static_cast<std::size_t>(instance.machines());
  Time spt = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i)
    spt += static_cast<Time>(i / m + 1) * sizes[i];

  // Relaxation 2: each class on its own serial resource; jobs of a class in
  // SPT order give sum_k (position from front) * size.
  Time class_serial = 0;
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    std::vector<Time> in_class;
    for (JobId j : instance.class_jobs(c)) in_class.push_back(instance.size(j));
    std::sort(in_class.begin(), in_class.end());
    Time finish = 0;
    for (Time p : in_class) {
      finish += p;
      class_serial += finish;
    }
  }
  // class_serial counts every job; spt counts every job: both are valid
  // lower bounds on the total completion time.
  return std::max(spt, class_serial);
}

}  // namespace msrs
