// Exact feasibility solver for the configuration IP (paper Section 4.2),
// exploiting interval structure.
//
// Key observation: a multiset of windows (intervals over layers) can be
// covered by m configurations — i.e. partitioned into m sets of pairwise
// disjoint windows — if and only if no layer is covered more than m times
// (interval graphs are perfect: chromatic number equals clique number).
// Constraint (1)+(2) of the IP therefore reduce to per-layer capacity m,
// and feasibility becomes: choose windows per class (constraints (3),(4))
// such that every layer's total load is at most m.
//
// This is solved exactly by depth-first search over classes with memoization
// of failed residual-capacity states. Worst-case exponential in the
// parameter quantities |Xi| and |P| — exactly like the N-fold machinery the
// paper invokes — but linear-ish in the number of classes in practice.
#pragma once

#include <cstdint>

#include "ptas/layered.hpp"

namespace msrs {

enum class LayerFeasibility { kFeasible, kInfeasible, kUnknown };

struct LayerSolverOptions {
  std::uint64_t node_budget = 4'000'000;
};

// If feasible and `solution` is non-null, fills one window set per class
// (matching the demand multiset, pairwise disjoint within a class, per-layer
// load <= m). kUnknown means the node budget was exhausted.
LayerFeasibility solve_layers(const LayeredProblem& problem,
                              LayeredSolution* solution,
                              const LayerSolverOptions& options = {});

}  // namespace msrs
