#include "ptas/eptas.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>
#include <queue>

#include "algo/three_halves.hpp"
#include "core/lower_bounds.hpp"
#include "ptas/layer_solver.hpp"
#include "ptas/layered.hpp"
#include "ptas/params.hpp"
#include "ptas/simplify.hpp"

namespace msrs {
namespace {

struct Attempt {
  PtasParams params;
  Simplified simplified;
  LayeredProblem layered;
  LayeredSolution solution;
};

// Tests IP feasibility at guess T; fills `attempt` on success.
bool test_guess(const Instance& instance, const EptasOptions& options, Time T,
                Attempt* attempt) {
  attempt->params = choose_params(instance, options.e, T, options.m_constant);
  attempt->simplified = simplify(instance, attempt->params);
  attempt->layered =
      build_layered(attempt->simplified, attempt->params, instance.machines());
  LayerSolverOptions solver_options;
  solver_options.node_budget = options.layer_budget;
  return solve_layers(attempt->layered, &attempt->solution, solver_options) ==
         LayerFeasibility::kFeasible;
}

// Reconstruction: layered solution -> schedule (scale e, pre-stretched).
class Reconstructor {
 public:
  Reconstructor(const Instance& instance, const EptasOptions& options,
                Attempt attempt)
      : inst_(instance),
        at_(std::move(attempt)),
        e_(options.e),
        slot_(at_.params.w * (options.e + 1)) {}

  EptasResult run() {
    EptasResult result;
    result.guess = at_.params.T;
    result.schedule = Schedule(inst_.num_jobs(), /*scale=*/e_);
    sched_ = &result.schedule;

    const int m = inst_.machines();
    machine_busy_layers_.assign(static_cast<std::size_t>(m),
                                std::vector<bool>(
                                    static_cast<std::size_t>(at_.layered.layers),
                                    false));

    assign_windows_to_machines();
    place_big_and_placeholders();
    place_orphans();
    place_tails();
    const int aug = place_augmented();
    result.machines_used = m + aug;
    return result;
  }

 private:
  // Interval partitioning: windows sorted by start layer are assigned to
  // machines greedily; the per-layer capacity m guaranteed by the solver
  // makes this always succeed (interval graphs are perfect).
  void assign_windows_to_machines() {
    struct Item {
      int start, len;
      int class_index;  // index into at_.simplified.classes
    };
    std::vector<Item> items;
    for (std::size_t c = 0; c < at_.solution.windows.size(); ++c)
      for (const auto& [start, len] : at_.solution.windows[c])
        items.push_back({start, len, static_cast<int>(c)});
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      return a.start != b.start ? a.start < b.start : a.len > b.len;
    });
    // min-heap over (free layer, machine)
    std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                        std::greater<>> free_at;
    for (int k = 0; k < inst_.machines(); ++k) free_at.emplace(0, k);
    class_windows_.assign(at_.solution.windows.size(), {});
    for (std::size_t i = 0; i < items.size(); ++i) {
      auto [free_layer, machine] = free_at.top();
      free_at.pop();
      assert(free_layer <= items[i].start);
      class_windows_[static_cast<std::size_t>(items[i].class_index)].push_back(
          {items[i].start, items[i].len, machine});
      for (int l = items[i].start; l < items[i].start + items[i].len; ++l)
        machine_busy_layers_[static_cast<std::size_t>(machine)]
                            [static_cast<std::size_t>(l)] = true;
      free_at.emplace(items[i].start + items[i].len, machine);
    }
  }

  Time layer_start(int layer) const {
    return static_cast<Time>(layer) * slot_;
  }

  // Big jobs go to the start of their slot; placeholder slots are refilled
  // greedily with the class's original small jobs; hosted smalls follow
  // their class's first big job inside its slot.
  void place_big_and_placeholders() {
    for (std::size_t c = 0; c < at_.simplified.classes.size(); ++c) {
      const SimpClass& simp = at_.simplified.classes[c];
      auto windows = class_windows_[c];  // copy: we consume it
      // Long windows for big jobs (longest big job takes longest window).
      std::vector<std::size_t> big_order(simp.big_jobs.size());
      std::iota(big_order.begin(), big_order.end(), 0u);
      std::sort(big_order.begin(), big_order.end(),
                [&](std::size_t a, std::size_t b) {
                  return simp.big_len[a] > simp.big_len[b];
                });
      std::sort(windows.begin(), windows.end(),
                [](const Win& a, const Win& b) { return a.len > b.len; });
      std::size_t next_window = 0;
      first_big_slot_end_.push_back(-1);
      first_big_job_end_.push_back(-1);
      first_big_machine_.push_back(-1);
      for (std::size_t bi : big_order) {
        assert(next_window < windows.size());
        const Win win = windows[next_window++];
        assert(win.len == simp.big_len[bi]);
        const JobId j = simp.big_jobs[bi];
        const Time start = layer_start(win.start);
        sched_->assign(j, win.machine, start);
        const Time job_end = start + inst_.size(j) * e_;
        if (first_big_slot_end_.back() < 0) {
          first_big_slot_end_.back() = layer_start(win.start + win.len);
          first_big_job_end_.back() = job_end;
          first_big_machine_.back() = win.machine;
        }
      }
      // Remaining windows are the width-1 placeholder slots.
      std::deque<JobId> queue(simp.placeholder_smalls.begin(),
                              simp.placeholder_smalls.end());
      for (; next_window < windows.size(); ++next_window) {
        const Win win = windows[next_window];
        assert(win.len == 1);
        Time cursor = layer_start(win.start);
        const Time slot_end = layer_start(win.start + 1);
        while (!queue.empty() &&
               cursor + inst_.size(queue.front()) * e_ <= slot_end) {
          sched_->assign(queue.front(), win.machine, cursor);
          cursor += inst_.size(queue.front()) * e_;
          queue.pop_front();
        }
      }
      // The arithmetic of Lemma 19 guarantees the queue drains (each slot
      // absorbs >= w*e load because w >= e*mu*T). Defensive: anything left
      // becomes a tail group of its own (same class => one glued block).
      if (!queue.empty()) {
        assert(false && "placeholder refill should always drain");
        at_.simplified.tail_groups.emplace_back(queue.begin(), queue.end());
      }
    }
    // Hosted smalls: right after the first big job inside its slot.
    for (const auto& [class_index, jobs] : at_.simplified.hosted_smalls) {
      const auto ci = static_cast<std::size_t>(class_index);
      Time cursor = first_big_job_end_[ci];
      const int machine = first_big_machine_[ci];
      assert(machine >= 0);
      for (JobId j : jobs) {
        sched_->assign(j, machine, cursor);
        cursor += inst_.size(j) * e_;
      }
      assert(cursor <= first_big_slot_end_[ci]);
    }
  }

  // Orphan groups (classes that vanished from I3, load <= mu*T each) are
  // packed into free slots; a free slot holds at least one group since
  // e*mu*T <= w < slot width.
  void place_orphans() {
    std::deque<std::vector<JobId>> queue(at_.simplified.orphan_groups.begin(),
                                         at_.simplified.orphan_groups.end());
    if (queue.empty()) return;
    for (int machine = 0; machine < inst_.machines() && !queue.empty();
         ++machine) {
      for (int layer = 0; layer < at_.layered.layers && !queue.empty();
           ++layer) {
        if (machine_busy_layers_[static_cast<std::size_t>(machine)]
                                [static_cast<std::size_t>(layer)])
          continue;
        Time cursor = layer_start(layer);
        const Time slot_end = layer_start(layer + 1);
        while (!queue.empty()) {
          Time group_load = 0;
          for (JobId j : queue.front()) group_load += inst_.size(j) * e_;
          if (cursor + group_load > slot_end) break;
          for (JobId j : queue.front()) {
            sched_->assign(j, machine, cursor);
            cursor += inst_.size(j) * e_;
          }
          queue.pop_front();
        }
      }
    }
    assert(queue.empty() && "orphan groups must fit into free slots");
  }

  // Tail groups appended after the grid (Lemmas 15/16/19): one glued block
  // per class, machines filled round-robin with ~eps*T extra budget each.
  void place_tails() {
    auto groups = at_.simplified.tail_groups;
    if (groups.empty()) return;
    std::sort(groups.begin(), groups.end(),
              [&](const std::vector<JobId>& a, const std::vector<JobId>& b) {
                Time la = 0, lb = 0;
                for (JobId j : a) la += inst_.size(j);
                for (JobId j : b) lb += inst_.size(j);
                return la > lb;
              });
    const Time tail_start = layer_start(at_.layered.layers);
    // eps*T in scale-e units is exactly T.
    const Time budget = at_.params.T;
    int machine = 0;
    Time cursor = tail_start;
    for (const auto& group : groups) {
      if (at_.params.m_constant) {
        // Lemma 15: everything on one machine.
        machine = 0;
      } else if (cursor - tail_start >= budget) {
        ++machine;
        assert(machine < inst_.machines());
        cursor = tail_start;
      }
      for (JobId j : group) {
        sched_->assign(j, machine, cursor);
        cursor += inst_.size(j) * e_;
      }
    }
  }

  // Lemma 16: heavy-medium classes, one per extra machine. Returns the
  // number of extra machines used.
  int place_augmented() {
    int extra = 0;
    for (ClassId c : at_.simplified.aug_classes) {
      const int machine = inst_.machines() + extra;
      Time cursor = 0;
      for (JobId j : inst_.class_jobs(c)) {
        sched_->assign(j, machine, cursor);
        cursor += inst_.size(j) * e_;
      }
      ++extra;
    }
    return extra;
  }

  struct Win {
    int start, len, machine;
  };

  const Instance& inst_;
  Attempt at_;
  int e_;
  Time slot_;  // stretched slot width w*(e+1), scale-e units
  Schedule* sched_ = nullptr;
  std::vector<std::vector<bool>> machine_busy_layers_;
  std::vector<std::vector<Win>> class_windows_;
  std::vector<Time> first_big_slot_end_, first_big_job_end_;
  std::vector<int> first_big_machine_;
};

}  // namespace

EptasResult eptas(const Instance& instance, const EptasOptions& options) {
  assert(options.e >= 2);
  EptasResult result;
  if (instance.num_jobs() == 0) {
    result.schedule = Schedule(0, 1);
    result.machines_used = instance.machines();
    return result;
  }
  if (instance.machines() >= instance.num_classes()) {
    const AlgoResult trivial = one_machine_per_class(instance);
    result.schedule = trivial.schedule;
    result.guess = trivial.lower_bound;
    result.machines_used = instance.machines();
    return result;
  }

  const AlgoResult fallback = three_halves(instance);
  Time lo = lower_bounds(instance).combined;
  Time hi = ceil_div(fallback.schedule.makespan_scaled(instance),
                     fallback.schedule.scale());

  // Binary search: the feasibility test holds for every T >= OPT, so the
  // accepted value never exceeds OPT when the test is exact.
  Attempt accepted;
  bool have_accepted = false;
  if (Attempt attempt; test_guess(instance, options, hi, &attempt)) {
    accepted = std::move(attempt);
    have_accepted = true;
  }
  if (!have_accepted) {
    // Budget exhausted even at the safe upper bound: fall back.
    result.schedule = fallback.schedule;
    result.guess = fallback.lower_bound;
    result.machines_used = instance.machines();
    result.used_fallback = true;
    return result;
  }
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    Attempt attempt;
    if (test_guess(instance, options, mid, &attempt)) {
      accepted = std::move(attempt);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  Reconstructor reconstructor(instance, options, std::move(accepted));
  result = reconstructor.run();

  // Never regress behind the 3/2 algorithm: return whichever schedule is
  // better (both are valid; the PTAS bound only bites for small eps).
  const double ptas_ms = result.schedule.makespan(instance);
  const double fallback_ms = fallback.schedule.makespan(instance);
  if (result.machines_used <= instance.machines() && fallback_ms < ptas_ms) {
    result.schedule = fallback.schedule;
    result.used_fallback = true;
  }
  return result;
}

}  // namespace msrs
