#include "ptas/layered.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace msrs {

long long LayeredProblem::total_slots() const {
  long long total = 0;
  for (const auto& demands : class_demands)
    for (const auto& d : demands)
      total += static_cast<long long>(d.len) * d.count;
  return total;
}

std::string LayeredProblem::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "layers=%d machines=%d classes=%zu slots=%lld",
                layers, machines, class_demands.size(), total_slots());
  return buf;
}

LayeredProblem build_layered(const Simplified& simplified,
                             const PtasParams& params, int machines) {
  LayeredProblem problem;
  problem.machines = machines;
  // T' = (1+2eps)T = T(e+2)/e ; layers = ceil(T' / w).
  problem.layers = static_cast<int>(
      ceil_div(params.T * (params.e + 2), params.e * params.w));

  for (const auto& simp : simplified.classes) {
    std::map<int, int> by_len;
    for (int len : simp.big_len) ++by_len[len];
    if (simp.placeholders > 0) by_len[1] += simp.placeholders;
    std::vector<LayeredProblem::Demand> demands;
    demands.reserve(by_len.size());
    // Longest windows first: helps the placement search.
    for (auto it = by_len.rbegin(); it != by_len.rend(); ++it)
      demands.push_back({it->first, it->second});
    problem.class_demands.push_back(std::move(demands));
  }
  return problem;
}

}  // namespace msrs
