// Instance simplification I -> I1 -> I2 -> I3 (paper Lemmas 15-18).
//
//  I1: medium jobs removed. For constant m all of them are set aside; for m
//      part of the input only classes with <= eps*T medium load keep their
//      (removed) mediums for tail reinsertion, classes above that threshold
//      are moved wholesale to the resource-augmentation machines (Lemma 16).
//  I2: small jobs (p <= mu*T) from classes where they weigh <= delta*T are
//      removed (Lemma 17); their reinsertion route depends on the weight:
//      (mu*T, delta*T] -> appended at the tail (bounded by condition 2);
//      <= mu*T -> refilled into a big-job slot of the class, or — if the
//      class vanishes entirely — into a free slot ("orphan", Lemma 19).
//  I3: big jobs rounded up to multiples of the layer width w; small loads
//      > delta*T replaced by ceil(load/w) placeholder jobs of size w.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "ptas/params.hpp"

namespace msrs {

// One class of the layered instance I3.
struct SimpClass {
  ClassId original = kInvalidClass;
  std::vector<JobId> big_jobs;   // original job ids (big: p > delta*T)
  std::vector<int> big_len;      // rounded lengths in layers (ceil(p/w))
  int placeholders = 0;          // count of width-w placeholder windows
  std::vector<JobId> placeholder_smalls;  // the small jobs they stand for
};

struct Simplified {
  std::vector<SimpClass> classes;

  // Glued per-class groups appended after the layered schedule (mediums with
  // <= eps*T load per class plus (mu*T, delta*T] small loads); one group per
  // class so no intra-class conflict can arise at the tail.
  std::vector<std::vector<JobId>> tail_groups;

  // m part of the input only: classes moved wholesale to the extra machines.
  std::vector<ClassId> aug_classes;

  // Small loads <= mu*T hosted inside a big-job slot of their class:
  // (index into `classes`, jobs).
  std::vector<std::pair<int, std::vector<JobId>>> hosted_smalls;

  // Classes that vanished from I3 (only small jobs, total <= mu*T): placed
  // into free slots during reconstruction.
  std::vector<std::vector<JobId>> orphan_groups;

  Time removed_small_load = 0;  // Lemma 17's L
};

Simplified simplify(const Instance& instance, const PtasParams& params);

}  // namespace msrs
