// Layered schedules (paper Section 4.1, "Layered Schedule and Rounded
// Processing Times"): time is divided into layers of width w; every job of
// the simplified instance I3 starts at a layer border. A *window* is a pair
// (start layer, length in layers); a machine's schedule is a set of disjoint
// windows; a class's jobs must occupy pairwise disjoint windows as well.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "ptas/params.hpp"
#include "ptas/simplify.hpp"

namespace msrs {

struct LayeredProblem {
  int layers = 0;    // |Xi| = ceil((1+2eps)T / w)
  int machines = 0;  // per-layer capacity
  // Demand of one class: window lengths with multiplicities.
  struct Demand {
    int len = 1;
    int count = 0;
  };
  std::vector<std::vector<Demand>> class_demands;

  // Total layer-slots demanded (for quick infeasibility checks).
  long long total_slots() const;
  std::string summary() const;
};

// One window per demanded job, per class.
struct LayeredSolution {
  std::vector<std::vector<std::pair<int, int>>> windows;  // (start, len)
};

// Builds the layered problem for I3 at the given parameters.
LayeredProblem build_layered(const Simplified& simplified,
                             const PtasParams& params, int machines);

}  // namespace msrs
