// The module configuration IP of Section 4.2, materialized both as a flat
// ILP (for the reference solver) and in N-fold form.
//
// Variables (per the paper):
//   x_K in {0..m}  for each configuration K (a set of pairwise disjoint
//                  windows); constraint (1): sum_K x_K = m.
//   y^(c)_(l,p)    for each class c and window (start layer l, length p):
//                  constraint (2): sum_K K_(l,p) x_K = sum_c y^(c)_(l,p);
//                  constraint (3): sum_l y^(c)_(l,p) = n^(c)_p;
//                  constraint (4): sum_(windows covering layer l) y <= 1.
//
// N-fold layout (as described in the paper's "Application to the Present
// IP"): one block per class; each block holds a copy of the x variables
// (bounds fixed to zero except in block 0), the y variables of its class,
// and one slack variable per layer turning (4) into an equation. Global
// rows: (1) and (2); local rows: (3) per length and (4) per layer.
//
// |K| is exponential in the number of windows; build_config_ip enumerates
// configurations only up to `max_configs` and reports failure beyond that.
// This module exists to cross-validate the structure-exploiting layer
// solver (see layer_solver.hpp) against the generic solvers on small cases
// and to document the exact correspondence with the paper.
#pragma once

#include <optional>
#include <vector>

#include "opt/ilp.hpp"
#include "opt/nfold.hpp"
#include "ptas/layered.hpp"

namespace msrs {

struct ConfigIp {
  std::vector<std::pair<int, int>> windows;        // (start layer, length)
  std::vector<std::vector<int>> configurations;    // window-index sets
  IlpProblem ilp;   // flat reference formulation
  NFold nfold;      // the same IP in N-fold form
  // Flat-ILP variable layout: x_K first (|configurations| vars), then
  // y^(c)_w in class-major order (|classes| * |windows| vars).
  int num_x = 0;
  int num_classes = 0;
};

// Returns std::nullopt if the configuration count exceeds max_configs.
std::optional<ConfigIp> build_config_ip(const LayeredProblem& problem,
                                        std::size_t max_configs = 20000);

// Decodes a flat-ILP solution vector into per-class windows.
LayeredSolution decode_ilp_solution(const ConfigIp& ip,
                                    const std::vector<std::int64_t>& x);

}  // namespace msrs
