// The EPTAS driver (paper Theorem 14).
//
// Dual approximation (Hochbaum–Shmoys): binary search over the makespan
// guess T; for each guess simplify the instance (Lemmas 15-17), round to the
// layered instance I3 (Lemma 18) and test feasibility of the configuration
// IP (Section 4.2) via the exact interval-structure solver. From the
// smallest accepted T the layered solution is turned back into a schedule
// for the original instance (Lemma 19): the layered schedule is built
// pre-stretched by (1+eps) — schedule scale e, layer l starting at
// l*w*(e+1) — placeholders are refilled with the original small jobs, small
// leftovers are hosted inside big-job slots or free slots, and medium/small
// tail groups are appended after the grid.
//
// Two modes (both from the paper):
//   * m constant: schedule on exactly m machines;
//   * resource augmentation: classes with heavy medium load go to at most
//     floor(eps*m) extra machines (Lemma 16); machines_used reports the
//     total.
#pragma once

#include <string>

#include "algo/common.hpp"
#include "core/instance.hpp"

namespace msrs {

struct EptasOptions {
  int e = 2;               // epsilon = 1/e (e >= 2)
  bool m_constant = true;  // false: resource-augmentation mode
  std::uint64_t layer_budget = 4'000'000;  // search nodes per feasibility test
};

struct EptasResult {
  Schedule schedule;
  Time guess = 0;          // accepted makespan guess T (<= OPT when exact)
  int machines_used = 0;   // > instance.machines() iff augmentation used
  bool used_fallback = false;  // true: returned the 3/2 schedule instead
  std::string name = "eptas";

  double makespan(const Instance& instance) const {
    return schedule.makespan(instance);
  }
};

EptasResult eptas(const Instance& instance, const EptasOptions& options = {});

}  // namespace msrs
