#include "ptas/params.hpp"

#include <cassert>

namespace msrs {
namespace {

__extension__ using u128 = unsigned __int128;

// p * e^exp > T without overflow (early exit once the product exceeds T).
bool product_exceeds(Time p, int e, int exp, Time T) {
  if (p <= 0) return false;
  u128 lhs = static_cast<u128>(p);
  const auto rhs = static_cast<u128>(T);
  for (int i = 0; i < exp; ++i) {
    lhs *= static_cast<u128>(e);
    if (lhs > rhs) return true;
  }
  return lhs > rhs;
}

}  // namespace

bool PtasParams::pow_cmp_gt(Time p, int exp) const {
  return product_exceeds(p, e, exp, T);
}

ParamConditionTotals condition_totals(const Instance& instance, int e, int k,
                                      Time T) {
  ParamConditionTotals totals;
  PtasParams probe;
  probe.e = e;
  probe.k = k;
  probe.T = T;
  for (JobId j = 0; j < instance.num_jobs(); ++j)
    if (probe.is_medium(instance.size(j))) totals.medium_total += instance.size(j);
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    Time below_delta = 0;  // sum of jobs with p <= delta*T in this class
    for (JobId j : instance.class_jobs(c))
      if (!probe.is_big(instance.size(j))) below_delta += instance.size(j);
    // contributes iff the sum lies in (mu*T, delta*T]
    if (below_delta > 0 && probe.pow_cmp_gt(below_delta, k + 2) &&
        !probe.pow_cmp_gt(below_delta, k))
      totals.class_small_total += below_delta;
  }
  return totals;
}

PtasParams choose_params(const Instance& instance, int e, Time T,
                         bool m_constant) {
  assert(e >= 2);
  assert(T >= 1);
  const int m = instance.machines();
  // Condition bound: total * X <= m * T with X = e^2 (m input) or
  // total * e <= T (m constant).
  auto conditions_hold = [&](int k) {
    const ParamConditionTotals totals = condition_totals(instance, e, k, T);
    if (m_constant) {
      return totals.medium_total * e <= T && totals.class_small_total * e <= T;
    }
    return totals.medium_total * e * e <= m * T &&
           totals.class_small_total * e * e <= m * T;
  };

  const int K = m_constant ? 4 * m * e + 2 : 4 * e * e + 2;
  int chosen = -1;
  for (int k = 1; k <= K; ++k) {
    if (conditions_hold(k)) {
      chosen = k;
      break;
    }
  }
  // The pigeonhole argument guarantees a good k exists in range (each job /
  // class contributes to O(1) candidate intervals).
  assert(chosen > 0);
  if (chosen < 0) chosen = K;  // defensive; never hit when assertions are on

  PtasParams params;
  params.e = e;
  params.k = chosen;
  params.m_constant = m_constant;
  params.T = T;
  // w = ceil(T / e^(k+1)), with early saturation: if e^(k+1) >= T, w = 1.
  u128 denom = 1;
  bool saturated = false;
  for (int i = 0; i < chosen + 1; ++i) {
    denom *= static_cast<u128>(e);
    if (denom >= static_cast<u128>(T)) {
      saturated = true;
      break;
    }
  }
  params.w = saturated
                 ? 1
                 : static_cast<Time>((static_cast<u128>(T) + denom - 1) /
                                     denom);
  assert(params.w >= 1);
  return params;
}

}  // namespace msrs
