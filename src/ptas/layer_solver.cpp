#include "ptas/layer_solver.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_set>
#include <vector>

namespace msrs {
namespace {

class Solver {
 public:
  Solver(const LayeredProblem& problem, const LayerSolverOptions& options)
      : prob_(problem), opts_(options) {
    capacity_.assign(static_cast<std::size_t>(prob_.layers), prob_.machines);
    // Process classes in decreasing total demand: most constrained first.
    order_.resize(prob_.class_demands.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return demand_slots(a) > demand_slots(b);
                     });
    chosen_.resize(prob_.class_demands.size());
  }

  LayerFeasibility run(LayeredSolution* solution) {
    // Quick checks: every class must fit within the L layers; the total
    // demand must fit into m*L slots.
    for (std::size_t c = 0; c < prob_.class_demands.size(); ++c)
      if (demand_slots(c) > static_cast<long long>(prob_.layers))
        return LayerFeasibility::kInfeasible;
    if (prob_.total_slots() >
        static_cast<long long>(prob_.layers) * prob_.machines)
      return LayerFeasibility::kInfeasible;

    const bool ok = place_class(0);
    if (budget_exhausted_) return LayerFeasibility::kUnknown;
    if (!ok) return LayerFeasibility::kInfeasible;
    if (solution) solution->windows = chosen_;
    return LayerFeasibility::kFeasible;
  }

 private:
  // Per-class placement context (lives on the stack of place_class so that
  // recursing into the next class cannot clobber it).
  struct Ctx {
    std::vector<int> jobs;  // window lengths, longest first
    std::vector<bool> used;  // layers already taken by this class
    std::vector<std::pair<int, int>> current;
  };

  long long demand_slots(std::size_t c) const {
    long long total = 0;
    for (const auto& d : prob_.class_demands[c])
      total += static_cast<long long>(d.len) * d.count;
    return total;
  }

  bool tick() {
    if (++nodes_ > opts_.node_budget) budget_exhausted_ = true;
    return !budget_exhausted_;
  }

  // Encodes (class index, residual capacities) for failure memoization.
  std::string encode(std::size_t class_index) const {
    std::string key;
    key.reserve(capacity_.size() + 2);
    key.push_back(static_cast<char>(class_index & 0xff));
    key.push_back(static_cast<char>((class_index >> 8) & 0xff));
    for (int capacity : capacity_) key.push_back(static_cast<char>(capacity));
    return key;
  }

  bool place_class(std::size_t idx) {
    if (!tick()) return false;
    if (idx == order_.size()) return true;
    const std::string key = encode(idx);
    if (failed_.contains(key)) return false;

    const std::size_t c = order_[idx];
    Ctx ctx;
    for (const auto& d : prob_.class_demands[c])
      for (int i = 0; i < d.count; ++i) ctx.jobs.push_back(d.len);
    ctx.used.assign(static_cast<std::size_t>(prob_.layers), false);

    if (place_job(idx, ctx, 0, 0)) return true;
    if (!budget_exhausted_) failed_.insert(key);
    return false;
  }

  // Places ctx.jobs[j..]; identical lengths are forced to increasing start
  // layers (min_start) to avoid enumerating permutations.
  bool place_job(std::size_t idx, Ctx& ctx, std::size_t j, int min_start) {
    if (!tick()) return false;
    if (j == ctx.jobs.size()) {
      chosen_[order_[idx]] = ctx.current;
      return place_class(idx + 1);
    }
    const int len = ctx.jobs[j];
    const bool next_same = j + 1 < ctx.jobs.size() && ctx.jobs[j + 1] == len;
    for (int start = min_start; start + len <= prob_.layers; ++start) {
      bool fits = true;
      for (int l = start; l < start + len && fits; ++l) {
        const auto li = static_cast<std::size_t>(l);
        fits = capacity_[li] > 0 && !ctx.used[li];
      }
      if (!fits) continue;
      for (int l = start; l < start + len; ++l) {
        const auto li = static_cast<std::size_t>(l);
        --capacity_[li];
        ctx.used[li] = true;
      }
      ctx.current.emplace_back(start, len);
      if (place_job(idx, ctx, j + 1, next_same ? start + 1 : 0)) return true;
      ctx.current.pop_back();
      for (int l = start; l < start + len; ++l) {
        const auto li = static_cast<std::size_t>(l);
        ++capacity_[li];
        ctx.used[li] = false;
      }
      if (budget_exhausted_) return false;
    }
    return false;
  }

  const LayeredProblem& prob_;
  const LayerSolverOptions& opts_;
  std::vector<int> capacity_;
  std::vector<std::size_t> order_;
  std::vector<std::vector<std::pair<int, int>>> chosen_;
  std::unordered_set<std::string> failed_;
  std::uint64_t nodes_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

LayerFeasibility solve_layers(const LayeredProblem& problem,
                              LayeredSolution* solution,
                              const LayerSolverOptions& options) {
  if (problem.class_demands.empty()) {
    if (solution) solution->windows.clear();
    return LayerFeasibility::kFeasible;
  }
  Solver solver(problem, options);
  return solver.run(solution);
}

}  // namespace msrs
