#include "ptas/config_ip.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace msrs {
namespace {

// Enumerates all sets of pairwise disjoint windows (configurations) via DFS
// over windows sorted by start layer.
bool enumerate_configs(const std::vector<std::pair<int, int>>& windows,
                       std::size_t max_configs,
                       std::vector<std::vector<int>>* out) {
  std::vector<int> current;
  bool ok = true;
  auto rec = [&](auto&& self, std::size_t idx, int free_from) -> void {
    if (!ok) return;
    if (out->size() > max_configs) {
      ok = false;
      return;
    }
    if (idx == windows.size()) {
      out->push_back(current);
      return;
    }
    // skip window idx
    self(self, idx + 1, free_from);
    // take window idx if it starts at or after free_from
    const auto& [start, len] = windows[idx];
    if (start >= free_from) {
      current.push_back(static_cast<int>(idx));
      self(self, idx + 1, start + len);
      current.pop_back();
    }
  };
  rec(rec, 0, 0);
  return ok;
}

}  // namespace

std::optional<ConfigIp> build_config_ip(const LayeredProblem& problem,
                                        std::size_t max_configs) {
  ConfigIp ip;
  ip.num_classes = static_cast<int>(problem.class_demands.size());

  // Window set W: all (l, p) for lengths p present in any demand.
  std::set<int> lengths;
  for (const auto& demands : problem.class_demands)
    for (const auto& d : demands) lengths.insert(d.len);
  for (int len : lengths)
    for (int start = 0; start + len <= problem.layers; ++start)
      ip.windows.emplace_back(start, len);
  std::sort(ip.windows.begin(), ip.windows.end());

  if (!enumerate_configs(ip.windows, max_configs, &ip.configurations))
    return std::nullopt;
  ip.num_x = static_cast<int>(ip.configurations.size());

  const int W = static_cast<int>(ip.windows.size());
  const int C = ip.num_classes;

  // ---- flat ILP -----------------------------------------------------------
  IlpProblem& flat = ip.ilp;
  flat.num_vars = ip.num_x + C * W;
  flat.lower.assign(static_cast<std::size_t>(flat.num_vars), 0);
  flat.upper.assign(static_cast<std::size_t>(flat.num_vars), 0);
  for (int K = 0; K < ip.num_x; ++K)
    flat.upper[static_cast<std::size_t>(K)] = problem.machines;
  auto yvar = [&](int c, int wdx) { return ip.num_x + c * W + wdx; };
  for (int c = 0; c < C; ++c)
    for (int wdx = 0; wdx < W; ++wdx)
      flat.upper[static_cast<std::size_t>(yvar(c, wdx))] = 1;

  // (1) sum x_K = m
  {
    IlpRow row;
    for (int K = 0; K < ip.num_x; ++K) row.terms.emplace_back(K, 1);
    row.rhs = problem.machines;
    flat.rows.push_back(std::move(row));
  }
  // (2) per window: sum_K K_w x_K - sum_c y^c_w = 0
  for (int wdx = 0; wdx < W; ++wdx) {
    IlpRow row;
    for (int K = 0; K < ip.num_x; ++K) {
      const auto& config = ip.configurations[static_cast<std::size_t>(K)];
      if (std::find(config.begin(), config.end(), wdx) != config.end())
        row.terms.emplace_back(K, 1);
    }
    for (int c = 0; c < C; ++c) row.terms.emplace_back(yvar(c, wdx), -1);
    row.rhs = 0;
    flat.rows.push_back(std::move(row));
  }
  // (3) per class and length: sum over start layers = n^(c)_p
  for (int c = 0; c < C; ++c) {
    std::map<int, int> counts;
    for (const auto& d : problem.class_demands[static_cast<std::size_t>(c)])
      counts[d.len] += d.count;
    for (int len : lengths) {
      IlpRow row;
      for (int wdx = 0; wdx < W; ++wdx)
        if (ip.windows[static_cast<std::size_t>(wdx)].second == len)
          row.terms.emplace_back(yvar(c, wdx), 1);
      row.rhs = counts.count(len) ? counts[len] : 0;
      flat.rows.push_back(std::move(row));
    }
  }
  // (4) per class and layer: sum of covering windows <= 1
  for (int c = 0; c < C; ++c) {
    for (int layer = 0; layer < problem.layers; ++layer) {
      IlpRow row;
      row.relation = IlpRow::Relation::kLe;
      for (int wdx = 0; wdx < W; ++wdx) {
        const auto& [start, len] = ip.windows[static_cast<std::size_t>(wdx)];
        if (start <= layer && layer < start + len)
          row.terms.emplace_back(yvar(c, wdx), 1);
      }
      row.rhs = 1;
      flat.rows.push_back(std::move(row));
    }
  }

  // ---- N-fold form --------------------------------------------------------
  // Block variables: |K| x-copies, W y-vars, |Xi| slack vars.
  NFold& nf = ip.nfold;
  nf.N = std::max(C, 1);
  nf.t = ip.num_x + W + problem.layers;
  nf.r = 1 + W;                                       // (1) and (2)
  nf.s = static_cast<int>(lengths.size()) + problem.layers;  // (3) and (4)
  nf.b.assign(static_cast<std::size_t>(nf.r + nf.N * nf.s), 0);
  nf.b[0] = problem.machines;

  const auto tt = static_cast<std::size_t>(nf.t);
  for (int block = 0; block < nf.N; ++block) {
    std::vector<std::int64_t> A(static_cast<std::size_t>(nf.r) * tt, 0);
    std::vector<std::int64_t> B(static_cast<std::size_t>(nf.s) * tt, 0);
    // (1): x-copies of block 0 sum to m (other blocks' x are bound to 0 but
    // keep the same coefficients — harmless and keeps blocks identical).
    for (int K = 0; K < ip.num_x; ++K) A[static_cast<std::size_t>(K)] = 1;
    // (2) rows: x side positive in every block (only block 0's x can be
    // nonzero), y side negative.
    for (int wdx = 0; wdx < W; ++wdx) {
      const auto row = static_cast<std::size_t>(1 + wdx);
      for (int K = 0; K < ip.num_x; ++K) {
        const auto& config = ip.configurations[static_cast<std::size_t>(K)];
        if (std::find(config.begin(), config.end(), wdx) != config.end())
          A[row * tt + static_cast<std::size_t>(K)] = 1;
      }
      A[row * tt + static_cast<std::size_t>(ip.num_x + wdx)] = -1;
    }
    // (3) local rows per length.
    int local = 0;
    for (int len : lengths) {
      for (int wdx = 0; wdx < W; ++wdx)
        if (ip.windows[static_cast<std::size_t>(wdx)].second == len)
          B[static_cast<std::size_t>(local) * tt +
            static_cast<std::size_t>(ip.num_x + wdx)] = 1;
      ++local;
    }
    // (4) local rows per layer with slack.
    for (int layer = 0; layer < problem.layers; ++layer) {
      for (int wdx = 0; wdx < W; ++wdx) {
        const auto& [start, len] = ip.windows[static_cast<std::size_t>(wdx)];
        if (start <= layer && layer < start + len)
          B[static_cast<std::size_t>(local) * tt +
            static_cast<std::size_t>(ip.num_x + wdx)] = 1;
      }
      B[static_cast<std::size_t>(local) * tt +
        static_cast<std::size_t>(ip.num_x + W + layer)] = 1;
      ++local;
    }
    nf.A.push_back(std::move(A));
    nf.B.push_back(std::move(B));
  }
  // Right-hand sides of local rows.
  for (int block = 0; block < C; ++block) {
    std::map<int, int> counts;
    for (const auto& d :
         problem.class_demands[static_cast<std::size_t>(block)])
      counts[d.len] += d.count;
    int local = 0;
    for (int len : lengths) {
      nf.b[static_cast<std::size_t>(nf.r + block * nf.s + local)] =
          counts.count(len) ? counts[len] : 0;
      ++local;
    }
    for (int layer = 0; layer < problem.layers; ++layer) {
      nf.b[static_cast<std::size_t>(nf.r + block * nf.s + local)] = 1;
      ++local;
    }
  }
  // Bounds: x only in block 0; y in [0,1]; slack in [0,1].
  nf.lower.assign(static_cast<std::size_t>(nf.num_vars()), 0);
  nf.upper.assign(static_cast<std::size_t>(nf.num_vars()), 0);
  for (int block = 0; block < nf.N; ++block) {
    const auto base = static_cast<std::size_t>(block * nf.t);
    if (block == 0)
      for (int K = 0; K < ip.num_x; ++K)
        nf.upper[base + static_cast<std::size_t>(K)] = problem.machines;
    for (int i = ip.num_x; i < nf.t; ++i)
      nf.upper[base + static_cast<std::size_t>(i)] = 1;
  }
  assert(nf.check().empty());
  return ip;
}

LayeredSolution decode_ilp_solution(const ConfigIp& ip,
                                    const std::vector<std::int64_t>& x) {
  LayeredSolution solution;
  const int W = static_cast<int>(ip.windows.size());
  solution.windows.resize(static_cast<std::size_t>(ip.num_classes));
  for (int c = 0; c < ip.num_classes; ++c)
    for (int wdx = 0; wdx < W; ++wdx)
      if (x[static_cast<std::size_t>(ip.num_x + c * W + wdx)] > 0)
        solution.windows[static_cast<std::size_t>(c)].push_back(
            ip.windows[static_cast<std::size_t>(wdx)]);
  return solution;
}

}  // namespace msrs
