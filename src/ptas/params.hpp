// EPTAS parameter selection (paper Section 4.1).
//
// epsilon = 1/e for an integer e >= 2; delta = epsilon^k chosen by the
// pigeonhole argument so that (1) the total size of medium jobs
// (mu*T < p <= delta*T, mu = eps^2 * delta) and (2) the total size of
// j<=delta*T jobs from classes where those jobs weigh (mu*T, delta*T] are
// both below eps^2*m*T (m part of the input) resp. eps*T (m constant).
//
// Exactness notes:
//  * all threshold comparisons (p <= eps^k T etc.) are integer-exact via
//    128-bit products;
//  * the layer width is w = ceil(eps*delta*T) rather than the real
//    eps*delta*T. This keeps the whole pipeline integral; w >= e*mu*T still
//    holds (which is what the Lemma-19 refill argument needs), and the <=1
//    unit of extra rounding per big job vanishes once T >= 1/(eps*delta)
//    (and below that the grid is the unit grid, where layering is exact).
#pragma once

#include "core/instance.hpp"

namespace msrs {

struct PtasParams {
  int e = 2;       // epsilon = 1/e
  int k = 1;       // delta = (1/e)^k
  bool m_constant = true;
  Time T = 0;      // makespan guess
  Time w = 1;      // layer width = ceil(eps * delta * T) = ceil(T / e^(k+1))

  // p > delta*T  <=>  p * e^k > T
  bool is_big(Time p) const { return pow_cmp_gt(p, k); }
  // mu*T < p <= delta*T
  bool is_medium(Time p) const { return !is_big(p) && pow_cmp_gt(p, k + 2); }
  // p <= mu*T  <=>  p * e^(k+2) <= T
  bool is_small(Time p) const { return !pow_cmp_gt(p, k + 2); }

  // true iff p * e^exp > T (exact, no overflow).
  bool pow_cmp_gt(Time p, int exp) const;
};

// Chooses k per the pigeonhole argument; always succeeds. T must be at least
// the combined lower bound of the instance.
PtasParams choose_params(const Instance& instance, int e, Time T,
                         bool m_constant);

// Exposed for tests: the two condition totals at a given k.
struct ParamConditionTotals {
  Time medium_total = 0;     // condition 1
  Time class_small_total = 0;  // condition 2
};
ParamConditionTotals condition_totals(const Instance& instance, int e, int k,
                                      Time T);

}  // namespace msrs
