#include "ptas/simplify.hpp"

#include <cassert>

namespace msrs {

Simplified simplify(const Instance& instance, const PtasParams& params) {
  Simplified out;
  for (ClassId c = 0; c < instance.num_classes(); ++c) {
    std::vector<JobId> big, medium, small;
    Time medium_load = 0;
    Time small_load = 0;
    for (JobId j : instance.class_jobs(c)) {
      const Time p = instance.size(j);
      if (params.is_big(p)) {
        big.push_back(j);
      } else if (params.is_medium(p)) {
        medium.push_back(j);
        medium_load += p;
      } else {
        small.push_back(j);
        small_load += p;
      }
    }

    // Lemma 16 (m part of the input): classes with > eps*T medium load move
    // to the augmentation machines wholesale.
    if (!params.m_constant && medium_load * params.e > params.T) {
      out.aug_classes.push_back(c);
      continue;
    }

    SimpClass simp;
    simp.original = c;
    simp.big_jobs = big;
    for (JobId j : big) {
      const int len =
          static_cast<int>(ceil_div(instance.size(j), params.w));
      simp.big_len.push_back(len);
    }

    std::vector<JobId> tail;  // glued tail group for this class
    if (!medium.empty()) tail.insert(tail.end(), medium.begin(), medium.end());

    if (!small.empty()) {
      // delta*T < small_load: placeholders (Lemma 18).
      if (params.pow_cmp_gt(small_load, params.k)) {
        simp.placeholders =
            static_cast<int>(ceil_div(small_load, params.w));
        simp.placeholder_smalls = small;
      } else if (params.pow_cmp_gt(small_load, params.k + 2)) {
        // (mu*T, delta*T]: tail (condition 2 bounds the total).
        tail.insert(tail.end(), small.begin(), small.end());
        out.removed_small_load += small_load;
      } else if (!big.empty()) {
        // <= mu*T with a big job to host it (Lemma 19).
        out.hosted_smalls.emplace_back(static_cast<int>(out.classes.size()),
                                       small);
        out.removed_small_load += small_load;
      } else if (!tail.empty()) {
        // <= mu*T, no big job, but the class already has a tail group:
        // append (keeps the class's tail in one block).
        tail.insert(tail.end(), small.begin(), small.end());
        out.removed_small_load += small_load;
      } else {
        // class vanishes from I3 entirely.
        out.orphan_groups.push_back(small);
        out.removed_small_load += small_load;
        continue;
      }
    }

    if (!tail.empty()) out.tail_groups.push_back(std::move(tail));
    if (!simp.big_jobs.empty() || simp.placeholders > 0)
      out.classes.push_back(std::move(simp));
  }
  return out;
}

}  // namespace msrs
