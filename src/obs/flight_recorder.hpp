/// \file
/// FlightRecorder: always-on, fixed-capacity binary record of every request
/// lifecycle event — the post-mortem instrument of the serving layer.
///
/// Tracing (obs/trace.hpp) answers "what is happening" with *sampled* spans;
/// the flight recorder answers "what happened in the seconds before this
/// spike / shed burst / crash" by recording **every** event, unsampled, into
/// per-thread lock-free ring buffers of compact 24-byte entries. record()
/// is a handful of plain stores plus one relaxed atomic publish on a ring
/// owned by the calling thread — cheap enough to leave on in production
/// (bench E14 pins the per-event cost; the timestamp is taken by the
/// caller, who usually already holds a trace stamp).
///
/// Three ways out of the rings:
///  - collect()/render_jsonl(): merge every ring into one deterministic
///    JSONL document (the `dump_recorder` wire op and the HTTP `/recorder`
///    endpoint). Canonical mode drops wall-clock and placement fields and
///    sorts by (seq, kind), so the same request stream dumps byte-identical
///    bytes at any shard/thread count — a tested invariant.
///  - dump_to_fd(): the async-signal-safe raw binary path. A fatal-signal
///    handler (install_fatal_dump()) writes the rings to a pre-opened fd
///    with nothing but write(2), then re-raises; decode() reads the bytes
///    back into events offline.
///  - The anomaly watchdog (obs/timeseries.hpp) auto-dumps the JSONL form
///    when a threshold trips.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/json.hpp"
#include "util/sync.hpp"

namespace msrs::obs {

/// Lifecycle event kinds, in per-request lifecycle order: one request
/// records at most one event per kind, in increasing enum order, so a
/// (seq, kind) sort reproduces each request's own timeline without
/// wall-clock input. New kinds are appended, never reordered (the enum
/// value is the binary-dump encoding).
enum class EventKind : std::uint8_t {
  kAdmit = 0,        ///< submit() accepted the raw line (value = line bytes)
  kDispatch,         ///< dequeued by a shard worker
  kSolveBegin,       ///< cache probe / portfolio race starts
  kSolveEnd,         ///< result ready (label = winning solver, value =
                     ///< cache state: 0 miss, 1 hit, 2 bypass)
  kSessionOpen,      ///< session created (value = machines)
  kSessionSubmit,    ///< job submitted (value = assigned job id)
  kSessionCancel,    ///< job cancelled (value = job id)
  kSessionSnapshot,  ///< snapshot answered (value = alive jobs)
  kSessionClose,     ///< session closed
  kWrite,            ///< response rendered (value = response bytes)
  kShed,             ///< transport shed a connection over budget
  kError,            ///< named error response (label = wire error code)
};

/// Number of event kinds (bounds kind values in decoded binary dumps).
inline constexpr std::size_t kEventKindCount = 12;

/// The stable name of an event kind (e.g. "solve_end").
std::string_view event_kind_name(EventKind kind);

/// One recorded lifecycle event — 24 bytes, trivially copyable (the binary
/// dump format writes these structs raw).
struct RecorderEvent {
  std::uint64_t seq = 0;    ///< service-wide request sequence number
  std::uint64_t ts_ns = 0;  ///< steady-clock nanoseconds (recorder_ts_ns())
  EventKind kind = EventKind::kAdmit;  ///< what happened
  std::uint8_t shard = 0xff;           ///< serving shard (0xff = none)
  std::uint16_t arg = 0;    ///< interned label id (solver / error / "")
  std::uint32_t value = 0;  ///< per-kind payload (see EventKind)
};

static_assert(sizeof(RecorderEvent) == 24, "binary dump format");

/// Steady-clock nanoseconds of a time point (the record() timestamp; the
/// caller takes it, typically reusing a trace stamp it already holds).
std::uint64_t recorder_ts_ns(std::chrono::steady_clock::time_point at);

/// FlightRecorder configuration.
struct RecorderOptions {
  /// Ring capacity per recording thread, in events (rounded up to a power
  /// of two). Older events are overwritten once a ring wraps; the
  /// overwritten count is reported as `dropped`.
  std::size_t capacity = 1 << 14;
};

/// The always-on lifecycle event recorder. record() is thread-safe and
/// lock-free after a thread's first event (per-thread single-writer rings);
/// everything else takes the registration mutex and may run concurrently
/// with recording (a reader can observe a torn event that is concurrently
/// overwritten — acceptable for a post-mortem instrument, and impossible in
/// the deterministic-dump tests, which read quiescent rings).
class FlightRecorder {
 public:
  /// A merged read-side view of every ring.
  struct Dump {
    std::vector<RecorderEvent> events;  ///< merged events (sorted per mode)
    std::uint64_t dropped = 0;  ///< events overwritten by ring wrap-around
  };

  /// A recorder with per-thread rings of `options.capacity` events.
  explicit FlightRecorder(RecorderOptions options = {});
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;             ///< not copyable
  FlightRecorder& operator=(const FlightRecorder&) = delete;  ///< not copyable

  /// Records one event into the calling thread's ring. `ts_ns` is the
  /// caller's timestamp (recorder_ts_ns()); `arg` is an interned label id
  /// (intern()) or 0; `shard` 0xff means "no shard". Never blocks, never
  /// allocates after the calling thread's first event.
  void record(EventKind kind, std::uint64_t seq, std::uint64_t ts_ns,
              std::uint8_t shard, std::uint16_t arg,
              std::uint32_t value) noexcept {
    Ring* ring = tl_cache.owner == this ? tl_cache.ring : register_thread();
    if (ring == nullptr) return;  // past the ring cap: dropped (counted)
    // relaxed: single-writer ring — only this thread ever stores head, so
    // reading our own last store needs no ordering.
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    RecorderEvent& slot = ring->slots[head & ring->mask];
    slot.seq = seq;
    slot.ts_ns = ts_ns;
    slot.kind = kind;
    slot.shard = shard;
    slot.arg = arg;
    slot.value = value;
    ring->head.store(head + 1, std::memory_order_release);
  }

  /// Interns a label (solver name, error code) and returns its id for
  /// record()'s `arg`. Id 0 is the empty label. Takes a mutex — intern at
  /// setup time, not on the hot path. Idempotent per label.
  std::uint16_t intern(std::string_view label);

  /// The label behind an interned id ("" for 0 or an unknown id).
  std::string label(std::uint16_t id) const;

  /// Merges every ring. Canonical mode sorts by (seq, kind) — the
  /// deterministic per-request timeline; otherwise by (ts_ns, seq, kind) —
  /// the wall-clock timeline.
  Dump collect(bool canonical) const;

  /// One event as a Json object. Canonical mode emits only the
  /// run-independent fields {seq, event, label, value}; full mode adds
  /// {ts_ns, shard}.
  Json event_json(const RecorderEvent& event, bool canonical) const;

  /// Renders a dump as JSONL: one meta line
  /// `{"events":N,"dropped":D,"canonical":B}` then one line per event.
  std::string render_jsonl(const Dump& dump, bool canonical) const;

  /// collect() + render_jsonl() in one call.
  std::string jsonl(bool canonical) const {
    return render_jsonl(collect(canonical), canonical);
  }

  /// Writes every ring raw to `fd` using only write(2) — async-signal-safe
  /// (the fatal-signal dump path). Format: an 8-byte magic, a ring count,
  /// then per ring {capacity, head, capacity raw RecorderEvents}. Labels
  /// are not included; decoded events carry numeric `arg` ids.
  void dump_to_fd(int fd) const noexcept;

  /// Decodes dump_to_fd() bytes back into a merged Dump (events ordered
  /// oldest to newest per ring, wrap-around resolved). False when the
  /// buffer is not a complete, well-formed recorder dump.
  static bool decode(const char* data, std::size_t size, Dump* out);

  /// Total events currently held across all rings (diagnostics, tests).
  std::size_t size() const;

 private:
  // One single-writer ring. head counts all events ever written; the live
  // window is slots[(head-n) & mask] for n in [1, min(head, capacity)].
  struct Ring {
    explicit Ring(std::size_t capacity)
        : slots(capacity), mask(capacity - 1) {}
    std::vector<RecorderEvent> slots;
    std::uint64_t mask;
    alignas(64) std::atomic<std::uint64_t> head{0};
  };

  // Upper bound on recording threads; later threads drop their events
  // (counted). Far above any real transport/shard thread count.
  static constexpr std::size_t kMaxRings = 64;

  // One-entry thread-local cache: (recorder, ring) of the calling thread's
  // most recent recorder, so steady-state record() never takes the mutex.
  struct ThreadCache {
    const FlightRecorder* owner = nullptr;
    Ring* ring = nullptr;
  };
  static thread_local ThreadCache tl_cache;

  Ring* register_thread();

  std::size_t capacity_;
  mutable util::Mutex mutex_;  // registration/intern lock
  std::vector<std::unique_ptr<Ring>> rings_ MSRS_GUARDED_BY(mutex_);
  std::unordered_map<std::thread::id, Ring*> threads_ MSRS_GUARDED_BY(mutex_);
  std::vector<std::string> labels_ MSRS_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::uint16_t> label_ids_
      MSRS_GUARDED_BY(mutex_);
  // Signal-safe view of the rings: a fixed pointer array published with
  // release stores, traversable from a handler without the mutex.
  std::atomic<Ring*> ring_table_[kMaxRings] = {};
  std::atomic<std::size_t> ring_count_{0};
  std::atomic<std::uint64_t> overflow_dropped_{0};
};

/// Installs SIGSEGV/SIGABRT handlers that write `recorder`'s rings to the
/// pre-opened `fd` (dump_to_fd()) and then re-raise with default
/// disposition. One global recorder/fd pair; passing nullptr restores the
/// default handlers. The fd must stay open for the process lifetime.
void install_fatal_dump(FlightRecorder* recorder, int fd);

}  // namespace msrs::obs
