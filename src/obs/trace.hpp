/// \file
/// Request-lifecycle tracing: per-request stage stamps, sampled JSONL span
/// emission, and the always-on slow-request log.
///
/// Every request admitted by the serving layer carries a TraceContext that
/// is stamped at admission, enqueue, shard dispatch, solve start/end and
/// response write. At response time the context collapses into a Span —
/// stage durations plus provenance (shard, winning solver, cache hit/miss,
/// error code) — which the Tracer then fans out: every Nth span
/// (deterministic, sequence-number sampling) is appended as one JSON line
/// to the `--trace` sink, and any span whose total latency exceeds the
/// slow threshold is logged to stderr regardless of sampling, so tail
/// outliers are never invisible.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>

#include "util/json.hpp"
#include "util/sync.hpp"

namespace msrs::obs {

/// Monotonic clock of every lifecycle stamp.
using TraceClock = std::chrono::steady_clock;

/// Per-request stage stamps, carried with the request through the service.
struct TraceContext {
  std::uint64_t seq = 0;  ///< service-wide request sequence number
  TraceClock::time_point admit;        ///< submit() entry (parse begins)
  TraceClock::time_point enqueue;      ///< admitted into the shard queue
  TraceClock::time_point dispatch;     ///< dequeued by the shard worker
  TraceClock::time_point solve_begin;  ///< cache probe / portfolio start
  TraceClock::time_point solve_end;    ///< result rendered
};

/// One finished request, ready for exposition: stage durations in
/// microseconds plus provenance.
struct Span {
  std::uint64_t seq = 0;     ///< request sequence number
  int shard = -1;            ///< serving shard (-1: answered inline)
  std::string solver;        ///< winning solver ("" when none)
  const char* cache = "";    ///< "hit" | "miss" | "bypass" | ""
  std::string error;         ///< named wire error ("" = ok)
  double admission_us = 0;   ///< submit entry -> admitted to the queue
  double queue_us = 0;       ///< queued -> picked up by the shard worker
  double solve_us = 0;       ///< cache probe + portfolio solve
  double write_us = 0;       ///< response rendered -> callback returned
  double total_us = 0;       ///< submit entry -> callback returned

  /// One JSONL line (no trailing newline); always a valid JSON object.
  std::string line() const;
};

/// Tracer configuration (ServiceOptions::trace).
struct TraceOptions {
  /// JSONL span sink path; empty disables span emission ("-" = stderr).
  std::string path;
  /// Emit every Nth span (sequence-number sampling; 1 = every request,
  /// 0 behaves as 1).
  std::uint64_t sample_every = 64;
  /// Always-on slow-request log threshold, milliseconds; a request slower
  /// than this is logged to stderr even when unsampled. <= 0 disables.
  double slow_ms = 1000.0;
};

/// Thread-safe span fan-out: the sampled JSONL sink plus the slow log.
class Tracer {
 public:
  /// Opens the sink (when configured). A sink that cannot be opened
  /// disables span emission and reports via failed().
  explicit Tracer(TraceOptions options);

  /// True when a configured sink path could not be opened.
  bool failed() const { return failed_; }

  /// Deterministic sampling decision for a sequence number.
  bool sampled(std::uint64_t seq) const {
    return sink_open_ &&
           seq % (options_.sample_every == 0 ? 1 : options_.sample_every) == 0;
  }

  /// True when `total_us` crosses the slow-request threshold.
  bool slow(double total_us) const {
    return options_.slow_ms > 0.0 && total_us >= options_.slow_ms * 1000.0;
  }

  /// Routes one finished span: writes the JSON line when `sampled(seq)`,
  /// and the stderr slow line when `slow(total_us)`.
  void observe(const Span& span) MSRS_EXCLUDES(mutex_);

  /// Flushes the sink (shutdown path).
  void flush() MSRS_EXCLUDES(mutex_);

 private:
  TraceOptions options_;
  bool sink_open_ = false;
  bool to_stderr_ = false;
  bool failed_ = false;
  util::Mutex mutex_;
  /// The JSONL span sink (all writes serialized under mutex_).
  std::ofstream file_ MSRS_GUARDED_BY(mutex_);
};

/// Microseconds between two stamps (0 when either is unset/reversed).
double stage_us(TraceClock::time_point from, TraceClock::time_point to);

}  // namespace msrs::obs
