#include "obs/timeseries.hpp"

#include <string_view>

namespace msrs::obs {
namespace {

// The snapshot fields the watchdog derives its point from (the serving
// layer's canonical metric names).
constexpr std::string_view kReceived = "serve.received";
constexpr std::string_view kResponded = "serve.responded";
constexpr std::string_view kErrors = "serve.errors";
constexpr std::string_view kRejected = "serve.rejected";
constexpr std::string_view kTcpShed = "serve.tcp.shed";
constexpr std::string_view kQueuePrefix = "serve.queue_depth.";
constexpr std::string_view kTotalStage = "serve.latency.total_us";

std::uint64_t delta(std::uint64_t now, std::uint64_t before) {
  return now >= before ? now - before : 0;
}

}  // namespace

Json TimeseriesPoint::json() const {
  Json object = Json::object();
  object.set("received", static_cast<std::int64_t>(received));
  object.set("responded", static_cast<std::int64_t>(responded));
  object.set("errors", static_cast<std::int64_t>(errors));
  object.set("sheds", static_cast<std::int64_t>(sheds));
  object.set("queue_depth", queue_depth);
  object.set("samples", static_cast<std::int64_t>(samples));
  object.set("p50_us", p50_us);
  object.set("p95_us", p95_us);
  object.set("p99_us", p99_us);
  return object;
}

TimeseriesRing::TimeseriesRing(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  points_.reserve(capacity_);
}

void TimeseriesRing::push(const TimeseriesPoint& point) {
  if (points_.size() < capacity_) {
    points_.push_back(point);
    return;
  }
  points_[start_] = point;
  start_ = (start_ + 1) % capacity_;
}

const TimeseriesPoint& TimeseriesRing::at(std::size_t i) const {
  return points_[(start_ + i) % points_.size()];
}

Json TimeseriesRing::json() const {
  Json array = Json::array();
  for (std::size_t i = 0; i < size(); ++i) array.push_back(at(i).json());
  return array;
}

Watchdog::Watchdog(WatchdogOptions options, MetricsRegistry& metrics)
    : options_(options),
      ring_(options.window),
      ticks_c_(&metrics.counter("obs.watchdog.ticks")),
      trips_c_(&metrics.counter("obs.watchdog.trips")),
      p99_trips_c_(&metrics.counter("obs.watchdog.p99_trips")),
      error_trips_c_(&metrics.counter("obs.watchdog.error_trips")),
      queue_trips_c_(&metrics.counter("obs.watchdog.queue_trips")),
      dumps_c_(&metrics.counter("obs.watchdog.dumps")) {}

bool Watchdog::tick(const MetricsSnapshot& snapshot) {
  ticks_c_->inc();
  TimeseriesPoint point;
  const std::uint64_t received = snapshot.counter_or(kReceived);
  const std::uint64_t responded = snapshot.counter_or(kResponded);
  const std::uint64_t errors = snapshot.counter_or(kErrors);
  const std::uint64_t sheds =
      snapshot.counter_or(kRejected) + snapshot.counter_or(kTcpShed);
  for (const auto& [name, value] : snapshot.gauges)
    if (name.size() > kQueuePrefix.size() &&
        std::string_view(name).substr(0, kQueuePrefix.size()) == kQueuePrefix)
      point.queue_depth += value;

  const Histogram::Snapshot* total = snapshot.histogram(kTotalStage);
  Histogram::Snapshot interval;  // bucket deltas: this interval's samples
  if (total != nullptr) {
    interval.bounds = total->bounds;
    interval.counts.resize(total->counts.size(), 0);
    const bool comparable = prev_total_counts_.size() == total->counts.size();
    for (std::size_t b = 0; b < total->counts.size(); ++b) {
      const std::uint64_t before = comparable ? prev_total_counts_[b] : 0;
      interval.counts[b] = delta(total->counts[b], before);
      interval.count += interval.counts[b];
    }
    prev_total_counts_ = total->counts;
  }

  if (have_baseline_) {
    point.received = delta(received, prev_received_);
    point.responded = delta(responded, prev_responded_);
    point.errors = delta(errors, prev_errors_);
    point.sheds = delta(sheds, prev_sheds_);
    point.samples = interval.count;
    point.p50_us = interval.quantile(0.50);
    point.p95_us = interval.quantile(0.95);
    point.p99_us = interval.quantile(0.99);
  }
  prev_received_ = received;
  prev_responded_ = responded;
  prev_errors_ = errors;
  prev_sheds_ = sheds;

  if (!have_baseline_) {
    have_baseline_ = true;
    ring_.push(point);
    ++ticks_since_dump_;
    return false;
  }
  ring_.push(point);
  ++ticks_since_dump_;

  bool tripped = false;
  std::string reason;
  if (options_.p99_threshold_us > 0.0 &&
      point.samples >= options_.min_samples &&
      point.p99_us > options_.p99_threshold_us) {
    p99_trips_c_->inc();
    tripped = true;
    reason = "p99 " + Json(point.p99_us).str() + "us over threshold " +
             Json(options_.p99_threshold_us).str() + "us";
  }
  if (options_.error_rate_threshold > 0.0 && point.received > 0) {
    const double rate = static_cast<double>(point.errors) /
                        static_cast<double>(point.received);
    if (rate > options_.error_rate_threshold) {
      error_trips_c_->inc();
      tripped = true;
      if (!reason.empty()) reason += "; ";
      reason += "error rate " + Json(rate).str() + " over threshold " +
                Json(options_.error_rate_threshold).str();
    }
  }
  if (options_.queue_threshold > 0 &&
      point.queue_depth > options_.queue_threshold) {
    queue_trips_c_->inc();
    tripped = true;
    if (!reason.empty()) reason += "; ";
    reason += "queue depth " + std::to_string(point.queue_depth) +
              " over threshold " + std::to_string(options_.queue_threshold);
  }
  if (!tripped) return false;
  trips_c_->inc();
  last_reason_ = reason;
  if (dumped_once_ && ticks_since_dump_ < options_.cooldown_ticks)
    return false;
  dumped_once_ = true;
  ticks_since_dump_ = 0;
  dumps_c_->inc();
  return true;
}

Json Watchdog::json() const {
  Json thresholds = Json::object();
  thresholds.set("p99_us", options_.p99_threshold_us);
  thresholds.set("error_rate", options_.error_rate_threshold);
  thresholds.set("queue", options_.queue_threshold);
  thresholds.set("min_samples", static_cast<std::int64_t>(options_.min_samples));
  thresholds.set("cooldown_ticks",
                 static_cast<std::int64_t>(options_.cooldown_ticks));
  Json object = Json::object();
  object.set("thresholds", std::move(thresholds));
  object.set("last_reason", last_reason_);
  object.set("window", ring_.json());
  return object;
}

}  // namespace msrs::obs
