#include "obs/trace.hpp"

#include <cstdio>

namespace msrs::obs {

double stage_us(TraceClock::time_point from, TraceClock::time_point to) {
  if (from.time_since_epoch().count() == 0 ||
      to.time_since_epoch().count() == 0 || to < from)
    return 0.0;
  return std::chrono::duration<double, std::micro>(to - from).count();
}

std::string Span::line() const {
  Json span = Json::object();
  span.set("seq", static_cast<std::int64_t>(seq));
  span.set("shard", static_cast<std::int64_t>(shard));
  span.set("solver", solver);
  span.set("cache", std::string(cache));
  span.set("error", error);
  span.set("admission_us", admission_us);
  span.set("queue_us", queue_us);
  span.set("solve_us", solve_us);
  span.set("write_us", write_us);
  span.set("total_us", total_us);
  return span.str();
}

Tracer::Tracer(TraceOptions options) : options_(std::move(options)) {
  if (options_.path.empty()) return;
  if (options_.path == "-") {
    to_stderr_ = true;
    sink_open_ = true;
    return;
  }
  file_.open(options_.path, std::ios::out | std::ios::trunc);
  if (file_.is_open()) {
    sink_open_ = true;
  } else {
    failed_ = true;
    std::fprintf(stderr, "msrs-serve: cannot open trace sink %s\n",
                 options_.path.c_str());
  }
}

void Tracer::observe(const Span& span) {
  if (sampled(span.seq)) {
    const std::string line = span.line();
    util::MutexLock lock(mutex_);
    if (to_stderr_)
      std::fprintf(stderr, "%s\n", line.c_str());
    else
      file_ << line << '\n';
  }
  if (slow(span.total_us))
    std::fprintf(stderr,
                 "msrs-serve: slow request seq=%llu total_us=%.0f "
                 "queue_us=%.0f solve_us=%.0f shard=%d solver=%s cache=%s\n",
                 static_cast<unsigned long long>(span.seq), span.total_us,
                 span.queue_us, span.solve_us, span.shard,
                 span.solver.empty() ? "-" : span.solver.c_str(),
                 *span.cache != '\0' ? span.cache : "-");
}

void Tracer::flush() {
  util::MutexLock lock(mutex_);
  if (file_.is_open()) file_.flush();
}

}  // namespace msrs::obs
