/// \file
/// MetricsRegistry: lock-cheap named counters, gauges and fixed-bucket
/// latency histograms for every layer of the system.
///
/// Hot-path writes are single relaxed atomic operations on cache-line-
/// padded stripes (one stripe per recording thread, modulo kStripes), so
/// shard workers and transport threads never contend on a shared line;
/// reads merge the stripes. Registration (name -> metric) takes a mutex,
/// so callers on hot paths look their metric up once and keep the pointer
/// — metric objects are never invalidated or moved for the registry's
/// lifetime.
///
/// Snapshots are deterministic: metrics render sorted by name with the
/// canonical util/json number format, so two snapshots of equal counter
/// states are byte-identical regardless of registration or thread
/// interleaving (the property tests/test_obs.cpp pins). Exposition comes
/// in two formats: a Json document (the wire `stats` op) and a
/// Prometheus-style text page (`msrs_engine_cli serve --metrics-dump`).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"
#include "util/sync.hpp"

namespace msrs::obs {

/// Write stripes per metric; each recording thread owns (thread-id modulo
/// kStripes) so concurrent recorders on different threads rarely share a
/// cache line.
inline constexpr std::size_t kStripes = 8;

/// Stable per-thread stripe index in [0, kStripes).
std::size_t stripe_index() noexcept;

/// Default latency bucket upper bounds, in microseconds: exponential
/// 1us..5s ladder shared by every request-lifecycle histogram (values
/// above the last bound land in the overflow bucket).
std::span<const double> latency_buckets_us() noexcept;

/// Monotone counter with sharded relaxed atomics (thread-safe; writes are
/// one fetch_add on the caller's stripe).
class Counter {
 public:
  /// Adds `delta` to the calling thread's stripe.
  void add(std::uint64_t delta = 1) noexcept {
    // relaxed: independent monotone tallies; readers only need each
    // stripe's eventual sum, no ordering with other memory.
    cells_[stripe_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Shorthand for add(1).
  void inc() noexcept { add(1); }
  /// Merged value: the sum over all stripes.
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& cell : cells_)
      // relaxed: a statistical read; stripes race with writers by design
      // and the merged sum is only ever a point-in-time estimate.
      sum += cell.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Last-writer-wins signed gauge (queue depths, resident entries, active
/// connections). Thread-safe.
class Gauge {
 public:
  /// Replaces the value.
  void set(std::int64_t v) noexcept {
    // relaxed: last-writer-wins telemetry value, no dependent data.
    value_.store(v, std::memory_order_relaxed);
  }
  /// Adjusts the value by `delta` (may be negative).
  void add(std::int64_t delta) noexcept {
    // relaxed: atomic RMW keeps the tally exact; ordering is irrelevant.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Current value.
  std::int64_t value() const noexcept {
    // relaxed: a statistical read of a telemetry value.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative samples (latencies in
/// microseconds by convention). record() is two relaxed fetch_adds on the
/// caller's stripe; quantiles are estimated by linear interpolation inside
/// the covering bucket, so accuracy follows the bucket ladder (exact
/// counts, approximate quantiles — the usual exposition trade-off).
class Histogram {
 public:
  /// Merged read-side view of a histogram (see Histogram::snapshot()).
  struct Snapshot {
    std::vector<double> bounds;  ///< ascending bucket upper bounds
    std::vector<std::uint64_t> counts;  ///< bounds.size()+1 (overflow last)
    std::uint64_t count = 0;  ///< total samples
    double sum = 0.0;         ///< sum of samples (1/1024-unit resolution)

    /// Interpolated quantile, q in [0,1]; 0 when empty. Samples in the
    /// overflow bucket report the last finite bound.
    double quantile(double q) const;
    /// Mean sample (0 when empty).
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  /// A histogram over the given ascending upper bounds (a private copy is
  /// taken); an empty span falls back to latency_buckets_us().
  explicit Histogram(std::span<const double> bounds);

  Histogram(const Histogram&) = delete;             ///< not copyable
  Histogram& operator=(const Histogram&) = delete;  ///< not copyable

  /// Records one sample (negative samples clamp to 0).
  void record(double value) noexcept;

  /// Merges every stripe into one deterministic view.
  Snapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  // Stripe-major: counts_[stripe * (bounds+1) + bucket]; one extra sum
  // cell per stripe accumulates value * 1024 (integer, so merging is
  // exact and TSan-clean without atomic<double> CAS loops).
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::vector<std::atomic<std::uint64_t>> sums_;
};

/// The Prometheus sample name of a metric: `msrs_` + the name with every
/// non-alphanumeric character replaced by '_'.
std::string prometheus_name(std::string_view name);

/// A Prometheus label value with `\`, `"` and newline escaped per the
/// exposition format.
std::string prometheus_label_value(std::string_view value);

/// Deterministic point-in-time view of a whole registry: every metric,
/// sorted by name within its kind.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< by name
  std::vector<std::pair<std::string, std::int64_t>> gauges;     ///< by name
  std::vector<std::pair<std::string, Histogram::Snapshot>>
      histograms;  ///< by name
  /// Info-style series (e.g. `build_info`): rendered as a constant-1 gauge
  /// whose labels carry the payload. Filled by the exposition layer
  /// (Service::metrics_snapshot()), not by the registry itself, so raw
  /// registry snapshots stay environment-independent.
  std::vector<std::pair<std::string, std::vector<std::pair<std::string,
                                                           std::string>>>>
      info;

  /// The merged counter value, or `fallback` when `name` is absent.
  std::uint64_t counter_or(std::string_view name,
                           std::uint64_t fallback = 0) const;
  /// The gauge value, or `fallback` when `name` is absent.
  std::int64_t gauge_or(std::string_view name, std::int64_t fallback = 0) const;
  /// Pointer to the named histogram snapshot, or nullptr when absent.
  const Histogram::Snapshot* histogram(std::string_view name) const;

  /// Renders a Prometheus-style text page ('.'/'-' become '_', names are
  /// prefixed `msrs_`, histograms expose cumulative `_bucket{le=...}`,
  /// `_sum` and `_count` series, info series render as constant-1 gauges
  /// with escaped label values). Byte-stable for equal metric states.
  std::string prometheus() const;
  /// Renders a Json object {counters:{...},gauges:{...},histograms:{...}}
  /// with keys sorted by name (byte-stable for equal metric states); an
  /// "info" member is appended only when info series are present.
  Json json() const;
};

/// Named metric registry. Thread-safe; returned references stay valid (and
/// at a stable address) for the registry's lifetime, so hot paths resolve
/// a metric once and then touch only its atomics.
class MetricsRegistry {
 public:
  /// The counter named `name`, created on first use.
  Counter& counter(std::string_view name) MSRS_EXCLUDES(mutex_);
  /// The gauge named `name`, created on first use.
  Gauge& gauge(std::string_view name) MSRS_EXCLUDES(mutex_);
  /// The histogram named `name`, created on first use with the given
  /// bucket bounds (empty = latency_buckets_us()); later calls return the
  /// existing histogram and ignore `bounds`.
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {})
      MSRS_EXCLUDES(mutex_);

  /// Deterministic snapshot of every registered metric, sorted by name.
  MetricsSnapshot snapshot() const MSRS_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      MSRS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      MSRS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      MSRS_GUARDED_BY(mutex_);
};

}  // namespace msrs::obs
