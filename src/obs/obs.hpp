/// \file
/// Umbrella header of the telemetry subsystem: the metrics registry
/// (obs/metrics.hpp) and request-lifecycle tracing (obs/trace.hpp).
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
