/// \file
/// Umbrella header of the telemetry subsystem: the metrics registry
/// (obs/metrics.hpp), request-lifecycle tracing (obs/trace.hpp), the
/// always-on flight recorder (obs/flight_recorder.hpp), and the
/// monitoring timeseries + anomaly watchdog (obs/timeseries.hpp).
#pragma once

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
