#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace msrs::obs {
namespace {

// The shared exponential 1us..5s ladder (21 finite buckets + overflow).
constexpr double kLatencyBucketsUs[] = {
    1.0,      2.0,      5.0,      10.0,      20.0,      50.0,      100.0,
    200.0,    500.0,    1000.0,   2000.0,    5000.0,    10000.0,   20000.0,
    50000.0,  100000.0, 200000.0, 500000.0,  1000000.0, 2000000.0,
    5000000.0};

// Fixed-point scale of Histogram sums: merging integer stripes is exact.
constexpr double kSumScale = 1024.0;

// Canonical number bytes (shared with the Json writer, so both exposition
// formats agree on every digit).
std::string number_str(double v) { return Json(v).str(); }

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "msrs_";
  out.reserve(out.size() + name.size());
  for (const char c : name)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  return out;
}

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  // relaxed: only per-thread uniqueness of the ticket matters; stripe
  // assignment publishes nothing.
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

std::span<const double> latency_buckets_us() noexcept {
  return kLatencyBucketsUs;
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.empty() ? std::vector<double>(kLatencyBucketsUs,
                                                   std::end(kLatencyBucketsUs))
                             : std::vector<double>(bounds.begin(),
                                                   bounds.end())),
      counts_(kStripes * (bounds_.size() + 1)),
      sums_(kStripes) {}

void Histogram::record(double value) noexcept {
  const double v = value < 0.0 ? 0.0 : value;
  // Bounds are inclusive upper edges (Prometheus `le` semantics): bucket b
  // covers (bounds[b-1], bounds[b]], so a sample equal to a bound belongs
  // to that bound's bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t stripe = stripe_index();
  // relaxed: independent monotone tallies on the caller's stripe; the
  // snapshot merge only needs eventual sums, no cross-cell ordering.
  counts_[stripe * (bounds_.size() + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  // relaxed: same stripe-local tally contract as the bucket counts.
  sums_[stripe].fetch_add(static_cast<std::uint64_t>(std::llround(v * kSumScale)),
                          std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  const std::size_t buckets = bounds_.size() + 1;
  // relaxed: statistical reads; a snapshot racing a writer is a
  // point-in-time estimate by contract.
  for (std::size_t stripe = 0; stripe < kStripes; ++stripe)
    for (std::size_t b = 0; b < buckets; ++b)
      snap.counts[b] +=
          // relaxed: point-in-time statistical read (see above).
          counts_[stripe * buckets + b].load(std::memory_order_relaxed);
  std::uint64_t scaled_sum = 0;
  for (const auto& cell : sums_)
    // relaxed: point-in-time statistical read (see above).
    scaled_sum += cell.load(std::memory_order_relaxed);
  for (const std::uint64_t c : snap.counts) snap.count += c;
  snap.sum = static_cast<double>(scaled_sum) / kSumScale;
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then the covering bucket.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) + 1e-9 < rank) continue;
    if (b >= bounds.size())  // overflow: no finite upper edge
      return bounds.empty() ? 0.0 : bounds.back();
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = bounds[b];
    const double inside = (rank - before) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * std::clamp(inside, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  for (const auto& [key, value] : counters)
    if (key == name) return value;
  return fallback;
}

std::int64_t MetricsSnapshot::gauge_or(std::string_view name,
                                       std::int64_t fallback) const {
  for (const auto& [key, value] : gauges)
    if (key == name) return value;
  return fallback;
}

const Histogram::Snapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& [key, snap] : histograms)
    if (key == name) return &snap;
  return nullptr;
}

std::string MetricsSnapshot::prometheus() const {
  std::string out;
  for (const auto& [name, labels] : info) {
    const std::string sample = prometheus_name(name);
    out += "# TYPE " + sample + " gauge\n";
    out += sample + "{";
    bool first = true;
    for (const auto& [key, value] : labels) {
      if (!first) out += ",";
      first = false;
      out += key + "=\"" + prometheus_label_value(value) + "\"";
    }
    out += "} 1\n";
  }
  for (const auto& [name, value] : counters) {
    const std::string sample = prometheus_name(name);
    out += "# TYPE " + sample + " counter\n";
    out += sample + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string sample = prometheus_name(name);
    out += "# TYPE " + sample + " gauge\n";
    out += sample + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, snap] : histograms) {
    const std::string sample = prometheus_name(name);
    out += "# TYPE " + sample + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      cumulative += snap.counts[b];
      const std::string le =
          b < snap.bounds.size() ? number_str(snap.bounds[b]) : "+Inf";
      out += sample + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += sample + "_sum " + number_str(snap.sum) + "\n";
    out += sample + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

Json MetricsSnapshot::json() const {
  Json counters_json = Json::object();
  for (const auto& [name, value] : counters)
    counters_json.set(name, static_cast<std::int64_t>(value));
  Json gauges_json = Json::object();
  for (const auto& [name, value] : gauges) gauges_json.set(name, value);
  Json histograms_json = Json::object();
  for (const auto& [name, snap] : histograms) {
    Json h = Json::object();
    h.set("count", static_cast<std::int64_t>(snap.count));
    h.set("sum", snap.sum);
    h.set("p50", snap.quantile(0.50));
    h.set("p95", snap.quantile(0.95));
    h.set("p99", snap.quantile(0.99));
    Json counts = Json::array();
    for (const std::uint64_t c : snap.counts)
      counts.push_back(Json(static_cast<std::int64_t>(c)));
    h.set("buckets", std::move(counts));
    histograms_json.set(name, std::move(h));
  }
  Json document = Json::object();
  document.set("counters", std::move(counters_json));
  document.set("gauges", std::move(gauges_json));
  document.set("histograms", std::move(histograms_json));
  if (!info.empty()) {
    Json info_json = Json::object();
    for (const auto& [name, labels] : info) {
      Json entry = Json::object();
      for (const auto& [key, value] : labels) entry.set(key, value);
      info_json.set(name, std::move(entry));
    }
    document.set("info", std::move(info_json));
  }
  return document;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  util::MutexLock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.emplace_back(name, counter->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.emplace_back(name, gauge->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    snap.histograms.emplace_back(name, histogram->snapshot());
  return snap;
}

}  // namespace msrs::obs
