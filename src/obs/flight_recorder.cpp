#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace msrs::obs {
namespace {

// Binary dump magic: identifies (and versions) the raw ring format.
constexpr char kDumpMagic[8] = {'M', 'S', 'R', 'S', 'F', 'R', '0', '1'};

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

#if !defined(_WIN32)
// Async-signal-safe full write (EINTR retried, short writes resumed).
void write_all(int fd, const void* data, std::size_t size) noexcept {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // nothing a handler can do about a failed dump fd
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}
#endif

}  // namespace

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAdmit: return "admit";
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kSolveBegin: return "solve_begin";
    case EventKind::kSolveEnd: return "solve_end";
    case EventKind::kSessionOpen: return "session_open";
    case EventKind::kSessionSubmit: return "session_submit";
    case EventKind::kSessionCancel: return "session_cancel";
    case EventKind::kSessionSnapshot: return "session_snapshot";
    case EventKind::kSessionClose: return "session_close";
    case EventKind::kWrite: return "write";
    case EventKind::kShed: return "shed";
    case EventKind::kError: return "error";
  }
  return "unknown";
}

std::uint64_t recorder_ts_ns(std::chrono::steady_clock::time_point at) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          at.time_since_epoch())
          .count());
}

thread_local FlightRecorder::ThreadCache FlightRecorder::tl_cache;

FlightRecorder::FlightRecorder(RecorderOptions options)
    : capacity_(round_up_pow2(options.capacity < 2 ? 2 : options.capacity)) {
  labels_.push_back("");  // id 0: the empty label
  label_ids_.emplace("", 0);
}

FlightRecorder::~FlightRecorder() {
  // Invalidate the calling thread's cache entry if it points here; other
  // threads' stale entries are keyed by owner pointer and never followed
  // for a different recorder. A recorder must outlive its recording
  // threads' use of it (the Service owns both).
  if (tl_cache.owner == this) tl_cache = ThreadCache{};
}

FlightRecorder::Ring* FlightRecorder::register_thread() {
  util::MutexLock lock(mutex_);
  const std::thread::id self = std::this_thread::get_id();
  const auto it = threads_.find(self);
  Ring* ring = nullptr;
  if (it != threads_.end()) {
    ring = it->second;
  } else if (rings_.size() < kMaxRings) {
    rings_.push_back(std::make_unique<Ring>(capacity_));
    ring = rings_.back().get();
    threads_.emplace(self, ring);
    // relaxed: ring_count_ is only ever advanced under mutex_, so this
    // read cannot race another writer; publication to lock-free readers
    // happens through the release stores below.
    const std::size_t index = ring_count_.load(std::memory_order_relaxed);
    ring_table_[index].store(ring, std::memory_order_release);
    ring_count_.store(index + 1, std::memory_order_release);
  } else {
    // relaxed: a monotone drop tally; readers take a point-in-time value.
    overflow_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  tl_cache.owner = this;
  tl_cache.ring = ring;
  return ring;
}

std::uint16_t FlightRecorder::intern(std::string_view label) {
  util::MutexLock lock(mutex_);
  const auto it = label_ids_.find(std::string(label));
  if (it != label_ids_.end()) return it->second;
  if (labels_.size() >= 0xffff) return 0;  // table full: fall back to ""
  const std::uint16_t id = static_cast<std::uint16_t>(labels_.size());
  labels_.emplace_back(label);
  label_ids_.emplace(labels_.back(), id);
  return id;
}

std::string FlightRecorder::label(std::uint16_t id) const {
  util::MutexLock lock(mutex_);
  return id < labels_.size() ? labels_[id] : std::string();
}

FlightRecorder::Dump FlightRecorder::collect(bool canonical) const {
  Dump dump;
  // relaxed: a statistical read of the monotone drop tally.
  dump.dropped = overflow_dropped_.load(std::memory_order_relaxed);
  const std::size_t count = ring_count_.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = ring_table_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = ring->mask + 1;
    const std::uint64_t live = head < capacity ? head : capacity;
    dump.dropped += head - live;
    for (std::uint64_t n = live; n > 0; --n)
      dump.events.push_back(ring->slots[(head - n) & ring->mask]);
  }
  const auto canonical_order = [](const RecorderEvent& a,
                                  const RecorderEvent& b) {
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.kind < b.kind;
  };
  const auto time_order = [](const RecorderEvent& a, const RecorderEvent& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.kind < b.kind;
  };
  if (canonical)
    std::sort(dump.events.begin(), dump.events.end(), canonical_order);
  else
    std::sort(dump.events.begin(), dump.events.end(), time_order);
  return dump;
}

Json FlightRecorder::event_json(const RecorderEvent& event,
                                bool canonical) const {
  Json object = Json::object();
  object.set("seq", static_cast<std::int64_t>(event.seq));
  object.set("event", std::string(event_kind_name(event.kind)));
  object.set("label", label(event.arg));
  object.set("value", static_cast<std::int64_t>(event.value));
  if (!canonical) {
    object.set("ts_ns", static_cast<std::int64_t>(event.ts_ns));
    object.set("shard", static_cast<std::int64_t>(
                            event.shard == 0xff ? -1 : event.shard));
  }
  return object;
}

std::string FlightRecorder::render_jsonl(const Dump& dump,
                                         bool canonical) const {
  Json meta = Json::object();
  meta.set("events", static_cast<std::int64_t>(dump.events.size()));
  meta.set("dropped", static_cast<std::int64_t>(dump.dropped));
  meta.set("canonical", canonical);
  std::string out = meta.str();
  out.push_back('\n');
  for (const RecorderEvent& event : dump.events) {
    out += event_json(event, canonical).str();
    out.push_back('\n');
  }
  return out;
}

void FlightRecorder::dump_to_fd(int fd) const noexcept {
#if !defined(_WIN32)
  if (fd < 0) return;
  write_all(fd, kDumpMagic, sizeof kDumpMagic);
  const std::uint64_t count = ring_count_.load(std::memory_order_acquire);
  write_all(fd, &count, sizeof count);
  for (std::uint64_t r = 0; r < count; ++r) {
    const Ring* ring = ring_table_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t capacity = ring->mask + 1;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    write_all(fd, &capacity, sizeof capacity);
    write_all(fd, &head, sizeof head);
    write_all(fd, ring->slots.data(), capacity * sizeof(RecorderEvent));
  }
#else
  (void)fd;
#endif
}

bool FlightRecorder::decode(const char* data, std::size_t size, Dump* out) {
  if (out == nullptr || data == nullptr) return false;
  std::size_t offset = 0;
  const auto read = [&](void* into, std::size_t bytes) {
    if (offset + bytes > size) return false;
    std::memcpy(into, data + offset, bytes);
    offset += bytes;
    return true;
  };
  char magic[8];
  if (!read(magic, sizeof magic) ||
      std::memcmp(magic, kDumpMagic, sizeof magic) != 0)
    return false;
  std::uint64_t rings = 0;
  if (!read(&rings, sizeof rings) || rings > kMaxRings) return false;
  Dump dump;
  for (std::uint64_t r = 0; r < rings; ++r) {
    std::uint64_t capacity = 0, head = 0;
    if (!read(&capacity, sizeof capacity) || !read(&head, sizeof head))
      return false;
    if (capacity == 0 || (capacity & (capacity - 1)) != 0 ||
        capacity > (1u << 28))
      return false;
    std::vector<RecorderEvent> slots(capacity);
    if (!read(slots.data(), capacity * sizeof(RecorderEvent))) return false;
    const std::uint64_t live = head < capacity ? head : capacity;
    dump.dropped += head - live;
    for (std::uint64_t n = live; n > 0; --n) {
      const RecorderEvent& event = slots[(head - n) & (capacity - 1)];
      if (static_cast<std::size_t>(event.kind) >= kEventKindCount)
        return false;
      dump.events.push_back(event);
    }
  }
  *out = std::move(dump);
  return true;
}

std::size_t FlightRecorder::size() const {
  std::size_t total = 0;
  const std::size_t count = ring_count_.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = ring_table_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    total += head < ring->mask + 1 ? head : ring->mask + 1;
  }
  return total;
}

// ---------------- fatal-signal dump ----------------

namespace {

std::atomic<FlightRecorder*> g_fatal_recorder{nullptr};
std::atomic<int> g_fatal_fd{-1};

#if !defined(_WIN32)
void fatal_dump_handler(int signo) {
  FlightRecorder* recorder = g_fatal_recorder.load(std::memory_order_acquire);
  const int fd = g_fatal_fd.load(std::memory_order_acquire);
  if (recorder != nullptr && fd >= 0) recorder->dump_to_fd(fd);
  // Re-raise with the default disposition so the process still dies with
  // the original signal (core dumps, exit status intact).
  std::signal(signo, SIG_DFL);
  ::raise(signo);
}
#endif

}  // namespace

void install_fatal_dump(FlightRecorder* recorder, int fd) {
#if !defined(_WIN32)
  g_fatal_recorder.store(recorder, std::memory_order_release);
  g_fatal_fd.store(recorder != nullptr ? fd : -1, std::memory_order_release);
  const auto disposition = recorder != nullptr ? fatal_dump_handler : SIG_DFL;
  std::signal(SIGSEGV, disposition);
  std::signal(SIGABRT, disposition);
#else
  (void)recorder;
  (void)fd;
#endif
}

}  // namespace msrs::obs
