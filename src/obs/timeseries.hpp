/// \file
/// Windowed snapshot-delta timeseries and the anomaly watchdog.
///
/// The MetricsRegistry (obs/metrics.hpp) holds *cumulative* state; alerting
/// needs *rates*. Watchdog::tick() diffs consecutive MetricsSnapshots into
/// TimeseriesPoints — per-interval counter deltas plus window-scoped
/// p50/p95/p99 of the total-latency stage (computed from the histogram
/// bucket deltas, so the quantiles describe only the samples of that
/// interval, not the whole process lifetime) — keeps the last N points in a
/// TimeseriesRing, and evaluates the configured thresholds. A trip bumps
/// `obs.watchdog.*` counters and tells the caller to auto-dump the flight
/// recorder (obs/flight_recorder.hpp), subject to a cooldown so a sustained
/// anomaly produces one dump, not one per tick.
///
/// The ticking cadence is owned by the caller (the TCP event loop ticks
/// Service::monitor_tick(); tests tick directly), so everything here is
/// clock-free and deterministic given the snapshots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace msrs::obs {

/// One interval of the monitoring timeseries: counter deltas between two
/// consecutive snapshots plus interval-scoped latency quantiles.
struct TimeseriesPoint {
  std::uint64_t received = 0;   ///< requests admitted this interval
  std::uint64_t responded = 0;  ///< responses delivered this interval
  std::uint64_t errors = 0;     ///< error responses this interval
  std::uint64_t sheds = 0;      ///< rejections + transport sheds
  std::int64_t queue_depth = 0;  ///< queued requests at snapshot time (sum)
  std::uint64_t samples = 0;  ///< total-stage latency samples this interval
  double p50_us = 0.0;  ///< interval p50 of the total stage (µs)
  double p95_us = 0.0;  ///< interval p95 of the total stage (µs)
  double p99_us = 0.0;  ///< interval p99 of the total stage (µs)

  /// This point as a Json object (deterministic key order).
  Json json() const;
};

/// Fixed-capacity ring of the most recent TimeseriesPoints.
class TimeseriesRing {
 public:
  /// A ring keeping the last `capacity` points (minimum 1).
  explicit TimeseriesRing(std::size_t capacity);

  /// Appends a point, evicting the oldest past capacity.
  void push(const TimeseriesPoint& point);

  /// Points currently held.
  std::size_t size() const { return points_.size(); }

  /// The i-th point, oldest first (i < size()).
  const TimeseriesPoint& at(std::size_t i) const;

  /// The newest point (size() must be > 0).
  const TimeseriesPoint& back() const { return at(points_.size() - 1); }

  /// The whole window as a Json array, oldest first.
  Json json() const;

 private:
  std::size_t capacity_;
  std::size_t start_ = 0;  // index of the oldest point
  std::vector<TimeseriesPoint> points_;
};

/// Watchdog thresholds and window shape. A threshold of 0 disables that
/// check.
struct WatchdogOptions {
  std::size_t window = 60;  ///< TimeseriesRing capacity, in intervals
  /// Trip when the interval p99 of the total stage exceeds this (µs).
  double p99_threshold_us = 0.0;
  /// Trip when errors/received of the interval exceeds this ratio.
  double error_rate_threshold = 0.0;
  /// Trip when the queued-request sum at snapshot time exceeds this.
  std::int64_t queue_threshold = 0;
  /// Minimum total-stage samples in the interval before the p99 check
  /// applies (one slow request in an idle second is not an anomaly).
  std::uint64_t min_samples = 8;
  /// Intervals to suppress further dump requests after a dump fires, so a
  /// sustained anomaly yields one recorder dump, not one per tick.
  std::size_t cooldown_ticks = 30;
};

/// The anomaly watchdog: feeds the ring, evaluates thresholds, counts
/// trips in `obs.watchdog.*`. Not thread-safe — the owner serializes
/// tick() (Service::monitor_tick() holds a mutex).
class Watchdog {
 public:
  /// A watchdog recording its trip counters into `metrics` (the registry
  /// must outlive the watchdog; the `obs.watchdog.*` counters are
  /// registered eagerly so the stats key set is stable).
  Watchdog(WatchdogOptions options, MetricsRegistry& metrics);

  /// Ingests one snapshot: diffs it against the previous one into a
  /// TimeseriesPoint, appends to the ring, and evaluates thresholds.
  /// Returns true when a recorder dump should fire now (some threshold
  /// tripped and the cooldown has elapsed). The first call only
  /// establishes the baseline and never trips.
  bool tick(const MetricsSnapshot& snapshot);

  /// The retained window.
  const TimeseriesRing& ring() const { return ring_; }

  /// Human-readable reason of the most recent trip ("" before any trip).
  const std::string& last_reason() const { return last_reason_; }

  /// Diagnostic render: options, trip state, and the window
  /// (deterministic key order).
  Json json() const;

 private:
  WatchdogOptions options_;
  TimeseriesRing ring_;
  Counter* ticks_c_;
  Counter* trips_c_;
  Counter* p99_trips_c_;
  Counter* error_trips_c_;
  Counter* queue_trips_c_;
  Counter* dumps_c_;
  bool have_baseline_ = false;
  std::uint64_t prev_received_ = 0;
  std::uint64_t prev_responded_ = 0;
  std::uint64_t prev_errors_ = 0;
  std::uint64_t prev_sheds_ = 0;
  std::vector<std::uint64_t> prev_total_counts_;  // total_us bucket counts
  std::size_t ticks_since_dump_ = 0;
  bool dumped_once_ = false;
  std::string last_reason_;
};

}  // namespace msrs::obs
