// Tests for the workload generators.
#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "sim/workloads.hpp"

namespace msrs {
namespace {

class FamilySweep : public ::testing::TestWithParam<Family> {};

TEST_P(FamilySweep, WellFormedAndDeterministic) {
  const Family family = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance a = generate(family, 60, 5, seed);
    EXPECT_TRUE(a.check().empty()) << a.check();
    EXPECT_GT(a.num_jobs(), 0);
    EXPECT_EQ(a.machines(), 5);
    // determinism
    const Instance b = generate(family, 60, 5, seed);
    ASSERT_EQ(a.num_jobs(), b.num_jobs());
    for (JobId j = 0; j < a.num_jobs(); ++j) {
      EXPECT_EQ(a.size(j), b.size(j));
      EXPECT_EQ(a.job_class(j), b.job_class(j));
    }
  }
}

TEST_P(FamilySweep, SeedsProduceDifferentInstances) {
  const Family family = GetParam();
  const Instance a = generate(family, 60, 5, 1);
  const Instance b = generate(family, 60, 5, 2);
  bool differs = a.num_jobs() != b.num_jobs();
  if (!differs)
    for (JobId j = 0; j < a.num_jobs() && !differs; ++j)
      differs = a.size(j) != b.size(j);
  // kUnit with equal layout can coincide in sizes (all 1) but not classes.
  if (family == Family::kUnit) {
    SUCCEED();
    return;
  }
  EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::ValuesIn(kAllFamilies),
                         [](const auto& sweep) {
                           return std::string(family_name(sweep.param));
                         });

TEST(Workloads, JobCountRoughlyHonored) {
  for (const Family family :
       {Family::kUniform, Family::kBimodal, Family::kManySmallClasses}) {
    const Instance instance = generate(family, 100, 8, 3);
    EXPECT_GE(instance.num_jobs(), 100);
    EXPECT_LE(instance.num_jobs(), 130);
  }
}

TEST(Workloads, HugeHeavyContainsHugeJobs) {
  const Instance instance = generate(Family::kHugeHeavy, 60, 8, 5);
  const Time T = lower_bounds(instance).combined;
  bool has_huge = false;
  for (JobId j = 0; j < instance.num_jobs(); ++j)
    if (4 * instance.size(j) > 3 * T) has_huge = true;
  EXPECT_TRUE(has_huge);
}

TEST(Workloads, UnitFamilyAllUnit) {
  const Instance instance = generate(Family::kUnit, 50, 4, 9);
  for (JobId j = 0; j < instance.num_jobs(); ++j)
    EXPECT_EQ(instance.size(j), 1);
}

TEST(Workloads, FamilyNamesDistinct) {
  for (const Family a : kAllFamilies)
    for (const Family b : kAllFamilies)
      if (a != b) {
        EXPECT_STRNE(family_name(a), family_name(b));
      }
}

}  // namespace
}  // namespace msrs
