// Tests for the prior-art baselines and generic list scheduling.
#include <gtest/gtest.h>

#include "algo/baselines.hpp"
#include "algo/greedy.hpp"
#include "core/lower_bounds.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

TEST(MergeLpt, NoConflictsByConstruction) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kUniform, 60, 5, seed);
    const AlgoResult result = merge_lpt(instance);
    EXPECT_TRUE(is_valid(instance, result.schedule)) << "seed " << seed;
  }
}

TEST(MergeLpt, WithinTwoTimesBound) {
  // 2m/(m+1) < 2, so twice the lower bound is always safe.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kBimodal, 80, 6, seed);
    const AlgoResult result = merge_lpt(instance);
    ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                      result.lower_bound, 2, 1));
  }
}

TEST(MergeLpt, RespectsTheoreticalRatioBound) {
  // Strusevich: makespan <= (2m/(m+1)) OPT. Against the combined lower
  // bound this can only be tested as <= 2m/(m+1) * something >= OPT... we
  // check against the bound ratio with OPT replaced by p-based T, which the
  // analysis also supports on merged instances.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kManySmallClasses, 60, 4, seed);
    const AlgoResult result = merge_lpt(instance);
    const int m = instance.machines();
    const double bound = 2.0 * m / (m + 1.0);
    // class-merged LPT vs class-aware lower bound can exceed the ratio only
    // through the merge, which the 2m/(m+1) analysis covers.
    EXPECT_LE(result.ratio_vs_bound(instance), bound + 1.0)
        << "sanity corridor, seed " << seed;
  }
}

TEST(Hebrard, ValidSchedules) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kSatellite, 70, 6, seed);
    const AlgoResult result = hebrard_insertion(instance);
    EXPECT_TRUE(is_valid(instance, result.schedule)) << "seed " << seed;
  }
}

TEST(ListSchedule, AllPrioritiesValid) {
  for (const ListPriority priority :
       {ListPriority::kInputOrder, ListPriority::kLptJob,
        ListPriority::kClassLoadDesc}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Instance instance = generate(Family::kPhotolith, 50, 4, seed);
      const AlgoResult result = list_schedule(instance, priority);
      EXPECT_TRUE(is_valid(instance, result.schedule));
    }
  }
}

TEST(ListSchedule, PriorityOrderIsPermutation) {
  const Instance instance = generate(Family::kUniform, 30, 3, 7);
  for (const ListPriority priority :
       {ListPriority::kInputOrder, ListPriority::kLptJob,
        ListPriority::kClassLoadDesc}) {
    auto order = priority_order(instance, priority);
    std::sort(order.begin(), order.end());
    for (JobId j = 0; j < instance.num_jobs(); ++j)
      EXPECT_EQ(order[static_cast<std::size_t>(j)], j);
  }
}

TEST(ListSchedule, LptOrderIsSorted) {
  const Instance instance = generate(Family::kUniform, 30, 3, 7);
  const auto order = priority_order(instance, ListPriority::kLptJob);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(instance.size(order[i - 1]), instance.size(order[i]));
}

TEST(OneMachinePerClass, OptimalWhenEnoughMachines) {
  const Instance instance = test::make_instance(3, {{5, 5}, {9}, {4, 4}});
  const AlgoResult result = one_machine_per_class(instance);
  EXPECT_TRUE(is_valid(instance, result.schedule));
  EXPECT_DOUBLE_EQ(result.schedule.makespan(instance), 10.0);
}

}  // namespace
}  // namespace msrs
