// Tests for the Lemma-8 census and the Lemma-9 bound search.
#include <gtest/gtest.h>

#include "algo/exact.hpp"
#include "algo/t_bound.hpp"
#include "core/lower_bounds.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

TEST(Census, CountsCategories) {
  // T = 100: huge > 75; big in (50, 75]; heavy p(c) >= 75.
  Instance instance = test::make_instance(
      4, {{80}, {60, 10}, {40, 40}, {10, 10, 10}});
  const Census counts = census(instance, 100);
  EXPECT_EQ(counts.huge, 1);   // {80}
  EXPECT_EQ(counts.big, 1);    // {60,10}
  EXPECT_EQ(counts.heavy, 1);  // {40,40} load 80 >= 75, max 40 <= 50
}

TEST(Census, OkFormula) {
  Census counts;
  counts.huge = 2;
  counts.big = 1;
  counts.heavy = 2;
  // need = 2 + max(1, ceil(3/2)) = 2 + 2 = 4
  EXPECT_TRUE(counts.ok(4));
  EXPECT_FALSE(counts.ok(3));
}

TEST(ThreeHalvesBound, AtLeastCombinedLowerBound) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Instance instance = generate(Family::kHugeHeavy, 30, 4, seed);
    const Time T = three_halves_bound(instance);
    EXPECT_GE(T, lower_bounds(instance).combined);
    EXPECT_TRUE(census_ok(instance, T));
  }
}

TEST(ThreeHalvesBound, MinimalityOnCandidates) {
  // The returned T is the smallest census-satisfying value: T-1 must fail
  // whenever T exceeds the combined bound.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Instance instance = generate(Family::kHugeHeavy, 24, 3, seed);
    const Time T = three_halves_bound(instance);
    const Time base = lower_bounds(instance).combined;
    if (T > base) {
      EXPECT_FALSE(census_ok(instance, T - 1)) << "seed " << seed;
    }
  }
}

TEST(ThreeHalvesBound, NeverExceedsOptimum) {
  // T <= OPT (Lemma 9); verified against the exact solver on small cases.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance instance = generate(Family::kBimodal, 9, 3, seed);
    const Time T = three_halves_bound(instance);
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(T, exact.makespan) << "seed " << seed;
  }
}

TEST(ThreeHalvesBound, CensusForcesLargerT) {
  // m=2 with three classes each holding one job of size 100: the pair bound
  // gives 200; census at 200: huge empty (100 <= 150) -> ok at base.
  Instance a = test::make_instance(2, {{100}, {100}, {100}});
  EXPECT_EQ(three_halves_bound(a), 200);

  // m=2, four huge-ish singleton classes of size 90, area = 180:
  // at T=180: 4a=360 > 3T=540? no. (90 <= 135) not huge. ok at base.
  Instance b = test::make_instance(2, {{90}, {90}, {90}, {90}});
  EXPECT_EQ(three_halves_bound(b), 180);

  // Three classes with jobs {80,80} each on m=3: base = max(160, 160) = 160.
  // At T=160: a=80 in (80, 120]? 2a=160 > 160 false -> not big. ok.
  Instance c = test::make_instance(3, {{80, 80}, {80, 80}, {80, 80}});
  EXPECT_EQ(three_halves_bound(c), 160);
}

TEST(ThreeHalvesBound, HugeCensusBindsWhenTooManyHugeClasses) {
  // m=2 but three classes whose single job is huge relative to the base
  // bound: the census must push T upward until at most... the classes stop
  // being huge. Loads: {100}, {100}, {100}, m=2 -> base=200 (pair bound),
  // at T=200 no class is huge. Make jobs 190 instead with filler to keep
  // area low: base = max(ceil(570/2)=285, 190, 380) = 380 -> fine already.
  Instance instance = test::make_instance(2, {{190}, {190}, {190}});
  const Time T = three_halves_bound(instance);
  EXPECT_TRUE(census_ok(instance, T));
  EXPECT_EQ(T, 380);  // pair bound dominates and census holds there
}

}  // namespace
}  // namespace msrs
