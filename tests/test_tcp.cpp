// TCP transport: event-loop building blocks (timer wheel, line framer,
// host:port parsing), byte-identity with the stdio transport under
// adversarial packetization, fault injection (silent client, client
// killed mid-request, over-budget floods), the socket-transport budget
// race regression, and the >=256-connection fan-in acceptance bar.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve.hpp"

namespace msrs::serve {
namespace {

// ---------------- event-loop building blocks ----------------

TEST(TimerWheel, ExpiresArmedKeysOncePassedTheirDeadline) {
  TimerWheel wheel(10, 8);
  wheel.arm(1, 95);
  std::vector<int> expired;
  wheel.advance(50, &expired);
  EXPECT_TRUE(expired.empty());
  wheel.advance(100, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, ReArmingPushesTheDeadlineWithoutDoubleFiring) {
  TimerWheel wheel(10, 8);
  wheel.arm(5, 30);
  std::vector<int> expired;
  wheel.advance(20, &expired);
  EXPECT_TRUE(expired.empty());
  wheel.arm(5, 100);  // activity on the connection: deadline moves out
  wheel.advance(50, &expired);
  EXPECT_TRUE(expired.empty()) << "stale slot entry fired early";
  wheel.advance(120, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 5);
}

TEST(TimerWheel, CancelDisarmsAndLongSleepsLapTheWholeWheel) {
  TimerWheel wheel(10, 8);
  wheel.arm(7, 40);
  wheel.cancel(7);
  wheel.arm(9, 60);
  std::vector<int> expired;
  // A jump much longer than one wheel revolution must still visit every
  // slot exactly once and fire the armed key.
  wheel.advance(10'000, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 9);
}

TEST(LineFramer, ReassemblesLinesFromOneByteAppends) {
  LineFramer framer(1024);
  const std::string stream = "first\nsecond\n\nlast-no-newline";
  std::vector<std::string> lines;
  std::string line;
  for (const char byte : stream) {
    framer.append(&byte, 1);
    while (framer.next_line(&line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "first");
  EXPECT_EQ(lines[1], "second");
  EXPECT_EQ(lines[2], "");  // empty frames surface; transports skip them
  EXPECT_FALSE(framer.overflowed());
  EXPECT_EQ(framer.take_remainder(), "last-no-newline");
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(LineFramer, CoalescedSegmentYieldsEveryFrame) {
  LineFramer framer(1024);
  const std::string segment = "{\"op\":\"ping\"}\n{\"op\":\"version\"}\n";
  framer.append(segment.data(), segment.size());
  std::string line;
  ASSERT_TRUE(framer.next_line(&line));
  EXPECT_EQ(line, "{\"op\":\"ping\"}");
  ASSERT_TRUE(framer.next_line(&line));
  EXPECT_EQ(line, "{\"op\":\"version\"}");
  EXPECT_FALSE(framer.next_line(&line));
  EXPECT_GE(framer.highwater(), segment.size());
}

TEST(LineFramer, OverflowLatchesOnceTheTailExceedsTheBound) {
  LineFramer framer(16);
  const std::string flood(64, 'x');  // no newline anywhere
  framer.append(flood.data(), flood.size());
  EXPECT_TRUE(framer.overflowed());
  // Latch: still overflowed after a newline finally arrives.
  framer.append("\n", 1);
  EXPECT_TRUE(framer.overflowed());
}

TEST(ParseHostPort, AcceptsValidAndRejectsMalformedTargets) {
  std::string host;
  std::uint16_t port = 0;
  std::string error;
  ASSERT_TRUE(parse_host_port("127.0.0.1:8080", &host, &port, &error));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  ASSERT_TRUE(parse_host_port("localhost:0", &host, &port, &error));
  EXPECT_EQ(port, 0);  // ephemeral
  for (const char* bad :
       {"no-port", ":7", "host:", "host:abc", "host:70000", "host:-1"}) {
    EXPECT_FALSE(parse_host_port(bad, &host, &port, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// ---------------- in-process TCP server fixture ----------------

ServiceOptions small_service(unsigned shards) {
  ServiceOptions options;
  options.shards = shards;
  options.budget_ms = 10;  // keep race fields small for test speed
  return options;
}

// Runs serve_tcp on an ephemeral loopback port in a background thread;
// stop() ends the loop via the cooperative stop flag (works even when
// every budget slot is taken, unlike a shutdown-op connection).
class TcpTestServer {
 public:
  explicit TcpTestServer(ServiceOptions service_options, TcpOptions options)
      : service_(service_options) {
    std::promise<std::uint16_t> promise;
    std::future<std::uint16_t> future = promise.get_future();
    options.on_listen = [&promise](std::uint16_t p) { promise.set_value(p); };
    if (options.tick_ms <= 0 || options.tick_ms > 20)
      options.tick_ms = 20;  // keep stop() and reaping prompt in tests
    thread_ = std::thread([this, options] {
      std::string error;
      code_ = serve_tcp(service_, "127.0.0.1:0", &error, options);
      error_ = error;
    });
    port_ = future.get();
  }

  ~TcpTestServer() { stop(); }

  void stop() {
    if (stopped_) return;
    stopped_ = true;
    request_stop();
    thread_.join();
    reset_stop();
    EXPECT_EQ(code_, 0) << error_;
  }

  std::string target() const { return "127.0.0.1:" + std::to_string(port_); }
  Service& service() { return service_; }

 private:
  Service service_;
  std::thread thread_;
  std::uint16_t port_ = 0;
  int code_ = -1;
  std::string error_;
  bool stopped_ = false;
};

// Polls a metrics gauge until it reaches `want` (event-loop teardown is
// asynchronous relative to the client's view of the close).
[[nodiscard]] bool wait_for_gauge(Service& service, const std::string& name,
                                  std::int64_t want) {
  for (int i = 0; i < 500; ++i) {
    if (service.metrics_snapshot().gauge_or(name) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

[[nodiscard]] bool wait_for_counter(Service& service, const std::string& name,
                                    std::uint64_t at_least) {
  for (int i = 0; i < 500; ++i) {
    if (service.metrics_snapshot().counter_or(name) >= at_least) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// ---------------- byte-identity with the stdio transport ----------------

std::string stdio_serve_all(const std::string& input, unsigned shards) {
  Service service(small_service(shards));
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(serve_stdio(service, in, out), 0);
  return out.str();
}

// The adversarial request stream: control ops, real solves (repeats for
// cache traffic), every named defect, blank lines, trailing garbage with
// no final newline.
std::string adversarial_stream() {
  std::string stream;
  stream += "{\"id\":1,\"op\":\"ping\"}\n";
  stream += "\n";  // blank line: skipped by both transports
  stream += "{\"id\":2,\"op\":\"solve\",\"spec\":\"uniform:n=14,m=3,seed=4\"}\n";
  stream += "{\"id\":3,\"op\":\"version\"}\n";
  stream += "}{ not json\n";
  stream += "{\"id\":4,\"op\":\"solve\",\"spec\":\"uniform:n=14,m=3,seed=4\"}\n";
  stream += "{\"op\":\"solve\",\"spec\":\"no_such_family:n=4\"}\n";
  stream += "{\"id\":5,\"op\":\"fly\"}\n";
  stream += "{\"id\":6,\"op\":\"solve\",\"spec\":\"uniform:n=10,m=2,seed=9\"}\n";
  stream += "trailing garbage without newline";  // final unterminated line
  return stream;
}

// Sends `bytes` in fixed-size chunks over a fresh connection, half-closes,
// and returns everything the server wrote until EOF.
std::string roundtrip_chunked(const std::string& target,
                              const std::string& bytes, std::size_t chunk) {
  TcpClient client;
  std::string error;
  EXPECT_TRUE(client.connect(target, &error)) << error;
  for (std::size_t i = 0; i < bytes.size(); i += chunk) {
    EXPECT_TRUE(
        client.send_bytes(bytes.data() + i, std::min(chunk, bytes.size() - i)));
    // Give tiny segments a chance to arrive as separate reads now and
    // then; correctness must not depend on it either way.
    if (chunk == 1 && i % 64 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.shutdown_write();  // orderly EOF: server flushes the final line
  std::string out;
  std::string line;
  while (client.recv_line(&line)) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(TcpTransport, ByteIdenticalToStdioUnderAdversarialChunking) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  const std::string stream = adversarial_stream();
  const std::string expected = stdio_serve_all(stream, 2);
  ASSERT_FALSE(expected.empty());
  // The same shard count on the serving side; chunk sizes cover 1-byte
  // writes, splits through the middle of every JSON document, and the
  // whole stream coalesced into one segment.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, stream.size()}) {
    TcpTestServer server(small_service(2), TcpOptions{});
    EXPECT_EQ(roundtrip_chunked(server.target(), stream, chunk), expected)
        << "chunk=" << chunk;
    server.stop();
  }
}

TEST(TcpTransport, ResponsesStayInRequestOrderAcrossShardCounts) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  // Mixed-cost solves race across shards; the per-connection writer must
  // restore request order, so 1-shard and 4-shard responses are identical.
  std::string stream;
  for (int i = 0; i < 12; ++i)
    stream += "{\"id\":" + std::to_string(i) +
              ",\"op\":\"solve\",\"spec\":\"uniform:n=" +
              std::to_string(10 + 10 * (i % 4)) + ",m=2,seed=" +
              std::to_string(1 + i % 3) + "\"}\n";
  std::string outputs[2];
  const unsigned shard_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    TcpTestServer server(small_service(shard_counts[run]), TcpOptions{});
    outputs[run] = roundtrip_chunked(server.target(), stream, 13);
    server.stop();
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(TcpTransport, OversizedLineIsNamedParseErrorThenClose) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  TcpOptions options;
  options.max_line_bytes = 128;
  TcpTestServer server(small_service(1), options);
  TcpClient client;
  std::string error;
  ASSERT_TRUE(client.connect(server.target(), &error)) << error;
  const std::string flood(4096, 'x');  // no newline: unbounded-line attack
  ASSERT_TRUE(client.send_bytes(flood.data(), flood.size()));
  std::string line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_NE(line.find("\"error\":\"parse_error\""), std::string::npos);
  EXPECT_FALSE(client.recv_line(&line));  // EOF: connection is closed
  EXPECT_TRUE(wait_for_gauge(server.service(), "serve.tcp.active", 0));
}

// ---------------- fault injection ----------------

TEST(TcpTransport, SilentClientIsReapedByIdleTimeout) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  TcpOptions options;
  options.idle_timeout_ms = 100;
  options.tick_ms = 10;
  TcpTestServer server(small_service(1), options);
  TcpClient silent;
  std::string error;
  ASSERT_TRUE(silent.connect(server.target(), &error)) << error;
  // Never sends a byte: the server must close it of its own accord.
  std::string line;
  EXPECT_FALSE(silent.recv_line(&line));  // EOF from the reaper
  EXPECT_TRUE(wait_for_counter(server.service(), "serve.tcp.idle_reaped", 1));
  EXPECT_TRUE(wait_for_gauge(server.service(), "serve.tcp.active", 0));
  // An active client with the same timeout keeps its connection: every
  // request re-arms the idle deadline.
  TcpClient busy;
  ASSERT_TRUE(busy.connect(server.target(), &error)) << error;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(busy.send_line("{\"op\":\"ping\"}"));
    ASSERT_TRUE(busy.recv_line(&line)) << "reaped a live connection at " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(TcpTransport, ClientKilledMidRequestLeaksNothing) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  TcpTestServer server(small_service(2), TcpOptions{});
  // A batch of casualties: each sends a real solve, then RSTs without
  // reading its response. Every fd and connection record must be
  // reclaimed (gauge back to zero; ASan owns the leak check).
  for (int i = 0; i < 8; ++i) {
    TcpClient victim;
    std::string error;
    ASSERT_TRUE(victim.connect(server.target(), &error)) << error;
    ASSERT_TRUE(victim.send_line(
        "{\"id\":1,\"op\":\"solve\",\"spec\":\"uniform:n=40,m=4,seed=" +
        std::to_string(i + 1) + "\"}"));
    victim.abort_connection();  // SO_LINGER(0): RST mid-request
  }
  EXPECT_TRUE(wait_for_gauge(server.service(), "serve.tcp.active", 0));
  // The service survived and still answers.
  TcpClient probe;
  std::string error;
  ASSERT_TRUE(probe.connect(server.target(), &error)) << error;
  std::string line;
  ASSERT_TRUE(probe.send_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(probe.recv_line(&line));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
}

TEST(TcpTransport, BudgetShedsOverflowWithNamedErrorAndRecovers) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  TcpOptions options;
  options.max_connections = 2;
  TcpTestServer server(small_service(1), options);
  std::string error;
  std::string line;
  // Fill the budget (N connections against --max-conns N).
  std::vector<std::unique_ptr<TcpClient>> holders;
  for (int i = 0; i < 2; ++i) {
    auto holder = std::make_unique<TcpClient>();
    ASSERT_TRUE(holder->connect(server.target(), &error)) << error;
    ASSERT_TRUE(holder->send_line("{\"op\":\"ping\"}"));
    ASSERT_TRUE(holder->recv_line(&line));
    holders.push_back(std::move(holder));
  }
  // Connection N+1: one named overloaded line, then EOF.
  TcpClient extra;
  ASSERT_TRUE(extra.connect(server.target(), &error)) << error;
  ASSERT_TRUE(extra.recv_line(&line));
  EXPECT_NE(line.find("\"error\":\"overloaded\""), std::string::npos);
  EXPECT_FALSE(extra.recv_line(&line));
  // Drop the holders: the gauge returns to zero and a new client is
  // admitted again.
  for (auto& holder : holders) holder->close();
  EXPECT_TRUE(wait_for_gauge(server.service(), "serve.tcp.active", 0));
  TcpClient after;
  ASSERT_TRUE(after.connect(server.target(), &error)) << error;
  ASSERT_TRUE(after.send_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(after.recv_line(&line));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);

  const obs::MetricsSnapshot snapshot = server.service().metrics_snapshot();
  EXPECT_EQ(snapshot.counter_or("serve.tcp.shed"), 1u);
  EXPECT_GE(snapshot.counter_or("serve.tcp.accepted"), 3u);
  server.stop();
  EXPECT_EQ(server.service().metrics_snapshot().gauge_or("serve.tcp.active"),
            0);
}

TEST(TcpTransport, StatsOpCoversTheTcpSection) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  TcpTestServer server(small_service(1), TcpOptions{});
  TcpClient client;
  std::string error;
  ASSERT_TRUE(client.connect(server.target(), &error)) << error;
  std::string line;
  ASSERT_TRUE(client.send_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(client.recv_line(&line));
  ASSERT_TRUE(client.send_line("{\"op\":\"stats\"}"));
  ASSERT_TRUE(client.recv_line(&line));
  const std::optional<Json> document = json_parse(line);
  ASSERT_TRUE(document.has_value()) << line;
  const Json* tcp = document->find("tcp");
  ASSERT_NE(tcp, nullptr) << line;
  for (const char* key : {"accepted", "shed", "idle_reaped", "active",
                          "read_buf_highwater", "write_buf_highwater"})
    ASSERT_NE(tcp->find(key), nullptr) << key;
  EXPECT_EQ(tcp->find("accepted")->as_number(), 1.0);
  EXPECT_EQ(tcp->find("active")->as_number(), 1.0);
  EXPECT_GT(tcp->find("read_buf_highwater")->as_number(), 0.0);
}

TEST(TcpTransport, ShutdownOpAnswersDrainsAndExits) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  TcpTestServer server(small_service(1), TcpOptions{});
  TcpClient client;
  std::string error;
  ASSERT_TRUE(client.connect(server.target(), &error)) << error;
  // A solve queued before the shutdown op must still be answered, in
  // order, before the connection closes.
  ASSERT_TRUE(client.send_line(
      R"({"id":1,"op":"solve","spec":"uniform:n=20,m=3,seed=2"})"));
  ASSERT_TRUE(client.send_line(R"({"id":2,"op":"shutdown"})"));
  std::string line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_NE(line.find("\"id\":1"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_NE(line.find("\"op\":\"shutdown\""), std::string::npos);
  EXPECT_FALSE(client.recv_line(&line));  // server closed after the drain
  server.stop();  // the loop already exited; this only joins
}

TEST(TcpTransport, ShutdownDrainsLiveSessionsInOrder) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  TcpTestServer server(small_service(2), TcpOptions{});
  TcpClient client;
  std::string error;
  ASSERT_TRUE(client.connect(server.target(), &error)) << error;
  // A live session's queued mutations and in-flight snapshot must all be
  // answered, in request order, before the shutdown ack closes the stream.
  ASSERT_TRUE(client.send_line(
      R"({"id":1,"op":"open_session","session":"drain","machines":3})"));
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(client.send_line(
        R"({"id":)" + std::to_string(i + 2) +
        R"(,"op":"submit_job","session":"drain","class":"c0","size":)" +
        std::to_string(i + 7) + "}"));
  ASSERT_TRUE(
      client.send_line(R"({"id":6,"op":"snapshot","session":"drain"})"));
  ASSERT_TRUE(client.send_line(R"({"id":7,"op":"shutdown"})"));
  std::string line;
  for (int id = 1; id <= 6; ++id) {
    ASSERT_TRUE(client.recv_line(&line)) << "id " << id;
    EXPECT_NE(line.find("\"id\":" + std::to_string(id)), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  }
  EXPECT_NE(line.find("\"jobs\":4"), std::string::npos) << line;
  EXPECT_NE(line.find("\"valid\":true"), std::string::npos) << line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_NE(line.find("\"op\":\"shutdown\""), std::string::npos);
  EXPECT_FALSE(client.recv_line(&line));  // closed after the session drain
  server.stop();
}

// ---------------- socket-transport budget race regression ----------------

TEST(ServeSocketBudget, SlotFreesTheInstantAConnectionEnds) {
  if (!socket_transport_available())
    GTEST_SKIP() << "no socket transport on this platform";
  // Regression: the thread-per-connection transport used to gate accepts
  // on its zombie list, which only shrank on reap ticks — after an abrupt
  // disconnect a fresh client could be shed although the slot was free.
  // The shared ConnectionBudget releases in the connection thread itself,
  // so once the active gauge reads 0 the next client MUST be admitted.
  const std::string path = ::testing::TempDir() + "msrs_budget_race.sock";
  Service service(small_service(1));
  SocketOptions options;
  options.max_connections = 1;
  std::thread server([&service, &path, options] {
    std::string error;
    EXPECT_EQ(serve_socket(service, path, &error, options), 0) << error;
  });
  std::string error;
  std::string line;
  {
    SocketClient first;
    bool connected = false;
    for (int i = 0; i < 500 && !connected; ++i) {
      connected = first.connect(path, &error);
      if (!connected)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(connected) << error;
    ASSERT_TRUE(first.send_line(R"({"op":"ping"})"));
    ASSERT_TRUE(first.recv_line(&line));
  }
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(wait_for_gauge(service, "serve.conns.active", 0))
        << "round " << round;
    SocketClient next;
    ASSERT_TRUE(next.connect(path, &error)) << error;
    ASSERT_TRUE(next.send_line(R"({"op":"ping"})"));
    ASSERT_TRUE(next.recv_line(&line)) << "round " << round;
    // With the old zombie-list gate this was an overloaded shed whenever
    // the reaper had not run yet; the budget makes it impossible.
    EXPECT_EQ(line.find("\"error\":\"overloaded\""), std::string::npos)
        << "round " << round;
    next.close();  // abrupt from the server's poll loop's point of view
  }
  SocketClient closer;
  ASSERT_TRUE(wait_for_gauge(service, "serve.conns.active", 0));
  ASSERT_TRUE(closer.connect(path, &error)) << error;
  ASSERT_TRUE(closer.send_line(R"({"op":"shutdown"})"));
  ASSERT_TRUE(closer.recv_line(&line));
  server.join();
  EXPECT_EQ(service.metrics_snapshot().counter_or("serve.conns.rejected"),
            0u);
}

// ---------------- fan-in acceptance ----------------

TEST(TcpTransport, Sustains256ConcurrentDriverConnections) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  TcpOptions options;
  options.max_connections = 512;
  ServiceOptions service_options = small_service(4);
  service_options.budget_ms = 5;
  TcpTestServer server(service_options, options);

  DriveOptions drive_options;
  drive_options.tcp = server.target();
  drive_options.specs = {"uniform:n=10,m=2,seed=1"};
  drive_options.seeds_per_spec = 8;
  drive_options.requests = 2048;
  drive_options.conns = 256;
  std::string error;
  const std::optional<DriveReport> report = drive(drive_options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(report->sent, 2048u);
  EXPECT_EQ(report->ok, 2048u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->transport_errors, 0u);

  const obs::MetricsSnapshot snapshot = server.service().metrics_snapshot();
  EXPECT_GE(snapshot.counter_or("serve.tcp.accepted"), 257u);  // +control
  EXPECT_EQ(snapshot.counter_or("serve.tcp.shed"), 0u);
  server.stop();
  EXPECT_TRUE(wait_for_gauge(server.service(), "serve.tcp.active", 0));
}

// ---------------- HTTP exposition listener ----------------

// TcpTestServer plus a second (HTTP) listener on its own ephemeral port.
class HttpTestServer {
 public:
  explicit HttpTestServer(ServiceOptions service_options,
                          TcpOptions options = {})
      : service_(service_options) {
    std::promise<std::uint16_t> jsonl_promise, http_promise;
    std::future<std::uint16_t> jsonl_port = jsonl_promise.get_future();
    std::future<std::uint16_t> http_port = http_promise.get_future();
    options.on_listen = [&jsonl_promise](std::uint16_t p) {
      jsonl_promise.set_value(p);
    };
    options.http = "127.0.0.1:0";
    options.on_http_listen = [&http_promise](std::uint16_t p) {
      http_promise.set_value(p);
    };
    options.tick_ms = 20;
    thread_ = std::thread([this, options] {
      std::string error;
      code_ = serve_tcp(service_, "127.0.0.1:0", &error, options);
      error_ = error;
    });
    jsonl_port_ = jsonl_port.get();
    http_port_ = http_port.get();
  }

  ~HttpTestServer() { stop(); }

  void stop() {
    if (stopped_) return;
    stopped_ = true;
    request_stop();
    thread_.join();
    reset_stop();
    EXPECT_EQ(code_, 0) << error_;
  }

  // Waits for the serve loop to exit on its own (shutdown-op tests).
  void join() {
    if (stopped_) return;
    stopped_ = true;
    thread_.join();
    reset_stop();
    EXPECT_EQ(code_, 0) << error_;
  }

  std::string jsonl_target() const {
    return "127.0.0.1:" + std::to_string(jsonl_port_);
  }
  std::string http_target() const {
    return "127.0.0.1:" + std::to_string(http_port_);
  }
  Service& service() { return service_; }

 private:
  Service service_;
  std::thread thread_;
  std::uint16_t jsonl_port_ = 0;
  std::uint16_t http_port_ = 0;
  int code_ = -1;
  std::string error_;
  bool stopped_ = false;
};

// One full HTTP exchange: sends raw bytes, reads to EOF (every route body
// is newline-terminated, so a line-wise read loses nothing). Empty string
// when the connection was refused.
std::string http_exchange(const std::string& target,
                          const std::string& request) {
  TcpClient client;
  std::string error;
  if (!client.connect(target, &error)) return "";
  if (!client.send_bytes(request.data(), request.size())) return "";
  std::string out, line;
  while (client.recv_line(&line)) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string http_get(const std::string& target, const std::string& path) {
  return http_exchange(target,
                       "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n");
}

TEST(HttpListener, ServesMetricsHealthzAndRecorderMidRun) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  HttpTestServer server(small_service(2));

  // Real JSONL traffic on the sibling listener first.
  TcpClient client;
  std::string error;
  ASSERT_TRUE(client.connect(server.jsonl_target(), &error)) << error;
  std::string response;
  ASSERT_TRUE(client.send_line(
      R"({"id":1,"op":"solve","spec":"uniform:n=14,m=3,seed=4"})"));
  ASSERT_TRUE(client.recv_line(&response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);

  const std::string metrics = http_get(server.http_target(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("msrs_build_info{"), std::string::npos);
  EXPECT_NE(metrics.find("msrs_serve_received"), std::string::npos);
  EXPECT_NE(metrics.find("msrs_serve_latency_total_us_bucket"),
            std::string::npos);

  const std::string health = http_get(server.http_target(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string recorder =
      http_get(server.http_target(), "/recorder?canonical=1");
  EXPECT_NE(recorder.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(recorder.find("\"canonical\":true"), std::string::npos);
  EXPECT_NE(recorder.find("\"event\":\"solve_end\""), std::string::npos);

  const std::string watchdog = http_get(server.http_target(), "/watchdog");
  EXPECT_NE(watchdog.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(watchdog.find("\"thresholds\""), std::string::npos);

  client.close();
  server.stop();
}

TEST(HttpListener, AnswersProtocolDefectsWithoutDying) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  HttpTestServer server(small_service(1));
  EXPECT_NE(http_get(server.http_target(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_exchange(server.http_target(),
                          "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(http_exchange(server.http_target(), "garbage\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  // A request head over the 8 KiB bound is refused, not buffered forever.
  const std::string huge =
      "GET /" + std::string(10'000, 'x') + " HTTP/1.1\r\n\r\n";
  EXPECT_NE(http_exchange(server.http_target(), huge).find("HTTP/1.1 400"),
            std::string::npos);
  // The loop survived all of it: a healthy exchange still works.
  EXPECT_NE(http_get(server.http_target(), "/healthz").find("200 OK"),
            std::string::npos);
  server.stop();
}

TEST(HttpListener, HealthzReports503WhileDraining) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  ServiceOptions service_options = small_service(1);
  service_options.budget_ms = 60;  // slow enough to observe the drain
  HttpTestServer server(service_options);

  // Queue several distinct slow solves, then ask for shutdown without
  // reading the solve responses: the service drains while the HTTP
  // listener keeps answering.
  TcpClient worker;
  std::string error;
  ASSERT_TRUE(worker.connect(server.jsonl_target(), &error)) << error;
  for (int seed = 1; seed <= 6; ++seed)
    ASSERT_TRUE(worker.send_line(
        R"({"op":"solve","budget_ms":60,"spec":"huge_heavy:n=2000,m=16,seed=)" +
        std::to_string(seed) + "\"}"));
  // One response read guarantees the queue is loaded before the shutdown.
  std::string first;
  ASSERT_TRUE(worker.recv_line(&first));
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos);
  TcpClient closer;
  ASSERT_TRUE(closer.connect(server.jsonl_target(), &error)) << error;
  ASSERT_TRUE(closer.send_line(R"({"op":"shutdown"})"));

  // Poll /healthz until the drain window reports 503 (or the loop exits,
  // which would fail the expectation below).
  bool saw_draining = false;
  for (int i = 0; i < 500 && !saw_draining; ++i) {
    const std::string health = http_get(server.http_target(), "/healthz");
    if (health.empty()) break;  // listener closed: drain finished
    if (health.find("HTTP/1.1 503") != std::string::npos &&
        health.find("draining") != std::string::npos)
      saw_draining = true;
  }
  EXPECT_TRUE(saw_draining) << "no 503 observed during the drain";
  server.join();
}

}  // namespace
}  // namespace msrs::serve
