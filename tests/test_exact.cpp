// Tests for the exact branch-and-bound solver.
#include <gtest/gtest.h>

#include "algo/exact.hpp"
#include "algo/three_halves.hpp"
#include "core/lower_bounds.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

TEST(Exact, HandComputedOptima) {
  // P||Cmax without conflicts: partition {3,3,2,2,2} on 2 machines -> 6.
  Instance a = test::make_instance(2, {{3}, {3}, {2}, {2}, {2}});
  EXPECT_EQ(exact_makespan(a).makespan, 6);

  // Class conflicts force serialization: one class of three unit jobs on 3
  // machines still needs makespan 3.
  Instance b = test::make_instance(3, {{1, 1, 1}});
  EXPECT_EQ(exact_makespan(b).makespan, 3);

  // Two classes {2,2} on 2 machines: interleave -> 4.
  Instance c = test::make_instance(2, {{2, 2}, {2, 2}});
  EXPECT_EQ(exact_makespan(c).makespan, 4);
}

TEST(Exact, ForcedIdleTime) {
  // m=2. Class A = {2,2}, class B = {1}, class C = {1}:
  // OPT = 4 (A serializes); the second machine has slack.
  Instance instance = test::make_instance(2, {{2, 2}, {1}, {1}});
  const ExactResult result = exact_makespan(instance);
  EXPECT_EQ(result.makespan, 4);
  EXPECT_TRUE(is_valid(instance, result.schedule));
}

TEST(Exact, ScheduleIsValidAndMatchesMakespan) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kUniform, 8, 3, seed);
    const ExactResult result = exact_makespan(instance);
    ASSERT_TRUE(result.optimal);
    ASSERT_TRUE(is_valid(instance, result.schedule));
    EXPECT_EQ(result.schedule.makespan_scaled(instance), result.makespan);
    EXPECT_GE(result.makespan, lower_bounds(instance).combined);
  }
}

TEST(Exact, PrunedMatchesExhaustive) {
  // The pruned search must agree with the exhaustive one on tiny instances.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance instance = generate(Family::kBimodal, 6, 2, seed);
    ExactOptions pruned;
    ExactOptions exhaustive;
    exhaustive.prune = false;
    const ExactResult a = exact_makespan(instance, pruned);
    const ExactResult b = exact_makespan(instance, exhaustive);
    ASSERT_TRUE(a.optimal && b.optimal);
    EXPECT_EQ(a.makespan, b.makespan) << "seed " << seed;
    EXPECT_LE(a.nodes, b.nodes);
  }
}

TEST(Exact, NeverBeatsLowerBoundNorLosesToApprox) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kSatellite, 9, 3, seed);
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    EXPECT_GE(exact.makespan, lower_bounds(instance).combined);
    const AlgoResult approx = three_halves(instance);
    EXPECT_LE(static_cast<double>(exact.makespan),
              approx.schedule.makespan(instance) + 1e-9);
  }
}

TEST(ExactDecide, ThresholdBehavior) {
  Instance instance = test::make_instance(2, {{2, 2}, {2, 2}});
  EXPECT_EQ(exact_decide(instance, 3), 0);
  EXPECT_EQ(exact_decide(instance, 4), 1);
  EXPECT_EQ(exact_decide(instance, 100), 1);
}

TEST(ExactDecide, MatchesExactMakespan) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate(Family::kUnit, 10, 3, seed);
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    EXPECT_EQ(exact_decide(instance, exact.makespan), 1);
    if (exact.makespan > 1) {
      EXPECT_EQ(exact_decide(instance, exact.makespan - 1), 0);
    }
  }
}

TEST(Exact, NodeLimitReportsNonOptimal) {
  ExactOptions options;
  options.node_limit = 10;
  const Instance instance = generate(Family::kUniform, 12, 3, 42);
  const ExactResult result = exact_makespan(instance, options);
  EXPECT_FALSE(result.optimal);
  EXPECT_GT(result.makespan, 0);
}

}  // namespace
}  // namespace msrs
