// Tests for the EPTAS pipeline (Section 4): parameter choice, the
// simplification lemmas, the layered solver (cross-checked against the
// configuration IP solved by the reference ILP and the N-fold solver), and
// the end-to-end quality of the scheme.
#include <gtest/gtest.h>

#include "algo/exact.hpp"
#include "core/lower_bounds.hpp"
#include "opt/ilp.hpp"
#include "opt/nfold.hpp"
#include "ptas/config_ip.hpp"
#include "ptas/eptas.hpp"
#include "ptas/layer_solver.hpp"
#include "ptas/layered.hpp"
#include "ptas/params.hpp"
#include "ptas/simplify.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace msrs {
namespace {

// ---------------- parameters ----------------

TEST(PtasParams, ThresholdsAreExact) {
  PtasParams params;
  params.e = 2;
  params.k = 2;        // delta = 1/4, mu = 1/16
  params.T = 1600;
  EXPECT_TRUE(params.is_big(401));     // > 400 = delta*T
  EXPECT_FALSE(params.is_big(400));
  EXPECT_TRUE(params.is_medium(400));
  EXPECT_TRUE(params.is_medium(101));  // > 100 = mu*T
  EXPECT_FALSE(params.is_medium(100));
  EXPECT_TRUE(params.is_small(100));
  EXPECT_FALSE(params.is_small(101));
}

TEST(PtasParams, ChoiceSatisfiesConditions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kBimodal, 60, 4, seed);
    const Time T = lower_bounds(instance).combined;
    for (const bool m_constant : {true, false}) {
      const PtasParams params = choose_params(instance, 2, T, m_constant);
      const auto totals = condition_totals(instance, 2, params.k, T);
      if (m_constant) {
        EXPECT_LE(totals.medium_total * 2, T);
        EXPECT_LE(totals.class_small_total * 2, T);
      } else {
        EXPECT_LE(totals.medium_total * 4, 4LL * T);  // eps^2 m T with m=4
        EXPECT_LE(totals.class_small_total * 4, 4LL * T);
      }
      EXPECT_GE(params.w, 1);
    }
  }
}

TEST(PtasParams, LayerWidthMatchesFormula) {
  PtasParams params;
  // T = 1000, e = 2, k = 1: w = ceil(1000 / 8) = 125.
  Instance instance = test::make_instance(2, {{500, 500}, {400, 400}});
  const PtasParams chosen = choose_params(instance, 2, 1000, true);
  // whatever k was chosen, w must equal ceil(T / e^(k+1))
  Time denom = 1;
  for (int i = 0; i < chosen.k + 1; ++i) denom *= 2;
  EXPECT_EQ(chosen.w, std::max<Time>(1, ceil_div(1000, denom)));
  (void)params;
}

// ---------------- simplification ----------------

TEST(Simplify, PartitionsEveryJobExactlyOnce) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kSatellite, 80, 5, seed);
    const Time T = lower_bounds(instance).combined;
    for (const bool m_constant : {true, false}) {
      const PtasParams params =
          choose_params(instance, 2, T, m_constant);
      const Simplified simplified = simplify(instance, params);
      std::vector<int> seen(static_cast<std::size_t>(instance.num_jobs()), 0);
      for (const auto& simp : simplified.classes) {
        for (JobId j : simp.big_jobs) ++seen[static_cast<std::size_t>(j)];
        for (JobId j : simp.placeholder_smalls)
          ++seen[static_cast<std::size_t>(j)];
      }
      for (const auto& group : simplified.tail_groups)
        for (JobId j : group) ++seen[static_cast<std::size_t>(j)];
      for (const auto& [idx, jobs] : simplified.hosted_smalls)
        for (JobId j : jobs) ++seen[static_cast<std::size_t>(j)];
      for (const auto& group : simplified.orphan_groups)
        for (JobId j : group) ++seen[static_cast<std::size_t>(j)];
      for (ClassId c : simplified.aug_classes)
        for (JobId j : instance.class_jobs(c))
          ++seen[static_cast<std::size_t>(j)];
      for (JobId j = 0; j < instance.num_jobs(); ++j)
        EXPECT_EQ(seen[static_cast<std::size_t>(j)], 1)
            << "job " << j << " seed " << seed << " mconst " << m_constant;
    }
  }
}

TEST(Simplify, RoundedSizesCoverOriginals) {
  const Instance instance = generate(Family::kUniform, 50, 4, 3);
  const Time T = lower_bounds(instance).combined;
  const PtasParams params = choose_params(instance, 2, T, true);
  const Simplified simplified = simplify(instance, params);
  for (const auto& simp : simplified.classes)
    for (std::size_t i = 0; i < simp.big_jobs.size(); ++i) {
      const Time p = instance.size(simp.big_jobs[i]);
      const Time rounded = static_cast<Time>(simp.big_len[i]) * params.w;
      EXPECT_GE(rounded, p);
      EXPECT_LT(rounded, p + params.w);
    }
}

TEST(Simplify, PlaceholderCountMatchesLemma18) {
  const Instance instance = generate(Family::kManySmallClasses, 70, 5, 9);
  const Time T = lower_bounds(instance).combined;
  const PtasParams params = choose_params(instance, 2, T, true);
  const Simplified simplified = simplify(instance, params);
  for (const auto& simp : simplified.classes) {
    if (simp.placeholders == 0) continue;
    Time small_load = 0;
    for (JobId j : simp.placeholder_smalls) small_load += instance.size(j);
    EXPECT_EQ(simp.placeholders, ceil_div(small_load, params.w));
  }
}

// ---------------- layered solver vs configuration IP ----------------

// Builds a tiny layered problem directly.
LayeredProblem tiny_problem(int layers, int machines,
                            std::vector<std::vector<LayeredProblem::Demand>>
                                demands) {
  LayeredProblem problem;
  problem.layers = layers;
  problem.machines = machines;
  problem.class_demands = std::move(demands);
  return problem;
}

TEST(LayerSolver, SimpleFeasible) {
  // 2 machines, 4 layers; class A: two windows of len 2; class B: one len 2.
  const LayeredProblem problem =
      tiny_problem(4, 2, {{{2, 2}}, {{2, 1}}});
  LayeredSolution solution;
  EXPECT_EQ(solve_layers(problem, &solution), LayerFeasibility::kFeasible);
  ASSERT_EQ(solution.windows.size(), 2u);
  EXPECT_EQ(solution.windows[0].size(), 2u);
  // class A windows must not overlap each other
  const auto& [s0, l0] = solution.windows[0][0];
  const auto& [s1, l1] = solution.windows[0][1];
  EXPECT_TRUE(s0 + l0 <= s1 || s1 + l1 <= s0);
}

TEST(LayerSolver, InfeasibleWhenClassOverflowsLayers) {
  const LayeredProblem problem = tiny_problem(3, 4, {{{2, 2}}});
  EXPECT_EQ(solve_layers(problem, nullptr), LayerFeasibility::kInfeasible);
}

TEST(LayerSolver, InfeasibleWhenCapacityExceeded) {
  const LayeredProblem problem =
      tiny_problem(2, 1, {{{2, 1}}, {{2, 1}}});
  EXPECT_EQ(solve_layers(problem, nullptr), LayerFeasibility::kInfeasible);
}

TEST(LayerSolver, AgreesWithConfigIpOnSmallCases) {
  // Exhaustive-ish random cross-check: layer solver vs the flat
  // configuration ILP (constraints (1)-(4)) solved by the reference solver.
  Rng rng(2024);
  int compared = 0;
  for (int round = 0; round < 60; ++round) {
    const int layers = static_cast<int>(rng.uniform(2, 4));
    const int machines = static_cast<int>(rng.uniform(1, 2));
    const int classes = static_cast<int>(rng.uniform(1, 3));
    std::vector<std::vector<LayeredProblem::Demand>> demands;
    for (int c = 0; c < classes; ++c) {
      std::vector<LayeredProblem::Demand> demand;
      const int kinds = static_cast<int>(rng.uniform(1, 2));
      for (int i = 0; i < kinds; ++i) {
        LayeredProblem::Demand d;
        d.len = static_cast<int>(rng.uniform(1, 2));
        d.count = static_cast<int>(rng.uniform(1, 2));
        demand.push_back(d);
      }
      demands.push_back(std::move(demand));
    }
    const LayeredProblem problem =
        tiny_problem(layers, machines, std::move(demands));
    const auto ip = build_config_ip(problem);
    ASSERT_TRUE(ip.has_value());
    const IlpResult reference = solve_ilp(ip->ilp);
    ASSERT_TRUE(reference.proven);
    const LayerFeasibility ours = solve_layers(problem, nullptr);
    ASSERT_NE(ours, LayerFeasibility::kUnknown);
    EXPECT_EQ(ours == LayerFeasibility::kFeasible, reference.feasible)
        << "round " << round << " " << problem.summary();
    ++compared;
  }
  EXPECT_EQ(compared, 60);
}

TEST(ConfigIp, NFoldFormAgreesOnTinyCase) {
  // One class, two unit windows, one machine, two layers: feasible.
  const LayeredProblem problem = tiny_problem(2, 1, {{{1, 2}}});
  const auto ip = build_config_ip(problem);
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->nfold.check().empty());
  const IlpResult reference = solve_ilp(ip->ilp);
  EXPECT_TRUE(reference.feasible);
  const NFoldResult nfold_result = solve_nfold(ip->nfold);
  EXPECT_TRUE(nfold_result.feasible);
  EXPECT_EQ(solve_layers(problem, nullptr), LayerFeasibility::kFeasible);
}

TEST(ConfigIp, WindowEnumerationShape) {
  const LayeredProblem problem = tiny_problem(3, 1, {{{2, 1}}, {{1, 1}}});
  const auto ip = build_config_ip(problem);
  ASSERT_TRUE(ip.has_value());
  // windows: len 1 at starts 0,1,2 and len 2 at starts 0,1 -> 5 windows.
  EXPECT_EQ(ip->windows.size(), 5u);
  // every configuration is a set of disjoint windows
  for (const auto& config : ip->configurations) {
    for (std::size_t a = 0; a < config.size(); ++a)
      for (std::size_t b = a + 1; b < config.size(); ++b) {
        const auto& [sa, la] = ip->windows[static_cast<std::size_t>(config[a])];
        const auto& [sb, lb] = ip->windows[static_cast<std::size_t>(config[b])];
        EXPECT_TRUE(sa + la <= sb || sb + lb <= sa);
      }
  }
}

// ---------------- end-to-end EPTAS ----------------

TEST(Eptas, ValidSchedulesAcrossFamilies) {
  for (const Family family :
       {Family::kUniform, Family::kBimodal, Family::kManySmallClasses,
        Family::kSatellite, Family::kUnit}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance = generate(family, 24, 3, seed);
      const EptasResult result = eptas(instance, {.e = 2, .m_constant = true});
      EXPECT_TRUE(is_valid(instance, result.schedule))
          << family_name(family) << " seed " << seed << " "
          << validate(instance, result.schedule).summary();
    }
  }
}

TEST(Eptas, WithinOnePlusSixEpsOfExactOnSmallInstances) {
  // Measured guarantee: (1+eps)(1+2eps)T + O(eps)T with T <= OPT; we assert
  // the generous umbrella 1 + 6*eps against true OPT.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate(Family::kUniform, 10, 3, seed);
    const EptasResult result = eptas(instance, {.e = 2, .m_constant = true});
    ASSERT_TRUE(is_valid(instance, result.schedule));
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    const double ratio = result.schedule.makespan(instance) /
                         static_cast<double>(exact.makespan);
    EXPECT_LE(ratio, 1.0 + 6.0 / 2 + 1e-9) << "seed " << seed;
    EXPECT_GE(ratio, 1.0 - 1e-9);
  }
}

TEST(Eptas, GuessNeverExceedsOptimum) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = generate(Family::kBimodal, 10, 3, seed);
    const EptasResult result = eptas(instance, {.e = 2, .m_constant = true});
    if (result.used_fallback) continue;
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(result.guess, exact.makespan) << "seed " << seed;
  }
}

TEST(Eptas, ResourceAugmentationStaysWithinEpsExtraMachines) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = generate(Family::kBimodal, 40, 6, seed);
    const EptasResult result =
        eptas(instance, {.e = 2, .m_constant = false});
    // validate against an instance with the augmented machine count
    Instance augmented = instance;
    augmented.set_machines(result.machines_used);
    EXPECT_TRUE(is_valid(augmented, result.schedule))
        << validate(augmented, result.schedule).summary();
    EXPECT_LE(result.machines_used,
              instance.machines() + instance.machines() / 2);
  }
}

TEST(Eptas, TrivialCases) {
  Instance empty;
  empty.set_machines(2);
  EXPECT_TRUE(eptas(empty).schedule.complete());

  Instance trivial = test::make_instance(4, {{5}, {6, 1}});
  const EptasResult result = eptas(trivial);
  EXPECT_TRUE(is_valid(trivial, result.schedule));
  EXPECT_DOUBLE_EQ(result.schedule.makespan(trivial), 7.0);
}

TEST(Eptas, FinerEpsilonNotWorse) {
  // On average a smaller eps should not produce worse schedules; we assert
  // it per instance with a small tolerance (both are upper-bounded anyway).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance = generate(Family::kUniform, 12, 3, seed);
    const EptasResult coarse = eptas(instance, {.e = 2, .m_constant = true});
    const EptasResult fine = eptas(instance, {.e = 3, .m_constant = true});
    EXPECT_TRUE(is_valid(instance, fine.schedule));
    EXPECT_LE(fine.schedule.makespan(instance),
              coarse.schedule.makespan(instance) * 1.5 + 1e-9);
  }
}

}  // namespace
}  // namespace msrs
