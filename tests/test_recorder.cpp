// Flight recorder + anomaly watchdog: ring semantics (wrap, dropped
// accounting), canonical-dump determinism across shard counts, the binary
// fatal-signal dump format (dump_to_fd/decode round trip, and a real
// fork()ed SIGSEGV), and the watchdog's threshold/cooldown behavior over
// synthetic metric snapshots.
#include <gtest/gtest.h>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "serve/serve.hpp"
#include "util/json.hpp"

namespace msrs::obs {
namespace {

// ---------------- recorder rings ----------------

TEST(FlightRecorder, RecordsAndCollectsInOrder) {
  FlightRecorder recorder;
  const std::uint16_t label = recorder.intern("three_halves");
  recorder.record(EventKind::kAdmit, 1, 100, 0xff, 0, 64);
  recorder.record(EventKind::kSolveEnd, 1, 200, 0, label, 1);
  recorder.record(EventKind::kWrite, 1, 300, 0, 0, 128);
  const FlightRecorder::Dump dump = recorder.collect(/*canonical=*/true);
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_EQ(dump.dropped, 0u);
  // Canonical order is (seq, kind): the lifecycle enum order.
  EXPECT_EQ(dump.events[0].kind, EventKind::kAdmit);
  EXPECT_EQ(dump.events[1].kind, EventKind::kSolveEnd);
  EXPECT_EQ(dump.events[2].kind, EventKind::kWrite);
  EXPECT_EQ(recorder.label(dump.events[1].arg), "three_halves");
  EXPECT_EQ(dump.events[1].value, 1u);  // cache hit
}

TEST(FlightRecorder, RingWrapKeepsNewestAndCountsDropped) {
  FlightRecorder recorder({/*capacity=*/4});
  for (std::uint64_t i = 0; i < 10; ++i)
    recorder.record(EventKind::kAdmit, i, i * 10, 0xff, 0, 0);
  EXPECT_EQ(recorder.size(), 4u);
  const FlightRecorder::Dump dump = recorder.collect(/*canonical=*/true);
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_EQ(dump.dropped, 6u);
  // The survivors are the newest four, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(dump.events[i].seq, 6 + i);
}

TEST(FlightRecorder, TinyCapacityIsRoundedUpNotZero) {
  FlightRecorder recorder({/*capacity=*/0});
  recorder.record(EventKind::kAdmit, 1, 1, 0xff, 0, 0);
  recorder.record(EventKind::kWrite, 1, 2, 0xff, 0, 0);
  EXPECT_EQ(recorder.size(), 2u);  // minimum capacity is 2
}

TEST(FlightRecorder, PerThreadRingsMergeEveryThreadsEvents) {
  FlightRecorder recorder;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&recorder, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        recorder.record(EventKind::kDispatch,
                        static_cast<std::uint64_t>(t) * kPerThread + i, i,
                        static_cast<std::uint8_t>(t), 0, 0);
    });
  for (std::thread& thread : threads) thread.join();
  const FlightRecorder::Dump dump = recorder.collect(/*canonical=*/true);
  EXPECT_EQ(dump.events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(dump.dropped, 0u);
  // Canonical order is strictly increasing in seq here.
  for (std::size_t i = 1; i < dump.events.size(); ++i)
    EXPECT_LT(dump.events[i - 1].seq, dump.events[i].seq);
}

TEST(FlightRecorder, InternIsIdempotentAndZeroIsEmpty) {
  FlightRecorder recorder;
  const std::uint16_t a = recorder.intern("greedy");
  const std::uint16_t b = recorder.intern("greedy");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0);
  EXPECT_EQ(recorder.label(0), "");
  EXPECT_EQ(recorder.label(0xfffe), "");  // unknown id
}

TEST(FlightRecorder, JsonlRendersMetaLinePlusOneLinePerEvent) {
  FlightRecorder recorder;
  recorder.record(EventKind::kAdmit, 7, 100, 0xff, 0, 42);
  recorder.record(EventKind::kWrite, 7, 200, 2, 0, 99);
  const std::string canonical = recorder.jsonl(/*canonical=*/true);
  std::istringstream lines(canonical);
  std::string line;
  std::vector<Json> parsed;
  while (std::getline(lines, line)) {
    const std::optional<Json> document = json_parse(line);
    ASSERT_TRUE(document.has_value()) << line;
    parsed.push_back(*document);
  }
  ASSERT_EQ(parsed.size(), 3u);  // meta + 2 events
  EXPECT_EQ(parsed[0].find("events")->as_number(), 2.0);
  EXPECT_EQ(parsed[0].find("dropped")->as_number(), 0.0);
  EXPECT_TRUE(parsed[0].find("canonical")->as_bool());
  // Canonical events carry no wall-clock or placement fields.
  EXPECT_EQ(parsed[1].find("ts_ns"), nullptr);
  EXPECT_EQ(parsed[1].find("shard"), nullptr);
  EXPECT_EQ(parsed[1].find("event")->as_string(), "admit");
  EXPECT_EQ(parsed[2].find("event")->as_string(), "write");
  // The full rendering keeps them (shard 0xff renders as -1).
  const std::string full = recorder.jsonl(/*canonical=*/false);
  std::istringstream full_lines(full);
  std::getline(full_lines, line);  // meta
  std::getline(full_lines, line);  // admit @ ts 100
  const std::optional<Json> admit = json_parse(line);
  ASSERT_TRUE(admit.has_value());
  EXPECT_EQ(admit->find("ts_ns")->as_number(), 100.0);
  EXPECT_EQ(admit->find("shard")->as_number(), -1.0);
}

// ---------------- binary dump / decode ----------------

#if !defined(_WIN32)

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(FlightRecorder, DumpToFdDecodeRoundTrip) {
  FlightRecorder recorder({/*capacity=*/8});
  const std::uint16_t label = recorder.intern("greedy");
  for (std::uint64_t i = 0; i < 12; ++i)  // wraps: 4 dropped
    recorder.record(EventKind::kSolveEnd, i, i * 7, 1, label, 0);
  const std::string path = ::testing::TempDir() + "msrs_recorder_dump.bin";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  recorder.dump_to_fd(fd);
  ::close(fd);

  const std::string bytes = read_file(path);
  FlightRecorder::Dump dump;
  ASSERT_TRUE(FlightRecorder::decode(bytes.data(), bytes.size(), &dump));
  ASSERT_EQ(dump.events.size(), 8u);
  EXPECT_EQ(dump.dropped, 4u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(dump.events[i].seq, 4 + i);
    EXPECT_EQ(dump.events[i].ts_ns, (4 + i) * 7);
    EXPECT_EQ(dump.events[i].kind, EventKind::kSolveEnd);
    EXPECT_EQ(dump.events[i].arg, label);
  }
  std::remove(path.c_str());
}

TEST(FlightRecorder, DecodeRejectsGarbage) {
  FlightRecorder::Dump dump;
  EXPECT_FALSE(FlightRecorder::decode(nullptr, 0, &dump));
  EXPECT_FALSE(FlightRecorder::decode("nope", 4, &dump));
  const char wrong_magic[16] = {'X'};
  EXPECT_FALSE(FlightRecorder::decode(wrong_magic, sizeof wrong_magic, &dump));
  // A valid magic followed by a truncated body must be refused too.
  FlightRecorder recorder({/*capacity=*/4});
  recorder.record(EventKind::kAdmit, 1, 1, 0xff, 0, 0);
  const std::string path = ::testing::TempDir() + "msrs_recorder_trunc.bin";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  recorder.dump_to_fd(fd);
  ::close(fd);
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 24u);
  EXPECT_FALSE(
      FlightRecorder::decode(bytes.data(), bytes.size() - 17, &dump));
  EXPECT_TRUE(FlightRecorder::decode(bytes.data(), bytes.size(), &dump));
  std::remove(path.c_str());
}

TEST(FlightRecorder, FatalSignalDumpSurvivesSigsegv) {
  const std::string path = ::testing::TempDir() + "msrs_fatal_dump.bin";
  std::remove(path.c_str());
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: record a few events, install the handler on a pre-opened fd,
    // and die by SIGSEGV. No gtest machinery past this point — exit codes
    // and the dump file are the only channel back.
    struct rlimit no_core = {0, 0};
    ::setrlimit(RLIMIT_CORE, &no_core);  // skip core-dump generation
    static FlightRecorder recorder({/*capacity=*/16});
    recorder.record(EventKind::kAdmit, 41, 10, 0xff, 0, 7);
    recorder.record(EventKind::kShed, 0, 20, 0xff, 0, 0);
    const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) ::_exit(9);
    install_fatal_dump(&recorder, fd);
    ::raise(SIGSEGV);
    ::_exit(8);  // unreachable: the handler re-raises with SIG_DFL
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  const std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty()) << "the handler wrote no dump";
  FlightRecorder::Dump dump;
  ASSERT_TRUE(FlightRecorder::decode(bytes.data(), bytes.size(), &dump));
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_EQ(dump.events[0].seq, 41u);
  EXPECT_EQ(dump.events[0].value, 7u);
  EXPECT_EQ(dump.events[1].kind, EventKind::kShed);
  std::remove(path.c_str());
}

#endif  // !defined(_WIN32)

// ---------------- canonical-dump determinism ----------------

// The canonical dump of the same sequential request stream must be
// byte-identical at any shard count: no wall-clock, no shard placement,
// labels resolved to strings, events sorted by (seq, kind).
std::string canonical_dump_for_shards(unsigned shards) {
  serve::ServiceOptions options;
  options.shards = shards;
  options.budget_ms = 10;
  serve::Service service(options);
  const std::vector<std::string> stream = {
      R"({"id":1,"op":"solve","spec":"uniform:n=16,m=2,seed=1"})",
      R"({"id":2,"op":"solve","spec":"uniform:n=16,m=2,seed=1"})",  // hit
      R"({"id":3,"op":"solve","spec":"uniform:n=12,m=3,seed=2"})",
      R"({"op":"open_session","session":"alpha","machines":2})",
      R"({"op":"submit_job","session":"alpha","class":"c1","size":10})",
      R"({"op":"snapshot","session":"alpha"})",
      R"({"op":"close_session","session":"alpha"})",
      "}{ not json",  // parse_error: the error path records too
  };
  for (const std::string& line : stream) (void)service.handle(line);
  return service.handle(R"({"id":99,"op":"dump_recorder","canonical":true})");
}

TEST(FlightRecorder, CanonicalDumpIsByteIdenticalAcrossShardCounts) {
  const std::string one = canonical_dump_for_shards(1);
  const std::string two = canonical_dump_for_shards(2);
  const std::string four = canonical_dump_for_shards(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // And it is a real dump: every lifecycle stage of request 1 is present.
  const std::optional<Json> document = json_parse(one);
  ASSERT_TRUE(document.has_value());
  EXPECT_TRUE(document->find("ok")->as_bool());
  EXPECT_TRUE(document->find("canonical")->as_bool());
  const Json* entries = document->find("entries");
  ASSERT_NE(entries, nullptr);
  std::vector<std::string> kinds;
  for (const Json& entry : entries->items())
    if (entry.find("seq")->as_number() == 1.0)
      kinds.push_back(entry.find("event")->as_string());
  EXPECT_EQ(kinds, (std::vector<std::string>{"admit", "dispatch",
                                             "solve_begin", "solve_end",
                                             "write"}));
}

TEST(FlightRecorder, DisabledRecorderAnswersDumpWithNamedError) {
  serve::ServiceOptions options;
  options.shards = 1;
  options.recorder_events = 0;  // disabled
  serve::Service service(options);
  const std::string response =
      service.handle(R"({"op":"dump_recorder"})");
  EXPECT_NE(response.find("\"error\":\"bad_request\""), std::string::npos);
  EXPECT_EQ(service.recorder(), nullptr);
}

// ---------------- timeseries ring ----------------

TEST(TimeseriesRing, WrapsKeepingTheNewestWindow) {
  TimeseriesRing ring(3);
  for (int i = 1; i <= 5; ++i) {
    TimeseriesPoint point;
    point.received = static_cast<std::uint64_t>(i);
    ring.push(point);
  }
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0).received, 3u);
  EXPECT_EQ(ring.at(1).received, 4u);
  EXPECT_EQ(ring.at(2).received, 5u);
  EXPECT_EQ(ring.back().received, 5u);
  EXPECT_EQ(ring.json().items().size(), 3u);
}

// ---------------- watchdog ----------------

// A synthetic serving registry the tests mutate between ticks.
struct WatchdogRig {
  MetricsRegistry registry;
  Counter& received = registry.counter("serve.received");
  Counter& errors = registry.counter("serve.errors");
  Gauge& queue = registry.gauge("serve.queue_depth.0");
  Histogram& total = registry.histogram("serve.latency.total_us");
};

TEST(Watchdog, FirstTickOnlyEstablishesTheBaseline) {
  WatchdogRig rig;
  WatchdogOptions options;
  options.error_rate_threshold = 0.01;
  Watchdog watchdog(options, rig.registry);
  rig.received.add(10);
  rig.errors.add(10);  // 100% errors — but no baseline yet
  EXPECT_FALSE(watchdog.tick(rig.registry.snapshot()));
  rig.received.add(10);
  rig.errors.add(10);
  EXPECT_TRUE(watchdog.tick(rig.registry.snapshot()));
  EXPECT_NE(watchdog.last_reason().find("error rate"), std::string::npos);
}

TEST(Watchdog, ErrorRateUsesIntervalDeltasNotTotals) {
  WatchdogRig rig;
  // A bad first minute followed by healthy intervals: cumulative rate
  // stays high, but the watchdog must judge each interval on its own.
  rig.received.add(100);
  rig.errors.add(100);
  WatchdogOptions options;
  options.error_rate_threshold = 0.5;
  Watchdog watchdog(options, rig.registry);
  EXPECT_FALSE(watchdog.tick(rig.registry.snapshot()));  // baseline
  rig.received.add(100);  // no new errors
  EXPECT_FALSE(watchdog.tick(rig.registry.snapshot()));
  EXPECT_EQ(watchdog.ring().back().errors, 0u);
  EXPECT_EQ(watchdog.ring().back().received, 100u);
}

TEST(Watchdog, P99TripRequiresMinSamples) {
  WatchdogRig rig;
  WatchdogOptions options;
  options.p99_threshold_us = 1000.0;
  options.min_samples = 8;
  Watchdog watchdog(options, rig.registry);
  EXPECT_FALSE(watchdog.tick(rig.registry.snapshot()));  // baseline
  rig.total.record(50000.0);  // one slow request in an idle interval
  EXPECT_FALSE(watchdog.tick(rig.registry.snapshot()));
  for (int i = 0; i < 16; ++i) rig.total.record(50000.0);
  EXPECT_TRUE(watchdog.tick(rig.registry.snapshot()));
  EXPECT_NE(watchdog.last_reason().find("p99"), std::string::npos);
}

TEST(Watchdog, QueueDepthSumsAcrossShardsAndTrips) {
  WatchdogRig rig;
  rig.registry.gauge("serve.queue_depth.1").set(30);
  WatchdogOptions options;
  options.queue_threshold = 40;
  Watchdog watchdog(options, rig.registry);
  EXPECT_FALSE(watchdog.tick(rig.registry.snapshot()));  // baseline
  rig.queue.set(5);  // 5 + 30 = 35: under
  EXPECT_FALSE(watchdog.tick(rig.registry.snapshot()));
  rig.queue.set(20);  // 20 + 30 = 50: over
  EXPECT_TRUE(watchdog.tick(rig.registry.snapshot()));
  EXPECT_NE(watchdog.last_reason().find("queue depth 50"),
            std::string::npos);
}

TEST(Watchdog, CooldownSuppressesRepeatDumpsButCountsTrips) {
  WatchdogRig rig;
  WatchdogOptions options;
  options.error_rate_threshold = 0.1;
  options.cooldown_ticks = 3;
  Watchdog watchdog(options, rig.registry);
  const auto trip = [&] {
    rig.received.add(10);
    rig.errors.add(10);
    return watchdog.tick(rig.registry.snapshot());
  };
  EXPECT_FALSE(watchdog.tick(rig.registry.snapshot()));  // baseline
  EXPECT_TRUE(trip());   // first trip dumps
  EXPECT_FALSE(trip());  // still tripping, inside the cooldown
  EXPECT_FALSE(trip());
  EXPECT_TRUE(trip());  // cooldown elapsed: dump again
  const MetricsSnapshot snapshot = rig.registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("obs.watchdog.trips"), 4u);
  EXPECT_EQ(snapshot.counter_or("obs.watchdog.dumps"), 2u);
  EXPECT_EQ(snapshot.counter_or("obs.watchdog.error_trips"), 4u);
  EXPECT_EQ(snapshot.counter_or("obs.watchdog.ticks"), 5u);
}

TEST(Watchdog, JsonCarriesThresholdsReasonAndWindow) {
  WatchdogRig rig;
  WatchdogOptions options;
  options.error_rate_threshold = 0.25;
  Watchdog watchdog(options, rig.registry);
  (void)watchdog.tick(rig.registry.snapshot());
  const Json document = watchdog.json();
  ASSERT_NE(document.find("thresholds"), nullptr);
  EXPECT_EQ(document.find("thresholds")->find("error_rate")->as_number(),
            0.25);
  ASSERT_NE(document.find("last_reason"), nullptr);
  ASSERT_NE(document.find("window"), nullptr);
  EXPECT_EQ(document.find("window")->items().size(), 1u);
}

// Service::monitor_tick(): a tripping watchdog auto-dumps the recorder's
// full (wall-clock) JSONL to the configured path.
TEST(Watchdog, ServiceMonitorTickAutoDumpsOnTrip) {
  const std::string path = ::testing::TempDir() + "msrs_watchdog_dump.jsonl";
  std::remove(path.c_str());
  serve::ServiceOptions options;
  options.shards = 1;
  options.budget_ms = 10;
  options.watchdog.error_rate_threshold = 0.5;
  options.watchdog_dump = path;
  serve::Service service(options);
  EXPECT_FALSE(service.monitor_tick());  // baseline
  (void)service.handle("}{ not json");   // one request, one error: rate 1.0
  EXPECT_TRUE(service.monitor_tick());
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  const std::optional<Json> meta = json_parse(line);
  ASSERT_TRUE(meta.has_value());
  EXPECT_FALSE(meta->find("canonical")->as_bool());
  EXPECT_GT(meta->find("events")->as_number(), 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msrs::obs
