#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "core/instance_io.hpp"
#include "core/lower_bounds.hpp"
#include "core/schedule.hpp"
#include "core/validate.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

TEST(Instance, AggregatesAreMaintained) {
  Instance instance = test::make_instance(3, {{5, 3}, {7}, {2, 2, 2}});
  EXPECT_EQ(instance.num_jobs(), 6);
  EXPECT_EQ(instance.num_classes(), 3);
  EXPECT_EQ(instance.class_load(0), 8);
  EXPECT_EQ(instance.class_load(1), 7);
  EXPECT_EQ(instance.class_load(2), 6);
  EXPECT_EQ(instance.class_max(0), 5);
  EXPECT_EQ(instance.class_max(2), 2);
  EXPECT_EQ(instance.total_load(), 21);
  EXPECT_EQ(instance.max_size(), 7);
  EXPECT_TRUE(instance.check().empty());
}

TEST(Instance, CheckRejectsEmptyClass) {
  Instance instance;
  instance.set_machines(2);
  instance.add_class();
  EXPECT_FALSE(instance.check().empty());
}

TEST(Instance, CheckRejectsZeroSize) {
  Instance instance;
  instance.set_machines(2);
  const ClassId c = instance.add_class();
  instance.add_job(c, 0);
  EXPECT_FALSE(instance.check().empty());
}

TEST(Instance, JobClassBackPointers) {
  Instance instance = test::make_instance(1, {{1, 2}, {3}});
  EXPECT_EQ(instance.job_class(0), 0);
  EXPECT_EQ(instance.job_class(1), 0);
  EXPECT_EQ(instance.job_class(2), 1);
}

TEST(Schedule, MakespanAndScale) {
  Instance instance = test::make_instance(2, {{4}, {6}});
  Schedule schedule(instance.num_jobs(), /*scale=*/2);
  schedule.assign(0, 0, 0);   // [0, 8) scaled
  schedule.assign(1, 1, 3);   // [3, 15) scaled
  EXPECT_EQ(schedule.makespan_scaled(instance), 15);
  EXPECT_DOUBLE_EQ(schedule.makespan(instance), 7.5);
}

TEST(Schedule, RescaleKeepsRationalTimes) {
  Instance instance = test::make_instance(1, {{3}});
  Schedule schedule(1, 1);
  schedule.assign(0, 0, 2);
  schedule.rescale(6);
  EXPECT_EQ(schedule.scale(), 6);
  EXPECT_EQ(schedule.start(0), 12);
  EXPECT_DOUBLE_EQ(schedule.makespan(instance), 5.0);
}

TEST(Validate, AcceptsDisjointSchedule) {
  Instance instance = test::make_instance(2, {{2, 2}, {3}});
  Schedule schedule(3, 1);
  schedule.assign(0, 0, 0);
  schedule.assign(1, 0, 2);  // same class, sequential: fine
  schedule.assign(2, 1, 0);
  EXPECT_TRUE(is_valid(instance, schedule));
}

TEST(Validate, DetectsMachineOverlap) {
  Instance instance = test::make_instance(1, {{2}, {2}});
  Schedule schedule(2, 1);
  schedule.assign(0, 0, 0);
  schedule.assign(1, 0, 1);
  const auto report = validate(instance, schedule);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMachineOverlap);
}

TEST(Validate, DetectsClassOverlapAcrossMachines) {
  Instance instance = test::make_instance(2, {{2, 2}});
  Schedule schedule(2, 1);
  schedule.assign(0, 0, 0);
  schedule.assign(1, 1, 1);  // same resource, overlapping in time
  const auto report = validate(instance, schedule);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kClassOverlap);
}

TEST(Validate, DetectsUnassignedAndBadMachine) {
  Instance instance = test::make_instance(1, {{1}, {1}});
  Schedule schedule(2, 1);
  schedule.assign(1, 5, 0);
  const auto report = validate(instance, schedule);
  EXPECT_EQ(report.violations.size(), 2u);
}

TEST(Validate, MakespanLimit) {
  Instance instance = test::make_instance(1, {{3}});
  Schedule schedule(1, 1);
  schedule.assign(0, 0, 1);
  EXPECT_TRUE(validate(instance, schedule, 4).ok());
  EXPECT_FALSE(validate(instance, schedule, 3).ok());
}

TEST(Validate, TouchingIntervalsAreFine) {
  Instance instance = test::make_instance(2, {{2, 2}});
  Schedule schedule(2, 1);
  schedule.assign(0, 0, 0);
  schedule.assign(1, 1, 2);  // starts exactly when the first ends
  EXPECT_TRUE(is_valid(instance, schedule));
}

TEST(LowerBounds, MatchesHandComputation) {
  // m=2; loads: class A=10 (jobs 7,3), B=5, C=4. p(J)=19 => area=10.
  Instance instance = test::make_instance(2, {{7, 3}, {5}, {4}});
  const auto lb = lower_bounds(instance);
  EXPECT_EQ(lb.area, 10);
  EXPECT_EQ(lb.class_bound, 10);
  // sizes sorted: 7,5,4,3 ; m=2 -> p_(2)+p_(3) = 5+4 = 9
  EXPECT_EQ(lb.pair, 9);
  EXPECT_EQ(lb.combined, 10);
}

TEST(LowerBounds, PairBoundZeroWhenFewJobs) {
  Instance instance = test::make_instance(4, {{5}, {6}});
  EXPECT_EQ(lower_bounds(instance).pair, 0);
}

TEST(LowerBounds, NeverExceedsTrivialUpperBound) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kUniform, 40, 4, seed);
    const auto lb = lower_bounds(instance);
    EXPECT_LE(lb.combined, instance.total_load());
    EXPECT_GE(lb.combined, lb.area);
    EXPECT_GE(lb.combined, lb.class_bound);
    EXPECT_GE(lb.combined, lb.pair);
  }
}

TEST(InstanceIo, RoundTrip) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance original = generate(Family::kBimodal, 30, 3, seed);
    const std::string text = to_text(original);
    std::string error;
    const auto parsed = from_text(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->machines(), original.machines());
    EXPECT_EQ(parsed->num_jobs(), original.num_jobs());
    EXPECT_EQ(parsed->num_classes(), original.num_classes());
    EXPECT_EQ(to_text(*parsed), text);
  }
}

TEST(InstanceIo, RoundTripPreservesEveryJob) {
  for (const Family family :
       {Family::kUniform, Family::kHugeHeavy, Family::kUnit}) {
    const Instance original = generate(family, 50, 5, 11);
    std::string error;
    const auto parsed = from_text(to_text(original), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->num_jobs(), original.num_jobs());
    for (JobId j = 0; j < original.num_jobs(); ++j) {
      EXPECT_EQ(parsed->size(j), original.size(j));
      EXPECT_EQ(parsed->job_class(j), original.job_class(j));
    }
    EXPECT_EQ(parsed->total_load(), original.total_load());
  }
}

TEST(InstanceIo, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(from_text("not an instance", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(from_text("msrs 2\nmachines 1\nclasses 0\n").has_value());
  EXPECT_FALSE(
      from_text("msrs 1\nmachines 1\nclasses 1\nclass 1 0\n").has_value());
}

// The parser must say *what* is malformed, not just refuse.
TEST(InstanceIo, DescriptiveErrorsForMalformedFiles) {
  const struct {
    const char* text;
    const char* expect;  // substring of the reported error
  } cases[] = {
      {"", "empty input"},
      {"msrs 1\nclasses 1\nclass 1 5\n", "expected 'machines'"},
      {"msrs 1\nmachines\n", "not a number"},
      {"msrs 1\nmachines 0\nclasses 0\n", "machine count must be >= 1"},
      {"msrs 1\nmachines -3\nclasses 0\n", "machine count must be >= 1"},
      {"msrs 1\nmachines 4294967297\nclasses 0\n",
       "exceeds the supported maximum"},
      {"msrs 1\nmachines 2\n", "missing 'classes"},
      {"msrs 1\nmachines 2\nclasses 2\nclass 1 5\n", "missing 'class' line"},
      {"msrs 1\nmachines 2\nclasses 1\nclass 0\n", "is empty"},
      {"msrs 1\nmachines 2\nclasses 1\nclass -1\n", "job count must be >= 1"},
      {"msrs 1\nmachines 2\nclasses 1\nclass 2 5\n", "missing or not a number"},
      {"msrs 1\nmachines 2\nclasses 1\nclass 2 5 0\n", "job size 0 < 1"},
      {"msrs 1\nmachines 2\nclasses 1\nclass 2 5 -4\n", "job size -4 < 1"},
      {"msrs 1\nmachines 2\nclasses 1\nclass 1 5\nclass 1 3\n",
       "trailing garbage"},
  };
  for (const auto& bad : cases) {
    std::string error;
    EXPECT_FALSE(from_text(bad.text, &error).has_value()) << bad.text;
    EXPECT_NE(error.find(bad.expect), std::string::npos)
        << "input <" << bad.text << "> produced error <" << error
        << ">, expected it to mention <" << bad.expect << ">";
  }
}

TEST(InstanceIo, AcceptsZeroClasses) {
  std::string error;
  const auto parsed = from_text("msrs 1\nmachines 3\nclasses 0\n", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->num_jobs(), 0);
  EXPECT_EQ(parsed->machines(), 3);
}

TEST(ScheduleRender, ProducesGantt) {
  Instance instance = test::make_instance(2, {{2}, {3}});
  Schedule schedule(2, 1);
  schedule.assign(0, 0, 0);
  schedule.assign(1, 1, 0);
  const std::string out = schedule.render(instance);
  EXPECT_NE(out.find("m0"), std::string::npos);
  EXPECT_NE(out.find("c0"), std::string::npos);
}

}  // namespace
}  // namespace msrs
