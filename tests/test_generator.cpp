// Tests for the spec-based generator subsystem: spec parsing and
// round-trips, corpus determinism, corpus serialization, and the
// structural properties of the adversarial families.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "algo/t_bound.hpp"
#include "core/instance_io.hpp"
#include "core/lower_bounds.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

TEST(Spec, RoundTripsThroughString) {
  GeneratorSpec spec;
  spec.family = Family::kHugeHeavy;
  spec.jobs = 5000;
  spec.machines = 32;
  spec.max_size = 750;
  spec.seed = 7;
  spec.class_size.kind = Dist::Kind::kZipf;
  // Not exactly representable: exercises the shortest-round-trip rendering
  // of the zipf exponent (Dist::hash feeds the RNG seed, so str() must
  // reproduce the exact double).
  spec.class_size.s = 1.23456789;
  spec.job_size.kind = Dist::Kind::kUniform;
  spec.job_size.lo = 10;
  spec.job_size.hi = 90;
  std::string error;
  const auto parsed = parse_spec(spec.str(), &error);
  ASSERT_TRUE(parsed) << error << " for " << spec.str();
  EXPECT_EQ(*parsed, spec);

  const GeneratorSpec defaults;
  const auto parsed_defaults = parse_spec(defaults.str(), &error);
  ASSERT_TRUE(parsed_defaults) << error;
  EXPECT_EQ(*parsed_defaults, defaults);
}

TEST(Spec, BareFamilyUsesDefaults) {
  const auto spec = parse_spec("photolith");
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->family, Family::kPhotolith);
  EXPECT_EQ(spec->jobs, GeneratorSpec{}.jobs);
  EXPECT_FALSE(spec->class_size.set());
}

TEST(Spec, AliasesResolve) {
  EXPECT_EQ(parse_spec("huge:n=5")->family, Family::kHugeHeavy);
  EXPECT_EQ(parse_spec("lemma9")->family, Family::kLemma9Tight);
  EXPECT_EQ(parse_spec("dominant")->family, Family::kSingleDominant);
  EXPECT_EQ(parse_family("tight"), Family::kLemma9Tight);
}

TEST(Spec, ParseErrorsNameTheProblem) {
  const struct {
    const char* input;
    const char* expected;  // substring of the error message
  } kCases[] = {
      {"", "empty spec"},
      {"nope", "unknown family 'nope'"},
      {"uniform:q=3", "unknown key 'q'"},
      {"uniform:n=abc", "n must be an integer"},
      {"uniform:n", "expected key=value"},
      {"uniform:m=0", "m must be an integer in [1,"},
      {"uniform:max=0", "max must be an integer in [1,"},
      // Values that would silently wrap the int fields are refused.
      {"uniform:n=4294967296", "n must be an integer in [0,"},
      {"uniform:m=4294967297", "m must be an integer in [1,"},
      {"uniform:seed=x", "seed must be an integer"},
      {"uniform:classes=zipf", "must look like name(args)"},
      {"uniform:classes=zipf(0)", "exponent must be"},
      {"uniform:classes=zipf(1,2)", "zipf needs one numeric argument"},
      {"uniform:classes=gauss(1)", "unknown distribution 'gauss'"},
      {"uniform:classes=uniform(5,2)", "lo <= hi"},
      {"uniform:classes=const(0)", "const value must be >= 1"},
  };
  for (const auto& test_case : kCases) {
    std::string error;
    EXPECT_FALSE(parse_spec(test_case.input, &error)) << test_case.input;
    EXPECT_NE(error.find(test_case.expected), std::string::npos)
        << "input '" << test_case.input << "' produced error '" << error
        << "', expected it to mention '" << test_case.expected << "'";
  }
}

TEST(Sweep, RoundTripAndExpansionOrder) {
  std::string error;
  const auto sweep =
      parse_sweep("families=uniform,unit;n=10,20;m=2;seeds=2", &error);
  ASSERT_TRUE(sweep) << error;
  EXPECT_EQ(sweep->size(), 8u);
  const auto again = parse_sweep(sweep->str(), &error);
  ASSERT_TRUE(again) << error << " for " << sweep->str();
  EXPECT_EQ(*again, *sweep);

  const std::vector<GeneratorSpec> specs = expand(*sweep);
  ASSERT_EQ(specs.size(), 8u);
  // Family-major, then n, with seeds innermost.
  EXPECT_EQ(specs[0].family, Family::kUniform);
  EXPECT_EQ(specs[0].jobs, 10);
  EXPECT_EQ(specs[0].seed, 1u);
  EXPECT_EQ(specs[1].seed, 2u);
  EXPECT_EQ(specs[2].jobs, 20);
  EXPECT_EQ(specs[4].family, Family::kUnit);
}

TEST(Sweep, AllKeywordCoversEveryFamily) {
  const auto sweep = parse_sweep("families=all;seeds=1");
  ASSERT_TRUE(sweep);
  EXPECT_EQ(sweep->families.size(), std::size(kAllFamilies));
}

TEST(Sweep, ParseErrorsNameTheProblem) {
  const struct {
    const char* input;
    const char* expected;
  } kCases[] = {
      {"", "empty sweep"},
      {"families=xyz", "unknown family 'xyz'"},
      {"seeds=0", "seeds must be a single integer >= 1"},
      {"n=5;bogus=1", "unknown key 'bogus'"},
      {"n=5,q", "not a valid integer"},
      {"m=0", "not a valid integer"},
  };
  for (const auto& test_case : kCases) {
    std::string error;
    EXPECT_FALSE(parse_sweep(test_case.input, &error)) << test_case.input;
    EXPECT_NE(error.find(test_case.expected), std::string::npos)
        << "input '" << test_case.input << "' produced error '" << error
        << "'";
  }
}

TEST(Generator, SameSpecYieldsByteIdenticalCorpus) {
  std::string error;
  const auto spec =
      parse_spec("satellite:n=80,m=6,classes=zipf(1.3),seed=4", &error);
  ASSERT_TRUE(spec) << error;
  std::ostringstream first, second;
  write_corpus(first, seed_corpus(*spec, 6));
  write_corpus(second, seed_corpus(*spec, 6));
  EXPECT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

TEST(Generator, DefaultSpecMatchesLegacyApi) {
  // The legacy (family, n, m, seed) API and a default-dist spec must name
  // the same instance — EXPERIMENTS.md corpora stay reproducible.
  GeneratorSpec spec;
  spec.family = Family::kPhotolith;
  spec.jobs = 70;
  spec.machines = 5;
  spec.seed = 11;
  EXPECT_EQ(to_text(generate(spec)),
            to_text(generate(Family::kPhotolith, 70, 5, 11)));
}

TEST(Generator, DistOverrideChangesTheDraw) {
  const auto plain = parse_spec("uniform:n=100,m=8,seed=2");
  const auto zipf = parse_spec("uniform:n=100,m=8,seed=2,classes=zipf(2.5)");
  ASSERT_TRUE(plain && zipf);
  EXPECT_NE(to_text(generate(*plain)), to_text(generate(*zipf)));
}

TEST(Generator, ZipfClassesSkewSmall) {
  // zipf(2.5) over the uniform family's 1..8 chunk support concentrates on
  // tiny classes; the default split averages ~4.5 jobs per class.
  const auto plain = parse_spec("uniform:n=400,m=8,seed=3");
  const auto zipf = parse_spec("uniform:n=400,m=8,seed=3,classes=zipf(2.5)");
  ASSERT_TRUE(plain && zipf);
  const Instance a = generate(*plain);
  const Instance b = generate(*zipf);
  const double mean_plain =
      static_cast<double>(a.num_jobs()) / a.num_classes();
  const double mean_zipf = static_cast<double>(b.num_jobs()) / b.num_classes();
  EXPECT_GT(mean_plain, 3.0);
  EXPECT_LT(mean_zipf, 2.5);
}

TEST(Generator, ConstClassesPinsChunks) {
  const auto spec = parse_spec("unit:n=50,m=4,seed=1,classes=const(5)");
  ASSERT_TRUE(spec);
  const Instance instance = generate(*spec);
  ASSERT_EQ(instance.num_jobs(), 50);
  for (ClassId c = 0; c < instance.num_classes(); ++c)
    EXPECT_EQ(instance.class_jobs(c).size(), 5u) << "class " << c;
}

TEST(Generator, SizesOverridePinsJobSizes) {
  const auto spec = parse_spec("uniform:n=40,m=4,seed=2,sizes=const(7)");
  ASSERT_TRUE(spec);
  const Instance instance = generate(*spec);
  for (JobId j = 0; j < instance.num_jobs(); ++j)
    EXPECT_EQ(instance.size(j), 7);
}

TEST(Generator, SeedInstancesHelperMatchesLegacySeeds) {
  const std::vector<Instance> corpus =
      test::seed_instances(Family::kBimodal, 40, 4, 3);
  ASSERT_EQ(corpus.size(), 3u);
  for (int seed = 1; seed <= 3; ++seed)
    EXPECT_EQ(to_text(corpus[static_cast<std::size_t>(seed - 1)]),
              to_text(generate(Family::kBimodal, 40, 4,
                               static_cast<std::uint64_t>(seed))));
}

TEST(CorpusIo, RoundTripsConcatenatedInstances) {
  std::string error;
  const auto sweep = parse_sweep("families=uniform,unit;n=12;m=3;seeds=2",
                                 &error);
  ASSERT_TRUE(sweep) << error;
  const std::vector<CorpusEntry> corpus = make_corpus(*sweep);
  ASSERT_EQ(corpus.size(), 4u);
  std::ostringstream out;
  write_corpus(out, corpus);

  std::istringstream in(out.str());
  const auto parsed = read_corpus(in, &error);
  ASSERT_TRUE(parsed) << error;
  ASSERT_EQ(parsed->size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i)
    EXPECT_EQ(to_text((*parsed)[i]), to_text(corpus[i].instance)) << i;
}

TEST(CorpusIo, EmptyStreamIsAnEmptyCorpus) {
  std::istringstream in("");
  const auto parsed = read_corpus(in);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->empty());
}

TEST(CorpusIo, ErrorNamesTheOffendingInstance) {
  const Instance good = generate(Family::kUnit, 6, 2, 1);
  std::istringstream in(to_text(good) + "msrs 1\nmachines 0\nclasses 0\n");
  std::string error;
  EXPECT_FALSE(read_corpus(in, &error));
  EXPECT_NE(error.find("corpus instance 1"), std::string::npos) << error;
  EXPECT_NE(error.find("machine count must be >= 1"), std::string::npos)
      << error;
}

TEST(CorpusIo, SingleInstanceReadStillRejectsTrailingGarbage) {
  const Instance good = generate(Family::kUnit, 6, 2, 1);
  std::string error;
  EXPECT_FALSE(from_text(to_text(good) + "junk", &error));
  EXPECT_NE(error.find("trailing garbage"), std::string::npos) << error;
}

TEST(Families, Lemma9TightSaturatesTheCensus) {
  // At the Lemma-9 bound the census uses every machine: the bound's
  // machinery, not the plain Note-1 bounds, is what binds. (Deterministic
  // instances, so exact equality is stable.)
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorSpec spec;
    spec.family = Family::kLemma9Tight;
    spec.jobs = 100;
    spec.machines = 8;
    spec.seed = seed;
    const Instance instance = generate(spec);
    EXPECT_TRUE(instance.check().empty());
    const Time bound = three_halves_bound(instance);
    const Census counts = census(instance, bound);
    const int need =
        counts.huge +
        std::max(counts.big, (counts.big + counts.heavy + 1) / 2);
    EXPECT_EQ(need, spec.machines) << "seed " << seed;
  }
}

TEST(Families, SingleDominantClassBoundDominates) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorSpec spec;
    spec.family = Family::kSingleDominant;
    spec.jobs = 60;
    spec.machines = 8;
    spec.seed = seed;
    const Instance instance = generate(spec);
    const LowerBounds bounds = lower_bounds(instance);
    EXPECT_EQ(bounds.combined, instance.class_load(0)) << "seed " << seed;
    EXPECT_GE(5 * instance.class_load(0), instance.total_load())
        << "seed " << seed;
  }
}

TEST(Families, BoundaryMixesSizesAroundTheThresholds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = generate(Family::kBoundary, 60, 8, seed);
    bool has_near_three_quarters = false, has_small = false;
    for (JobId j = 0; j < instance.num_jobs(); ++j) {
      if (instance.size(j) >= 700 && instance.size(j) <= 800)
        has_near_three_quarters = true;
      if (instance.size(j) <= 125) has_small = true;
    }
    EXPECT_TRUE(has_near_three_quarters) << "seed " << seed;
    EXPECT_TRUE(has_small) << "seed " << seed;
  }
}

TEST(Families, EmptyJobCountYieldsEmptyInstances) {
  for (const Family family :
       {Family::kLemma9Tight, Family::kSingleDominant, Family::kBoundary}) {
    const Instance instance = generate(family, 0, 4, 1);
    EXPECT_TRUE(instance.check().empty());
    EXPECT_EQ(instance.num_jobs(), 0);
  }
}

}  // namespace
}  // namespace msrs
