// Property tests for the class-splitting Lemmas 5, 10, 11.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/class_partition.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace msrs {
namespace {

// Builds a single-class instance whose load lies in [lo_num/den, hi_num/den]
// of T and whose max job is <= cap_num/cap_den of T.
Instance random_class(Rng& rng, Time T, Time lo_num, Time hi_num, Time den,
                      Time cap_num, Time cap_den) {
  Instance instance;
  instance.set_machines(1);
  const ClassId c = instance.add_class();
  const Time target = rng.uniform(lo_num * T / den + 1, hi_num * T / den);
  const Time cap = std::max<Time>(1, cap_num * T / cap_den);
  Time left = target;
  while (left > 0) {
    const Time p = std::min(left, rng.uniform(1, cap));
    instance.add_job(c, p);
    left -= p;
  }
  return instance;
}

TEST(Lemma5, PropertySweep) {
  Rng rng(5005);
  const Time T = 3600;  // divisible by 12 so fraction thresholds are exact
  for (int round = 0; round < 400; ++round) {
    // p(c) in (2/3 T, T], max <= T/2
    Instance instance = random_class(rng, T, 2, 3, 3, 1, 2);
    if (3 * instance.class_load(0) <= 2 * T) continue;
    const ClassSplit split = split_lemma5(instance, 0, T);
    EXPECT_GE(3 * split.hat_load, T);        // p(c1) >= T/3
    EXPECT_LE(3 * split.hat_load, 2 * T);    // p(c1) <= 2T/3
    EXPECT_LE(3 * split.check_load, 2 * T);  // p(c2) <= 2T/3
    EXPECT_EQ(split.hat_load + split.check_load, instance.class_load(0));
    EXPECT_EQ(split.hat.size() + split.check.size(),
              instance.class_jobs(0).size());
  }
}

TEST(Lemma10, PropertySweep) {
  Rng rng(1010);
  const Time T = 3600;
  for (int round = 0; round < 400; ++round) {
    // p(c) in [3/4 T, T], max <= 3/4 T
    Instance instance = random_class(rng, T, 3, 4, 4, 3, 4);
    if (4 * instance.class_load(0) < 3 * T) continue;
    const ClassSplit split = split_lemma10(instance, 0, T);
    EXPECT_LE(split.check_load, split.hat_load);
    EXPECT_LE(2 * split.check_load, T);      // p(ч) <= T/2
    EXPECT_LE(4 * split.hat_load, 3 * T);    // p(ĉ) <= 3T/4
    EXPECT_EQ(split.hat_load + split.check_load, instance.class_load(0));
    // Extra guarantee when max <= T/2: one part lies in (T/4, T/2].
    if (2 * instance.class_max(0) <= T) {
      const bool hat_in = 4 * split.hat_load > T && 2 * split.hat_load <= T;
      const bool check_in =
          4 * split.check_load > T && 2 * split.check_load <= T;
      EXPECT_TRUE(hat_in || check_in)
          << "hat=" << split.hat_load << " check=" << split.check_load;
    }
  }
}

TEST(Lemma11, PropertySweep) {
  Rng rng(1111);
  const Time T = 3600;
  for (int round = 0; round < 400; ++round) {
    // p(c) in (T/2, 3/4 T), max <= T/2
    Instance instance = random_class(rng, T, 1, 2, 2, 1, 2);
    const Time L = instance.class_load(0);
    if (!(2 * L > T && 4 * L < 3 * T)) continue;
    const ClassSplit split = split_lemma11(instance, 0, T);
    EXPECT_LE(split.check_load, split.hat_load);
    EXPECT_LE(2 * split.hat_load, T);   // p(ĉ) <= T/2
    EXPECT_GT(4 * split.hat_load, T);   // p(ĉ) > T/4
    EXPECT_EQ(split.hat_load + split.check_load, L);
  }
}

TEST(Lemma5, SingleBigJobCase) {
  // One job in (T/3, T/2] becomes c1 on its own.
  Instance instance = test::make_instance(1, {{500, 300, 300}});
  const Time T = 1200;  // load 1100 > 800 = 2T/3 ; max 500 <= 600 = T/2
  const ClassSplit split = split_lemma5(instance, 0, T);
  EXPECT_EQ(split.hat.size(), 1u);
  EXPECT_EQ(split.hat_load, 500);
  EXPECT_EQ(split.check_load, 600);
}

TEST(Lemma10, BigJobAloneInHat) {
  // Max job in (T/2, 3T/4] goes alone into the hat part.
  Instance instance = test::make_instance(1, {{700, 200, 100}});
  const Time T = 1200;  // load 1000 >= 900 ; max 700 in (600, 900]
  const ClassSplit split = split_lemma10(instance, 0, T);
  EXPECT_EQ(split.hat.size(), 1u);
  EXPECT_EQ(split.hat_load, 700);
  EXPECT_EQ(split.check_load, 300);
}

TEST(Lemma11, TinyJobsGreedy) {
  Instance instance =
      test::make_instance(1, {{100, 100, 100, 100, 100, 100, 100}});
  const Time T = 1200;  // load 700 in (600, 900); all jobs <= 300 = T/4
  const ClassSplit split = split_lemma11(instance, 0, T);
  EXPECT_GT(4 * split.hat_load, T);
  EXPECT_LE(2 * split.hat_load, T);
}

}  // namespace
}  // namespace msrs
