// Tests for the optimization substrates: Dinic max-flow, the reference ILP
// solver, and the N-fold augmentation solver.
#include <gtest/gtest.h>

#include "opt/ilp.hpp"
#include "opt/maxflow.hpp"
#include "opt/nfold.hpp"
#include "util/rng.hpp"

namespace msrs {
namespace {

// ---------------- max-flow ----------------

TEST(MaxFlow, SingleEdge) {
  MaxFlow flow(2);
  const int e = flow.add_edge(0, 1, 7);
  EXPECT_EQ(flow.solve(0, 1), 7);
  EXPECT_EQ(flow.flow_on(e), 7);
}

TEST(MaxFlow, ClassicDiamond) {
  //   0 -> 1 -> 3
  //   0 -> 2 -> 3 and 1 -> 2
  MaxFlow flow(4);
  flow.add_edge(0, 1, 10);
  flow.add_edge(0, 2, 10);
  flow.add_edge(1, 3, 10);
  flow.add_edge(2, 3, 10);
  flow.add_edge(1, 2, 1);
  EXPECT_EQ(flow.solve(0, 3), 20);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow flow(4);
  flow.add_edge(0, 1, 5);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.solve(0, 3), 0);
}

TEST(MaxFlow, BipartiteMatchingIntegrality) {
  // Lemma-18-style network: source -> classes -> layers -> sink. Flow
  // integrality gives an integral placeholder assignment.
  // 2 classes needing 2 resp. 1 placeholders; 3 layers with capacity 1 each;
  // class 0 compatible with layers {0,1}, class 1 with {1,2}.
  const int source = 0, c0 = 1, c1 = 2, l0 = 3, l1 = 4, l2 = 5, sink = 6;
  MaxFlow flow(7);
  flow.add_edge(source, c0, 2);
  flow.add_edge(source, c1, 1);
  const int e00 = flow.add_edge(c0, l0, 1);
  const int e01 = flow.add_edge(c0, l1, 1);
  const int e11 = flow.add_edge(c1, l1, 1);
  const int e12 = flow.add_edge(c1, l2, 1);
  flow.add_edge(l0, sink, 1);
  flow.add_edge(l1, sink, 1);
  flow.add_edge(l2, sink, 1);
  EXPECT_EQ(flow.solve(source, sink), 3);
  // class 0 must take layers 0 and 1, pushing class 1 to layer 2.
  EXPECT_EQ(flow.flow_on(e00), 1);
  EXPECT_EQ(flow.flow_on(e01), 1);
  EXPECT_EQ(flow.flow_on(e11), 0);
  EXPECT_EQ(flow.flow_on(e12), 1);
}

TEST(MaxFlow, RandomGraphsFlowConservation) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    const int n = 8;
    MaxFlow flow(n);
    std::vector<int> ids;
    for (int i = 0; i < 20; ++i) {
      const int a = static_cast<int>(rng.uniform(0, n - 1));
      const int b = static_cast<int>(rng.uniform(0, n - 1));
      if (a == b) continue;
      ids.push_back(flow.add_edge(a, b, rng.uniform(0, 10)));
    }
    const std::int64_t value = flow.solve(0, n - 1);
    EXPECT_GE(value, 0);
    for (int id : ids) EXPECT_GE(flow.flow_on(id), 0);
  }
}

// ---------------- ILP ----------------

TEST(Ilp, SimpleFeasibility) {
  // x + y = 3, 0 <= x,y <= 2
  IlpProblem problem;
  problem.num_vars = 2;
  problem.lower = {0, 0};
  problem.upper = {2, 2};
  problem.rows.push_back({{{0, 1}, {1, 1}}, IlpRow::Relation::kEq, 3});
  const IlpResult result = solve_ilp(problem);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.x[0] + result.x[1], 3);
}

TEST(Ilp, InfeasibleDetected) {
  IlpProblem problem;
  problem.num_vars = 2;
  problem.lower = {0, 0};
  problem.upper = {1, 1};
  problem.rows.push_back({{{0, 1}, {1, 1}}, IlpRow::Relation::kEq, 5});
  const IlpResult result = solve_ilp(problem);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.proven);
}

TEST(Ilp, OptimizesObjective) {
  // min x + 2y s.t. x + y >= 3 (as -x - y <= -3), 0 <= x,y <= 5.
  IlpProblem problem;
  problem.num_vars = 2;
  problem.lower = {0, 0};
  problem.upper = {5, 5};
  problem.objective = {1, 2};
  problem.rows.push_back({{{0, -1}, {1, -1}}, IlpRow::Relation::kLe, -3});
  const IlpResult result = solve_ilp(problem);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.objective, 3);  // x=3, y=0
  EXPECT_EQ(result.x[0], 3);
}

TEST(Ilp, LeRowsRespected) {
  IlpProblem problem;
  problem.num_vars = 3;
  problem.lower = {0, 0, 0};
  problem.upper = {4, 4, 4};
  problem.objective = {-1, -1, -1};  // maximize sum
  problem.rows.push_back(
      {{{0, 1}, {1, 2}, {2, 3}}, IlpRow::Relation::kLe, 6});
  const IlpResult result = solve_ilp(problem);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.x[0] + 2 * result.x[1] + 3 * result.x[2], 6);
  EXPECT_EQ(result.objective, -5);  // x0=4, x1=1, x2=0
}

// ---------------- N-fold ----------------

// A tiny scheduling-flavoured N-fold: N blocks, each block has t=2 vars
// (x_i1, x_i2) with local row x_i1 - x_i2 = 0 and a global row summing the
// first var of every block to b. Minimizing sum of costs.
NFold make_toy(int N, std::int64_t target) {
  NFold problem;
  problem.r = 1;
  problem.s = 1;
  problem.t = 2;
  problem.N = N;
  for (int i = 0; i < N; ++i) {
    problem.A.push_back({1, 0});
    problem.B.push_back({1, -1});
  }
  problem.b.assign(static_cast<std::size_t>(1 + N), 0);
  problem.b[0] = target;
  problem.lower.assign(static_cast<std::size_t>(2 * N), 0);
  problem.upper.assign(static_cast<std::size_t>(2 * N), 3);
  problem.c.assign(static_cast<std::size_t>(2 * N), 0);
  for (int i = 0; i < N; ++i)
    problem.c[static_cast<std::size_t>(2 * i)] = (i % 3) + 1;  // varying costs
  return problem;
}

TEST(NFoldSolver, FeasibilityAndOptimality) {
  const NFold problem = make_toy(4, 6);
  const NFoldResult result = solve_nfold(problem);
  ASSERT_TRUE(result.feasible);
  ASSERT_TRUE(result.converged);
  // verify constraints
  std::int64_t global = 0;
  for (int i = 0; i < 4; ++i) {
    global += result.x[static_cast<std::size_t>(2 * i)];
    EXPECT_EQ(result.x[static_cast<std::size_t>(2 * i)],
              result.x[static_cast<std::size_t>(2 * i + 1)]);
  }
  EXPECT_EQ(global, 6);
  // cross-check the optimum against the reference ILP
  IlpProblem flat;
  flat.num_vars = 8;
  flat.lower.assign(8, 0);
  flat.upper.assign(8, 3);
  flat.objective.assign(8, 0);
  IlpRow global_row;
  for (int i = 0; i < 4; ++i) {
    flat.objective[static_cast<std::size_t>(2 * i)] = (i % 3) + 1;
    global_row.terms.emplace_back(2 * i, 1);
    flat.rows.push_back({{{2 * i, 1}, {2 * i + 1, -1}},
                         IlpRow::Relation::kEq, 0});
  }
  global_row.rhs = 6;
  flat.rows.push_back(global_row);
  const IlpResult reference = solve_ilp(flat);
  ASSERT_TRUE(reference.feasible);
  EXPECT_EQ(result.objective, reference.objective);
}

TEST(NFoldSolver, DetectsInfeasibility) {
  NFold problem = make_toy(2, 100);  // upper bounds cap the sum at 6
  const NFoldResult result = solve_nfold(problem);
  EXPECT_FALSE(result.feasible);
}

TEST(NFoldSolver, RandomCrossCheckAgainstIlp) {
  Rng rng(4242);
  for (int round = 0; round < 15; ++round) {
    const int N = static_cast<int>(rng.uniform(2, 4));
    NFold problem = make_toy(N, rng.uniform(0, 3 * N));
    // randomize costs a bit
    for (auto& cost : problem.c) cost = rng.uniform(0, 4);
    const NFoldResult nfold_result = solve_nfold(problem);

    IlpProblem flat;
    flat.num_vars = 2 * N;
    flat.lower.assign(static_cast<std::size_t>(2 * N), 0);
    flat.upper.assign(static_cast<std::size_t>(2 * N), 3);
    flat.objective.assign(problem.c.begin(), problem.c.end());
    IlpRow global_row;
    for (int i = 0; i < N; ++i) {
      global_row.terms.emplace_back(2 * i, 1);
      flat.rows.push_back({{{2 * i, 1}, {2 * i + 1, -1}},
                           IlpRow::Relation::kEq, 0});
    }
    global_row.rhs = problem.b[0];
    flat.rows.push_back(global_row);
    const IlpResult reference = solve_ilp(flat);

    ASSERT_EQ(nfold_result.feasible, reference.feasible) << "round " << round;
    if (reference.feasible) {
      EXPECT_EQ(nfold_result.objective, reference.objective)
          << "round " << round;
    }
  }
}

TEST(NFoldSolver, CheckRejectsBadShapes) {
  NFold problem = make_toy(2, 1);
  EXPECT_TRUE(problem.check().empty());
  problem.b.pop_back();
  EXPECT_FALSE(problem.check().empty());
}

}  // namespace
}  // namespace msrs
