#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include <string>

#include "util/gantt.hpp"
#include "util/lru.hpp"
#include "util/rng.hpp"
#include "util/selection.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace msrs {
namespace {

TEST(Rng, DeterministicStreams) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(11);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child1() == child2());
  EXPECT_LT(equal, 4);
}

TEST(Selection, MatchesSortOnRandomInputs) {
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform(1, 200));
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = rng.uniform(-1000, 1000);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    const auto k = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(n) - 1));
    EXPECT_EQ(kth_smallest(v, k), sorted[k]);
    EXPECT_EQ(kth_largest(v, k), sorted[n - 1 - k]);
  }
}

TEST(Selection, HandlesDuplicates) {
  std::vector<std::int64_t> v{5, 5, 5, 5, 5};
  EXPECT_EQ(kth_smallest(v, 0), 5);
  EXPECT_EQ(kth_smallest(v, 4), 5);
}

TEST(Selection, WorstCaseSortedInput) {
  std::vector<std::int64_t> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int64_t>(i);
  EXPECT_EQ(kth_smallest(v, 500), 500);
  EXPECT_EQ(kth_largest(v, 0), 999);
}

TEST(Selection, NthElementInPlaceContract) {
  std::vector<std::int64_t> v{9, 1, 8, 2, 7, 3, 6, 4, 5};
  nth_element_mom(v, 4);
  EXPECT_EQ(v[4], 5);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LE(v[i], v[4]);
  for (std::size_t i = 5; i < v.size(); ++i) EXPECT_GE(v[i], v[4]);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> sample{1, 2, 3, 4, 5};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 10.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> sample{1.0, 4.0};
  EXPECT_NEAR(geometric_mean(sample), 2.0, 1e-12);
}

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "2.5"});
  const std::string out = table.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(Gantt, RendersBlocks) {
  std::vector<GanttBlock> blocks{
      {0, 0.0, 1.0, "a"},
      {1, 0.5, 1.5, "b"},
  };
  const std::string out = render_gantt(blocks);
  EXPECT_NE(out.find("m0"), std::string::npos);
  EXPECT_NE(out.find("m1"), std::string::npos);
  EXPECT_NE(out.find('['), std::string::npos);
}

TEST(Gantt, EmptyInput) {
  EXPECT_EQ(render_gantt({}), "(empty schedule)\n");
}

TEST(Gantt, OverlapGetsExtraRow) {
  // Two overlapping blocks on one machine must both be visible.
  std::vector<GanttBlock> blocks{
      {0, 0.0, 2.0, "x"},
      {0, 1.0, 3.0, "y"},
  };
  const std::string out = render_gantt(blocks);
  // Machine row plus one continuation row => at least two '|'-framed lines.
  const auto count = std::count(out.begin(), out.end(), '\n');
  EXPECT_GE(count, 3);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.insert(1, "one");
  cache.insert(2, "two");
  ASSERT_NE(cache.find(1), nullptr);  // refresh 1: now 2 is coldest
  cache.insert(3, "three");           // evicts 2
  EXPECT_EQ(cache.find(2), nullptr);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(1)->second, "one");
  ASSERT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Lru, CountsHitsAndMisses) {
  LruCache<int, int> cache(4);
  EXPECT_EQ(cache.find(7), nullptr);
  cache.insert(7, 49);
  EXPECT_NE(cache.find(7), nullptr);
  EXPECT_NE(cache.find(7), nullptr);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().capacity, 4u);
}

TEST(Lru, InsertOverwritesEquivalentKey) {
  LruCache<int, int> cache(2);
  cache.insert(1, 10);
  cache.insert(1, 11);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(1)->second, 11);
  EXPECT_EQ(cache.stats().insertions, 1u);  // overwrite, not a new entry
}

TEST(Lru, ZeroCapacityMeansUnbounded) {
  LruCache<int, int> cache(0);
  for (int i = 0; i < 1000; ++i) cache.insert(i, i);
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(Lru, ClearKeepsCountersButDropsEntries) {
  LruCache<int, int> cache(8);
  cache.insert(1, 1);
  (void)cache.find(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace msrs
