// Tests for Algorithm_5/3 (Theorem 2): feasibility and the 5/3 guarantee.
#include <gtest/gtest.h>

#include <tuple>

#include "algo/exact.hpp"
#include "algo/five_thirds.hpp"
#include "core/lower_bounds.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

TEST(FiveThirds, EmptyInstance) {
  Instance instance;
  instance.set_machines(3);
  const AlgoResult result = five_thirds(instance);
  EXPECT_TRUE(result.schedule.complete());
}

TEST(FiveThirds, TrivialOneClassPerMachine) {
  Instance instance = test::make_instance(3, {{4, 2}, {5}});
  const AlgoResult result = five_thirds(instance);
  EXPECT_TRUE(is_valid(instance, result.schedule));
  EXPECT_DOUBLE_EQ(result.schedule.makespan(instance), 6.0);  // optimal
}

TEST(FiveThirds, SingleMachine) {
  Instance instance = test::make_instance(1, {{3, 1}, {2}, {4}});
  const AlgoResult result = five_thirds(instance);
  EXPECT_TRUE(is_valid(instance, result.schedule));
  // One machine: the bound T = p(J) and any stacking is optimal... the
  // algorithm must not exceed 5/3 T but here it packs contiguously.
  EXPECT_LE(result.schedule.makespan(instance), 5.0 / 3.0 * 10 + 1e-9);
}

TEST(FiveThirds, PaperStyleExample) {
  // Five classes with a big job each (Figure 1 flavor) + large classes.
  Instance instance = test::make_instance(
      5, {{60, 30}, {70}, {55, 20}, {90}, {80, 10},  // big-job classes
          {40, 35}, {30, 30, 15}});                  // large classes
  const AlgoResult result = five_thirds(instance);
  const Time T = result.lower_bound;
  EXPECT_TRUE(test::schedule_within(instance, result.schedule, T, 5, 3));
}

struct SweepParam {
  Family family;
  int jobs;
  int machines;
};

class FiveThirdsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FiveThirdsSweep, ValidAndWithinFiveThirds) {
  const auto& p = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate(p.family, p.jobs, p.machines, seed);
    const AlgoResult result = five_thirds(instance);
    ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                      result.lower_bound, 5, 3))
        << family_name(p.family) << " n=" << p.jobs << " m=" << p.machines
        << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FiveThirdsSweep,
    ::testing::Values(
        SweepParam{Family::kUniform, 30, 3}, SweepParam{Family::kUniform, 120, 8},
        SweepParam{Family::kBimodal, 40, 4}, SweepParam{Family::kBimodal, 200, 16},
        SweepParam{Family::kHugeHeavy, 25, 4}, SweepParam{Family::kHugeHeavy, 90, 12},
        SweepParam{Family::kManySmallClasses, 60, 5},
        SweepParam{Family::kFewFatClasses, 48, 6},
        SweepParam{Family::kSatellite, 80, 6},
        SweepParam{Family::kPhotolith, 100, 8},
        SweepParam{Family::kAdversarialLpt, 20, 4},
        SweepParam{Family::kUnit, 70, 7}),
    [](const auto& sweep) {
      return std::string(family_name(sweep.param.family)) + "_n" +
             std::to_string(sweep.param.jobs) + "_m" +
             std::to_string(sweep.param.machines);
    });

TEST(FiveThirds, RatioVsExactOnSmallInstances) {
  // Against true OPT (not just T) on exhaustively solvable instances.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Instance instance = generate(Family::kUniform, 8, 3, seed);
    const AlgoResult approx = five_thirds(instance);
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    const double ratio =
        approx.schedule.makespan(instance) / static_cast<double>(exact.makespan);
    EXPECT_LE(ratio, 5.0 / 3.0 + 1e-9) << "seed " << seed;
    EXPECT_GE(ratio, 1.0 - 1e-9);
  }
}

TEST(FiveThirds, LowerBoundMatchesNote1) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = generate(Family::kSatellite, 50, 5, seed);
    const AlgoResult result = five_thirds(instance);
    EXPECT_EQ(result.lower_bound, lower_bounds(instance).combined);
  }
}

}  // namespace
}  // namespace msrs
