# Serving-path smoke: emits a 1k-request repeated-corpus JSONL stream with
# the load driver, pipes it through `serve` at two shard counts, and
# asserts the response streams are byte-identical (thread-count invariance
# extended to the serving path). A malformed line in the middle must
# produce a named error response without killing the service.
# Invoked by ctest with -DCLI=<binary> -DWORKDIR=<scratch dir>.
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND ${CLI} drive "uniform:n=32,m=4" --count=16 --requests=1000
          --emit=${WORKDIR}/requests.jsonl
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "drive --emit failed with exit code ${rc}:\n${err}")
endif()

# Sprinkle a defect into the stream: line 501 is not JSON.
file(READ ${WORKDIR}/requests.jsonl requests)
string(REPLACE "{\"id\":500," "this line is not json\n{\"id\":500,"
       requests "${requests}")
file(WRITE ${WORKDIR}/requests.jsonl "${requests}")

foreach(shards 1 4)
  execute_process(
    COMMAND ${CLI} serve --shards=${shards}
    INPUT_FILE ${WORKDIR}/requests.jsonl
    OUTPUT_FILE ${WORKDIR}/responses_${shards}.jsonl
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "serve --shards=${shards} failed with exit code ${rc}:\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/responses_1.jsonl ${WORKDIR}/responses_4.jsonl
  RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR
          "serving responses differ between 1 shard and 4 shards")
endif()

file(READ ${WORKDIR}/responses_4.jsonl responses)
string(REGEX MATCHALL "\n" newlines "${responses}")
list(LENGTH newlines response_count)
if(NOT response_count EQUAL 1001)
  message(FATAL_ERROR
          "expected 1001 response lines (1000 + 1 error), got"
          " ${response_count}")
endif()
if(NOT responses MATCHES "\"error\":\"parse_error\"")
  message(FATAL_ERROR "malformed line did not produce a named parse_error")
endif()
if(responses MATCHES "\"ok\":false.*\"ok\":false")
  message(FATAL_ERROR "more than one response failed:\n${responses}")
endif()

# Online-session churn: emit a deterministic Poisson submit/cancel/snapshot
# trace and replay it through `serve` at two shard counts — session state
# lives on one shard (routed by session-name hash) and snapshots are a pure
# function of the mutation history, so the response streams must again be
# byte-identical.
execute_process(
  COMMAND ${CLI} drive
          --churn=poisson:events=200,classes=6,m=4,max=50,cancel=0.35,snap=5,seed=3
          --emit=${WORKDIR}/churn.jsonl
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "drive --churn --emit failed with exit code ${rc}:\n${err}")
endif()

foreach(shards 1 4)
  execute_process(
    COMMAND ${CLI} serve --shards=${shards}
    INPUT_FILE ${WORKDIR}/churn.jsonl
    OUTPUT_FILE ${WORKDIR}/churn_responses_${shards}.jsonl
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "serve --shards=${shards} (churn) failed with exit code"
            " ${rc}:\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/churn_responses_1.jsonl
          ${WORKDIR}/churn_responses_4.jsonl
  RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR
          "churn responses differ between 1 shard and 4 shards")
endif()

file(READ ${WORKDIR}/churn_responses_4.jsonl churn_responses)
if(NOT churn_responses MATCHES "\"op\":\"open_session\"")
  message(FATAL_ERROR "churn replay produced no open_session response")
endif()
if(NOT churn_responses MATCHES "\"source\":")
  message(FATAL_ERROR "churn replay produced no snapshot provenance")
endif()
if(churn_responses MATCHES "\"ok\":false")
  message(FATAL_ERROR
          "a churn response failed:\n${churn_responses}")
endif()
